"""Command-line interface for the reproduction.

Subcommands:

- ``generate``  — synthesize a cluster trace and save it to disk
- ``stats``     — structural statistics of a saved or generated trace
- ``sweep``     — quota sweep of all methods on one cluster (Figure 7)
- ``headroom``  — oracle-vs-heuristic headroom analysis (Section 3.1)
- ``deploy``    — train BYOM on week 1, deploy on week 2, report savings
- ``replay``    — stream a CSV/npz trace through the simulator without
  materializing per-job objects (see ``repro.workloads.streaming``)
- ``serve``     — replay a trace request-at-a-time (or in micro-batches)
  through the online ``PlacementService`` (see ``repro.serve``); with
  ``--wal``/``--checkpoint`` the run is durable, with ``--fault-plan``
  a scripted fault plan fires mid-stream, and ``--recover`` resumes a
  crashed run from its checkpoint + WAL to the exact pre-crash state
- ``loadgen``   — timed load generation against the service: open loop
  (fixed rate and burst shape) or closed loop (latency-aware pacing
  with a bounded in-flight window and a warmup/measure split)
- ``chaos``     — the named chaos scenario suite: adaptive vs baseline
  under lane loss/shrink, quota cuts, categorizer outages, completion
  chaos (see ``repro.serve.scenarios``)

``serve``, ``loadgen``, and ``chaos`` accept ``--metrics-port N`` to
expose a Prometheus-format scrape endpoint while running (0 picks a
free port; see ``docs/observability.md``).

``serve`` and ``loadgen`` handle Ctrl-C gracefully: queued jobs are
drained, the partial roll-up is printed, and the process exits 130.
An injected ``crash`` fault point exits hard with status 137 (the WAL
and the last checkpoint survive; ``--recover`` picks them up).

Examples::

    python -m repro.cli generate --cluster 0 --out /tmp/c0
    python -m repro.cli stats --trace /tmp/c0
    python -m repro.cli sweep --cluster 0 --quotas 0.01 0.1 0.5
    python -m repro.cli headroom --cluster 0 --quota 0.01
    python -m repro.cli deploy --cluster 0 --quota 0.01
    python -m repro.cli replay --trace /tmp/trace.csv --quota 0.05 --shards 4
    python -m repro.cli serve --trace /tmp/trace.csv --quota 0.05 --batch 512
    python -m repro.cli serve --trace /tmp/c0 --wal /tmp/c0.wal \\
        --checkpoint /tmp/c0.ckpt --fault-plan /tmp/faults.json
    python -m repro.cli serve --trace /tmp/c0 --wal /tmp/c0.wal \\
        --checkpoint /tmp/c0.ckpt --recover
    python -m repro.cli loadgen --trace /tmp/trace.csv --rate 20000 --burst poisson
    python -m repro.cli chaos --jobs 3000 --scenario lane_loss
"""

from __future__ import annotations

import argparse
import sys

from .units import WEEK, fmt_bytes, fmt_duration

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BYOM storage placement reproduction (MLSys 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a cluster trace")
    gen.add_argument("--cluster", type=int, default=0, help="default-cluster index (0-9)")
    gen.add_argument("--weeks", type=float, default=2.0, help="trace span in weeks")
    gen.add_argument("--seed", type=int, default=None, help="override the cluster seed")
    gen.add_argument("--out", required=True, help="output path prefix (.npz/.json)")

    stats = sub.add_parser("stats", help="trace statistics")
    group = stats.add_mutually_exclusive_group(required=True)
    group.add_argument("--trace", help="path prefix of a saved trace")
    group.add_argument("--cluster", type=int, help="default-cluster index")

    sweep = sub.add_parser("sweep", help="method x quota sweep (Figure 7)")
    sweep.add_argument("--cluster", type=int, default=0)
    sweep.add_argument(
        "--quotas", type=float, nargs="+", default=[0.01, 0.05, 0.2, 1.0]
    )

    head = sub.add_parser("headroom", help="oracle vs heuristic (Section 3.1)")
    head.add_argument("--cluster", type=int, default=0)
    head.add_argument("--quota", type=float, default=0.01)

    deploy = sub.add_parser("deploy", help="train + deploy BYOM on one cluster")
    deploy.add_argument("--cluster", type=int, default=0)
    deploy.add_argument("--quota", type=float, default=0.01)
    deploy.add_argument("--categories", type=int, default=15)

    replay = sub.add_parser(
        "replay", help="stream a trace file through the placement simulator"
    )
    replay.add_argument(
        "--trace", required=True,
        help="trace to stream: a .csv file or a .npz/prefix saved by generate",
    )
    replay.add_argument("--quota", type=float, default=0.05,
                        help="SSD capacity as a fraction of the trace's peak usage")
    replay.add_argument("--shards", type=int, default=1,
                        help="number of caching servers (1 = one global pool)")
    replay.add_argument("--categories", type=int, default=15,
                        help="category count for the hash-category adaptive policy")
    replay.add_argument("--block-size", type=int, default=None,
                        help="jobs per streamed block (default 65536)")
    replay.add_argument("--engine", choices=("auto", "chunked", "legacy"),
                        default="auto", help="simulator event loop")
    replay.add_argument("--aggregate", action="store_true",
                        help="constant-memory results: keep aggregates only, "
                             "drop the per-job SSD-fraction array")

    serve = sub.add_parser(
        "serve",
        help="replay a trace through the online placement service",
    )
    serve.add_argument(
        "--trace", required=True,
        help="trace to serve: a .csv file or a .npz/prefix saved by generate",
    )
    serve.add_argument("--quota", type=float, default=0.05,
                       help="SSD capacity as a fraction of the trace's peak usage")
    serve.add_argument("--shards", type=int, default=1,
                       help="number of caching servers (1 = one global pool)")
    serve.add_argument("--categories", type=int, default=15,
                       help="category count for the hash-category adaptive policy")
    serve.add_argument("--mode", choices=("batch", "scalar"), default="batch",
                       help="micro-batch (chunked-engine) or request-at-a-time "
                            "(legacy-engine) submission")
    serve.add_argument("--batch", type=int, default=512,
                       help="jobs per submitted micro-batch (batch mode)")
    serve.add_argument("--max-pending", type=int, default=None,
                       help="backpressure bound on the admission queue")
    serve.add_argument("--aggregate", action="store_true",
                       help="keep aggregates only in the final roll-up")
    serve.add_argument("--wal", default=None,
                       help="write-ahead log path: every mutating call is "
                            "logged before it applies")
    serve.add_argument("--checkpoint", default=None,
                       help="checkpoint path: a snapshot is pickled here at "
                            "start and every --checkpoint-every batches")
    serve.add_argument("--checkpoint-every", type=int, default=0,
                       help="micro-batches between periodic checkpoints "
                            "(0 = only the initial one)")
    serve.add_argument("--fault-plan", default=None,
                       help="JSON fault plan fired at submission boundaries "
                            "(see repro.serve.faults); an injected crash "
                            "exits hard with status 137")
    serve.add_argument("--recover", action="store_true",
                       help="resume from --checkpoint + --wal instead of "
                            "starting fresh, then serve the remaining trace")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker fleet size (>1 serves through the "
                            "scatter-gather FleetRouter; decisions stay "
                            "bit-identical to one process)")
    serve.add_argument("--transport", choices=("inprocess", "subprocess"),
                       default="inprocess",
                       help="fleet transport: in-process workers or forked "
                            "child processes")
    serve.add_argument("--worker-dir", default=None,
                       help="directory for per-worker WAL/checkpoint files; "
                            "enables transparent worker failover")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="serve Prometheus-format metrics on this local "
                            "port while running (0 = pick a free port)")
    _add_observability_args(serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="open- or closed-loop timed load generation against the "
             "placement service",
    )
    loadgen.add_argument(
        "--trace", required=True,
        help="trace to stream: a .csv file or a .npz/prefix saved by generate",
    )
    loadgen.add_argument("--quota", type=float, default=0.05,
                         help="SSD capacity as a fraction of the trace's peak usage")
    loadgen.add_argument("--shards", type=int, default=1,
                         help="number of caching servers")
    loadgen.add_argument("--categories", type=int, default=15,
                         help="category count for the hash-category adaptive policy")
    loadgen.add_argument("--rate", type=float, default=None,
                         help="offered load in jobs/second (default: as fast "
                              "as possible, no pacing)")
    loadgen.add_argument("--burst", choices=("trace", "uniform", "poisson"),
                         default="trace", help="arrival burst shape")
    loadgen.add_argument("--batch", type=int, default=256,
                         help="jobs per released micro-batch")
    loadgen.add_argument("--limit", type=int, default=None,
                         help="stop after this many jobs")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="seed of the poisson gap sampler")
    loadgen.add_argument("--workers", type=int, default=1,
                         help="worker fleet size (>1 uses the FleetRouter)")
    loadgen.add_argument("--transport", choices=("inprocess", "subprocess"),
                         default="inprocess",
                         help="fleet transport: in-process workers or forked "
                              "child processes")
    loadgen.add_argument("--mode", choices=("open", "closed"), default="open",
                         help="open loop (send on schedule regardless of "
                              "service speed) or closed loop (latency-aware "
                              "pacing with a warmup/measure split)")
    loadgen.add_argument("--max-in-flight", type=int, default=None,
                         help="closed-loop bound on undecided jobs; exceeding "
                              "it forces a drain charged to that batch")
    loadgen.add_argument("--warmup", type=int, default=0,
                         help="jobs excluded from the closed-loop measured "
                              "window")
    loadgen.add_argument("--metrics-port", type=int, default=None,
                         help="serve Prometheus-format metrics on this local "
                              "port while running (0 = pick a free port)")
    _add_observability_args(loadgen)

    chaos = sub.add_parser(
        "chaos",
        help="chaos scenario suite: adaptive vs baseline under faults",
    )
    chaos.add_argument("--trace", default=None,
                       help="trace to serve (default: generate a cluster "
                            "trace and take the first --jobs jobs)")
    chaos.add_argument("--cluster", type=int, default=0,
                       help="default-cluster index for the generated trace")
    chaos.add_argument("--jobs", type=int, default=3000,
                       help="job count of the generated trace")
    chaos.add_argument("--seed", type=int, default=0,
                       help="trace-generation and completion-lottery seed")
    chaos.add_argument("--quota", type=float, default=0.05,
                       help="SSD capacity as a fraction of the trace's peak usage")
    chaos.add_argument("--shards", type=int, default=4,
                       help="number of caching servers")
    chaos.add_argument("--batch", type=int, default=64,
                       help="jobs per submitted micro-batch")
    chaos.add_argument("--scenario", default="all",
                       help="one scenario name, or 'all' for the full suite")
    chaos.add_argument("--workers", type=int, default=1,
                       help="worker fleet size (>1 runs scenarios through "
                            "the FleetRouter; worker_kill faults need >1)")
    chaos.add_argument("--transport", choices=("inprocess", "subprocess"),
                       default="inprocess",
                       help="fleet transport: in-process workers or forked "
                            "child processes")
    chaos.add_argument("--metrics-port", type=int, default=None,
                       help="serve Prometheus-format metrics on this local "
                            "port while running (0 = pick a free port)")
    _add_observability_args(chaos)
    chaos.add_argument("--no-alerts", action="store_true",
                       help="disable the default chaos alert rules")
    return parser


def _add_observability_args(p) -> None:
    """The alerting/SLO/tracing flags shared by serve, loadgen, chaos."""
    p.add_argument("--alert-rules", default=None,
                   help="JSON alert config: {\"rules\": [...], \"slos\": "
                        "[...]} or a bare rule list (see repro.serve.alerts)")
    p.add_argument("--slo", default=None,
                   help="JSON SLO config, same format as --alert-rules "
                        "(both files may carry rules and SLOs; they merge)")
    p.add_argument("--alert-log", default=None,
                   help="append one JSON line per alert transition to this "
                        "file")
    p.add_argument("--trace-out", default=None,
                   help="export sampled request spans as JSONL to this file "
                        "at the end of the run (enables tracing)")
    p.add_argument("--trace-sample", type=float, default=1.0,
                   help="fraction of jobs traced, by deterministic job-id "
                        "hash (default 1.0)")


def _cmd_generate(args) -> int:
    from .workloads import default_cluster_specs, generate_cluster_trace, save_trace

    spec = default_cluster_specs(10)[args.cluster]
    trace = generate_cluster_trace(spec, duration=args.weeks * WEEK, seed=args.seed)
    save_trace(trace, args.out)
    print(f"wrote {len(trace)} jobs ({trace.name}) to {args.out}.npz/.json")
    return 0


def _cmd_stats(args) -> int:
    from .workloads import load_trace
    from .workloads.validation import trace_statistics

    if args.trace:
        trace = load_trace(args.trace)
    else:
        from .workloads import default_cluster_specs, generate_cluster_trace

        spec = default_cluster_specs(10)[args.cluster]
        trace = generate_cluster_trace(spec, duration=2 * WEEK)
    s = trace_statistics(trace)
    print(f"trace {trace.name}: {s.n_jobs} jobs / {s.n_pipelines} pipelines / "
          f"{s.n_users} users over {fmt_duration(s.span)}")
    print(f"  size p50/p99:       {fmt_bytes(s.size_p50)} / {fmt_bytes(s.size_p99)}")
    print(f"  lifetime p50/p99:   {fmt_duration(s.lifetime_p50)} / {fmt_duration(s.lifetime_p99)}")
    print(f"  positive savings:   {s.positive_savings_fraction:.1%} of jobs")
    print(f"  density range:      {s.density_dynamic_range:.1f} orders of magnitude")
    print(f"  pipeline churn:     {s.churn_fraction:.1%}")
    print(f"  peak SSD usage:     {fmt_bytes(s.peak_ssd_usage)}")
    return 0


def _cmd_sweep(args) -> int:
    from .analysis import FIG7_METHODS, render_series, run_method_suite, standard_cluster

    cluster = standard_cluster(args.cluster)
    quotas = tuple(args.quotas)
    results = run_method_suite(
        cluster, FIG7_METHODS, quotas, oracle_kw={"time_limit": 30.0}
    )
    series = {
        m: [results[m][q].tco_savings_pct for q in quotas] for m in FIG7_METHODS
    }
    print(render_series(
        [f"{q:.0%}" for q in quotas], series, x_name="quota",
        title=f"TCO savings (%) vs SSD quota, cluster C{args.cluster}",
    ))
    return 0


def _cmd_headroom(args) -> int:
    from .analysis import standard_cluster
    from .oracle import headroom_analysis

    cluster = standard_cluster(args.cluster)
    result = headroom_analysis(cluster.train, cluster.test, args.quota)
    print(f"capacity: {fmt_bytes(result.capacity)} ({args.quota:.1%} of peak)")
    print(f"oracle:    {result.oracle.tco_savings_pct:.2f}% TCO savings")
    print(f"heuristic: {result.heuristic.tco_savings_pct:.2f}% TCO savings")
    print(f"headroom:  {result.savings_ratio:.2f}x (paper: 5.06x)")
    return 0


def _cmd_deploy(args) -> int:
    from .analysis import standard_cluster
    from .config import ModelParams
    from .core import ByomPipeline

    cluster = standard_cluster(args.cluster)
    pipe = ByomPipeline(ModelParams(n_categories=args.categories, n_rounds=10))
    pipe.train(cluster.train, cluster.features_train)
    acc = pipe.model.top1_accuracy(cluster.test, cluster.features_test)
    res = pipe.deploy(
        cluster.test, cluster.features_test, args.quota, cluster.peak_ssd_usage
    )
    print(f"cluster C{args.cluster}: trained on {len(cluster.train)} jobs, "
          f"deployed on {len(cluster.test)}")
    print(f"  top-1 accuracy: {acc:.2f} ({args.categories} categories)")
    print(f"  TCO savings:    {res.tco_savings_pct:.2f}%")
    print(f"  TCIO savings:   {res.tcio_savings_pct:.2f}%")
    return 0


def _cmd_replay(args) -> int:
    from .core import AdaptiveCategoryPolicy, hash_categories
    from .storage import simulate, simulate_sharded
    from .workloads.streaming import (
        DEFAULT_BLOCK_SIZE,
        materialize_trace,
        open_trace_source,
    )

    block_size = DEFAULT_BLOCK_SIZE if args.block_size is None else args.block_size
    if block_size < 1:
        print(f"replay: --block-size must be >= 1, got {block_size}", file=sys.stderr)
        return 2
    source = open_trace_source(args.trace, block_size=block_size)
    trace = materialize_trace(source)
    if len(trace) == 0:
        print(f"trace {trace.name}: 0 jobs, nothing to replay")
        return 0
    peak = trace.peak_ssd_usage()
    capacity = args.quota * peak
    policy = AdaptiveCategoryPolicy(
        hash_categories(trace, args.categories), args.categories,
        name="Adaptive Hash",
    )
    if args.shards > 1:
        res = simulate_sharded(
            trace, policy, capacity, args.shards, engine=args.engine,
            aggregate_only=args.aggregate,
        )
    else:
        res = simulate(
            trace, policy, capacity, engine=args.engine,
            aggregate_only=args.aggregate,
        )
    print(f"streamed {len(trace)} jobs from {args.trace} "
          f"({type(source).__name__}, blocks of {block_size})")
    print(f"  capacity:     {fmt_bytes(capacity)} "
          f"({args.quota:.1%} of {fmt_bytes(peak)} peak)"
          + (f" across {args.shards} caching servers" if args.shards > 1 else ""))
    print(f"  policy:       {res.policy_name} ({args.categories} categories)")
    print(f"  TCO savings:  {res.tco_savings_pct:.2f}%")
    print(f"  TCIO savings: {res.tcio_savings_pct:.2f}%")
    print(f"  spilled:      {res.n_spilled} of {res.n_ssd_requested} SSD requests")
    if args.aggregate:
        print("  results:      aggregate-only (per-job arrays dropped)")
    return 0


def _service_summary(res, stats, interrupted: bool = False) -> None:
    tag = "partial roll-up (interrupted)" if interrupted else "final roll-up"
    print(f"  {tag}: {res.n_jobs} jobs decided, "
          f"TCO savings {res.tco_savings_pct:.2f}%, "
          f"{res.n_spilled} of {res.n_ssd_requested} SSD requests spilled")
    print(f"  chunks: {stats.n_chunks}, peak queue: {stats.max_pending_seen}, "
          f"completions: {stats.n_completions}")


def _metrics_line(service) -> None:
    """Deterministic counters from the metrics surface (no latency)."""
    m = service.metrics()
    print(f"  metrics: {m['serve_decided_total']} decided, "
          f"{m['serve_chunks_total']} chunks, "
          f"{m['serve_spilled_total']} spilled, "
          f"{m['serve_evictions_total']} evicted "
          f"(scrape with --metrics-port)")


def _metrics_endpoint(port):
    """Stand up the scrape endpoint; returns ``(refresh, close)``.

    The endpoint serves text cached by the main loop — fleet transports
    are not thread-safe, so the scrape thread must never touch the
    service itself.  ``refresh(service)`` re-renders the cache; call it
    from the submission loop.  Returns ``(None, None)`` when ``port``
    is None (endpoint disabled).
    """
    if port is None:
        return None, lambda: None
    from .serve import MetricsServer

    cache = [""]
    server = MetricsServer(lambda: cache[0], port=port)

    def refresh(service) -> None:
        cache[0] = service.metrics_text()

    print(f"metrics endpoint: {server.url}", file=sys.stderr)
    return refresh, server.close


def _build_observability(args):
    """``(AlertManager | None, Tracer | None)`` from the shared flags."""
    from .serve import AlertManager, Tracer, load_alert_config

    rules, slos = [], []
    for path in (args.alert_rules, args.slo):
        if path:
            r, s = load_alert_config(path)
            rules.extend(r)
            slos.extend(s)
    alerts = None
    if rules or slos:
        alerts = AlertManager(rules, slos, log_path=args.alert_log)
    tracer = (
        Tracer(sample=args.trace_sample) if args.trace_out is not None
        else None
    )
    return alerts, tracer


def _alert_summary(alerts) -> None:
    if alerts is None:
        return
    fired = alerts.fired()
    firing = alerts.firing()
    print(f"  alerts: {len(alerts.events)} events, "
          f"fired: {', '.join(fired) if fired else 'none'}, "
          f"firing now: {', '.join(firing) if firing else 'none'}")
    for name, s in alerts.slo_status().items():
        if s is None:
            print(f"  slo {name}: no samples")
        else:
            print(f"  slo {name}: {s['bad']}/{s['total']} bad "
                  f"(budget {s['budget']:.4g}), burn fast "
                  f"{s['fast_burn']:.2f}x / slow {s['slow_burn']:.2f}x "
                  f"({s['state']})")


def _export_trace(service, path) -> None:
    """Write the service's spans (plus fleet worker op spans) as JSONL."""
    import json

    n = service.export_trace(path)
    n_ops = 0
    if hasattr(service, "worker_op_spans"):
        ops = service.worker_op_spans()
        with open(path, "a") as fh:
            for span in ops:
                fh.write(json.dumps(span) + "\n")
        n_ops = len(ops)
    extra = f" + {n_ops} worker op spans" if n_ops else ""
    print(f"  trace: {n} request spans{extra} -> {path}")


def _hard_exit() -> None:
    """Injected-crash hook: die like a killed process (WAL survives)."""
    import os

    sys.stdout.flush()
    sys.stderr.flush()
    os._exit(137)


def _cmd_serve(args) -> int:
    import time

    import numpy as np

    from .core import AdaptiveCategoryPolicy, hash_categories
    from .serve import FaultInjector, FaultPlan, FleetRouter, PlacementService
    from .workloads.streaming import materialize_trace

    trace = materialize_trace(args.trace)
    if len(trace) == 0:
        print(f"trace {trace.name}: 0 jobs, nothing to serve")
        return 0
    fleet = args.workers > 1
    alerts, tracer = _build_observability(args)
    if args.recover:
        if not (args.checkpoint and args.wal):
            print("serve: --recover needs --checkpoint and --wal",
                  file=sys.stderr)
            return 2
        cls = FleetRouter if fleet else PlacementService
        service = cls.recover(args.checkpoint, args.wal)
        start = service.stats.n_submitted
        print(f"recovered from {args.checkpoint} + {args.wal}: "
              f"{start} submissions replayed to WAL seq {service.wal_seq}")
        # A schema-3 checkpoint carries its own manager/tracer; only
        # backfill what the snapshot did not restore.
        if service.alerts is None:
            service.alerts = alerts
        if service.tracer is None:
            service.tracer = tracer
    else:
        capacity = args.quota * trace.peak_ssd_usage()
        policy = AdaptiveCategoryPolicy(
            hash_categories(trace, args.categories), args.categories,
            name="Adaptive Hash",
        )
        if fleet:
            service = FleetRouter(
                policy, capacity, args.shards, mode=args.mode,
                max_pending=args.max_pending, wal=args.wal,
                n_workers=args.workers, transport=args.transport,
                worker_dir=args.worker_dir,
                alerts=alerts, tracer=tracer,
            )
        else:
            service = PlacementService(
                policy, capacity, args.shards, mode=args.mode,
                max_pending=args.max_pending, wal=args.wal,
                alerts=alerts, tracer=tracer,
            )
        service.open(trace)
        if args.checkpoint:
            service.checkpoint(args.checkpoint)
        start = 0
    target = service
    if args.fault_plan:
        plan = FaultPlan.from_file(args.fault_plan)
        target = FaultInjector(service, plan, crash=_hard_exit)
    refresh, close_metrics = _metrics_endpoint(args.metrics_port)
    if refresh:
        refresh(service)
    n = len(trace)
    mode = service.mode
    step = 1 if mode == "scalar" else max(args.batch, 1)
    pipelines = trace.pipelines
    lat: list[float] = []
    interrupted = False
    batches = 0
    t_start = time.perf_counter()
    try:
        for lo in range(start, n, step):
            hi = min(lo + step, n)
            t0 = time.perf_counter()
            if mode == "scalar":
                target.submit(
                    arrival=trace.arrivals[lo], duration=trace.durations[lo],
                    size=trace.sizes[lo], read_bytes=trace.read_bytes[lo],
                    write_bytes=trace.write_bytes[lo],
                    read_ops=trace.read_ops[lo], pipeline=pipelines[lo],
                )
            else:
                target.submit_batch(
                    trace.arrivals[lo:hi], trace.durations[lo:hi],
                    trace.sizes[lo:hi], trace.read_bytes[lo:hi],
                    trace.write_bytes[lo:hi], trace.read_ops[lo:hi],
                    pipelines=pipelines[lo:hi],
                )
            lat.append(time.perf_counter() - t0)
            batches += 1
            if service.alerts is not None:
                service.evaluate_alerts()
            if (args.checkpoint and args.checkpoint_every
                    and batches % args.checkpoint_every == 0):
                service.checkpoint(args.checkpoint)
            if refresh:
                refresh(service)
    except KeyboardInterrupt:
        interrupted = True
        print("\ninterrupted — flushing queued jobs", file=sys.stderr)
    elapsed = time.perf_counter() - t_start
    res = service.result(aggregate_only=args.aggregate)  # drains the queue
    unit = "request" if mode == "scalar" else f"batch of {step}"
    print(f"served {res.n_jobs} of {n} jobs from {args.trace} "
          f"({mode} mode, one {unit} per submission)")
    if lat and elapsed > 0:
        p50, p99 = np.percentile(np.asarray(lat), [50, 99])
        print(f"  decision latency: p50 {p50 * 1e6:,.0f} us, "
              f"p99 {p99 * 1e6:,.0f} us per submission")
        print(f"  throughput:       {res.n_jobs / elapsed:,.0f} decisions/s")
    _service_summary(res, service.stats, interrupted)
    _metrics_line(service)
    _alert_summary(service.alerts)
    if args.trace_out:
        _export_trace(service, args.trace_out)
    st = service.stats
    if st.n_shocks or st.degraded_jobs or st.n_evicted:
        print(f"  faults: {st.n_shocks} shocks, {st.n_evicted} evicted "
              f"({fmt_bytes(st.evicted_bytes)}), "
              f"{st.degraded_jobs} jobs decided degraded")
    if refresh:
        refresh(service)
    close_metrics()
    if isinstance(service, FleetRouter):
        print(f"  fleet: {service.n_workers} workers over "
              f"{service.pool.transport_kind} transport")
        service.close()
    return 130 if interrupted else 0


def _cmd_loadgen(args) -> int:
    from .core import AdaptiveCategoryPolicy, hash_categories
    from .serve import (
        FleetRouter,
        LoadGenerator,
        PlacementService,
        metrics_latency_summary,
    )
    from .workloads.streaming import materialize_trace

    trace = materialize_trace(args.trace)
    if len(trace) == 0:
        print(f"trace {trace.name}: 0 jobs, nothing to offer")
        return 0
    capacity = args.quota * trace.peak_ssd_usage()
    policy = AdaptiveCategoryPolicy(
        hash_categories(trace, args.categories), args.categories,
        name="Adaptive Hash",
    )
    alerts, tracer = _build_observability(args)
    if args.workers > 1:
        service = FleetRouter(
            policy, capacity, args.shards, mode="batch",
            n_workers=args.workers, transport=args.transport,
            alerts=alerts, tracer=tracer,
        )
    else:
        service = PlacementService(
            policy, capacity, args.shards, mode="batch",
            alerts=alerts, tracer=tracer,
        )
    service.open(trace)
    gen = LoadGenerator(
        trace, rate=args.rate, shape=args.burst,
        batch_jobs=max(args.batch, 1), seed=args.seed,
        mode=args.mode, max_in_flight=args.max_in_flight,
        warmup=args.warmup,
    )
    refresh, close_metrics = _metrics_endpoint(args.metrics_port)

    def on_batch(_report) -> None:
        if alerts is not None:
            service.evaluate_alerts()
        if refresh:
            refresh(service)

    if alerts is None and refresh is None:
        on_batch = None
    if refresh:
        refresh(service)
    report = gen.run(service, limit=args.limit, on_batch=on_batch)
    if report.interrupted:
        print("\ninterrupted — flushing queued jobs", file=sys.stderr)
    offered = "unpaced" if args.rate is None else f"{args.rate:,.0f} jobs/s"
    print(f"offered {report.n_jobs} jobs from {args.trace} "
          f"({args.mode} loop, {offered}, burst shape {args.burst!r}, "
          f"batches of {gen.batch_jobs})")
    print(f"  achieved:  {report.achieved_rate:,.0f} decisions/s over "
          f"{report.elapsed:.2f}s (lag {report.lag_seconds:.3f}s)")
    print(f"  latency:   p50 {report.latency_percentile(50) * 1e6:,.0f} us, "
          f"p99 {report.latency_percentile(99) * 1e6:,.0f} us per batch")
    if report.mode == "closed":
        print(f"  measured:  {report.measured_rate:,.0f} decisions/s over "
              f"{report.n_measured_jobs} jobs "
              f"(warmup {report.warmup_jobs}), "
              f"p50 {report.measured_latency_percentile(50) * 1e6:,.0f} us, "
              f"p99 {report.measured_latency_percentile(99) * 1e6:,.0f} us, "
              f"{report.n_forced_drains} forced drains, "
              f"peak in-flight {report.in_flight_peak}")
    res = service.result()
    lat = metrics_latency_summary(service)
    if lat is not None:
        print(f"  metrics latency: p50 {lat['p50'] * 1e6:,.0f} us, "
              f"p95 {lat['p95'] * 1e6:,.0f} us, "
              f"p99 {lat['p99'] * 1e6:,.0f} us over {lat['count']} "
              f"observations ({lat['metric']})")
    _service_summary(res, service.stats, report.interrupted)
    _metrics_line(service)
    _alert_summary(service.alerts)
    if args.trace_out:
        _export_trace(service, args.trace_out)
    if refresh:
        refresh(service)
    close_metrics()
    if isinstance(service, FleetRouter):
        print(f"  fleet: {service.n_workers} workers over "
              f"{service.pool.transport_kind} transport")
        service.close()
    return 130 if report.interrupted else 0


def _cmd_chaos(args) -> int:
    from .serve.scenarios import SCENARIOS, format_rows, get_scenario, run_suite
    from .workloads.streaming import materialize_trace

    if args.trace:
        trace = materialize_trace(args.trace)
    else:
        from .workloads import Trace, default_cluster_specs, generate_cluster_trace

        spec = default_cluster_specs(10)[args.cluster]
        full = generate_cluster_trace(spec, duration=WEEK, seed=args.seed)
        trace = Trace(full.jobs[: args.jobs], name=f"{full.name}[:{args.jobs}]")
    if len(trace) == 0:
        print("chaos: empty trace, nothing to run")
        return 0
    try:
        scenarios = (
            SCENARIOS if args.scenario == "all"
            else (get_scenario(args.scenario),)
        )
    except KeyError as exc:
        print(f"chaos: {exc.args[0]}", file=sys.stderr)
        return 2
    capacity = args.quota * trace.peak_ssd_usage()
    refresh, close_metrics = _metrics_endpoint(args.metrics_port)

    # Alerting is on by default (the scenario table's alerts column is
    # the point of the suite); --alert-rules/--slo swap in a custom
    # config, --no-alerts silences it.
    alerts = not args.no_alerts
    if alerts and (args.alert_rules or args.slo):
        from .serve import AlertManager, load_alert_config

        rules, slos = [], []
        for path in (args.alert_rules, args.slo):
            if path:
                r, s = load_alert_config(path)
                rules.extend(r)
                slos.extend(s)

        def alerts():
            return AlertManager(
                list(rules), list(slos), log_path=args.alert_log
            )

    tracers = []
    tracer = None
    if args.trace_out:
        from .serve import Tracer

        def tracer():
            tr = Tracer(sample=args.trace_sample)
            tracers.append(tr)
            return tr

    try:
        rows = run_suite(
            trace, capacity=capacity, n_shards=args.shards,
            batch_jobs=max(args.batch, 1), scenarios=scenarios,
            seed=args.seed, n_workers=args.workers, transport=args.transport,
            metrics_hook=refresh, alerts=alerts, tracer=tracer,
        )
    finally:
        close_metrics()
    print(f"chaos suite on {trace.name}: {len(trace)} jobs, "
          f"{fmt_bytes(capacity)} over {args.shards} caching servers")
    print(format_rows(rows))
    if args.trace_out:
        import json

        n_spans = 0
        with open(args.trace_out, "w") as fh:
            for row, tr in zip(rows, tracers):
                for span in tr.spans():
                    tagged = {
                        "scenario": row.scenario, "policy": row.policy,
                        **span,
                    }
                    fh.write(json.dumps(tagged, default=float) + "\n")
                    n_spans += 1
        print(f"  trace: {n_spans} request spans -> {args.trace_out}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "sweep": _cmd_sweep,
    "headroom": _cmd_headroom,
    "deploy": _cmd_deploy,
    "replay": _cmd_replay,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "chaos": _cmd_chaos,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
