"""repro: reproduction of "A Bring-Your-Own-Model Approach for ML-Driven
Storage Placement in Warehouse-Scale Computers" (MLSys 2025).

Public API overview
-------------------

- :mod:`repro.workloads` -- shuffle-job traces (synthetic substitute for
  the paper's production traces), Table-2 feature extraction.
- :mod:`repro.cost` -- TCIO and TCO models (Section 3).
- :mod:`repro.ml` -- from-scratch histogram GBDT (the YDF substitute).
- :mod:`repro.storage` -- event-driven SSD/HDD placement simulator.
- :mod:`repro.baselines` -- FirstFit, Heuristic, ML lifetime baseline.
- :mod:`repro.core` -- the BYOM contribution: category labels, category
  model, Adaptive Category Selection (Algorithm 1), Adaptive Hash.
- :mod:`repro.serve` -- online placement service: request-at-a-time
  serving over the same engine, load generation, checkpointing.
- :mod:`repro.oracle` -- clairvoyant ILP oracle and headroom analysis.
- :mod:`repro.prototype` -- test-deployment emulation (Figures 5/13/14).
- :mod:`repro.analysis` -- experiment runners for every table/figure.

Quickstart::

    from repro.core import ByomPipeline, prepare_cluster
    from repro.workloads import ClusterSpec, generate_cluster_trace

    trace = generate_cluster_trace(ClusterSpec("C0", {"dbquery": 2, "logproc": 1}))
    cluster = prepare_cluster(trace)
    pipe = ByomPipeline().train(cluster.train, cluster.features_train)
    result = pipe.deploy(cluster.test, cluster.features_test, quota_fraction=0.01)
    print(result.tco_savings_pct)
"""

from .config import AdaptiveParams, ModelParams, SimConfig

__version__ = "1.0.0"

__all__ = ["AdaptiveParams", "ModelParams", "SimConfig", "__version__"]
