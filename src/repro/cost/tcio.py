"""Total Cost of I/O (TCIO) computation.

TCIO quantifies a job's I/O pressure on HDDs in units of "standard
HDDs": a TCIO of 1.0 means the job's disk-operation rate equals what one
standard HDD can sustain (Section 3).  Two caching effects are applied
before operations reach the disks:

- reads served from the per-server DRAM cache never reach the disks;
- small writes are grouped into 1 MiB chunks.

Jobs running entirely on SSD have a TCIO of zero.
"""

from __future__ import annotations

import math

import numpy as np

from ..units import WRITE_GROUP_BYTES
from .rates import DEFAULT_RATES, CostRates

__all__ = [
    "effective_disk_ops",
    "tcio_rate",
    "tcio_rate_scalar",
    "cumulative_tcio",
]


def effective_disk_ops(
    read_ops: np.ndarray | float,
    write_bytes: np.ndarray | float,
    rates: CostRates = DEFAULT_RATES,
) -> np.ndarray | float:
    """Disk operations that actually reach the HDDs.

    Parameters
    ----------
    read_ops:
        Raw application read-operation count(s).
    write_bytes:
        Total bytes written; writes are grouped into
        :data:`~repro.units.WRITE_GROUP_BYTES` chunks before hitting disk.
    rates:
        Cost model constants (supplies the DRAM-cache hit fraction).
    """
    read_miss = np.asarray(read_ops, dtype=float) * (1.0 - rates.dram_cache_hit_fraction)
    write_chunks = np.ceil(np.asarray(write_bytes, dtype=float) / WRITE_GROUP_BYTES)
    out = read_miss + write_chunks
    if np.ndim(out) == 0:
        return float(out)
    return out


def tcio_rate(
    read_ops: np.ndarray | float,
    write_bytes: np.ndarray | float,
    duration: np.ndarray | float,
    rates: CostRates = DEFAULT_RATES,
) -> np.ndarray | float:
    """TCIO of a job if placed on HDD: disk-op rate in HDD units.

    A job with ``tcio_rate == 2`` would keep two standard HDDs busy for
    its whole duration.  Zero-duration jobs are treated as one-second
    jobs to keep the rate finite.
    """
    ops = effective_disk_ops(read_ops, write_bytes, rates)
    dur = np.maximum(np.asarray(duration, dtype=float), 1.0)
    out = np.asarray(ops, dtype=float) / dur / rates.hdd_ops_per_second
    if np.ndim(out) == 0:
        return float(out)
    return out


def tcio_rate_scalar(
    read_ops: float,
    write_bytes: float,
    duration: float,
    rates: CostRates = DEFAULT_RATES,
) -> float:
    """:func:`tcio_rate` for one job, without array dispatch.

    Python floats are IEEE doubles and ``math.ceil`` agrees with
    ``np.ceil`` on the non-negative finite inputs job validation
    admits, so the result is bit-identical to the vectorized path —
    the online job log relies on that to keep its incrementally
    appended TCIO column equal to a whole-trace recompute.
    """
    ops = read_ops * (1.0 - rates.dram_cache_hit_fraction) + float(
        math.ceil(write_bytes / WRITE_GROUP_BYTES)
    )
    dur = duration if duration > 1.0 else 1.0
    return ops / dur / rates.hdd_ops_per_second


def cumulative_tcio(
    rate: np.ndarray | float,
    arrival: np.ndarray | float,
    end: np.ndarray | float,
    t: float,
) -> np.ndarray | float:
    """``TCIO_HDD(t)``: TCIO accumulated from arrival until time ``t``.

    I/O is assumed uniform over the job's lifetime (the paper's
    algorithm uses this cumulative quantity in its spillover estimate).
    The accumulation is clipped to the job's own [arrival, end] span and
    is zero before arrival.
    """
    a = np.asarray(arrival, dtype=float)
    e = np.asarray(end, dtype=float)
    elapsed = np.clip(np.minimum(t, e) - a, 0.0, None)
    out = np.asarray(rate, dtype=float) * elapsed
    if np.ndim(out) == 0:
        return float(out)
    return out
