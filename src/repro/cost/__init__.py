"""Cost model: TCIO (I/O pressure on HDDs) and TCO (dollar cost) per job.

See Section 3 of the paper for the formula definitions.
"""

from .rates import DEFAULT_RATES, CostRates
from .tcio import cumulative_tcio, effective_disk_ops, tcio_rate, tcio_rate_scalar
from .tco import JobCost, JobCostVector, hdd_cost, ssd_cost, tco_savings

__all__ = [
    "CostRates",
    "DEFAULT_RATES",
    "effective_disk_ops",
    "tcio_rate",
    "tcio_rate_scalar",
    "cumulative_tcio",
    "JobCost",
    "JobCostVector",
    "hdd_cost",
    "ssd_cost",
    "tco_savings",
]
