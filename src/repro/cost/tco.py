"""Storage Total Cost of Ownership (TCO) model (Section 3 of the paper).

For each device class the TCO of one job decomposes into::

    TCO_DEV = cost_byte + cost_network + cost_server + cost_specific

with:

- ``cost_byte``      = byte_rate_DEV * size * duration
- ``cost_network``   = network_rate * bytes_transmitted  (device-independent)
- ``cost_server``    = HDD: server_rate_HDD * TCIO * duration
                       SSD: server_rate_SSD * bytes_transmitted
- ``cost_specific``  = HDD: device_rate_HDD * TCIO * duration
                       SSD: wearout_rate * bytes_written

All functions are vectorized over NumPy arrays so a whole trace can be
costed in one call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .rates import DEFAULT_RATES, CostRates

__all__ = ["JobCost", "hdd_cost", "ssd_cost", "tco_savings", "JobCostVector"]


@dataclass(frozen=True)
class JobCost:
    """Cost breakdown of one job on one device class."""

    byte: float
    network: float
    server: float
    specific: float

    @property
    def total(self) -> float:
        return self.byte + self.network + self.server + self.specific


def hdd_cost(
    size: np.ndarray | float,
    duration: np.ndarray | float,
    total_bytes: np.ndarray | float,
    tcio: np.ndarray | float,
    rates: CostRates = DEFAULT_RATES,
) -> np.ndarray | float:
    """TCO of placing job(s) on HDD.

    Parameters
    ----------
    size:
        Peak storage footprint in bytes.
    duration:
        Job lifetime in seconds.
    total_bytes:
        Bytes transmitted (reads + writes) over the lifetime.
    tcio:
        The job's TCIO rate if placed on HDD (HDD-equivalents).
    """
    size = np.asarray(size, dtype=float)
    duration = np.asarray(duration, dtype=float)
    total_bytes = np.asarray(total_bytes, dtype=float)
    tcio = np.asarray(tcio, dtype=float)
    out = (
        rates.hdd_byte_rate * size * duration
        + rates.network_rate * total_bytes
        + (rates.hdd_server_rate + rates.hdd_device_rate) * tcio * duration
    )
    if np.ndim(out) == 0:
        return float(out)
    return out


def ssd_cost(
    size: np.ndarray | float,
    duration: np.ndarray | float,
    total_bytes: np.ndarray | float,
    write_bytes: np.ndarray | float,
    rates: CostRates = DEFAULT_RATES,
) -> np.ndarray | float:
    """TCO of placing job(s) on SSD.

    SSD server cost scales with bytes transmitted and the
    device-specific component covers flash wearout (bytes written).
    """
    size = np.asarray(size, dtype=float)
    duration = np.asarray(duration, dtype=float)
    total_bytes = np.asarray(total_bytes, dtype=float)
    write_bytes = np.asarray(write_bytes, dtype=float)
    out = (
        rates.ssd_byte_rate * size * duration
        + rates.network_rate * total_bytes
        + rates.ssd_server_rate * total_bytes
        + rates.ssd_wearout_rate * write_bytes
    )
    if np.ndim(out) == 0:
        return float(out)
    return out


def tco_savings(
    size: np.ndarray | float,
    duration: np.ndarray | float,
    total_bytes: np.ndarray | float,
    write_bytes: np.ndarray | float,
    tcio: np.ndarray | float,
    rates: CostRates = DEFAULT_RATES,
) -> np.ndarray | float:
    """``c_HDD - c_SSD``: the TCO saved by moving job(s) to SSD.

    Positive for I/O-dense jobs whose HDD pressure outweighs the SSD
    capacity/wearout premium; negative for large, cold jobs.
    """
    h = hdd_cost(size, duration, total_bytes, tcio, rates)
    s = ssd_cost(size, duration, total_bytes, write_bytes, rates)
    out = np.asarray(h, dtype=float) - np.asarray(s, dtype=float)
    if np.ndim(out) == 0:
        return float(out)
    return out


@dataclass(frozen=True)
class JobCostVector:
    """Per-trace arrays of HDD cost, SSD cost and savings.

    A convenience bundle produced once per trace and consumed by the
    simulator, the oracle and the label designer.
    """

    c_hdd: np.ndarray
    c_ssd: np.ndarray

    @property
    def savings(self) -> np.ndarray:
        return self.c_hdd - self.c_ssd

    def __post_init__(self) -> None:
        if self.c_hdd.shape != self.c_ssd.shape:
            raise ValueError("c_hdd and c_ssd must have the same shape")
