"""Cost-rate constants of the TCO model (Section 3 of the paper).

The paper expresses storage total cost of ownership (TCO) as the sum of
four components per device class::

    TCO_DEV = cost_byte + cost_network + cost_server + cost_specific

with conversion rates turning physical quantities (byte-seconds, bytes
transmitted, HDD-equivalents of I/O pressure, bytes written) into dollar
cost.  Google does not publish its rates, so we pick values with the
publicly known *relative* properties:

- SSD capacity costs roughly an order of magnitude more per byte than
  HDD capacity;
- HDD cost is dominated by I/O pressure (TCIO) for I/O-dense jobs and by
  capacity for cold data;
- SSD cost is dominated by capacity and wearout (P/E-cycle consumption);
- network cost is device-independent and included only so other
  components are not overestimated (Section 3).

The absolute scale cancels out of every reported metric (savings are
percentages of the all-HDD TCO).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import GIB, TIB


@dataclass(frozen=True)
class CostRates:
    """Conversion rates of the TCO model.

    Attributes
    ----------
    hdd_byte_rate:
        Cost of storing one byte on HDD for one second.
    ssd_byte_rate:
        Cost of storing one byte on SSD for one second.
    network_rate:
        Cost per byte transmitted (device-independent).
    hdd_server_rate:
        Cost per (TCIO x second): one unit of sustained HDD I/O pressure
        for one second, server component.
    hdd_device_rate:
        Same unit as ``hdd_server_rate``; the HDD-device component.
    ssd_server_rate:
        Cost per byte transmitted from/to SSD (the paper observed SSD
        server cost correlates with bytes transmitted).
    ssd_wearout_rate:
        Cost per byte *written* to SSD, derived from the drive's total
        bytes written (TBW) rating.
    hdd_ops_per_second:
        Sustainable I/O operations per second of one standard HDD; the
        normalization constant defining TCIO = 1.0.
    dram_cache_hit_fraction:
        Fraction of read operations served by the DRAM cache that sits
        alongside the HDDs in each server; cached reads never reach the
        disks and contribute no TCIO.
    """

    hdd_byte_rate: float = 1.0 / (TIB * 30 * 86400)  # ~1 unit per TiB-month
    ssd_byte_rate: float = 8.0 / (TIB * 30 * 86400)
    network_rate: float = 0.02 / TIB
    hdd_server_rate: float = 3.0 / (30 * 86400)  # per HDD-equivalent-month
    hdd_device_rate: float = 1.5 / (30 * 86400)
    ssd_server_rate: float = 0.01 / TIB
    ssd_wearout_rate: float = 0.01 / TIB
    hdd_ops_per_second: float = 150.0
    dram_cache_hit_fraction: float = 0.55

    def __post_init__(self) -> None:
        for name in (
            "hdd_byte_rate",
            "ssd_byte_rate",
            "network_rate",
            "hdd_server_rate",
            "hdd_device_rate",
            "ssd_server_rate",
            "ssd_wearout_rate",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.hdd_ops_per_second <= 0:
            raise ValueError("hdd_ops_per_second must be > 0")
        if not 0.0 <= self.dram_cache_hit_fraction < 1.0:
            raise ValueError("dram_cache_hit_fraction must be in [0, 1)")


#: Default rates used throughout the experiments.
DEFAULT_RATES = CostRates()
