"""Category-model diagnostics: interpretability reports.

The paper argues small per-workload models are "cheaper and more
interpretable" (Section 2.3).  This module provides the reports an
operator would actually read before trusting a model with placement:

- the confusion matrix over importance categories,
- rank correlation between predicted and true importance (the quantity
  the adaptive threshold actually depends on),
- per-category admission quality at a given threshold (what fraction of
  jobs admitted at ``ACT=k`` truly belong at or above ``k``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.metrics import confusion_matrix
from ..workloads.features import FeatureMatrix
from ..workloads.job import Trace
from .category_model import CategoryModel

__all__ = ["ModelDiagnostics", "diagnose_model", "spearman_rank_correlation"]


def spearman_rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (midranks for ties), NaN-safe.

    Implemented directly (scipy.stats is avoided to keep the ML substrate
    self-contained and this usable on plain arrays).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("inputs must be aligned 1-D arrays")
    if a.size < 2:
        return float("nan")

    def midranks(x: np.ndarray) -> np.ndarray:
        order = np.argsort(x, kind="mergesort")
        ranks = np.empty(len(x))
        sx = x[order]
        i = 0
        while i < len(sx):
            j = i
            while j + 1 < len(sx) and sx[j + 1] == sx[i]:
                j += 1
            ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
            i = j + 1
        return ranks

    ra, rb = midranks(a), midranks(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra**2).sum() * (rb**2).sum())
    if denom == 0:
        return float("nan")
    return float((ra * rb).sum() / denom)


@dataclass(frozen=True)
class ModelDiagnostics:
    """Interpretability bundle for one fitted category model.

    Attributes
    ----------
    confusion:
        (N, N) matrix, rows = true category, columns = predicted.
    top1_accuracy, within_one_accuracy:
        Exact and off-by-one category agreement.
    rank_correlation:
        Spearman correlation between predicted and true categories —
        high rank correlation with modest top-1 accuracy is the regime
        the paper's Figure 11 explains (ranking is what matters).
    admission_precision:
        ``admission_precision[k]`` = among jobs with predicted category
        >= k, the fraction whose *true* category is >= k (k = 1..N-1).
    """

    confusion: np.ndarray
    top1_accuracy: float
    within_one_accuracy: float
    rank_correlation: float
    admission_precision: np.ndarray

    @property
    def n_categories(self) -> int:
        return self.confusion.shape[0]


def diagnose_model(
    model: CategoryModel, trace: Trace, features: FeatureMatrix
) -> ModelDiagnostics:
    """Compute the diagnostics bundle on an evaluation trace."""
    true = model.labels_for(trace)
    pred = model.predict(features)
    n = model.n_categories
    cm = confusion_matrix(true, pred, n)
    top1 = float((true == pred).mean()) if len(true) else float("nan")
    within1 = float((np.abs(true - pred) <= 1).mean()) if len(true) else float("nan")
    rho = spearman_rank_correlation(true, pred)

    precision = np.full(n, np.nan)
    for k in range(1, n):
        admitted = pred >= k
        if admitted.any():
            precision[k] = float((true[admitted] >= k).mean())
    return ModelDiagnostics(
        confusion=cm,
        top1_accuracy=top1,
        within_one_accuracy=within1,
        rank_correlation=rho,
        admission_precision=precision,
    )
