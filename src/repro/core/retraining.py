"""Rolling retraining: models evolve at the velocity of the workload.

Section 2.3's deployment argument is that BYOM lets each workload
retrain and ship its model on its own schedule instead of the storage
system's release cadence.  This module provides the mechanism: a
:class:`RollingTrainer` that periodically refits the category model on a
sliding window of recently *completed* jobs and swaps the predictions
used by the adaptive policy — all at the application layer, with the
storage-layer algorithm untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AdaptiveParams, ModelParams
from ..cost import CostRates, DEFAULT_RATES
from ..storage.policy import Decision, PlacementContext, PlacementPolicy
from ..workloads.features import FeatureMatrix
from ..workloads.job import Trace
from .adaptive import AdaptiveCategoryPolicy
from .category_model import CategoryModel

__all__ = ["RetrainEvent", "RollingTrainer", "RetrainingPolicy"]


@dataclass(frozen=True)
class RetrainEvent:
    """Bookkeeping for one model refresh."""

    time: float
    n_training_jobs: int
    top1_accuracy_online: float


class RollingTrainer:
    """Refits a category model on a sliding window of completed jobs.

    Parameters
    ----------
    window:
        Only jobs that *completed* within the last ``window`` seconds
        are used as training data (their outcomes are known).
    interval:
        Minimum time between refits.
    min_jobs:
        Skip a refresh when fewer than this many completed jobs exist.
    """

    def __init__(
        self,
        model_params: ModelParams | None = None,
        window: float = 7 * 86400.0,
        interval: float = 86400.0,
        min_jobs: int = 200,
        rates: CostRates = DEFAULT_RATES,
    ):
        if window <= 0 or interval <= 0:
            raise ValueError("window and interval must be > 0")
        self.model_params = model_params or ModelParams()
        self.window = window
        self.interval = interval
        self.min_jobs = min_jobs
        self.rates = rates
        self.model: CategoryModel | None = None
        self.events: list[RetrainEvent] = []
        self._last_fit = -np.inf

    def maybe_refit(
        self, t: float, trace: Trace, features: FeatureMatrix
    ) -> bool:
        """Refit if due; training data = jobs completed in the window.

        Returns True when a new model was installed.
        """
        if t < self._last_fit + self.interval:
            return False
        ends = trace.ends
        eligible = (ends <= t) & (ends > t - self.window)
        idx = np.flatnonzero(eligible)
        if idx.size < self.min_jobs:
            return False
        sub_trace = Trace([trace[i] for i in idx], name="rolling-window")
        sub_features = features.take(idx)
        model = CategoryModel(self.model_params, self.rates)
        model.fit(sub_trace, sub_features)
        acc = model.top1_accuracy(sub_trace, sub_features)
        self.model = model
        self._last_fit = t
        self.events.append(
            RetrainEvent(time=t, n_training_jobs=int(idx.size), top1_accuracy_online=acc)
        )
        return True


class RetrainingPolicy(PlacementPolicy):
    """Adaptive category selection with periodic in-situ retraining.

    Wraps :class:`AdaptiveCategoryPolicy` but refreshes the per-job
    category predictions whenever the rolling trainer installs a new
    model.  The combined trace (history + live) and its feature matrix
    must cover every simulated job.
    """

    name = "Adaptive Ranking (rolling)"

    def __init__(
        self,
        trainer: RollingTrainer,
        features: FeatureMatrix,
        adaptive_params: AdaptiveParams | None = None,
    ):
        self.trainer = trainer
        self.features = features
        self.adaptive_params = adaptive_params or AdaptiveParams()
        self._inner: AdaptiveCategoryPolicy | None = None
        self._trace: Trace | None = None
        self._capacity = 0.0
        self._rates = DEFAULT_RATES

    def on_simulation_start(self, trace: Trace, capacity: float, rates: CostRates) -> None:
        if len(trace) != len(self.features):
            raise ValueError("features must cover the simulated trace")
        self._trace = trace
        self._capacity = capacity
        self._rates = rates
        n_cat = self.trainer.model_params.n_categories
        if self.trainer.model is not None:
            categories = self.trainer.model.predict(self.features)
        else:
            # No model yet: everything mid-rank until the first refit.
            categories = np.full(len(trace), max(n_cat // 2, 1), dtype=int)
        self._inner = AdaptiveCategoryPolicy(
            categories, n_cat, self.adaptive_params, name=self.name
        )
        self._inner.on_simulation_start(trace, capacity, rates)

    def on_shard_topology(self, shards, lane_capacities) -> None:
        self._inner.on_shard_topology(shards, lane_capacities)

    def decide(self, job_index: int, ctx: PlacementContext) -> Decision:
        refit = self.trainer.maybe_refit(ctx.time, self._trace, self.features)
        if refit:
            # Swap predictions in place; adaptive state (ACT, history)
            # carries over — only the hints change.
            self._inner.categories = self.trainer.model.predict(self.features)
        return self._inner.decide(job_index, ctx)

    def observe(self, outcome) -> None:
        self._inner.observe(outcome)

    @property
    def trajectory(self):
        return self._inner.trajectory if self._inner else []
