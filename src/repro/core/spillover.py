"""Spillover-TCIO: the storage-layer utilization signal (Section 4.3).

SSD capacity varies across clusters and is hard to observe directly, so
the paper unifies utilization measurement through job behaviour: the
**spillover TCIO percentage** is the share of intended-SSD TCIO that
ended up on HDD because the SSD was full::

    P(X, t) = sum_i SPILLOVER_TCIO(x_i, t)
              ------------------------------------
              sum_i x_i.DEV * x_i.TCIO_HDD(t)

where ``SPILLOVER_TCIO(x, t) = frac_spilled * (t - ts)/(t - ta) *
TCIO_HDD(t)`` once spillover started at ``ts``.  A large value means
many jobs failed to land on SSD, i.e. the SSDs are nearly full.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ObservedJob", "spillover_tcio", "spillover_percentage"]


@dataclass(frozen=True)
class ObservedJob:
    """One entry of the adaptive algorithm's observation history ``Xh``.

    Attributes
    ----------
    arrival, end:
        Job interval endpoints.
    tcio_rate:
        The job's HDD TCIO rate (HDD-equivalents).
    scheduled_ssd:
        ``x.DEV``: whether the placement algorithm sent the job to SSD.
    spill_time:
        When spillover began, or ``None`` if fully placed.
    spilled_fraction:
        Fraction of the job's footprint that did not fit (0..1).
    """

    arrival: float
    end: float
    tcio_rate: float
    scheduled_ssd: bool
    spill_time: float | None
    spilled_fraction: float


def _tcio_hdd(job: ObservedJob, t: float) -> float:
    """Cumulative TCIO the job would have exerted on HDD by time ``t``."""
    elapsed = max(min(t, job.end) - job.arrival, 0.0)
    return job.tcio_rate * elapsed


def spillover_tcio(job: ObservedJob, t: float) -> float:
    """``SPILLOVER_TCIO(x, t)``: unrealized intended-SSD TCIO at ``t``."""
    if job.spill_time is None or not job.scheduled_ssd:
        return 0.0
    ts = job.spill_time
    if not (job.arrival <= ts <= t):
        return 0.0
    span = t - job.arrival
    if span <= 0:
        return 0.0
    weight = (t - ts) / span
    return job.spilled_fraction * weight * _tcio_hdd(job, t)


def spillover_percentage(history: list[ObservedJob], t: float) -> float:
    """``P_SPILLOVER_TCIO(X, t)`` over an observation history.

    Returns 0 when no TCIO was scheduled onto SSD (an empty or all-HDD
    window is indistinguishable from an idle SSD, so the algorithm reads
    it as "room available").
    """
    num = 0.0
    den = 0.0
    for job in history:
        if job.scheduled_ssd:
            den += _tcio_hdd(job, t)
            num += spillover_tcio(job, t)
    if den <= 0.0:
        return 0.0
    return num / den
