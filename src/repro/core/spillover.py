"""Spillover-TCIO: the storage-layer utilization signal (Section 4.3).

SSD capacity varies across clusters and is hard to observe directly, so
the paper unifies utilization measurement through job behaviour: the
**spillover TCIO percentage** is the share of intended-SSD TCIO that
ended up on HDD because the SSD was full::

    P(X, t) = sum_i SPILLOVER_TCIO(x_i, t)
              ------------------------------------
              sum_i x_i.DEV * x_i.TCIO_HDD(t)

where ``SPILLOVER_TCIO(x, t) = frac_spilled * (t - ts)/(t - ta) *
TCIO_HDD(t)`` once spillover started at ``ts``.  A large value means
many jobs failed to land on SSD, i.e. the SSDs are nearly full.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ObservedJob",
    "SpilloverWindow",
    "spillover_tcio",
    "spillover_percentage",
]


@dataclass(frozen=True)
class ObservedJob:
    """One entry of the adaptive algorithm's observation history ``Xh``.

    Attributes
    ----------
    arrival, end:
        Job interval endpoints.
    tcio_rate:
        The job's HDD TCIO rate (HDD-equivalents).
    scheduled_ssd:
        ``x.DEV``: whether the placement algorithm sent the job to SSD.
    spill_time:
        When spillover began, or ``None`` if fully placed.
    spilled_fraction:
        Fraction of the job's footprint that did not fit (0..1).
    """

    arrival: float
    end: float
    tcio_rate: float
    scheduled_ssd: bool
    spill_time: float | None
    spilled_fraction: float


def _tcio_hdd(job: ObservedJob, t: float) -> float:
    """Cumulative TCIO the job would have exerted on HDD by time ``t``."""
    elapsed = max(min(t, job.end) - job.arrival, 0.0)
    return job.tcio_rate * elapsed


def spillover_tcio(job: ObservedJob, t: float) -> float:
    """``SPILLOVER_TCIO(x, t)``: unrealized intended-SSD TCIO at ``t``."""
    if job.spill_time is None or not job.scheduled_ssd:
        return 0.0
    ts = job.spill_time
    if not (job.arrival <= ts <= t):
        return 0.0
    span = t - job.arrival
    if span <= 0:
        return 0.0
    weight = (t - ts) / span
    return job.spilled_fraction * weight * _tcio_hdd(job, t)


class SpilloverWindow:
    """Structure-of-arrays ring buffer over the observation history.

    The adaptive policy appends one entry per placed job (in arrival
    order) and periodically drops everything older than the look-back
    window.  A ``list[ObservedJob]`` makes that O(window) per update
    (the list is rebuilt) and O(window) Python-loop work per
    :func:`spillover_percentage` call.  This buffer keeps the live
    window as contiguous slices of preallocated NumPy arrays:

    - *append* writes one slot at the tail (amortized O(1); the backing
      store doubles when full, and eviction slack is recycled by
      compaction before each growth decision);
    - *evict* advances the head pointer with one ``searchsorted`` over
      the sorted arrival column;
    - *percentage* is a vectorized evaluation of the paper's
      ``P_SPILLOVER_TCIO`` formula over the live slice.

    Spill times are NaN-encoded (NaN = never spilled) so the whole
    structure stays numeric.
    """

    #: The six parallel column buffers grown/compacted together.
    _ARRAY_FIELDS = (
        "_arrival",
        "_end",
        "_tcio_rate",
        "_scheduled",
        "_spill_time",
        "_spilled_fraction",
    )

    __slots__ = _ARRAY_FIELDS + ("_head", "_tail")

    def __init__(self, capacity: int = 1024):
        capacity = max(int(capacity), 16)
        self._arrival = np.empty(capacity, dtype=float)
        self._end = np.empty(capacity, dtype=float)
        self._tcio_rate = np.empty(capacity, dtype=float)
        self._scheduled = np.empty(capacity, dtype=bool)
        self._spill_time = np.empty(capacity, dtype=float)
        self._spilled_fraction = np.empty(capacity, dtype=float)
        self._head = 0
        self._tail = 0

    def __len__(self) -> int:
        return self._tail - self._head

    def _ensure_room(self, extra: int) -> None:
        cap = self._arrival.shape[0]
        if self._tail + extra <= cap:
            return
        live = len(self)
        new_cap = cap
        while live + extra > new_cap:
            new_cap *= 2
        for name in self._ARRAY_FIELDS:
            buf = getattr(self, name)
            if new_cap == cap:
                # Enough dead space at the front: compact in place.
                buf[: live] = buf[self._head : self._tail]
            else:
                grown = np.empty(new_cap, dtype=buf.dtype)
                grown[:live] = buf[self._head : self._tail]
                setattr(self, name, grown)
        self._head, self._tail = 0, live

    def append(
        self,
        arrival: float,
        end: float,
        tcio_rate: float,
        scheduled_ssd: bool,
        spill_time: float | None,
        spilled_fraction: float,
    ) -> None:
        """Record one observed job (arrivals must be non-decreasing)."""
        self._ensure_room(1)
        i = self._tail
        self._arrival[i] = arrival
        self._end[i] = end
        self._tcio_rate[i] = tcio_rate
        self._scheduled[i] = scheduled_ssd
        self._spill_time[i] = np.nan if spill_time is None else spill_time
        self._spilled_fraction[i] = spilled_fraction
        self._tail = i + 1

    def extend(
        self,
        arrival: np.ndarray,
        end: np.ndarray,
        tcio_rate: np.ndarray,
        scheduled_ssd: np.ndarray,
        spill_time: np.ndarray,
        spilled_fraction: np.ndarray,
    ) -> None:
        """Bulk append (``spill_time`` NaN-encoded, arrivals sorted)."""
        k = len(arrival)
        if k == 0:
            return
        self._ensure_room(k)
        s = slice(self._tail, self._tail + k)
        self._arrival[s] = arrival
        self._end[s] = end
        self._tcio_rate[s] = tcio_rate
        self._scheduled[s] = scheduled_ssd
        self._spill_time[s] = spill_time
        self._spilled_fraction[s] = spilled_fraction
        self._tail += k

    def evict_older(self, window_start: float) -> None:
        """Drop entries with ``arrival <= window_start`` (O(log n))."""
        live = self._arrival[self._head : self._tail]
        self._head += int(np.searchsorted(live, window_start, side="right"))

    def percentage(self, t: float) -> float:
        """Vectorized ``P_SPILLOVER_TCIO`` over the live window.

        Matches :func:`spillover_percentage` on the equivalent
        ``ObservedJob`` list up to floating-point summation order.
        """
        h, tl = self._head, self._tail
        if h == tl:
            return 0.0
        sched = self._scheduled[h:tl]
        arrival = self._arrival[h:tl]
        elapsed = np.minimum(t, self._end[h:tl]) - arrival
        np.clip(elapsed, 0.0, None, out=elapsed)
        tcio_hdd = self._tcio_rate[h:tl] * elapsed
        den = float(tcio_hdd[sched].sum())
        if den <= 0.0:
            return 0.0
        ts = self._spill_time[h:tl]
        span = t - arrival
        with np.errstate(invalid="ignore", divide="ignore"):
            weight = (t - ts) / span
            valid = (
                sched
                & ~np.isnan(ts)
                & (arrival <= ts)
                & (ts <= t)
                & (span > 0)
            )
            num = float(
                np.where(valid, self._spilled_fraction[h:tl] * weight * tcio_hdd, 0.0).sum()
            )
        # num <= den holds exactly in real arithmetic; the two sums run
        # in different orders, so clamp the last-ulp excursions.
        return min(max(num / den, 0.0), 1.0)

    def to_jobs(self) -> list[ObservedJob]:
        """Materialize the live window as ``ObservedJob`` objects."""
        out = []
        for i in range(self._head, self._tail):
            st = self._spill_time[i]
            out.append(
                ObservedJob(
                    arrival=float(self._arrival[i]),
                    end=float(self._end[i]),
                    tcio_rate=float(self._tcio_rate[i]),
                    scheduled_ssd=bool(self._scheduled[i]),
                    spill_time=None if np.isnan(st) else float(st),
                    spilled_fraction=float(self._spilled_fraction[i]),
                )
            )
        return out


def spillover_percentage(history: list[ObservedJob], t: float) -> float:
    """``P_SPILLOVER_TCIO(X, t)`` over an observation history.

    Returns 0 when no TCIO was scheduled onto SSD (an empty or all-HDD
    window is indistinguishable from an idle SSD, so the algorithm reads
    it as "room available").
    """
    num = 0.0
    den = 0.0
    for job in history:
        if job.scheduled_ssd:
            den += _tcio_hdd(job, t)
            num += spillover_tcio(job, t)
    if den <= 0.0:
        return 0.0
    return num / den
