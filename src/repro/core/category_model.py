"""The application-layer category model (Sections 4.1-4.2).

A per-cluster gradient-boosted-trees classifier that maps Table-2
features to importance categories.  Workloads "bring" this model: it is
small, interpretable, trained at the application layer on the
workload's own history, and its categorical prediction is the only
thing crossing into the storage layer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..config import ModelParams
from ..cost import CostRates, DEFAULT_RATES
from ..ml.gbdt import GBTClassifier
from ..ml.metrics import accuracy
from ..workloads.features import FeatureMatrix
from ..workloads.job import Trace
from .labels import CategoryLabeler

__all__ = ["CategoryModel", "InferenceTiming"]


@dataclass(frozen=True)
class InferenceTiming:
    """Per-job inference latency measurements (Figure 9a)."""

    per_job_seconds: np.ndarray

    @property
    def cumulative_seconds(self) -> np.ndarray:
        return np.cumsum(self.per_job_seconds)

    @property
    def mean_seconds(self) -> float:
        return float(self.per_job_seconds.mean()) if self.per_job_seconds.size else 0.0


class CategoryModel:
    """Labeler + GBT classifier bundle for one cluster (or workload).

    Parameters
    ----------
    params:
        Category count and GBT hyper-parameters (paper default: 15
        classes, depth 6).
    rates:
        Cost model used to derive training labels.
    """

    def __init__(self, params: ModelParams | None = None, rates: CostRates = DEFAULT_RATES):
        self.params = params or ModelParams()
        self.rates = rates
        self.labeler = CategoryLabeler(self.params.n_categories)
        self.model = GBTClassifier(
            n_rounds=self.params.n_rounds,
            max_depth=self.params.max_depth,
            learning_rate=self.params.learning_rate,
            min_samples_leaf=self.params.min_samples_leaf,
            l2_reg=self.params.l2_reg,
            n_bins=self.params.n_bins,
        )
        self._fitted = False

    @property
    def n_categories(self) -> int:
        return self.params.n_categories

    def labels_for(self, trace: Trace) -> np.ndarray:
        """Ground-truth categories of a trace under the fitted labeler."""
        savings = trace.costs(self.rates).savings
        density = trace.io_density(self.rates)
        return self.labeler.transform(savings, density)

    def fit(self, trace: Trace, features: FeatureMatrix) -> "CategoryModel":
        """Fit the labeler on the training trace, then the classifier."""
        if len(trace) != len(features):
            raise ValueError("trace and features must align")
        if len(trace) == 0:
            raise ValueError("cannot fit on an empty trace")
        savings = trace.costs(self.rates).savings
        density = trace.io_density(self.rates)
        labels = self.labeler.fit_transform(savings, density)
        self.model.fit(features.X, labels)
        self._fitted = True
        return self

    def predict(self, features: FeatureMatrix) -> np.ndarray:
        """Predicted importance category per job."""
        if not self._fitted:
            raise RuntimeError("model not fitted")
        return self.model.predict(features.X).astype(int)

    def predict_timed(self, features: FeatureMatrix) -> tuple[np.ndarray, InferenceTiming]:
        """Predict one job at a time, recording per-job latency.

        Mirrors the paper's online setting where each job process runs
        its own inference before opening files for writing (Figure 9a).
        """
        if not self._fitted:
            raise RuntimeError("model not fitted")
        n = len(features)
        out = np.zeros(n, dtype=int)
        latency = np.zeros(n)
        for i in range(n):
            start = time.perf_counter()
            out[i] = int(self.model.predict(features.X[i : i + 1])[0])
            latency[i] = time.perf_counter() - start
        return out, InferenceTiming(per_job_seconds=latency)

    def top1_accuracy(self, trace: Trace, features: FeatureMatrix) -> float:
        """Top-1 accuracy against ground-truth categories (Figure 9b)."""
        return accuracy(self.labels_for(trace), self.predict(features))
