"""Adaptive Category Selection (Algorithm 1 of the paper).

The storage-layer half of the cross-layer design: given each job's
predicted importance category, slide an **admission category threshold
(ACT)** based on the observed spillover-TCIO percentage over a look-back
window.  High spillover -> SSDs nearly full -> raise ACT (admit only the
most important categories); low spillover -> lower ACT (broaden the
admission set with less important but still cost-saving jobs).  A job is
placed on SSD iff ``category >= ACT``; category 0 (negative savings) is
never admitted since ACT >= 1.

Two smoothing mechanisms limit threshold churn (Section 4.3): a
tolerance band ``[T_l, T_u]`` inside which ACT is unchanged, and a
minimum decision interval ``t_l`` between updates.

Sharded deployments (Section 2.4's caching servers) may opt into
**per-shard ACT** (``per_shard_act=True``): one threshold per caching
server, each driven lane-wise by the per-shard admission/spill counters
the policy already ingests through its feedback channel — Algorithm 1
applied per lane, with each lane's spill *rate* over the last decision
interval standing in for the global spillover-TCIO percentage.  Under
heterogeneous capacity layouts this lets a starved 0.5x server raise
its threshold while an oversized 2x server keeps admitting broadly,
where a single global threshold must average the two regimes.

Note on the paper's pseudocode: Algorithm 1 prints the clamp directions
swapped (``ACT = max(N-1, ACT+1)`` on *low* spillover).  The prose is
unambiguous — "if P falls below the range lower bound, we decrease the
threshold by 1; if P exceeds the upper bound, we increase the ACT by 1"
— so we implement ``low: ACT = max(1, ACT-1)``, ``high: ACT = min(N-1,
ACT+1)`` (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AdaptiveParams
from ..cost import CostRates
from ..storage.policy import (
    BatchDecision,
    BatchOutcomes,
    Decision,
    PlacementContext,
    PlacementOutcome,
    PlacementPolicy,
)
from ..workloads.job import Trace
from .spillover import SpilloverWindow

__all__ = ["ThresholdEvent", "AdaptiveCategoryPolicy"]


@dataclass(frozen=True)
class ThresholdEvent:
    """One ACT update, recorded for the Figure-16 dynamics plots.

    ``shard`` identifies the caching server whose lane threshold moved
    in per-shard-ACT runs; -1 marks a global-threshold update.
    """

    time: float
    act: int
    spillover: float
    shard: int = -1


class AdaptiveCategoryPolicy(PlacementPolicy):
    """Algorithm 1: threshold adaptation over predicted categories.

    Parameters
    ----------
    categories:
        Predicted importance category per job of the simulated trace
        (from the category model, a hash, or ground truth).
    n_categories:
        ``N``; ACT stays within ``[1, N-1]``.
    params:
        Tolerance band, look-back window and decision interval.
    name:
        Report label ("Adaptive Ranking" / "Adaptive Hash" / ...).
    per_shard_act:
        Maintain one threshold per caching server instead of one global
        ACT.  Lane thresholds live in :attr:`act_lanes` (sized from the
        runtime's shard topology) and move lane-wise on each decision
        interval, driven by the per-shard counter deltas; the global
        spillover window is still maintained for diagnostics.  In an
        unsharded run (one lane, or before the topology is known) the
        flag is inert and the policy runs the paper's global
        spillover-TCIO algorithm unchanged.
    """

    def __init__(
        self,
        categories: np.ndarray,
        n_categories: int,
        params: AdaptiveParams | None = None,
        name: str = "Adaptive Ranking",
        per_shard_act: bool = False,
    ):
        self.categories = np.asarray(categories, dtype=int)
        if self.categories.min(initial=0) < 0 or self.categories.max(initial=0) >= n_categories:
            raise ValueError("categories out of range [0, n_categories)")
        self.n_categories = n_categories
        self.params = params or AdaptiveParams()
        self.name = name
        self.per_shard_act = per_shard_act
        self._trace: Trace | None = None
        self._tcio: np.ndarray | None = None
        self.act = min(max(self.params.initial_act, 1), n_categories - 1)
        self._td = -np.inf
        self._window = SpilloverWindow()
        self.trajectory: list[ThresholdEvent] = []
        self.shard_ssd_requested = np.zeros(1, dtype=np.int64)
        self.shard_spills = np.zeros(1, dtype=np.int64)
        self._shards: np.ndarray | None = None
        self.act_lanes: np.ndarray | None = None
        self._req_mark: np.ndarray | None = None
        self._spill_mark: np.ndarray | None = None
        # Category decision table (steady-state admission as a boolean
        # gather); None until first use, rebuilt on every threshold
        # mutation.  The *_key fields remember the threshold state the
        # table was built from so a stale table can never be served.
        self._admit_table: np.ndarray | None = None
        self._table_act: int | None = None
        self._table_lanes: np.ndarray | None = None
        # The single-job fast paths replicate ``decide``/``observe``
        # without their per-call objects; a subclass overriding either
        # method must keep going through it.
        cls = type(self)
        self._decide_fast = cls.decide is AdaptiveCategoryPolicy.decide
        self._observe_fast = cls.observe is AdaptiveCategoryPolicy.observe

    def on_simulation_start(self, trace: Trace, capacity: float, rates: CostRates) -> None:
        if len(trace) != len(self.categories):
            raise ValueError(
                f"categories cover {len(self.categories)} jobs, trace has {len(trace)}"
            )
        self._trace = trace
        self._tcio = trace.tcio(rates)
        self.act = min(max(self.params.initial_act, 1), self.n_categories - 1)
        self._td = -np.inf
        self._window = SpilloverWindow()
        self.trajectory = []
        self.shard_ssd_requested = np.zeros(1, dtype=np.int64)
        self.shard_spills = np.zeros(1, dtype=np.int64)
        self._shards = None
        self.act_lanes = None
        self._req_mark = None
        self._spill_mark = None
        self._rebuild_admit_table()

    def on_shard_topology(
        self, shards: np.ndarray | None, lane_capacities: np.ndarray
    ) -> None:
        """Receive the run's lane layout from the placement runtime.

        Counters are pre-sized to the lane count so scalar and batch
        feedback can never disagree on their shape; per-shard-ACT runs
        additionally seed one threshold per lane at the initial ACT.

        The runtime may call this again mid-run after a capacity shock
        (:meth:`repro.serve.PlacementService.apply_shock`): lane
        thresholds and their counter marks are then *preserved* — the
        per-shard signal keeps adapting from where it was, reacting to
        the new layout through its spill rates rather than restarting
        cold.  Re-seeding only happens on the first call of a run (or
        if the lane count itself changed), anchored at the current
        counter values.
        """
        n_lanes = len(lane_capacities)
        self._grow_shard_counters(n_lanes)
        self._shards = shards
        # With one lane there is nothing per-shard about the threshold:
        # keep the paper's global spillover-TCIO algorithm rather than
        # silently switching an unsharded run to the counter-rate rule.
        if self.per_shard_act and n_lanes > 1:
            if self.act_lanes is None or self.act_lanes.size != n_lanes:
                self.act_lanes = np.full(n_lanes, self.act, dtype=int)
                self._req_mark = self.shard_ssd_requested[:n_lanes].copy()
                self._spill_mark = self.shard_spills[:n_lanes].copy()
        # Every (re-)fire rebuilds the decision table, even when lane
        # thresholds were preserved: a shock may have changed the lane
        # count or routing, and the rebuild is O(lanes x categories).
        self._rebuild_admit_table()

    @property
    def history(self):
        """The live observation window as ``ObservedJob`` objects."""
        return self._window.to_jobs()

    def _update_threshold(self, t: float) -> None:
        p = self.params
        # Keep only jobs *starting* within the look-back window — using
        # jobs overlapping the window lets long-lived jobs dominate the
        # estimate (Section 4.3's design note).
        self._window.evict_older(t - p.lookback_window)
        if self.act_lanes is not None:
            self._update_lane_thresholds(t)
            self._td = t
            return
        h = self._window.percentage(t)
        if h < p.spillover_low:
            self.act = max(1, self.act - 1)
        elif h > p.spillover_high:
            self.act = min(self.n_categories - 1, self.act + 1)
        self._td = t
        self.trajectory.append(ThresholdEvent(time=t, act=self.act, spillover=h))
        self._rebuild_admit_table()

    def _update_lane_thresholds(self, t: float) -> None:
        """Algorithm 1 applied lane-wise from the per-shard counters.

        Each lane's spill rate since the previous update — spills over
        admissions, both already maintained per caching server by the
        feedback path — plays the role of the spillover percentage: a
        lane above the tolerance band raises its own ACT, a lane below
        it (including an idle lane) lowers it.  Counter deltas make the
        two engines exactly equivalent: at update time both have folded
        in precisely the outcomes of all earlier jobs.
        """
        p = self.params
        n = self.act_lanes.size
        req_d = self.shard_ssd_requested[:n] - self._req_mark
        spill_d = self.shard_spills[:n] - self._spill_mark
        rate = np.divide(
            spill_d.astype(float), req_d, out=np.zeros(n), where=req_d > 0
        )
        step = (rate > p.spillover_high).astype(int) - (rate < p.spillover_low).astype(int)
        self.act_lanes = np.clip(self.act_lanes + step, 1, self.n_categories - 1)
        self._req_mark = self.shard_ssd_requested[:n].copy()
        self._spill_mark = self.shard_spills[:n].copy()
        for lane in range(n):
            self.trajectory.append(
                ThresholdEvent(
                    time=t,
                    act=int(self.act_lanes[lane]),
                    spillover=float(rate[lane]),
                    shard=lane,
                )
            )
        self._rebuild_admit_table()

    def _rebuild_admit_table(self) -> None:
        """Rebuild the per-category admission lookup table.

        Steady-state admission is ``category >= ACT`` — a pure function
        of the category (and, per-shard, the lane) between threshold
        updates — so it is precomputed into a boolean table and served
        as a gather instead of a comparison per job.  The table is
        rebuilt at every mutation of the threshold state: simulation
        start, every :class:`ThresholdEvent`, and every
        ``on_shard_topology`` (re-)fire.  As a backstop,
        :meth:`_admit_table_current` re-checks the table's sources
        (threshold value, lane-vector identity) before every use, so
        even an out-of-band threshold mutation cannot serve a stale
        table.
        """
        cat_range = np.arange(self.n_categories)
        if self.act_lanes is not None:
            self._admit_table = cat_range[None, :] >= self.act_lanes[:, None]
        else:
            self._admit_table = cat_range >= self.act
        self._table_act = self.act
        self._table_lanes = self.act_lanes

    def _admit_table_current(self) -> np.ndarray:
        """The admission table, rebuilt if its sources moved under it."""
        if (
            self._admit_table is None
            or self._table_act != self.act
            or self._table_lanes is not self.act_lanes
        ):
            self._rebuild_admit_table()
        return self._admit_table

    def _lane_of(self, job_index: int) -> int:
        return int(self._shards[job_index]) if self._shards is not None else 0

    def decide(self, job_index: int, ctx: PlacementContext) -> Decision:
        t = ctx.time
        if t >= self._td + self.params.decision_interval:
            self._update_threshold(t)
        table = self._admit_table_current()
        if self.act_lanes is not None:
            want = table[self._lane_of(job_index), self.categories[job_index]]
        else:
            want = table[self.categories[job_index]]
        return Decision(want_ssd=bool(want))

    def decide_one(
        self, job_index: int, time: float, free_ssd: float, capacity: float
    ) -> tuple[bool, float | None]:
        """Single-request decision via the table gather — no context or
        decision objects, same arithmetic as :meth:`decide`."""
        if not self._decide_fast:
            return super().decide_one(job_index, time, free_ssd, capacity)
        if time >= self._td + self.params.decision_interval:
            self._update_threshold(time)
        table = self._admit_table_current()
        if self.act_lanes is not None:
            want = table[self._lane_of(job_index), self.categories[job_index]]
        else:
            want = table[self.categories[job_index]]
        return bool(want), None

    def decide_batch(self, first: int, ctx: PlacementContext) -> BatchDecision:
        """Admission mask for every job up to the next ACT update.

        Between updates the rule ``category >= ACT`` is constant, so the
        chunk covers all jobs arriving strictly before ``td + t_l`` —
        exactly the jobs whose per-job ``decide`` would not have
        triggered an update.
        """
        t = ctx.time
        if t >= self._td + self.params.decision_interval:
            self._update_threshold(t)
        arrivals = self._trace.arrivals
        deadline = self._td + self.params.decision_interval
        stop = int(np.searchsorted(arrivals, deadline, side="left"))
        stop = min(max(stop, first + 1), len(arrivals))
        cats = self.categories[first:stop]
        table = self._admit_table_current()
        if self.act_lanes is not None:
            if self._shards is None:
                mask = table[0].take(cats)
            else:
                mask = table[self._shards[first:stop], cats]
        else:
            mask = table.take(cats)
        return BatchDecision(count=stop - first, want_ssd=mask)

    def _grow_shard_counters(self, n_shards: int) -> None:
        if n_shards > self.shard_spills.size:
            pad = n_shards - self.shard_spills.size
            self.shard_ssd_requested = np.pad(self.shard_ssd_requested, (0, pad))
            self.shard_spills = np.pad(self.shard_spills, (0, pad))

    def observe(self, outcome: PlacementOutcome) -> None:
        i = outcome.job_index
        self._grow_shard_counters(outcome.shard + 1)
        if outcome.requested_ssd:
            self.shard_ssd_requested[outcome.shard] += 1
            if outcome.spill_time is not None:
                self.shard_spills[outcome.shard] += 1
        self._window.append(
            arrival=float(self._trace.arrivals[i]),
            end=float(self._trace.ends[i]),
            tcio_rate=float(self._tcio[i]),
            scheduled_ssd=outcome.requested_ssd,
            spill_time=outcome.spill_time,
            spilled_fraction=1.0 - outcome.ssd_space_fraction
            if outcome.requested_ssd
            else 0.0,
        )

    def observe_one(
        self,
        job_index: int,
        time: float,
        requested_ssd: bool,
        ssd_space_fraction: float,
        spill_time: float | None,
        shard: int = 0,
    ) -> None:
        """Single-outcome feedback without the outcome object — the
        same counter and window updates as :meth:`observe`."""
        if not self._observe_fast:
            super().observe_one(
                job_index, time, requested_ssd, ssd_space_fraction,
                spill_time, shard,
            )
            return
        self._grow_shard_counters(shard + 1)
        if requested_ssd:
            self.shard_ssd_requested[shard] += 1
            if spill_time is not None:
                self.shard_spills[shard] += 1
        # ``ends`` is elementwise ``arrivals + durations`` on every
        # trace type, so the scalar sum is bit-identical and avoids
        # materializing the whole ends column per request (a live
        # JobLog does not cache it).
        arrival = float(self._trace.arrivals[job_index])
        self._window.append(
            arrival,
            arrival + float(self._trace.durations[job_index]),
            float(self._tcio[job_index]),
            requested_ssd,
            spill_time,
            1.0 - ssd_space_fraction if requested_ssd else 0.0,
        )

    def observe_batch(self, outcomes: BatchOutcomes) -> None:
        """Vectorized ingest of one chunk into the ring buffer.

        Sharded runs additionally maintain per-caching-server admission
        and spill counters (``shard_ssd_requested`` / ``shard_spills``)
        — the diagnostic surface for the fragmentation ablation and, in
        per-shard-ACT mode, the lane-wise adaptive signal.  With the
        default global threshold the adaptive signal stays fleet-wide:
        the paper's spillover-TCIO percentage aggregates behaviour
        across the whole fleet.
        """
        first = outcomes.first
        k = len(outcomes)
        sched = np.asarray(outcomes.requested_ssd, dtype=bool)
        shards = (
            np.zeros(k, dtype=np.intp) if outcomes.shards is None else outcomes.shards
        )
        if k:
            self._grow_shard_counters(int(shards.max()) + 1)
            self.shard_ssd_requested += np.bincount(
                shards[sched], minlength=self.shard_ssd_requested.size
            )
            spilled = sched & ~np.isnan(outcomes.spill_time)
            self.shard_spills += np.bincount(
                shards[spilled], minlength=self.shard_spills.size
            )
        self._window.extend(
            arrival=self._trace.arrivals[first : first + k],
            end=self._trace.ends[first : first + k],
            tcio_rate=self._tcio[first : first + k],
            scheduled_ssd=sched,
            spill_time=outcomes.spill_time,
            spilled_fraction=np.where(sched, 1.0 - outcomes.ssd_space_fraction, 0.0),
        )
