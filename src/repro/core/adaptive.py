"""Adaptive Category Selection (Algorithm 1 of the paper).

The storage-layer half of the cross-layer design: given each job's
predicted importance category, slide an **admission category threshold
(ACT)** based on the observed spillover-TCIO percentage over a look-back
window.  High spillover -> SSDs nearly full -> raise ACT (admit only the
most important categories); low spillover -> lower ACT (broaden the
admission set with less important but still cost-saving jobs).  A job is
placed on SSD iff ``category >= ACT``; category 0 (negative savings) is
never admitted since ACT >= 1.

Two smoothing mechanisms limit threshold churn (Section 4.3): a
tolerance band ``[T_l, T_u]`` inside which ACT is unchanged, and a
minimum decision interval ``t_l`` between updates.

Note on the paper's pseudocode: Algorithm 1 prints the clamp directions
swapped (``ACT = max(N-1, ACT+1)`` on *low* spillover).  The prose is
unambiguous — "if P falls below the range lower bound, we decrease the
threshold by 1; if P exceeds the upper bound, we increase the ACT by 1"
— so we implement ``low: ACT = max(1, ACT-1)``, ``high: ACT = min(N-1,
ACT+1)`` (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AdaptiveParams
from ..cost import CostRates
from ..storage.policy import Decision, PlacementContext, PlacementOutcome, PlacementPolicy
from ..workloads.job import Trace
from .spillover import ObservedJob, spillover_percentage

__all__ = ["ThresholdEvent", "AdaptiveCategoryPolicy"]


@dataclass(frozen=True)
class ThresholdEvent:
    """One ACT update, recorded for the Figure-16 dynamics plots."""

    time: float
    act: int
    spillover: float


class AdaptiveCategoryPolicy(PlacementPolicy):
    """Algorithm 1: threshold adaptation over predicted categories.

    Parameters
    ----------
    categories:
        Predicted importance category per job of the simulated trace
        (from the category model, a hash, or ground truth).
    n_categories:
        ``N``; ACT stays within ``[1, N-1]``.
    params:
        Tolerance band, look-back window and decision interval.
    name:
        Report label ("Adaptive Ranking" / "Adaptive Hash" / ...).
    """

    def __init__(
        self,
        categories: np.ndarray,
        n_categories: int,
        params: AdaptiveParams | None = None,
        name: str = "Adaptive Ranking",
    ):
        self.categories = np.asarray(categories, dtype=int)
        if self.categories.min(initial=0) < 0 or self.categories.max(initial=0) >= n_categories:
            raise ValueError("categories out of range [0, n_categories)")
        self.n_categories = n_categories
        self.params = params or AdaptiveParams()
        self.name = name
        self._trace: Trace | None = None
        self._tcio: np.ndarray | None = None
        self.act = min(max(self.params.initial_act, 1), n_categories - 1)
        self._td = -np.inf
        self._history: list[ObservedJob] = []
        self.trajectory: list[ThresholdEvent] = []

    def on_simulation_start(self, trace: Trace, capacity: float, rates: CostRates) -> None:
        if len(trace) != len(self.categories):
            raise ValueError(
                f"categories cover {len(self.categories)} jobs, trace has {len(trace)}"
            )
        self._trace = trace
        self._tcio = trace.tcio(rates)
        self.act = min(max(self.params.initial_act, 1), self.n_categories - 1)
        self._td = -np.inf
        self._history = []
        self.trajectory = []

    def _update_threshold(self, t: float) -> None:
        p = self.params
        # Keep only jobs *starting* within the look-back window — using
        # jobs overlapping the window lets long-lived jobs dominate the
        # estimate (Section 4.3's design note).
        ws = t - p.lookback_window
        self._history = [j for j in self._history if j.arrival > ws]
        h = spillover_percentage(self._history, t)
        if h < p.spillover_low:
            self.act = max(1, self.act - 1)
        elif h > p.spillover_high:
            self.act = min(self.n_categories - 1, self.act + 1)
        self._td = t
        self.trajectory.append(ThresholdEvent(time=t, act=self.act, spillover=h))

    def decide(self, job_index: int, ctx: PlacementContext) -> Decision:
        t = ctx.time
        if t >= self._td + self.params.decision_interval:
            self._update_threshold(t)
        return Decision(want_ssd=bool(self.categories[job_index] >= self.act))

    def observe(self, outcome: PlacementOutcome) -> None:
        i = outcome.job_index
        self._history.append(
            ObservedJob(
                arrival=float(self._trace.arrivals[i]),
                end=float(self._trace.ends[i]),
                tcio_rate=float(self._tcio[i]),
                scheduled_ssd=outcome.requested_ssd,
                spill_time=outcome.spill_time,
                spilled_fraction=1.0 - outcome.ssd_space_fraction
                if outcome.requested_ssd
                else 0.0,
            )
        )
