"""Adaptive Category Selection (Algorithm 1 of the paper).

The storage-layer half of the cross-layer design: given each job's
predicted importance category, slide an **admission category threshold
(ACT)** based on the observed spillover-TCIO percentage over a look-back
window.  High spillover -> SSDs nearly full -> raise ACT (admit only the
most important categories); low spillover -> lower ACT (broaden the
admission set with less important but still cost-saving jobs).  A job is
placed on SSD iff ``category >= ACT``; category 0 (negative savings) is
never admitted since ACT >= 1.

Two smoothing mechanisms limit threshold churn (Section 4.3): a
tolerance band ``[T_l, T_u]`` inside which ACT is unchanged, and a
minimum decision interval ``t_l`` between updates.

Note on the paper's pseudocode: Algorithm 1 prints the clamp directions
swapped (``ACT = max(N-1, ACT+1)`` on *low* spillover).  The prose is
unambiguous — "if P falls below the range lower bound, we decrease the
threshold by 1; if P exceeds the upper bound, we increase the ACT by 1"
— so we implement ``low: ACT = max(1, ACT-1)``, ``high: ACT = min(N-1,
ACT+1)`` (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AdaptiveParams
from ..cost import CostRates
from ..storage.policy import (
    BatchDecision,
    BatchOutcomes,
    Decision,
    PlacementContext,
    PlacementOutcome,
    PlacementPolicy,
)
from ..workloads.job import Trace
from .spillover import SpilloverWindow

__all__ = ["ThresholdEvent", "AdaptiveCategoryPolicy"]


@dataclass(frozen=True)
class ThresholdEvent:
    """One ACT update, recorded for the Figure-16 dynamics plots."""

    time: float
    act: int
    spillover: float


class AdaptiveCategoryPolicy(PlacementPolicy):
    """Algorithm 1: threshold adaptation over predicted categories.

    Parameters
    ----------
    categories:
        Predicted importance category per job of the simulated trace
        (from the category model, a hash, or ground truth).
    n_categories:
        ``N``; ACT stays within ``[1, N-1]``.
    params:
        Tolerance band, look-back window and decision interval.
    name:
        Report label ("Adaptive Ranking" / "Adaptive Hash" / ...).
    """

    def __init__(
        self,
        categories: np.ndarray,
        n_categories: int,
        params: AdaptiveParams | None = None,
        name: str = "Adaptive Ranking",
    ):
        self.categories = np.asarray(categories, dtype=int)
        if self.categories.min(initial=0) < 0 or self.categories.max(initial=0) >= n_categories:
            raise ValueError("categories out of range [0, n_categories)")
        self.n_categories = n_categories
        self.params = params or AdaptiveParams()
        self.name = name
        self._trace: Trace | None = None
        self._tcio: np.ndarray | None = None
        self.act = min(max(self.params.initial_act, 1), n_categories - 1)
        self._td = -np.inf
        self._window = SpilloverWindow()
        self.trajectory: list[ThresholdEvent] = []
        self.shard_ssd_requested = np.zeros(1, dtype=np.int64)
        self.shard_spills = np.zeros(1, dtype=np.int64)

    def on_simulation_start(self, trace: Trace, capacity: float, rates: CostRates) -> None:
        if len(trace) != len(self.categories):
            raise ValueError(
                f"categories cover {len(self.categories)} jobs, trace has {len(trace)}"
            )
        self._trace = trace
        self._tcio = trace.tcio(rates)
        self.act = min(max(self.params.initial_act, 1), self.n_categories - 1)
        self._td = -np.inf
        self._window = SpilloverWindow()
        self.trajectory = []
        self.shard_ssd_requested = np.zeros(1, dtype=np.int64)
        self.shard_spills = np.zeros(1, dtype=np.int64)

    @property
    def history(self):
        """The live observation window as ``ObservedJob`` objects."""
        return self._window.to_jobs()

    def _update_threshold(self, t: float) -> None:
        p = self.params
        # Keep only jobs *starting* within the look-back window — using
        # jobs overlapping the window lets long-lived jobs dominate the
        # estimate (Section 4.3's design note).
        self._window.evict_older(t - p.lookback_window)
        h = self._window.percentage(t)
        if h < p.spillover_low:
            self.act = max(1, self.act - 1)
        elif h > p.spillover_high:
            self.act = min(self.n_categories - 1, self.act + 1)
        self._td = t
        self.trajectory.append(ThresholdEvent(time=t, act=self.act, spillover=h))

    def decide(self, job_index: int, ctx: PlacementContext) -> Decision:
        t = ctx.time
        if t >= self._td + self.params.decision_interval:
            self._update_threshold(t)
        return Decision(want_ssd=bool(self.categories[job_index] >= self.act))

    def decide_batch(self, first: int, ctx: PlacementContext) -> BatchDecision:
        """Admission mask for every job up to the next ACT update.

        Between updates the rule ``category >= ACT`` is constant, so the
        chunk covers all jobs arriving strictly before ``td + t_l`` —
        exactly the jobs whose per-job ``decide`` would not have
        triggered an update.
        """
        t = ctx.time
        if t >= self._td + self.params.decision_interval:
            self._update_threshold(t)
        arrivals = self._trace.arrivals
        deadline = self._td + self.params.decision_interval
        stop = int(np.searchsorted(arrivals, deadline, side="left"))
        stop = min(max(stop, first + 1), len(arrivals))
        return BatchDecision(
            count=stop - first, want_ssd=self.categories[first:stop] >= self.act
        )

    def _grow_shard_counters(self, n_shards: int) -> None:
        if n_shards > self.shard_spills.size:
            pad = n_shards - self.shard_spills.size
            self.shard_ssd_requested = np.pad(self.shard_ssd_requested, (0, pad))
            self.shard_spills = np.pad(self.shard_spills, (0, pad))

    def observe(self, outcome: PlacementOutcome) -> None:
        i = outcome.job_index
        self._grow_shard_counters(outcome.shard + 1)
        if outcome.requested_ssd:
            self.shard_ssd_requested[outcome.shard] += 1
            if outcome.spill_time is not None:
                self.shard_spills[outcome.shard] += 1
        self._window.append(
            arrival=float(self._trace.arrivals[i]),
            end=float(self._trace.ends[i]),
            tcio_rate=float(self._tcio[i]),
            scheduled_ssd=outcome.requested_ssd,
            spill_time=outcome.spill_time,
            spilled_fraction=1.0 - outcome.ssd_space_fraction
            if outcome.requested_ssd
            else 0.0,
        )

    def observe_batch(self, outcomes: BatchOutcomes) -> None:
        """Vectorized ingest of one chunk into the ring buffer.

        Sharded runs additionally maintain per-caching-server admission
        and spill counters (``shard_ssd_requested`` / ``shard_spills``)
        — the diagnostic surface for the fragmentation ablation.  The
        adaptive signal itself stays global: the paper's spillover-TCIO
        percentage aggregates behaviour across the whole fleet.
        """
        first = outcomes.first
        k = len(outcomes)
        sched = np.asarray(outcomes.requested_ssd, dtype=bool)
        shards = (
            np.zeros(k, dtype=np.intp) if outcomes.shards is None else outcomes.shards
        )
        if k:
            self._grow_shard_counters(int(shards.max()) + 1)
            self.shard_ssd_requested += np.bincount(
                shards[sched], minlength=self.shard_ssd_requested.size
            )
            spilled = sched & ~np.isnan(outcomes.spill_time)
            self.shard_spills += np.bincount(
                shards[spilled], minlength=self.shard_spills.size
            )
        self._window.extend(
            arrival=self._trace.arrivals[first : first + k],
            end=self._trace.ends[first : first + k],
            tcio_rate=self._tcio[first : first + k],
            scheduled_ssd=sched,
            spill_time=outcomes.spill_time,
            spilled_fraction=np.where(sched, 1.0 - outcomes.ssd_space_fraction, 0.0),
        )
