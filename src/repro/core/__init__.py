"""BYOM core: category labels, category model, adaptive selection.

The paper's primary contribution — the cross-layer "bring your own
model" design (Section 4).
"""

from .adaptive import AdaptiveCategoryPolicy, ThresholdEvent
from .category_model import CategoryModel, InferenceTiming
from .diagnostics import ModelDiagnostics, diagnose_model, spearman_rank_correlation
from .hashing import hash_categories
from .labels import CategoryLabeler
from .pipeline import ByomPipeline, PreparedCluster, prepare_cluster
from .retraining import RetrainEvent, RetrainingPolicy, RollingTrainer
from .spillover import ObservedJob, SpilloverWindow, spillover_percentage, spillover_tcio

__all__ = [
    "CategoryLabeler",
    "CategoryModel",
    "InferenceTiming",
    "ObservedJob",
    "SpilloverWindow",
    "spillover_tcio",
    "spillover_percentage",
    "AdaptiveCategoryPolicy",
    "ThresholdEvent",
    "hash_categories",
    "ByomPipeline",
    "PreparedCluster",
    "prepare_cluster",
    "RollingTrainer",
    "RetrainingPolicy",
    "RetrainEvent",
    "ModelDiagnostics",
    "diagnose_model",
    "spearman_rank_correlation",
]
