"""Adaptive Hash: the non-ML ablation of the BYOM design (Section 5.1).

Identical storage-layer algorithm, but the "category" of a job is a
stable hash of its pipeline identity instead of a learned importance
rank.  The hash spreads workloads uniformly over categories 1..N-1, so
the adaptive threshold still modulates *how much* is admitted — but
which jobs get priority is arbitrary.  The gap between Adaptive Ranking
and Adaptive Hash isolates the value of the ML model (Figure 7).
"""

from __future__ import annotations

import numpy as np

from ..workloads.job import Trace
from ..workloads.metadata import stable_hash

__all__ = ["hash_categories"]


def hash_categories(trace: Trace, n_categories: int, seed: int = 0) -> np.ndarray:
    """Assign category ``1 + hash(pipeline) % (N-1)`` per job.

    Category 0 is never produced: the hash variant has no notion of
    negative-savings jobs, so everything is at least potentially
    admissible.
    """
    if n_categories < 2:
        raise ValueError("need >= 2 categories")
    return np.array(
        [1 + stable_hash(p, seed=seed) % (n_categories - 1) for p in trace.pipelines],
        dtype=int,
    )
