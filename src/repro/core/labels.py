"""Importance-category label design (Section 4.2 of the paper).

The category model is a *categorical pointwise ranking* model: instead
of regressing TCO savings or I/O density (hard to predict precisely),
jobs are grouped into N importance-ranking classes:

- category 0: jobs with **negative TCO savings** — placing them on SSD
  costs money, so they rank lowest regardless of density;
- categories 1..N-1: equal-mass quantile buckets of **I/O density**
  among non-negative-savings jobs, highest density = category N-1.

Quantile edges are fitted on the training week and frozen, so the same
labeler produces ground-truth categories for the test week (used by the
"True category" comparison, Figure 11).
"""

from __future__ import annotations

import numpy as np

__all__ = ["CategoryLabeler"]


class CategoryLabeler:
    """Maps (TCO savings, I/O density) to importance categories."""

    def __init__(self, n_categories: int = 15):
        if n_categories < 2:
            raise ValueError("need >= 2 categories")
        self.n_categories = n_categories
        self.density_edges_: np.ndarray | None = None

    def fit(self, savings: np.ndarray, io_density: np.ndarray) -> "CategoryLabeler":
        """Fit density quantile edges on the positive-savings jobs.

        The paper chooses categories "so that they evenly divide the
        training set by I/O density" because linear or logarithmic
        spacing produces heavily imbalanced classes.
        """
        savings = np.asarray(savings, dtype=float)
        io_density = np.asarray(io_density, dtype=float)
        if savings.shape != io_density.shape:
            raise ValueError("savings and io_density must align")
        positive = io_density[savings >= 0]
        n_pos_cats = self.n_categories - 1
        if positive.size == 0:
            # Degenerate trace: every job loses money on SSD.  All
            # positive-savings categories collapse onto one edge.
            self.density_edges_ = np.zeros(n_pos_cats - 1)
            return self
        qs = np.linspace(0.0, 1.0, n_pos_cats + 1)[1:-1]
        self.density_edges_ = np.quantile(positive, qs)
        return self

    def transform(self, savings: np.ndarray, io_density: np.ndarray) -> np.ndarray:
        """Assign categories; 0 for negative savings, else density rank."""
        if self.density_edges_ is None:
            raise RuntimeError("labeler not fitted")
        savings = np.asarray(savings, dtype=float)
        io_density = np.asarray(io_density, dtype=float)
        if savings.shape != io_density.shape:
            raise ValueError("savings and io_density must align")
        rank = np.searchsorted(self.density_edges_, io_density, side="right")
        labels = 1 + rank  # 1..N-1
        labels = np.where(savings < 0, 0, labels)
        return labels.astype(int)

    def fit_transform(self, savings: np.ndarray, io_density: np.ndarray) -> np.ndarray:
        return self.fit(savings, io_density).transform(savings, io_density)
