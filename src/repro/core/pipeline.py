"""End-to-end BYOM pipeline: offline training + online deployment.

Ties the cross-layer pieces together the way Figure 3 (right) shows:
analyse the production workload offline, train the category model,
then deploy — each job queries its model at the application layer and
the storage layer runs adaptive category selection over the hints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AdaptiveParams, ModelParams, SimConfig
from ..cost import CostRates, DEFAULT_RATES
from ..storage.sharded import simulate_sharded
from ..storage.simulator import SimResult, simulate
from ..workloads.features import FeatureMatrix, extract_features
from ..workloads.job import Trace
from ..workloads.streaming import TraceSource, materialize_trace
from ..workloads.traces import week_split
from .adaptive import AdaptiveCategoryPolicy
from .category_model import CategoryModel

__all__ = ["ByomPipeline", "PreparedCluster", "prepare_cluster"]


@dataclass(frozen=True)
class PreparedCluster:
    """A two-week cluster trace with aligned features and split indices.

    Features are extracted once over the full trace (so test-week jobs
    see training-week pipeline history, as in production) and sliced.
    """

    full: Trace
    train: Trace
    test: Trace
    features_train: FeatureMatrix
    features_test: FeatureMatrix
    peak_ssd_usage: float


def prepare_cluster(trace: Trace, rates: CostRates = DEFAULT_RATES) -> PreparedCluster:
    """Split a two-week trace into train/test weeks with features."""
    features = extract_features(trace, rates)
    train, train_idx, test, test_idx = week_split(trace)
    return PreparedCluster(
        full=trace,
        train=train,
        test=test,
        features_train=features.take(train_idx),
        features_test=features.take(test_idx),
        peak_ssd_usage=test.peak_ssd_usage(),
    )


class ByomPipeline:
    """Train a category model offline, deploy Adaptive Ranking online."""

    def __init__(
        self,
        model_params: ModelParams | None = None,
        adaptive_params: AdaptiveParams | None = None,
        rates: CostRates = DEFAULT_RATES,
    ):
        self.model_params = model_params or ModelParams()
        self.adaptive_params = adaptive_params or AdaptiveParams()
        self.rates = rates
        self.model = CategoryModel(self.model_params, rates)

    def train(self, train_trace: Trace, features_train: FeatureMatrix) -> "ByomPipeline":
        """Offline phase: fit the per-cluster category model."""
        self.model.fit(train_trace, features_train)
        return self

    def make_policy(
        self,
        test_trace: Trace,
        features_test: FeatureMatrix,
        name: str = "Adaptive Ranking",
        per_shard_act: bool = False,
    ) -> AdaptiveCategoryPolicy:
        """Build the online policy from model predictions for a trace."""
        categories = self.model.predict(features_test)
        return AdaptiveCategoryPolicy(
            categories=categories,
            n_categories=self.model_params.n_categories,
            params=self.adaptive_params,
            name=name,
            per_shard_act=per_shard_act,
        )

    def deploy(
        self,
        test_trace: "Trace | TraceSource | str",
        features_test: FeatureMatrix,
        quota_fraction: float,
        peak_usage: float | None = None,
        engine: str = "auto",
        n_shards: int = 1,
        shard_weights: "np.ndarray | None" = None,
        per_shard_act: bool = False,
    ) -> SimResult:
        """Online phase: simulate placement at an SSD quota fraction.

        Parameters
        ----------
        test_trace:
            The deployment week: an in-memory
            :class:`~repro.workloads.job.Trace`, a streaming
            :class:`~repro.workloads.streaming.TraceSource`, or a
            ``.csv``/``.npz`` path — streamed inputs are drained into
            columns without materializing per-job objects and produce
            bit-identical results.  ``features_test`` must be aligned
            with the trace's job order (for a source, row ``i`` of the
            feature matrix describes the ``i``-th streamed job — e.g.
            features extracted before the trace was serialized)::

                pipe.deploy(stream_csv_trace("week2.csv"),
                            features_week2, quota_fraction=0.05)
        features_test:
            Per-job feature matrix the category model predicts from.
        quota_fraction:
            SSD capacity as a fraction of ``peak_usage``.
        peak_usage:
            Quota denominator (the test week's infinite-SSD peak).
            Computed from the trace when omitted; pass it explicitly to
            avoid a second pass over very large streamed traces.
        engine:
            Simulator event loop: ``"auto"`` (chunked fast path
            whenever the policy implements ``decide_batch``),
            ``"chunked"``, or ``"legacy"``; see
            :func:`repro.storage.simulate`.
        n_shards:
            Deploy across that many caching servers (the production
            fragmentation regime of Section 2.4); 1 keeps the single
            global SSD pool.
        shard_weights:
            Relative per-server capacity slices, e.g. ``(2, 1, 0.5)``
            for a skewed fleet (normalized to the quota capacity);
            ``None`` splits evenly.
        per_shard_act:
            Switch the adaptive policy to one admission threshold per
            caching server (Algorithm 1 applied lane-wise) instead of
            the global ACT.
        """
        test_trace = materialize_trace(test_trace)
        cfg = SimConfig(ssd_quota_fraction=quota_fraction, adaptive=self.adaptive_params)
        peak = peak_usage if peak_usage is not None else test_trace.peak_ssd_usage()
        capacity = cfg.ssd_quota_fraction * peak
        policy = self.make_policy(test_trace, features_test, per_shard_act=per_shard_act)
        if shard_weights is not None:
            w = np.asarray(shard_weights, dtype=float)
            if w.size != n_shards:
                raise ValueError(
                    f"shard_weights has {w.size} entries for {n_shards} shards"
                )
            capacity = capacity * w / w.sum()
        if n_shards > 1:
            return simulate_sharded(
                test_trace, policy, capacity, n_shards, self.rates, engine=engine
            )
        return simulate(test_trace, policy, capacity, self.rates, engine=engine)

    def serve(
        self,
        quota_fraction: float,
        peak_usage: float,
        n_shards: int = 1,
        shard_weights: "np.ndarray | None" = None,
        per_shard_act: bool = False,
        mode: str = "batch",
        history: Trace | None = None,
        max_pending: int | None = None,
        n_workers: int = 1,
        transport: str = "inprocess",
        worker_dir: "str | None" = None,
    ):
        """Online phase, live: an opened
        :class:`~repro.serve.PlacementService` around this trained model.

        Where :meth:`deploy` replays a finished week, ``serve`` stands
        up the paper's production shape — jobs are submitted as they
        arrive, features are extracted and categories predicted on the
        admission path (:class:`~repro.serve.OnlineCategorizer` over
        the fitted GBT), and Algorithm 1 adapts thresholds from live
        feedback (:class:`~repro.serve.OnlineAdaptivePolicy`).

        Parameters mirror :meth:`deploy` where they overlap.
        ``peak_usage`` is required (there is no trace to measure);
        ``history`` optionally warm-starts the feature extractor's
        per-pipeline state from an observed trace, e.g. the training
        week, so early arrivals see the same history an offline
        combined-trace extraction would give them.  Submit with
        ``service.submit(job)`` / ``service.submit_jobs(batch)`` and
        take ``service.result()`` whenever a roll-up is needed.

        ``n_workers > 1`` stands up a :class:`~repro.serve.FleetRouter`
        instead — the same service surface scatter-gathered over a
        worker fleet (``transport`` picks in-process or forked
        children; ``worker_dir`` enables per-worker WAL/checkpoint
        failover).  Decisions are bit-identical for any worker count.
        """
        from ..serve import (
            FleetRouter,
            OnlineAdaptivePolicy,
            OnlineCategorizer,
            PlacementService,
        )

        policy = OnlineAdaptivePolicy(
            self.model_params.n_categories,
            self.adaptive_params,
            per_shard_act=per_shard_act,
        )
        categorizer = OnlineCategorizer(self.model, self.rates)
        if history is not None:
            categorizer.warm_start(history)
        capacity: "float | np.ndarray" = quota_fraction * peak_usage
        if shard_weights is not None:
            w = np.asarray(shard_weights, dtype=float)
            if w.size != n_shards:
                raise ValueError(
                    f"shard_weights has {w.size} entries for {n_shards} shards"
                )
            capacity = capacity * w / w.sum()
        if n_workers > 1:
            return FleetRouter(
                policy,
                capacity,
                n_shards,
                mode=mode,
                rates=self.rates,
                categorizer=categorizer,
                max_pending=max_pending,
                n_workers=n_workers,
                transport=transport,
                worker_dir=worker_dir,
            ).open()
        return PlacementService(
            policy,
            capacity,
            n_shards,
            mode=mode,
            rates=self.rates,
            categorizer=categorizer,
            max_pending=max_pending,
        ).open()

    def true_category_policy(
        self, test_trace: Trace, name: str = "True category", per_shard_act: bool = False
    ) -> AdaptiveCategoryPolicy:
        """Policy fed ground-truth categories (Figure 11's upper bound)."""
        categories = self.model.labels_for(test_trace)
        return AdaptiveCategoryPolicy(
            categories=categories,
            n_categories=self.model_params.n_categories,
            params=self.adaptive_params,
            name=name,
            per_shard_act=per_shard_act,
        )
