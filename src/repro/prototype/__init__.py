"""Test-deployment emulation for the prototype experiments."""

from .deployment import (
    PrototypeResult,
    PrototypeWorkload,
    application_runtime_savings,
    build_mixed_workload,
    build_prototype_workload,
    run_prototype,
)

__all__ = [
    "PrototypeWorkload",
    "PrototypeResult",
    "build_prototype_workload",
    "build_mixed_workload",
    "run_prototype",
    "application_runtime_savings",
]
