"""Test-deployment emulation (Sections 5.2 and Appendix C.1).

The paper's prototype runs a curated pipeline mix in a production
cluster with a dedicated SSD cache: 16 pipelines / 1024 shuffle jobs /
3.6 TiB peak for the framework-only study (Figure 5), and a 1:1
framework : non-framework mix at 3.8 TiB for the Appendix-C study
(Figures 13-14).  One category of pipelines is more cost-effective on
HDD, the other on SSD.

This module builds matching workloads from the archetype library,
replays them through the placement simulator for FirstFit and Adaptive
Ranking, and models application-level run time (Figure 14) as a
compute phase plus an I/O phase that accelerates on SSD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AdaptiveParams, ModelParams, rng_from
from ..cost import CostRates, DEFAULT_RATES
from ..baselines.firstfit import FirstFitPolicy
from ..core.pipeline import ByomPipeline, prepare_cluster
from ..storage.simulator import SimResult, simulate
from ..units import WEEK
from ..workloads.generator import ClusterSpec, generate_cluster_trace
from ..workloads.job import Trace

__all__ = [
    "PrototypeWorkload",
    "PrototypeResult",
    "build_prototype_workload",
    "build_mixed_workload",
    "run_prototype",
    "application_runtime_savings",
]

#: SSD accelerates a job's I/O phase by this factor in the run-time model.
SSD_IO_SPEEDUP = 2.5

#: Fraction of a job's wall time spent in I/O, by archetype orientation.
IO_TIME_FRACTION_SSD_SUITED = 0.45
IO_TIME_FRACTION_HDD_SUITED = 0.15


@dataclass(frozen=True)
class PrototypeWorkload:
    """A deployment-shaped trace with its framework/non-framework tags."""

    trace: Trace
    is_framework: np.ndarray  # bool per job

    def __post_init__(self) -> None:
        if len(self.trace) != len(self.is_framework):
            raise ValueError("tags must align with the trace")


@dataclass(frozen=True)
class PrototypeResult:
    """FirstFit vs Adaptive Ranking at one SSD quota."""

    quota_fraction: float
    firstfit: SimResult
    adaptive: SimResult

    @property
    def tco_improvement(self) -> float:
        """Adaptive-over-FirstFit TCO savings ratio (paper: 4.38x @ 1%)."""
        ff = self.firstfit.tco_savings_pct
        return self.adaptive.tco_savings_pct / ff if ff > 0 else float("inf")

    @property
    def tcio_improvement(self) -> float:
        ff = self.firstfit.tcio_savings_pct
        return self.adaptive.tcio_savings_pct / ff if ff > 0 else float("inf")


def build_prototype_workload(seed: int = 7) -> PrototypeWorkload:
    """The Figure-5 deployment: 16 framework pipelines, ~1024 jobs.

    Half of the pipelines are HDD-suited data processing workloads
    (few shuffles), half SSD-suited query workloads (heavy shuffles).
    """
    spec = ClusterSpec(
        name="prototype",
        archetype_weights={"logproc": 2, "mltrain": 1, "staging": 1,
                           "dbquery": 2, "streaming": 1, "reporting": 1},
        n_pipelines=16,
        n_users=4,
        seed=seed,
    )
    trace = generate_cluster_trace(spec, duration=2 * WEEK)
    return PrototypeWorkload(
        trace=trace, is_framework=np.ones(len(trace), dtype=bool)
    )


def build_mixed_workload(seed: int = 43) -> PrototypeWorkload:
    """The Appendix-C mix: framework + non-framework at ~1:1 footprint.

    4 HDD-suitable + 4 SSD-suitable framework pipelines, 10 + 10
    non-framework workloads (ML checkpointing and compress/upload).
    """
    framework = ClusterSpec(
        name="mixed-fw",
        archetype_weights={"logproc": 2, "mltrain": 2, "dbquery": 2, "reporting": 2},
        n_pipelines=8,
        n_users=4,
        seed=seed,
    )
    non_framework = ClusterSpec(
        name="mixed-nfw",
        archetype_weights={"mlcheckpoint": 1, "compressupload": 1},
        n_pipelines=20,
        n_users=6,
        seed=seed + 1,
    )
    fw_trace = generate_cluster_trace(framework, duration=2 * WEEK)
    nfw_trace = generate_cluster_trace(non_framework, duration=2 * WEEK)

    # Rescale non-framework sizes toward a 1:1 byte-footprint ratio.
    fw_bytes = float(fw_trace.sizes.sum())
    nfw_bytes = float(nfw_trace.sizes.sum())
    scale = fw_bytes / nfw_bytes if nfw_bytes > 0 else 1.0
    rescaled = [
        _scale_job(job, scale) for job in nfw_trace
    ]
    jobs = list(fw_trace.jobs) + rescaled
    # Re-number ids to keep them unique after the merge.
    jobs = [_with_id(j, i) for i, j in enumerate(sorted(jobs, key=lambda j: j.arrival))]
    trace = Trace(jobs, name="mixed")
    is_framework = np.array([j.cluster == "mixed-fw" for j in trace])
    return PrototypeWorkload(trace=trace, is_framework=is_framework)


def _scale_job(job, scale: float):
    from dataclasses import replace

    return replace(
        job,
        size=job.size * scale,
        read_bytes=job.read_bytes * scale,
        write_bytes=job.write_bytes * scale,
        read_ops=job.read_ops * scale,
    )


def _with_id(job, new_id: int):
    from dataclasses import replace

    return replace(job, job_id=new_id)


def run_prototype(
    workload: PrototypeWorkload,
    quota_fraction: float,
    rates: CostRates = DEFAULT_RATES,
    model_params: ModelParams | None = None,
    adaptive_params: AdaptiveParams | None = None,
) -> PrototypeResult:
    """Run FirstFit and Adaptive Ranking on a deployment workload.

    The first trace week trains the category model; the second is the
    measured deployment window, exactly as in the simulation studies.
    """
    cluster = prepare_cluster(workload.trace, rates)
    pipe = ByomPipeline(model_params, adaptive_params, rates)
    pipe.train(cluster.train, cluster.features_train)
    capacity = quota_fraction * cluster.peak_ssd_usage
    adaptive = pipe.deploy(
        cluster.test, cluster.features_test, quota_fraction, cluster.peak_ssd_usage
    )
    firstfit = simulate(cluster.test, FirstFitPolicy(), capacity, rates)
    return PrototypeResult(
        quota_fraction=quota_fraction, firstfit=firstfit, adaptive=adaptive
    )


def application_runtime_savings(
    trace: Trace,
    ssd_fraction: np.ndarray,
    seed: int | None = 0,
) -> np.ndarray:
    """Per-job run-time saving percentage under a placement outcome.

    Run time = compute phase + I/O phase; the I/O share depends on the
    workload's orientation and the SSD-resident share of its I/O runs
    ``SSD_IO_SPEEDUP`` times faster.  Savings are relative to all-HDD
    run time.  These savings are *opportunistic* (Section 3): jobs are
    written against HDD performance, so any improvement is a bonus and
    no job regresses.
    """
    if len(trace) != len(ssd_fraction):
        raise ValueError("ssd_fraction must align with the trace")
    rng = rng_from(seed)
    from ..workloads.archetypes import ARCHETYPES

    savings = np.zeros(len(trace))
    for i, job in enumerate(trace):
        suited = ARCHETYPES[job.archetype].ssd_suited
        io_frac = IO_TIME_FRACTION_SSD_SUITED if suited else IO_TIME_FRACTION_HDD_SUITED
        io_frac *= rng.uniform(0.8, 1.2)
        f = float(np.clip(ssd_fraction[i], 0.0, 1.0))
        # Fraction f of the I/O phase runs SSD_IO_SPEEDUP times faster.
        new_io = io_frac * (f / SSD_IO_SPEEDUP + (1.0 - f))
        savings[i] = 100.0 * (io_frac - new_io)
    return savings
