"""Deterministic alerting and SLO burn-rate accounting over the metrics.

The serving layer's metrics surface (:mod:`repro.serve.metrics`) pins
every counter to the same authoritative sources the end-of-run roll-up
is computed from.  This module builds the operator layer on top of it:

- :class:`AlertRule` — a threshold or rate-of-change condition over
  any counter, gauge, or histogram in a
  :class:`~repro.serve.metrics.MetricsRegistry`, with for-duration /
  clear-duration hysteresis.
- :class:`SloSpec` — a service-level objective: either a latency bound
  over an integer-bucket histogram (``kind="quantile"``: the fraction
  of observations above the bound must stay within ``1 - objective``)
  or a bad/total counter ratio (``kind="ratio"``: e.g. spill rate,
  degraded-job rate).  Both reduce each evaluation to an integer
  ``(bad, total)`` pair taken straight from bucket/counter values, so
  budget accounting is exact and merge-safe across the fleet — the
  folded per-worker registries produce the same pair one process
  would.  Burn rates come from deltas over two logical-time windows
  (fast/slow), the standard multi-window paging recipe.
- :class:`AlertManager` — evaluates rules and SLOs against the pinned
  registry on the service's metrics-sync cadence, runs the
  ``ok -> pending -> firing -> resolved`` state machine per condition,
  and appends one structured event per transition (optionally to a
  JSONL log).  Rules and SLOs load from JSON
  (:meth:`AlertManager.from_json`).

Determinism contract: evaluation is driven by the service's *logical*
clock (the last submitted arrival time), never wall time, and every
value a rule can observe is either a pinned counter/gauge or derived
from integer histogram buckets.  Feed the manager rules over the
deterministic surface (anything except the wall-clock gauges
``serve_uptime_seconds`` / ``serve_decisions_per_second`` and the
latency histograms' ``sum``), drive it at deterministic points, and
the full event stream is bit-identical across policy x engine x worker
count x transport, and continues exactly across WAL checkpoint
recovery — the manager's state rides the service snapshot, and
recovery replay never evaluates, so nothing double-fires.

The manager holds only plain data (dicts, lists, numbers, strings):
it deep-copies and pickles inside service snapshots like the registry
does.  The JSONL log is addressed by *path* — no file handle survives
in the state.
"""

from __future__ import annotations

import json
import operator
from bisect import bisect_right

__all__ = [
    "AlertRule",
    "SloSpec",
    "AlertManager",
    "load_alert_config",
]

_INF = float("inf")

# ``operator`` builtins, not lambdas: resolved once at rule
# construction (picklable, and one dict probe less per tick).
_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}


def _parse_metric(metric: str) -> tuple[str, dict | None]:
    """Split ``name{label="value",...}`` into (name, labels)."""
    if "{" not in metric:
        return metric, None
    name, _, rest = metric.partition("{")
    rest = rest.rstrip("}")
    labels = {}
    for part in rest.split(","):
        if not part:
            continue
        k, _, v = part.partition("=")
        labels[k.strip()] = v.strip().strip('"')
    return name, labels or None


class AlertRule:
    """One alert condition over a registry metric.

    Parameters
    ----------
    name:
        Rule identity; appears in every event.
    metric:
        Sample name, with an optional ``{label="value"}`` suffix
        (``serve_lane_occupancy_ratio{lane="0"}``).
    op / threshold:
        The breach condition ``value <op> threshold``; ``op`` is one of
        ``> >= < <= == !=``.
    kind:
        ``"threshold"`` compares the metric's current value;
        ``"rate"`` compares its rate of change per logical second
        between consecutive evaluations (the first evaluation primes
        the previous sample and cannot breach).
    for_duration:
        Logical seconds the condition must hold before ``pending``
        escalates to ``firing`` (0 fires on the first breaching tick).
    clear_duration:
        Logical seconds the condition must stay clear before a firing
        alert resolves.
    quantile:
        For histogram metrics: evaluate this quantile (``[0, 1]``, via
        :meth:`~repro.serve.metrics.Histogram.quantile`) instead of the
        observation count.
    description:
        Free-form operator annotation, carried into events.
    """

    __slots__ = (
        "name", "metric", "op", "threshold", "kind",
        "for_duration", "clear_duration", "quantile", "description",
        "_base", "_labels", "_op",
    )

    def __init__(
        self,
        name: str,
        metric: str,
        *,
        op: str = ">",
        threshold: float = 0.0,
        kind: str = "threshold",
        for_duration: float = 0.0,
        clear_duration: float = 0.0,
        quantile: float | None = None,
        description: str = "",
    ):
        if op not in _OPS:
            raise ValueError(f"unknown alert op {op!r}")
        if kind not in ("threshold", "rate"):
            raise ValueError(f"unknown alert kind {kind!r}")
        if for_duration < 0 or clear_duration < 0:
            raise ValueError("hysteresis durations must be >= 0")
        if quantile is not None and not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        self.name = name
        self.metric = metric
        self.op = op
        self.threshold = threshold
        self.kind = kind
        self.for_duration = for_duration
        self.clear_duration = clear_duration
        self.quantile = quantile
        self.description = description
        self._base, self._labels = _parse_metric(metric)
        self._op = _OPS[op]

    def value_of(self, m) -> float:
        """The rule's input value from an already-resolved metric."""
        if m.kind == "histogram":
            if self.quantile is not None:
                return m.quantile(self.quantile)
            return m.count
        return m.value

    def value_from(self, registry) -> float | None:
        """The rule's input value, or ``None`` when the metric is absent."""
        m = registry.get(self._base, self._labels)
        return None if m is None else self.value_of(m)

    def to_dict(self) -> dict:
        d = {
            "name": self.name, "metric": self.metric, "op": self.op,
            "threshold": self.threshold, "kind": self.kind,
        }
        if self.for_duration:
            d["for_duration"] = self.for_duration
        if self.clear_duration:
            d["clear_duration"] = self.clear_duration
        if self.quantile is not None:
            d["quantile"] = self.quantile
        if self.description:
            d["description"] = self.description
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "AlertRule":
        d = dict(d)
        name = d.pop("name")
        metric = d.pop("metric")
        return cls(name, metric, **d)


class SloSpec:
    """One service-level objective with multi-window burn-rate alerting.

    Two kinds, both reducing to an integer ``(bad, total)`` pair per
    evaluation:

    - ``kind="quantile"``: ``metric`` names a histogram; ``bad`` is the
      number of observations in buckets whose upper bound exceeds
      ``target`` (exact — buckets are integers), ``total`` the
      observation count.  The error budget is ``1 - objective`` (e.g.
      objective 0.99 allows 1% of observations above target).
    - ``kind="ratio"``: ``metric`` names the bad-event counter,
      ``denominator`` the total counter; ``budget`` is the allowed bad
      fraction.

    Burn rate over a window is ``(delta_bad / delta_total) / budget``:
    1.0 means the budget is being spent exactly at the sustainable
    pace; the manager raises the SLO's alert when *both* the fast and
    the slow window burn at or above ``burn_threshold`` (the standard
    multi-window rule: the fast window catches the onset, the slow
    window suppresses blips).  Windows are logical seconds.
    """

    __slots__ = (
        "name", "metric", "kind", "target", "objective", "denominator",
        "budget", "fast_window", "slow_window", "burn_threshold",
        "for_duration", "clear_duration", "description",
        "_base", "_labels", "_den_base", "_den_labels",
    )

    def __init__(
        self,
        name: str,
        metric: str,
        *,
        kind: str = "ratio",
        target: float | None = None,
        objective: float | None = None,
        denominator: str | None = None,
        budget: float | None = None,
        fast_window: float = 300.0,
        slow_window: float = 3600.0,
        burn_threshold: float = 1.0,
        for_duration: float = 0.0,
        clear_duration: float = 0.0,
        description: str = "",
    ):
        if kind not in ("quantile", "ratio"):
            raise ValueError(f"unknown SLO kind {kind!r}")
        if kind == "quantile":
            if target is None or objective is None:
                raise ValueError("quantile SLO needs target= and objective=")
            if not 0.0 < objective < 1.0:
                raise ValueError("objective must be in (0, 1)")
            budget = 1.0 - objective
        else:
            if denominator is None or budget is None:
                raise ValueError("ratio SLO needs denominator= and budget=")
        if budget <= 0:
            raise ValueError("error budget must be > 0")
        if fast_window <= 0 or slow_window <= 0:
            raise ValueError("burn windows must be > 0")
        self.name = name
        self.metric = metric
        self.kind = kind
        self.target = target
        self.objective = objective
        self.denominator = denominator
        self.budget = budget
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.burn_threshold = burn_threshold
        self.for_duration = for_duration
        self.clear_duration = clear_duration
        self.description = description
        self._base, self._labels = _parse_metric(metric)
        if denominator is not None:
            self._den_base, self._den_labels = _parse_metric(denominator)
        else:
            self._den_base = self._den_labels = None

    def sample_of(self, m, den) -> tuple[int, int]:
        """The ``(bad, total)`` pair from already-resolved metrics."""
        if self.kind == "quantile":
            if m.kind != "histogram":
                raise ValueError(
                    f"SLO {self.name!r}: {self.metric!r} is not a histogram"
                )
            k = bisect_right(m.edges, self.target)
            good = sum(m.counts[:k])
            return m.count - good, m.count
        return int(m.value), int(den.value)

    def sample(self, registry) -> tuple[int, int] | None:
        """The integer ``(bad, total)`` pair, or ``None`` if absent."""
        m = registry.get(self._base, self._labels)
        if m is None:
            return None
        den = None
        if self._den_base is not None:
            den = registry.get(self._den_base, self._den_labels)
            if den is None:
                return None
        return self.sample_of(m, den)

    def to_dict(self) -> dict:
        d = {"name": self.name, "metric": self.metric, "kind": self.kind}
        if self.kind == "quantile":
            d["target"] = self.target
            d["objective"] = self.objective
        else:
            d["denominator"] = self.denominator
            d["budget"] = self.budget
        d["fast_window"] = self.fast_window
        d["slow_window"] = self.slow_window
        if self.burn_threshold != 1.0:
            d["burn_threshold"] = self.burn_threshold
        if self.for_duration:
            d["for_duration"] = self.for_duration
        if self.clear_duration:
            d["clear_duration"] = self.clear_duration
        if self.description:
            d["description"] = self.description
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SloSpec":
        d = dict(d)
        name = d.pop("name")
        metric = d.pop("metric")
        return cls(name, metric, **d)


def _new_state() -> dict:
    return {"state": "ok", "since": None, "clear_since": None, "prev": None}


class AlertManager:
    """Evaluates rules and SLOs against a pinned registry.

    One :meth:`evaluate` call is one tick: the caller (the service's
    metrics-sync path) passes the registry *after* pinning plus the
    logical clock; the manager reads each condition's inputs, steps its
    state machine, and appends one event per transition to
    :attr:`events` (and, when ``log_path`` is set, one JSON line per
    event to that file).

    Event shape::

        {"seq": 7, "clock": 81234.5, "decided": 1800,
         "event": "firing", "rule": "capacity-drop",
         "value": -2.1e9, "threshold": 0.0}

    SLO events carry ``"slo"`` instead of ``"rule"`` plus the integer
    ``bad``/``total`` pair and both burn rates.  ``seq`` is the
    evaluation tick the event was emitted on; ticks with no transition
    emit nothing.

    Everything is plain data — the manager deep-copies and pickles
    inside service snapshots, which is what lets WAL recovery continue
    the event stream instead of resetting it.
    """

    # Resolved metric handles, keyed by rule/SLO object and valid only
    # for ``_pin_reg``; dropped from pickles and deep-copies (see
    # ``__getstate__``) and rebuilt on the first tick against a new
    # registry, so snapshots never freeze a handle to a dead metric.
    _pins = None
    _pin_reg = None

    def __init__(self, rules=(), slos=(), *, log_path=None):
        self.rules = list(rules)
        self.slos = list(slos)
        self.events: list[dict] = []
        self.seq = 0
        self.log_path = None if log_path is None else str(log_path)
        self._rule_state: dict = {}
        self._slo_state: dict = {}

    def __getstate__(self):
        d = self.__dict__.copy()
        d.pop("_pins", None)
        d.pop("_pin_reg", None)
        return d

    # -- configuration ---------------------------------------------------

    def add_rule(self, rule: AlertRule) -> None:
        self.rules.append(rule)

    def add_slo(self, slo: SloSpec) -> None:
        self.slos.append(slo)

    @classmethod
    def from_json(cls, path, *, log_path=None) -> "AlertManager":
        """Build a manager from a JSON config file.

        The file holds ``{"rules": [...], "slos": [...]}`` (either key
        optional) or a bare list, treated as rules.
        """
        rules, slos = load_alert_config(path)
        return cls(rules, slos, log_path=log_path)

    # -- evaluation ------------------------------------------------------

    def referenced(self) -> list:
        """Every ``(base_name, labels)`` pair the rules and SLOs read.

        Lets a metrics owner sync only what an evaluation tick will
        actually look at (see ``PlacementService.evaluate_alerts``);
        labels are the parsed dict or ``None``.
        """
        out = [(r._base, r._labels) for r in self.rules]
        for s in self.slos:
            out.append((s._base, s._labels))
            if s._den_base is not None:
                out.append((s._den_base, s._den_labels))
        return out

    def evaluate(self, registry, *, clock: float, decided: int = 0) -> list:
        """One evaluation tick; returns the events it emitted."""
        seq = self.seq
        self.seq = seq + 1
        pins = self._pins
        if pins is None or self._pin_reg is not registry:
            pins = self._pins = {}
            self._pin_reg = registry
        new: list[dict] = []
        for rule in self.rules:
            st = self._rule_state.get(rule.name)
            if st is None:
                st = self._rule_state[rule.name] = _new_state()
            m = pins.get(rule)
            if m is None:
                m = registry.get(rule._base, rule._labels)
                if m is None:
                    continue  # absent now, maybe registered later
                pins[rule] = m
            v = rule.value_of(m)
            if rule.kind == "rate":
                prev, st["prev"] = st["prev"], (clock, v)
                if prev is None:
                    continue
                dt = clock - prev[0]
                value = (v - prev[1]) / dt if dt > 0 else 0.0
            else:
                value = v
            breach = rule._op(value, rule.threshold)
            self._step(
                st, breach, clock,
                rule.for_duration, rule.clear_duration,
                new, seq, decided,
                {"rule": rule.name, "value": value,
                 "threshold": rule.threshold},
            )
        for slo in self.slos:
            st = self._slo_state.get(slo.name)
            if st is None:
                st = self._slo_state[slo.name] = _new_state()
                st["history"] = []
                st["status"] = None
            entry = pins.get(slo)
            if entry is None:
                m = registry.get(slo._base, slo._labels)
                if m is None:
                    continue
                den = None
                if slo._den_base is not None:
                    den = registry.get(slo._den_base, slo._den_labels)
                    if den is None:
                        continue
                entry = pins[slo] = (m, den)
            bad, total = slo.sample_of(*entry)
            hist = st["history"]
            hist.append((clock, bad, total))
            self._trim(hist, clock - slo.slow_window)
            fast = self._burn(hist, clock, slo.fast_window, slo.budget)
            slow = self._burn(hist, clock, slo.slow_window, slo.budget)
            status = st["status"]
            if status is None:
                st["status"] = {
                    "bad": bad, "total": total,
                    "fast_burn": fast, "slow_burn": slow,
                    "budget": slo.budget,
                }
            else:  # update in place: one less allocation per tick
                status["bad"] = bad
                status["total"] = total
                status["fast_burn"] = fast
                status["slow_burn"] = slow
            breach = fast >= slo.burn_threshold and slow >= slo.burn_threshold
            self._step(
                st, breach, clock,
                slo.for_duration, slo.clear_duration,
                new, seq, decided,
                {"slo": slo.name, "bad": bad, "total": total,
                 "fast_burn": fast, "slow_burn": slow,
                 "budget": slo.budget},
            )
        return new

    def _step(
        self, st, breach, clock, for_duration, clear_duration,
        new, seq, decided, extra,
    ) -> None:
        """Advance one condition's ok/pending/firing state machine."""
        if breach:
            st["clear_since"] = None
            if st["state"] == "ok":
                st["state"] = "pending"
                st["since"] = clock
                self._emit(new, seq, clock, decided, "pending", extra)
            if (
                st["state"] == "pending"
                and clock - st["since"] >= for_duration
            ):
                st["state"] = "firing"
                self._emit(new, seq, clock, decided, "firing", extra)
        elif st["state"] == "pending":
            # Breach cleared before it ever fired: silently back to ok.
            st["state"] = "ok"
            st["since"] = None
        elif st["state"] == "firing":
            if st["clear_since"] is None:
                st["clear_since"] = clock
            if clock - st["clear_since"] >= clear_duration:
                st["state"] = "ok"
                st["since"] = st["clear_since"] = None
                self._emit(new, seq, clock, decided, "resolved", extra)

    def _emit(self, new, seq, clock, decided, event, extra) -> None:
        ev = {"seq": seq, "clock": clock, "decided": decided,
              "event": event}
        ev.update(extra)
        self.events.append(ev)
        new.append(ev)
        if self.log_path is not None:
            with open(self.log_path, "a") as fh:
                fh.write(json.dumps(ev, default=float) + "\n")

    @staticmethod
    def _trim(hist, horizon: float) -> None:
        """Drop samples older than ``horizon``, keeping the boundary one.

        The newest sample at or before the horizon anchors the slow
        window's delta; everything older can never be referenced again.
        """
        # The probe tuple sorts after every real (clock, bad, total)
        # entry at the same clock, so the insertion point counts the
        # samples with clock <= horizon; keep the newest of them.
        i = bisect_right(hist, (horizon, _INF, _INF))
        if i > 1:
            del hist[:i - 1]

    @staticmethod
    def _burn(hist, clock: float, window: float, budget: float) -> float:
        """Budget burn rate over the trailing ``window`` logical seconds.

        Delta against the newest sample at or before ``clock - window``
        (or the oldest available when the history is still shorter than
        the window).  1.0 = spending the budget exactly at the
        sustainable pace.
        """
        now = hist[-1]
        i = bisect_right(hist, (clock - window, _INF, _INF))
        anchor = hist[i - 1] if i else hist[0]
        d_total = now[2] - anchor[2]
        if d_total <= 0:
            return 0.0
        d_bad = now[1] - anchor[1]
        return (d_bad / d_total) / budget

    # -- introspection ---------------------------------------------------

    def firing(self) -> list[str]:
        """Names of rules and SLOs currently in the ``firing`` state."""
        out = [
            n for n, st in self._rule_state.items() if st["state"] == "firing"
        ]
        out += [
            n for n, st in self._slo_state.items() if st["state"] == "firing"
        ]
        return sorted(out)

    def fired(self) -> list[str]:
        """Names that have *ever* fired (from the event stream)."""
        seen = []
        for ev in self.events:
            if ev["event"] == "firing":
                name = ev.get("rule") or ev.get("slo")
                if name not in seen:
                    seen.append(name)
        return sorted(seen)

    def slo_status(self) -> dict:
        """Last-evaluated budget accounting per SLO.

        ``{name: {"bad", "total", "fast_burn", "slow_burn", "budget",
        "state"}}``; an SLO that has never sampled maps to ``None``.
        """
        out = {}
        for slo in self.slos:
            st = self._slo_state.get(slo.name)
            if st is None or st["status"] is None:
                out[slo.name] = None
            else:
                out[slo.name] = dict(st["status"], state=st["state"])
        return out


def load_alert_config(path) -> tuple[list[AlertRule], list[SloSpec]]:
    """Parse a JSON rules/SLOs config file (see :meth:`AlertManager.from_json`)."""
    with open(path) as fh:
        doc = json.load(fh)
    if isinstance(doc, list):
        doc = {"rules": doc}
    rules = [AlertRule.from_dict(d) for d in doc.get("rules", ())]
    slos = [SloSpec.from_dict(d) for d in doc.get("slos", ())]
    return rules, slos
