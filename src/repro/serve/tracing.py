"""Deterministic per-request tracing for the serving layer.

One :class:`Tracer` per service records the path a sampled request
takes through the stack as a *span*: one record per job with an
ordered list of events —

    submit -> categorize -> admit -> place | spill -> complete

Every timestamp is **logical** (the job's arrival time, the decision
time, the completion event time), never wall clock, and sampling is a
pure hash of the job id — so the set of traced jobs and the contents
of every span are bit-identical across engine mode, worker count,
transport, and WAL recovery (recovery replays the same submissions
through the same paths, regenerating the post-checkpoint spans the
crash lost; the pre-checkpoint spans ride the snapshot).

The span store is a bounded ring: when ``capacity`` spans exist, the
oldest is overwritten (and counted in :attr:`Tracer.n_evicted`), so a
long-running service holds a recent window, not an unbounded log.

Hot-path cost: one integer hash per request on the scalar path; one
vectorized mask per chunk on the batch path (see
:func:`sample_mask`).  A ``None`` tracer costs a single attribute
check.

Fleet workers keep their own tiny op-level ring
(:class:`repro.serve.worker.PlacementWorker`), gathered by the router
through a non-mutating ``{"op": "spans"}`` transport op — worker op
spans are auxiliary telemetry (like ``worker_ops_total``): they are
not checkpointed and restart when a worker recovers.

Export is JSONL: one span per line (:meth:`Tracer.export_jsonl`).
"""

from __future__ import annotations

import json
import zlib

import numpy as np

__all__ = ["Tracer", "sample_hash", "sample_mask", "SAMPLE_MODULUS"]

#: Sampling hash space: job-id hashes are uniform in ``[0, 2**32)``.
SAMPLE_MODULUS = 2 ** 32

#: Knuth's multiplicative-hash constant (2**32 / golden ratio).
_PRIME = 2654435761


def sample_hash(job_id) -> int:
    """Deterministic hash of a job id into ``[0, SAMPLE_MODULUS)``.

    Integer ids take a multiplicative hash (vectorizable — see
    :func:`sample_mask`); anything else hashes its ``repr`` through
    crc32.  Stable across processes and Python runs (never ``hash()``,
    which is salted).
    """
    if type(job_id) is int:
        return (job_id * _PRIME) & 0xFFFFFFFF
    try:
        return (int(job_id) * _PRIME) & 0xFFFFFFFF
    except (TypeError, ValueError):
        return zlib.crc32(repr(job_id).encode())


def sample_mask(ids: np.ndarray, threshold: int) -> np.ndarray:
    """Vectorized :func:`sample_hash` ``< threshold`` over integer ids."""
    h = (ids.astype(np.uint64, copy=False) * _PRIME) & np.uint64(0xFFFFFFFF)
    return h < np.uint64(threshold)


class Tracer:
    """Bounded, deterministic span recorder.

    Parameters
    ----------
    sample:
        Fraction of jobs traced, by job-id hash (1.0 = every job).  The
        same job id always makes the same sampling decision, in every
        process.
    capacity:
        Maximum retained spans; the oldest is overwritten beyond that.

    Plain data throughout — deep-copies and pickles inside service
    snapshots, so WAL recovery continues the ring instead of resetting
    it.
    """

    def __init__(self, sample: float = 1.0, capacity: int = 4096):
        if not 0.0 <= sample <= 1.0:
            raise ValueError("sample must be in [0, 1]")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sample = float(sample)
        self.capacity = int(capacity)
        self.threshold = int(round(self.sample * SAMPLE_MODULUS))
        self.ring: list[dict] = []
        self.head = 0  # next overwrite position once the ring is full
        self.index: dict = {}  # job_id -> open span (still in the ring)
        self.n_spans = 0  # spans ever started
        self.n_evicted = 0  # spans overwritten by the ring bound

    # -- sampling --------------------------------------------------------

    def sampled(self, job_id) -> bool:
        return sample_hash(job_id) < self.threshold

    # -- recording -------------------------------------------------------

    def begin(self, job_id, t: float, **attrs) -> dict:
        """Open a span for ``job_id`` with its ``submit`` event."""
        return self.add({"job_id": job_id, "events": [["submit", float(t), attrs]]})

    def add(self, span: dict) -> dict:
        """Insert a fully built span (the batch recorder's fast path).

        ``span`` must carry ``job_id`` and ``events`` in the
        :meth:`begin` shape; the ring, index, and counters advance
        exactly as if it had been opened event by event.
        """
        ring = self.ring
        if len(ring) < self.capacity:
            ring.append(span)
        else:
            head = self.head
            old = ring[head]
            self.index.pop(old["job_id"], None)
            ring[head] = span
            self.head = (head + 1) % self.capacity
            self.n_evicted += 1
        self.index[span["job_id"]] = span
        self.n_spans += 1
        return span

    def event(self, job_id, name: str, t: float, **attrs) -> None:
        """Append an event to an open span (no-op if it was evicted)."""
        span = self.index.get(job_id)
        if span is not None:
            span["events"].append([name, float(t), attrs])

    # -- export ----------------------------------------------------------

    def spans(self) -> list[dict]:
        """Retained spans, oldest first."""
        return self.ring[self.head:] + self.ring[:self.head]

    def export_jsonl(self, path) -> int:
        """Write one JSON line per retained span; returns the count."""
        out = self.spans()
        with open(path, "w") as fh:
            for span in out:
                fh.write(json.dumps(span, default=_jsonable) + "\n")
        return len(out)


def _jsonable(v):
    """JSON fallback for numpy scalars riding in span attributes."""
    if isinstance(v, (np.bool_,)):
        return bool(v)
    if isinstance(v, np.integer):
        return int(v)
    return float(v)
