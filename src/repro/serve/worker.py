"""Fleet worker: one lane subset's admission kernel behind an op protocol.

A :class:`PlacementWorker` owns the kernel state for a subset of the
fleet's lanes — the same :class:`~repro.storage.engine.ChunkKernel` /
:class:`~repro.storage.engine.ScalarKernel` the single-process
:class:`~repro.serve.PlacementService` drives, constructed with the
global→local lane map and ``path_lanes`` set to the *fleet's* lane
count so every arithmetic-path choice matches the single-process run.
The worker holds no policy, no log, and no queue: those stay at the
:class:`~repro.serve.router.FleetRouter`, which is what keeps the
fleet's decision stream bit-identical to one process.

The protocol is op dicts in, reply dicts out (see :meth:`handle`), the
shape a :class:`~repro.serve.transport.WorkerTransport` carries.  Ops
that ship job columns carry plain numpy arrays (pickled natively over
a pipe) or lists (round-tripped through a JSON write-ahead log); the
worker normalizes either.  Lane ids on the wire are *local* indices —
the router translates from global ids when routing.

Every mutating op is deterministic given the worker's state, which is
what makes crash recovery a replay: the router logs each op to the
worker's WAL before dispatch, checkpoints the worker periodically
(versioned, schema-tagged payloads — see ``WORKER_SNAPSHOT_SCHEMA``),
and rebuilds a crashed worker as checkpoint + WAL suffix.
"""

from __future__ import annotations

import os
import pickle
import tempfile

import numpy as np

from .. import __version__
from ..storage.engine import ChunkKernel, ScalarKernel
from ..storage.policy import BatchDecision
from .metrics import SIZE_BUCKETS_JOBS, MetricsRegistry
from .types import WORKER_SNAPSHOT_SCHEMA, SnapshotMismatch

__all__ = ["PlacementWorker"]


def _arr(x, dtype=float) -> np.ndarray:
    return np.asarray(x, dtype=dtype)


class PlacementWorker:
    """One fleet worker: a lane-subset kernel plus its op dispatcher.

    Built from a *spec* dict (see :meth:`from_spec`) so the identical
    worker can be constructed in-process, in a forked child, or from a
    checkpoint payload during recovery:

    - ``worker_id`` — fleet position, for error attribution;
    - ``mode`` — ``"scalar"`` or ``"batch"`` (which kernel class);
    - ``lane_caps`` / ``lanes`` — the owned lanes' capacities and
      global ids;
    - ``path_lanes`` — the fleet's total lane count (keys every
      arithmetic-path choice, see :class:`~repro.storage.engine._LaneState`);
    - ``track_peak`` — only a single-worker fleet tracks the global
      peak locally; with more workers the router samples it;
    - ``total`` — the kernel's capacity scalar (the fleet total for a
      single-worker fleet, the subset sum otherwise);
    - ``compiled`` — use the numba chunk kernels.
    """

    def __init__(self, spec: dict):
        spec = dict(spec)
        spec["lane_caps"] = _arr(spec["lane_caps"])
        spec["lanes"] = _arr(spec["lanes"], dtype=np.intp)
        self.spec = spec
        self.worker_id = int(spec.get("worker_id", 0))
        self.mode = spec["mode"]
        if self.mode not in ("scalar", "batch"):
            raise ValueError(f"unknown worker mode {self.mode!r}")
        self.kernel = self._build_kernel(spec)
        self._init_metrics()

    #: Ops recorded in the worker's span ring — the data-plane ops that
    #: advance kernel state.  Control ops (metrics/spans/ping/state...)
    #: are excluded so observing a worker never grows its trace.
    _SPAN_OPS = frozenset(
        {"open", "chunk", "fit", "sync", "admit", "cancel", "resize"}
    )

    #: Bounded op-span ring length (see ``_op_spans``).
    SPAN_CAPACITY = 1024

    def _init_metrics(self) -> None:
        """Worker-local op metrics, gathered by the fleet router.

        Auxiliary transport telemetry (not part of the bit-exact
        contract): it lives outside the checkpoint payload, so a
        recovered worker's op counts restart at zero while the
        authoritative kernel counters replay to their exact values.
        The op-span ring follows the same rule: it is not checkpointed
        and restarts on recovery.
        """
        self.registry = MetricsRegistry()
        self._m_ops: dict = {}
        self._m_batch_jobs = self.registry.histogram(
            "worker_batch_jobs", buckets=SIZE_BUCKETS_JOBS,
            help="Jobs per admission op handled by a worker",
        )
        self._op_seq = 0  # data-plane ops handled since (re)start
        self._spans: list = []  # bounded ring of op spans
        self._span_head = 0

    def _count_op(self, kind: str) -> None:
        c = self._m_ops.get(kind)
        if c is None:
            c = self.registry.counter(
                "worker_ops_total", labels={"op": kind},
                help="Ops handled, by kind",
            )
            self._m_ops[kind] = c
        c.inc()

    @staticmethod
    def _build_kernel(spec: dict):
        lane_caps = spec["lane_caps"].copy()
        lanes = spec["lanes"]
        total = float(spec.get("total", lane_caps.sum()))
        track_peak = bool(spec.get("track_peak", False))
        if spec["mode"] == "scalar":
            return ScalarKernel(
                lane_caps, total, lanes=lanes, track_peak=track_peak
            )
        return ChunkKernel(
            lane_caps, total,
            compiled=bool(spec.get("compiled", False)),
            lanes=lanes,
            path_lanes=int(spec["path_lanes"]),
            track_peak=track_peak,
        )

    @classmethod
    def from_spec(cls, spec: dict) -> "PlacementWorker":
        return cls(spec)

    # -- op dispatch ----------------------------------------------------

    def handle(self, op: dict) -> dict:
        """Apply one op dict, return its reply dict.

        Every reply carries the worker's running counters (admission /
        spill / eviction totals and its peak sample), so the router's
        per-worker counter cache stays current without extra
        round-trips.
        """
        kind = op.get("op")
        handler = getattr(self, f"_op_{kind}", None)
        if handler is None:
            raise ValueError(f"unknown worker op {kind!r}")
        self._count_op(str(kind))
        if kind in self._SPAN_OPS:
            self._record_op_span(str(kind), op)
        return handler(op)

    def _record_op_span(self, kind: str, op: dict) -> None:
        """Append one op span to the bounded ring.

        Spans carry the op kind, a per-worker sequence number, the
        logical anchor the op supplied (``t0``/``t``/``catch``) and the
        job count — enough to reconstruct what the worker's kernel did,
        at a few dozen bytes per data-plane op.
        """
        t = op.get("t0", op.get("t", op.get("catch")))
        n = 1 if kind == "admit" else None
        for key in ("t", "size", "dur"):
            v = op.get(key)
            if hasattr(v, "size"):
                n = int(v.size)
                break
        span = {
            "worker": self.worker_id,
            "op": kind,
            "seq": self._op_seq,
            "t": None if t is None else float(t),
            "n": n,
        }
        self._op_seq += 1
        if len(self._spans) < self.SPAN_CAPACITY:
            self._spans.append(span)
        else:
            self._spans[self._span_head] = span
            self._span_head = (self._span_head + 1) % self.SPAN_CAPACITY

    def _counters(self) -> dict:
        c = self.kernel.counters()
        return {
            "n_ssd_requested": c["n_ssd_requested"],
            "n_spilled": c["n_spilled"],
            "n_evicted": c["n_evicted"],
            "evicted_bytes": c["evicted_bytes"],
            "n_scalar": c["scalar_fallback_jobs"],
            "peak": c["peak_used"],
        }

    # -- batch-mode ops -------------------------------------------------

    def _chunk_arrays(self, op: dict):
        t = _arr(op["t"])
        dur = _arr(op["dur"])
        size = _arr(op["size"])
        lane = _arr(op["lane"], dtype=np.intp)
        ttl = op.get("ttl")
        return t, dur, size, lane, None if ttl is None else _arr(ttl)

    def _op_chunk(self, op: dict) -> dict:
        """One mask-mode chunk restricted to this worker's candidates.

        ``t0`` / ``t_last`` are the *fleet-wide* chunk boundaries: the
        release cursor advances to ``t0`` first (exactly as the
        single-process ``open_chunk`` would) and ``t_last`` decides
        which releases are consumed in-chunk, so the worker's float
        sequence is the single-process one restricted to its lanes.
        """
        kern = self.kernel
        t, dur, size, lane, ttl = self._chunk_arrays(op)
        c = t.size
        self._m_batch_jobs.observe(c)
        kern.open_chunk(float(op["t0"]), 0)
        bd = BatchDecision(
            count=c, want_ssd=np.ones(c, dtype=bool), ssd_ttl=ttl,
            fit_check=False,
        )
        frac = np.zeros(c)
        alloc = np.zeros(c)
        rel = np.zeros(c)
        out = kern.run_chunk(
            bd, 0, c, t, dur, size,
            lane if kern.st.path_lanes > 1 else None,
            frac, alloc, rel, t_last=float(op["t_last"]),
        )
        return {
            "space": out.ssd_space_fraction,
            "spill": out.spill_time,
            "frac": frac,
            "alloc": alloc,
            "free": kern.free.copy(),
            **self._counters(),
        }

    def _op_fit(self, op: dict) -> dict:
        """One fit-check chunk over this worker's share of the jobs.

        Fit decisions depend only on the job's own lane, so each
        worker's per-job loop is the single-process loop restricted to
        its lanes; the router replays the returned ``requested`` mask
        against its full-lane ledger for the global bookkeeping.
        """
        kern = self.kernel
        t, dur, size, lane, ttl = self._chunk_arrays(op)
        c = t.size
        self._m_batch_jobs.observe(c)
        kern.open_chunk(float(op["t0"]), 0)
        bd = BatchDecision(count=c, want_ssd=None, ssd_ttl=ttl, fit_check=True)
        frac = np.zeros(c)
        out = kern.run_chunk(
            bd, 0, c, t, dur, size,
            lane if kern.st.path_lanes > 1 else None,
            frac, None, None, t_last=float(op["t_last"]),
        )
        return {
            "requested": out.requested_ssd,
            "free": kern.free.copy(),
            **self._counters(),
        }

    def _op_open(self, op: dict) -> dict:
        """Advance the release cursor to a chunk boundary (``t0``).

        The single-process kernel pops matured releases at every chunk
        open as one ``release_until`` call, and the pop granularity is
        part of the float association on single-lane pools (one
        pairwise ``np.sum`` per call).  The router mirrors every open
        boundary that actually pops entries on this worker's lanes, so
        the call sequence — and therefore every bit of ``free`` —
        matches the single-process run.
        """
        self.kernel.st.release_until(float(op["t0"]))
        return {"free": self.kernel.free.copy(), **self._counters()}

    def _op_sync(self, op: dict) -> dict:
        """Consume a chunk window this worker had no candidates in.

        The worker's lanes still had releases maturing inside the
        window; the single-process run consumed them through the
        clean-lane trajectory, so the catch-up must use
        ``consume_window_clean`` (sum-then-add association), not
        ``release_until``.
        """
        st = self.kernel.st
        st.release_until(float(op["t0"]))
        st.consume_window_clean(float(op["t_last"]))
        return {"free": self.kernel.free.copy(), **self._counters()}

    # -- scalar-mode ops ------------------------------------------------

    def _op_admit(self, op: dict) -> dict:
        kern = self.kernel
        t = float(op["t"])
        lane = int(op["lane"])
        self._m_batch_jobs.observe(1)
        kern.release_until(t)
        ttl = op.get("ttl")
        space_frac, frac, spill_time, alloc, release = kern.admit(
            int(op["i"]), t, float(op["size"]), float(op["dur"]), lane,
            True, None if ttl is None else float(ttl),
        )
        return {
            "res": (space_frac, frac, spill_time, alloc, release),
            "free": float(kern.free[lane]),
            **self._counters(),
        }

    # -- shared mutating ops --------------------------------------------

    def _catch_up(self, catch) -> None:
        """Advance the release cursor to the router's (``catch``).

        Cancel/resize ops apply relative to how far the single-process
        kernel's cursor had advanced — entries at or before it are
        popped (the single-process run popped them at earlier global
        admissions or at the chunk open), entries after it must stay
        pending (a scalar resize deliberately evicts matured-but-
        unpopped residents, warts reproduced faithfully).  Only entries
        the single-process run consumed through element-at-a-time pops
        can be lagging here, so ``release_until`` is the right
        association.
        """
        if catch is None:
            return
        t = float(catch)
        if self.mode == "scalar":
            self.kernel.release_until(t)
        else:
            self.kernel.st.release_until(t)

    def _op_cancel(self, op: dict) -> dict:
        kern = self.kernel
        self._catch_up(op.get("catch"))
        lane = int(op["lane"])
        if self.mode == "scalar":
            kern.cancel(int(op["i"]), lane, float(op["alloc"]))
        else:
            kern.cancel(lane, float(op["alloc"]), float(op["release"]))
        return {"free": float(kern.free[lane]), **self._counters()}

    def _op_resize(self, op: dict) -> dict:
        kern = self.kernel
        self._catch_up(op.get("catch"))
        lane = int(op["lane"])
        evicted = kern.resize_lane(lane, float(op["cap"]))
        return {
            "evicted": [tuple(e) for e in evicted],
            "free": float(kern.free[lane]),
            "capacity": float(kern.capacity),
            **self._counters(),
        }

    # -- checkpoint / recovery ------------------------------------------

    def payload(self, anchor: int = 0) -> dict:
        """Versioned snapshot payload: spec + kernel + WAL anchor."""
        return {
            "__schema__": WORKER_SNAPSHOT_SCHEMA,
            "__version__": __version__,
            "spec": self.spec,
            "kernel": self.kernel,
            "anchor": int(anchor),
        }

    def _op_state(self, op: dict) -> dict:
        """The live payload, for fleet snapshots.

        Over a pipe this pickles a point-in-time copy; in-process the
        caller receives live references and must deep-copy before
        mutating (the router's snapshot path does).
        """
        return {"payload": self.payload(int(op.get("anchor", 0)))}

    def _op_checkpoint(self, op: dict) -> dict:
        """Atomically pickle the payload to ``op["path"]``."""
        path = op["path"]
        payload = self.payload(int(op.get("anchor", 0)))
        d = os.path.dirname(os.path.abspath(path)) or "."
        fd, tmp = tempfile.mkstemp(dir=d, prefix=".worker-ckpt-")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return {"ok": 1, "anchor": int(op.get("anchor", 0)), **self._counters()}

    def install(self, payload: dict) -> None:
        """Adopt a checkpoint payload's kernel state (schema-checked)."""
        schema = payload.get("__schema__") if isinstance(payload, dict) else None
        if schema != WORKER_SNAPSHOT_SCHEMA:
            raise SnapshotMismatch(
                f"worker checkpoint schema {schema!r} does not match this "
                f"library's schema {WORKER_SNAPSHOT_SCHEMA} "
                f"(written by version {payload.get('__version__', '?') if isinstance(payload, dict) else '?'}, "
                f"this is {__version__})"
            )
        spec = dict(payload["spec"])
        spec["lane_caps"] = _arr(spec["lane_caps"])
        spec["lanes"] = _arr(spec["lanes"], dtype=np.intp)
        self.spec = spec
        self.worker_id = int(spec.get("worker_id", 0))
        self.mode = spec["mode"]
        self.kernel = payload["kernel"]
        # Op telemetry is not checkpointed; a restored worker starts over.
        self._init_metrics()

    @classmethod
    def from_payload(cls, payload: dict) -> "PlacementWorker":
        if not isinstance(payload, dict) or "__schema__" not in payload:
            raise SnapshotMismatch(
                "not a worker checkpoint payload (no schema tag)"
            )
        worker = cls.__new__(cls)
        worker.install(payload)
        return worker

    def _op_restore(self, op: dict) -> dict:
        self.install(op["payload"])
        return {"ok": 1, **self._counters()}

    # -- control ops ----------------------------------------------------

    def _op_counters(self, op: dict) -> dict:
        return self._counters()

    def _op_metrics(self, op: dict) -> dict:
        """The worker's partial metrics, for the router's fleet gather."""
        return {"state": self.registry.state(), **self._counters()}

    def _op_spans(self, op: dict) -> dict:
        """The worker's op-span ring, oldest first.

        Deliberately non-mutating (never WAL-logged, never replayed):
        gathering spans — like gathering metrics — cannot change what a
        recovery rebuilds.
        """
        h = self._span_head
        return {
            "spans": self._spans[h:] + self._spans[:h],
            "seq": self._op_seq,
            **self._counters(),
        }

    def _op_ping(self, op: dict) -> dict:
        return {"ok": 1, "worker_id": self.worker_id}

    def _op_stop(self, op: dict) -> dict:
        return {"ok": 1}
