"""Open- and closed-loop load generation for the placement service.

A :class:`LoadGenerator` turns any trace input — an in-memory trace, a
:class:`~repro.workloads.streaming.TraceSource`, or a ``.csv``/``.npz``
path — into a *timed* arrival stream: micro-batches of jobs released
at wall-clock instants derived from the trace's arrival process, at a
configurable offered rate and burst shape.

Two loop disciplines:

- ``mode="open"`` (default) — the arrival schedule never waits for the
  service, which is the honest way to measure a serving system: a slow
  service falls behind the schedule (recorded as ``lag_seconds``)
  instead of silently slowing the offered load.
- ``mode="closed"`` — the schedule is latency-aware: each batch's send
  time is ``max(previous target + batch/rate, now)``, so a service
  slower than the offered rate slips the schedule instead of
  accumulating unbounded lag, exactly as a bounded client population
  (the Locust-style closed system) would.  ``max_in_flight`` bounds
  the undecided backlog — when a submission leaves more than that
  queued, the generator blocks on ``drain()`` (the forced drain is
  timed into that batch's latency and counted).  ``warmup`` jobs are
  excluded from the measured window, so the reported
  ``measured_rate`` / ``measured_latency_percentile`` describe the
  steady state, not the cold start.  With ``rate=None`` a closed-loop
  run is a *saturation* probe: back-to-back submissions whose measured
  rate is the service's capacity.

Burst shapes (open loop; the closed loop paces uniformly)
---------------------------------------------------------
- ``"trace"`` — preserve the trace's own inter-arrival structure,
  time-scaled to the offered rate (diurnal waves, natural bursts);
- ``"uniform"`` — constant spacing at the offered rate (the smoothest
  possible arrival process, a lower bound on queueing);
- ``"poisson"`` — i.i.d. exponential gaps at the offered rate (the
  classic open-system model), deterministic under ``seed``.

With ``rate=None`` the generator never sleeps and the stream degrades
to as-fast-as-possible replay — the mode the throughput benchmark and
the tests use.

Pacing never changes decisions: the service's decision stream is a
pure function of the submitted jobs and micro-batch boundaries, so two
sweeps at different offered rates produce bit-identical roll-ups —
``bench_fig14_runtime.py`` asserts exactly that across its saturation
sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..workloads.streaming import open_trace_source, rechunk_blocks
from .faults import TransientSubmitError

__all__ = ["LoadReport", "LoadGenerator", "metrics_latency_summary"]


def metrics_latency_summary(service) -> dict | None:
    """Batch-latency percentiles straight off the metrics surface.

    Reads the service's ``serve_batch_seconds`` histogram (falling back
    to ``serve_request_seconds`` for scalar-mode services) and
    interpolates p50/p95/p99 with
    :meth:`~repro.serve.metrics.Histogram.quantile` — the same fixed
    integer buckets any scraper sees, so the summary the ``loadgen``
    CLI prints is exactly what an operator's dashboard would show.
    Returns ``None`` when nothing has been observed yet.
    """
    reg = service.registry
    for name in ("serve_batch_seconds", "serve_request_seconds"):
        h = reg.get(name)
        if h is not None and h.count:
            return {
                "metric": name,
                "count": int(h.count),
                "p50": h.quantile(0.50),
                "p95": h.quantile(0.95),
                "p99": h.quantile(0.99),
            }
    return None


@dataclass
class LoadReport:
    """What one load-generation run measured.

    ``batch_seconds`` holds the service time of each ``submit_block``
    call (the decision path: queueing, feature extraction/prediction
    when a categorizer is wired, kernel admission).  ``lag_seconds`` is
    how far the sender fell behind the open-loop schedule at the last
    batch (0 when the service keeps up or no rate was set).

    Closed-loop runs additionally split the stream into a warmup and a
    measured window: ``measured_batch_seconds`` / ``n_measured_jobs``
    / ``measured_elapsed`` cover only batches past ``warmup_jobs``, so
    :attr:`measured_rate` and :meth:`measured_latency_percentile`
    describe the steady state.  ``n_forced_drains`` counts the times
    the ``max_in_flight`` bound blocked the sender on a drain, and
    ``in_flight_peak`` the largest undecided backlog observed.
    """

    n_jobs: int = 0
    n_batches: int = 0
    n_decisions: int = 0
    elapsed: float = 0.0
    offered_rate: float | None = None
    lag_seconds: float = 0.0
    interrupted: bool = False
    n_retries: int = 0
    batch_seconds: list[float] = field(default_factory=list)
    mode: str = "open"
    warmup_jobs: int = 0
    n_measured_jobs: int = 0
    measured_elapsed: float = 0.0
    measured_batch_seconds: list[float] = field(default_factory=list)
    n_forced_drains: int = 0
    in_flight_peak: int = 0

    @property
    def achieved_rate(self) -> float:
        """Decisions per wall-clock second over the whole run."""
        return self.n_decisions / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def measured_rate(self) -> float:
        """Jobs per second over the measured (post-warmup) window.

        Falls back to :attr:`achieved_rate` when the run had no warmup
        split (open loop, or warmup covered the whole stream).
        """
        if self.measured_elapsed > 0 and self.n_measured_jobs > 0:
            return self.n_measured_jobs / self.measured_elapsed
        return self.achieved_rate

    def latency_percentile(self, q: float) -> float:
        """Percentile (0-100) of the per-micro-batch decision latency."""
        if not self.batch_seconds:
            return 0.0
        return float(np.percentile(np.asarray(self.batch_seconds), q))

    def measured_latency_percentile(self, q: float) -> float:
        """Like :meth:`latency_percentile`, post-warmup batches only."""
        if not self.measured_batch_seconds:
            return self.latency_percentile(q)
        return float(np.percentile(np.asarray(self.measured_batch_seconds), q))


class LoadGenerator:
    """Replay a trace as a timed arrival stream (open or closed loop).

    Parameters
    ----------
    trace:
        Anything :func:`~repro.workloads.streaming.open_trace_source`
        accepts.
    rate:
        Offered load in jobs/second; ``None`` disables pacing (open
        loop: as-fast-as-possible replay; closed loop: a saturation
        probe).
    mode:
        ``"open"`` (fixed schedule, lag recorded) or ``"closed"``
        (latency-aware schedule that slips with service completions,
        bounded in-flight window, warmup/measure split) — see the
        module docstring.
    max_in_flight:
        Closed-loop bound on the undecided backlog: a submission that
        leaves more than this many jobs queued blocks on ``drain()``
        (timed into that batch's latency, counted in
        ``n_forced_drains``).  ``None`` never forces.
    warmup:
        Number of leading jobs excluded from the measured window
        (closed loop; ``measured_*`` report fields).
    shape:
        Burst shape: ``"trace"``, ``"uniform"`` or ``"poisson"``.
    batch_jobs:
        Jobs per released micro-batch (the submission granularity).
    seed:
        Seed of the ``"poisson"`` gap sampler (schedules are
        deterministic for a fixed seed and batch size).
    max_retries, retry_backoff:
        A submission failing with
        :class:`~repro.serve.faults.TransientSubmitError` is retried up
        to ``max_retries`` times with exponential backoff starting at
        ``retry_backoff`` seconds; exhaustion re-raises.  Any other
        exception propagates immediately (an injected crash is a crash,
        not a retry).
    clock, sleep:
        Injectable time source and sleeper (tests pass fakes; defaults
        are ``time.perf_counter`` / ``time.sleep``).

    ``run`` may be called again to replay the stream when the trace
    input is re-iterable — every shipped adapter (in-memory, CSV, npz)
    re-opens its backing store per iteration.  A single-shot iterable
    of blocks is exhausted by its first run and yields an empty report
    afterwards.
    """

    def __init__(
        self,
        trace,
        *,
        rate: float | None = None,
        mode: str = "open",
        max_in_flight: int | None = None,
        warmup: int = 0,
        shape: str = "trace",
        batch_jobs: int = 256,
        seed: int = 0,
        max_retries: int = 3,
        retry_backoff: float = 0.05,
        clock=time.perf_counter,
        sleep=time.sleep,
    ):
        if mode not in ("open", "closed"):
            raise ValueError(f"unknown loadgen mode {mode!r}")
        if shape not in ("trace", "uniform", "poisson"):
            raise ValueError(f"unknown burst shape {shape!r}")
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive")
        if batch_jobs < 1:
            raise ValueError("batch_jobs must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        self.source = open_trace_source(trace)
        self.rate = rate
        self.mode = mode
        self.max_in_flight = max_in_flight
        self.warmup = int(warmup)
        self.shape = shape
        self.batch_jobs = batch_jobs
        self.seed = seed
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.clock = clock
        self.sleep = sleep

    def _send_offsets(self, arrivals: np.ndarray, sent: int) -> np.ndarray:
        """Wall-clock send offsets (seconds from run start) for one batch.

        ``sent`` is the number of jobs already released — the schedule
        is a function of global position, so batches join a single
        continuous arrival process.
        """
        k = arrivals.size
        if self.rate is None:
            return np.zeros(k)
        if self.shape == "uniform":
            return (sent + np.arange(k, dtype=float)) / self.rate
        if self.shape == "poisson":
            # One stream restart per batch, keyed by (seed, first global
            # position): deterministic for a fixed seed and batch size
            # (re-slicing the stream redraws the gaps).
            rng = np.random.default_rng(self.seed + sent)
            gaps = rng.exponential(1.0 / self.rate, size=k)
            base = self._poisson_clock
            offsets = base + np.cumsum(gaps)
            self._poisson_clock = float(offsets[-1])
            return offsets
        # "trace": scale the trace's own arrival offsets to the rate.
        if self._t0 is None:
            self._t0 = float(arrivals[0])
        if self._trace_scale is None:
            # Unknown span up front (streaming source): estimate the
            # natural rate from the first batch and hold it.
            span = float(arrivals[-1]) - self._t0
            natural = (k / span) if span > 0 else self.rate
            self._trace_scale = natural / self.rate
        return (arrivals - self._t0) * self._trace_scale

    def run(self, service, limit: int | None = None, on_batch=None) -> LoadReport:
        """Drive ``service`` with the timed stream; returns the report.

        ``limit`` caps the number of jobs released (handy for smoke
        runs over large traces).  ``on_batch`` is an optional callback
        invoked with the live report after every batch (the CLI hangs
        its metrics-endpoint refresh on it).  A ``KeyboardInterrupt``
        mid-stream stops the run gracefully: queued jobs are drained,
        the partial report is returned with ``interrupted=True``, and
        the service keeps its state — callers can still take
        ``service.result()``.
        """
        report = LoadReport(
            offered_rate=self.rate, mode=self.mode, warmup_jobs=self.warmup
        )
        self._t0 = None
        self._trace_scale = None
        self._poisson_clock = 0.0
        start = self.clock()
        sent = 0
        closed = self.mode == "closed"
        next_send = 0.0  # closed-loop schedule target, offset from start
        measure_t0 = None
        try:
            for block in rechunk_blocks(self.source, self.batch_jobs):
                if limit is not None and sent >= limit:
                    break
                if limit is not None and sent + len(block) > limit:
                    block = _clip_block(block, limit - sent)
                if self.rate is not None:
                    if closed:
                        ahead = next_send - (self.clock() - start)
                    else:
                        offsets = self._send_offsets(block.arrivals, sent)
                        ahead = offsets[0] - (self.clock() - start)
                    if ahead > 0:
                        self.sleep(ahead)
                    else:
                        report.lag_seconds = float(-ahead)
                measured = closed and sent >= self.warmup
                t0 = self.clock()
                if measured and measure_t0 is None:
                    measure_t0 = t0
                decisions = self._submit_with_retry(service, block, report)
                n_dec = len(decisions)
                pending = getattr(service, "pending", 0)
                if pending > report.in_flight_peak:
                    report.in_flight_peak = pending
                if (
                    self.max_in_flight is not None
                    and pending > self.max_in_flight
                ):
                    # The in-flight window is full: block on the
                    # service until the backlog clears, charged to this
                    # batch — a closed system waits on its requests.
                    n_dec += len(service.drain())
                    report.n_forced_drains += 1
                dt = self.clock() - t0
                report.batch_seconds.append(dt)
                if measured:
                    report.measured_batch_seconds.append(dt)
                    report.n_measured_jobs += len(block)
                report.n_decisions += n_dec
                sent += len(block)
                report.n_batches += 1
                if closed and self.rate is not None:
                    # Latency-aware pacing: the next target keeps the
                    # offered gap when the service keeps up, and slips
                    # to "now" when it does not — offered load adapts
                    # to service speed instead of piling up lag.
                    next_send = max(
                        next_send + len(block) / self.rate,
                        self.clock() - start,
                    )
                if on_batch is not None:
                    on_batch(report)
        except KeyboardInterrupt:
            report.interrupted = True
        report.n_decisions += len(service.drain())
        report.n_jobs = sent
        report.elapsed = self.clock() - start
        if measure_t0 is not None:
            report.measured_elapsed = self.clock() - measure_t0
        return report

    def _submit_with_retry(self, service, block, report):
        """One submission with bounded retry on transient failures."""
        for attempt in range(self.max_retries + 1):
            try:
                return service.submit_block(block)
            except TransientSubmitError:
                report.n_retries += 1
                if attempt == self.max_retries:
                    raise
                self.sleep(self.retry_backoff * (2 ** attempt))


def _clip_block(block, take: int):
    """First ``take`` jobs of a block (for the run's job limit)."""
    from ..workloads.streaming import TraceBlock

    return TraceBlock(
        arrivals=block.arrivals[:take],
        durations=block.durations[:take],
        sizes=block.sizes[:take],
        read_bytes=block.read_bytes[:take],
        write_bytes=block.write_bytes[:take],
        read_ops=block.read_ops[:take],
        pipelines=None if block.pipelines is None else block.pipelines[:take],
        users=None if block.users is None else block.users[:take],
        job_ids=None if block.job_ids is None else block.job_ids[:take],
    )
