"""Open-loop load generation for the online placement service.

A :class:`LoadGenerator` turns any trace input — an in-memory trace, a
:class:`~repro.workloads.streaming.TraceSource`, or a ``.csv``/``.npz``
path — into a *timed* arrival stream: micro-batches of jobs released
at wall-clock instants derived from the trace's arrival process, at a
configurable offered rate and burst shape.  It is open-loop (the
arrival schedule never waits for the service), which is the honest way
to measure a serving system: a slow service falls behind the schedule
instead of silently slowing the offered load.

Burst shapes
------------
- ``"trace"`` — preserve the trace's own inter-arrival structure,
  time-scaled to the offered rate (diurnal waves, natural bursts);
- ``"uniform"`` — constant spacing at the offered rate (the smoothest
  possible arrival process, a lower bound on queueing);
- ``"poisson"`` — i.i.d. exponential gaps at the offered rate (the
  classic open-system model), deterministic under ``seed``.

With ``rate=None`` the generator never sleeps and the stream degrades
to as-fast-as-possible replay — the mode the throughput benchmark and
the tests use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..workloads.streaming import open_trace_source, rechunk_blocks
from .faults import TransientSubmitError

__all__ = ["LoadReport", "LoadGenerator"]


@dataclass
class LoadReport:
    """What one load-generation run measured.

    ``batch_seconds`` holds the service time of each ``submit_block``
    call (the decision path: queueing, feature extraction/prediction
    when a categorizer is wired, kernel admission).  ``lag_seconds`` is
    how far the sender fell behind the open-loop schedule at the last
    batch (0 when the service keeps up or no rate was set).
    """

    n_jobs: int = 0
    n_batches: int = 0
    n_decisions: int = 0
    elapsed: float = 0.0
    offered_rate: float | None = None
    lag_seconds: float = 0.0
    interrupted: bool = False
    n_retries: int = 0
    batch_seconds: list[float] = field(default_factory=list)

    @property
    def achieved_rate(self) -> float:
        """Decisions per wall-clock second over the whole run."""
        return self.n_decisions / self.elapsed if self.elapsed > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        """Percentile (0-100) of the per-micro-batch decision latency."""
        if not self.batch_seconds:
            return 0.0
        return float(np.percentile(np.asarray(self.batch_seconds), q))


class LoadGenerator:
    """Replay a trace as a timed open-loop arrival stream.

    Parameters
    ----------
    trace:
        Anything :func:`~repro.workloads.streaming.open_trace_source`
        accepts.
    rate:
        Offered load in jobs/second; ``None`` disables pacing.
    shape:
        Burst shape: ``"trace"``, ``"uniform"`` or ``"poisson"``.
    batch_jobs:
        Jobs per released micro-batch (the submission granularity).
    seed:
        Seed of the ``"poisson"`` gap sampler (schedules are
        deterministic for a fixed seed and batch size).
    max_retries, retry_backoff:
        A submission failing with
        :class:`~repro.serve.faults.TransientSubmitError` is retried up
        to ``max_retries`` times with exponential backoff starting at
        ``retry_backoff`` seconds; exhaustion re-raises.  Any other
        exception propagates immediately (an injected crash is a crash,
        not a retry).
    clock, sleep:
        Injectable time source and sleeper (tests pass fakes; defaults
        are ``time.perf_counter`` / ``time.sleep``).

    ``run`` may be called again to replay the stream when the trace
    input is re-iterable — every shipped adapter (in-memory, CSV, npz)
    re-opens its backing store per iteration.  A single-shot iterable
    of blocks is exhausted by its first run and yields an empty report
    afterwards.
    """

    def __init__(
        self,
        trace,
        *,
        rate: float | None = None,
        shape: str = "trace",
        batch_jobs: int = 256,
        seed: int = 0,
        max_retries: int = 3,
        retry_backoff: float = 0.05,
        clock=time.perf_counter,
        sleep=time.sleep,
    ):
        if shape not in ("trace", "uniform", "poisson"):
            raise ValueError(f"unknown burst shape {shape!r}")
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive")
        if batch_jobs < 1:
            raise ValueError("batch_jobs must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.source = open_trace_source(trace)
        self.rate = rate
        self.shape = shape
        self.batch_jobs = batch_jobs
        self.seed = seed
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.clock = clock
        self.sleep = sleep

    def _send_offsets(self, arrivals: np.ndarray, sent: int) -> np.ndarray:
        """Wall-clock send offsets (seconds from run start) for one batch.

        ``sent`` is the number of jobs already released — the schedule
        is a function of global position, so batches join a single
        continuous arrival process.
        """
        k = arrivals.size
        if self.rate is None:
            return np.zeros(k)
        if self.shape == "uniform":
            return (sent + np.arange(k, dtype=float)) / self.rate
        if self.shape == "poisson":
            # One stream restart per batch, keyed by (seed, first global
            # position): deterministic for a fixed seed and batch size
            # (re-slicing the stream redraws the gaps).
            rng = np.random.default_rng(self.seed + sent)
            gaps = rng.exponential(1.0 / self.rate, size=k)
            base = self._poisson_clock
            offsets = base + np.cumsum(gaps)
            self._poisson_clock = float(offsets[-1])
            return offsets
        # "trace": scale the trace's own arrival offsets to the rate.
        if self._t0 is None:
            self._t0 = float(arrivals[0])
        if self._trace_scale is None:
            # Unknown span up front (streaming source): estimate the
            # natural rate from the first batch and hold it.
            span = float(arrivals[-1]) - self._t0
            natural = (k / span) if span > 0 else self.rate
            self._trace_scale = natural / self.rate
        return (arrivals - self._t0) * self._trace_scale

    def run(self, service, limit: int | None = None) -> LoadReport:
        """Drive ``service`` with the timed stream; returns the report.

        ``limit`` caps the number of jobs released (handy for smoke
        runs over large traces).  A ``KeyboardInterrupt`` mid-stream
        stops the run gracefully: queued jobs are drained, the partial
        report is returned with ``interrupted=True``, and the service
        keeps its state — callers can still take ``service.result()``.
        """
        report = LoadReport(offered_rate=self.rate)
        self._t0 = None
        self._trace_scale = None
        self._poisson_clock = 0.0
        start = self.clock()
        sent = 0
        try:
            for block in rechunk_blocks(self.source, self.batch_jobs):
                if limit is not None and sent >= limit:
                    break
                if limit is not None and sent + len(block) > limit:
                    block = _clip_block(block, limit - sent)
                offsets = self._send_offsets(block.arrivals, sent)
                if self.rate is not None:
                    ahead = offsets[0] - (self.clock() - start)
                    if ahead > 0:
                        self.sleep(ahead)
                    else:
                        report.lag_seconds = float(-ahead)
                t0 = self.clock()
                decisions = self._submit_with_retry(service, block, report)
                report.batch_seconds.append(self.clock() - t0)
                report.n_decisions += len(decisions)
                sent += len(block)
                report.n_batches += 1
        except KeyboardInterrupt:
            report.interrupted = True
        report.n_decisions += len(service.drain())
        report.n_jobs = sent
        report.elapsed = self.clock() - start
        return report

    def _submit_with_retry(self, service, block, report):
        """One submission with bounded retry on transient failures."""
        for attempt in range(self.max_retries + 1):
            try:
                return service.submit_block(block)
            except TransientSubmitError:
                report.n_retries += 1
                if attempt == self.max_retries:
                    raise
                self.sleep(self.retry_backoff * (2 ** attempt))


def _clip_block(block, take: int):
    """First ``take`` jobs of a block (for the run's job limit)."""
    from ..workloads.streaming import TraceBlock

    return TraceBlock(
        arrivals=block.arrivals[:take],
        durations=block.durations[:take],
        sizes=block.sizes[:take],
        read_bytes=block.read_bytes[:take],
        write_bytes=block.write_bytes[:take],
        read_ops=block.read_ops[:take],
        pipelines=None if block.pipelines is None else block.pipelines[:take],
        users=None if block.users is None else block.users[:take],
        job_ids=None if block.job_ids is None else block.job_ids[:take],
    )
