"""The stateful online placement service.

:class:`PlacementService` turns the offline placement runtime into a
live request-at-a-time controller: jobs are *submitted* as they arrive
(one at a time or in micro-batches), each submission mutates live
fleet/lane state — free space, pending releases, spillover windows,
adaptive thresholds — and yields a :class:`PlacementDecision` routing
the job to SSD or HDD on its caching server.  ``complete`` events
return space early; ``snapshot``/``restore`` checkpoint the full
service state mid-stream.

Relation to the offline runtime
-------------------------------
The service does not reimplement the engine: it drives the same
incremental kernels (:class:`~repro.storage.engine.ScalarKernel`,
:class:`~repro.storage.engine.ChunkKernel`) that
:func:`~repro.storage.engine.run_placement` drives, one submission at
a time instead of one trace at a time.  Two operating modes mirror the
two engines:

- ``mode="scalar"`` — one policy round-trip per submission, the legacy
  engine's arithmetic.  Replaying a trace job by job is
  **bit-identical** to ``simulate(trace, ..., engine="legacy")``.
- ``mode="batch"`` — submissions are queued and processed in the
  *policy's* decision-interval chunks (the chunked engine's
  arithmetic).  The queue is the admission buffer: a chunk runs as
  soon as the policy's declared run of jobs is fully buffered, and
  ``drain()`` flushes the tail exactly as the offline engine clamps
  its final chunk at trace end.  Because chunk boundaries are decided
  by the policy in both drivers — never by micro-batch boundaries —
  replaying a trace through any micro-batch slicing plus a final drain
  is **bit-identical** to ``simulate(trace, ..., engine="chunked")``.

``tests/test_serve_service.py`` pins both identities across policies,
engines and shard counts.

Backpressure
------------
``max_pending`` bounds the admission queue: when a submission leaves
more than ``max_pending`` undecided jobs queued (the policy's declared
chunk still incomplete), the service force-closes chunks at the
available horizon, trading the offline-equal chunk boundaries for
bounded decision latency — the same trade a production frontend makes
when it refuses to hold requests for a full decision interval.

Fault tolerance
---------------
Three mechanisms (see ``docs/robustness.md`` for the full fault model):

- **Capacity shocks** — :meth:`PlacementService.apply_shock` resizes
  lanes mid-stream (loss, shrink, restore, quota changes).  Queued
  decisions are flushed first (the shock lands on a chunk boundary),
  residents that no longer fit are evicted through the kernel
  (counted as spills and in ``ServiceStats``), the live-job table is
  purged, and ``on_shard_topology`` re-fires so per-shard adaptive
  thresholds re-adapt to the new layout.
- **Durability** — construct with a
  :class:`~repro.serve.wal.WriteAheadLog` and every mutating call is
  logged before it applies; :meth:`checkpoint` pickles periodic
  snapshots and :meth:`recover` rebuilds the exact pre-crash state
  from a checkpoint plus the WAL suffix.
- **Degraded mode** — a categorizer failure never takes the service
  down: admission falls back to the stable-hash heuristic (the
  Adaptive Hash rule) and the degraded interval is recorded in
  ``ServiceStats`` until the model recovers.
"""

from __future__ import annotations

import copy
import os
import pickle
from pathlib import Path
from time import perf_counter
from typing import Sequence

import numpy as np

from .. import __version__
from ..cost import CostRates, DEFAULT_RATES
from ..storage.engine import (
    ChunkKernel,
    ScalarKernel,
    SimResult,
    _finalize,
    _normalize_capacity,
    assign_shards,
)
from ..storage.policy import PlacementPolicy
from ..workloads.job import ShuffleJob, TraceBase
from ..workloads.metadata import stable_hash
from .alerts import AlertManager
from .log import GrowArray, JobLog
from .metrics import SIZE_BUCKETS_JOBS, MetricsRegistry
from .tracing import Tracer, _PRIME

#: Tracer sampling constants, hoisted so the per-stride hash pass pays
#: no per-call numpy scalar conversions.
_F_INF = float("inf")

_PRIME_U64 = np.uint64(_PRIME)
_MASK32 = np.uint64(0xFFFFFFFF)
#: Auto-id sampling hashes this many ids per vector pass, running ahead
#: of the log (the hash needs only the integer id).
_TRACE_SCAN_BLOCK = 1 << 16

#: Per-metric value sources for the selective alert sync (the subset of
#: ``_sync_metrics`` an evaluation tick can pin one metric at a time).
#: Values live at module level so an alert-sync plan pickles as plain
#: metric-object/name pairs inside WAL checkpoints.
_ALERT_SYNC_GETTERS = {
    "serve_submitted_total": lambda s, kc: s.stats.n_submitted,
    "serve_decided_total": lambda s, kc: s.stats.n_decided,
    "serve_chunks_total": lambda s, kc: s.stats.n_chunks,
    "serve_forced_chunks_total": lambda s, kc: s.stats.forced_chunks,
    "serve_completions_total": lambda s, kc: s.stats.n_completions,
    "serve_duplicate_completes_total":
        lambda s, kc: s.stats.duplicate_completes,
    "serve_stale_completes_total": lambda s, kc: s.stats.stale_completes,
    "serve_shocks_total": lambda s, kc: s.stats.n_shocks,
    "serve_evictions_total": lambda s, kc: s.stats.n_evicted,
    "serve_evicted_bytes_total": lambda s, kc: s.stats.evicted_bytes,
    "serve_degraded_jobs_total": lambda s, kc: s.stats.degraded_jobs,
    "serve_degraded_intervals_total":
        lambda s, kc: len(s.stats.degraded_intervals),
    "serve_categorizer_failures_total":
        lambda s, kc: s.stats.categorizer_failures,
    "serve_ssd_requested_total": lambda s, kc: s.kernel.n_ssd_requested,
    "serve_spilled_total": lambda s, kc: s.kernel.n_spilled,
    "serve_kernel_evictions_total": lambda s, kc: s.kernel.n_evicted,
    "serve_scalar_fallback_total": lambda s, kc: kc["scalar_fallback_jobs"],
    "serve_wal_records_total": lambda s, kc: s._wal_seq,
    "serve_pending_jobs": lambda s, kc: s.pending,
    "serve_max_pending_seen": lambda s, kc: s.stats.max_pending_seen,
    "serve_capacity_bytes": lambda s, kc: float(s.capacity),
    "serve_peak_ssd_used_bytes": lambda s, kc: s.kernel.peak_used,
    "serve_degraded": lambda s, kc: 1 if s._degraded_since is not None else 0,
}

#: Getter-table entries whose value comes from ``kernel.counters()``.
# Getters that read the kernel ``counters()`` dict (the rest of the
# kernel-derived metrics read attributes both kernel shapes expose).
_KERNEL_SYNCED = frozenset({
    "serve_scalar_fallback_total",
})

#: Every metric ``_sync_metrics`` pins.  Referenced metrics outside
#: this set are live-updated (histograms, per-category counters) and
#: need no sync before an evaluation tick.
_SYNCED_METRICS = frozenset(_ALERT_SYNC_GETTERS) | frozenset({
    "serve_lane_capacity_bytes", "serve_lane_free_bytes",
    "serve_lane_occupancy_ratio", "serve_act_position",
    "serve_act_lane_position", "serve_uptime_seconds",
    "serve_decisions_per_second",
})
from .types import (
    COMPAT_SNAPSHOT_SCHEMAS,
    SNAPSHOT_SCHEMA,
    PlacementDecision,
    ServiceSnapshot,
    ServiceStats,
    ShockReport,
    SnapshotMismatch,
    _DecisionBatch,
    _DecisionConcat,
)
from .wal import WalCorruption, WriteAheadLog, job_from_record, job_to_record

__all__ = [
    "PlacementDecision",
    "ServiceSnapshot",
    "ServiceStats",
    "ShockReport",
    "SnapshotMismatch",
    "PlacementService",
]


class PlacementService:
    """Stateful request-at-a-time placement over the unified engine.

    Parameters
    ----------
    policy:
        Any :class:`~repro.storage.policy.PlacementPolicy`.  In
        ``"batch"`` mode it must implement ``decide_batch``.  Policies
        that consult a trace (categories, sizes) work in two ways:
        *replay* — pass the trace to :meth:`open` and submit its jobs
        in order — or *online* — use a serve-native policy
        (:class:`~repro.serve.OnlineAdaptivePolicy`) bound to the
        service's live job log, optionally fed by an on-the-fly
        ``categorizer``.
    capacity:
        Total SSD bytes (scalar, split evenly) or a per-shard vector,
        exactly as :func:`~repro.storage.engine.run_placement` takes it.
    n_shards:
        Caching-server count; jobs route by a stable pipeline hash.
    mode:
        ``"scalar"`` (decide per submission, legacy-engine arithmetic)
        or ``"batch"`` (queue and decide in policy chunks,
        chunked-engine arithmetic).
    engine:
        Kernel arithmetic for ``mode="batch"``: ``"auto"``/``"chunked"``
        (the NumPy chunked kernel, default) or ``"compiled"`` (the same
        kernel with numba-jitted trajectory loops — bit-identical,
        requires the optional numba dependency).  ``"scalar"`` mode
        always runs the legacy per-job kernel.
    max_pending:
        Backpressure bound on the admission queue (``"batch"`` mode):
        exceeding it force-closes chunks at the available horizon.
        ``None`` (default) never forces — decisions wait for the
        policy's full chunk (or :meth:`drain`), keeping replay
        bit-identical to the offline engine.
    categorizer:
        Optional callable ``jobs -> categories`` invoked on every
        submission (e.g. :class:`~repro.serve.OnlineCategorizer`:
        on-the-fly feature extraction + packed-forest prediction); the
        categories are streamed into the policy via its
        ``extend_categories`` hook.
    track_jobs:
        Keep a live table of outstanding SSD allocations so
        :meth:`complete` can release space early.  On by default; turn
        off to shave bookkeeping from pure-replay benchmarks.
    wal:
        Optional :class:`~repro.serve.wal.WriteAheadLog` (or a path,
        opened as one): every mutating call is appended before it
        applies, enabling :meth:`recover` after a crash.
    fallback_categorizer:
        Optional ``jobs -> categories`` used while the primary
        categorizer is failing.  Default: stable pipeline hash into
        ``[1, n_categories)`` — the Adaptive Hash heuristic.
    alerts:
        Optional :class:`~repro.serve.alerts.AlertManager`.  Evaluated
        on the metrics-sync cadence (every :meth:`metrics` /
        :meth:`metrics_text` / :meth:`evaluate_alerts` call) against
        the pinned registry, driven by the logical clock — see
        :mod:`repro.serve.alerts` for the determinism contract.  The
        manager's state rides service snapshots, so recovered alert
        streams continue instead of resetting.
    tracer:
        Optional :class:`~repro.serve.tracing.Tracer`: deterministic
        per-request spans (submit -> categorize -> admit ->
        place/spill -> complete) for job-id-hash-sampled requests,
        kept in a bounded ring that also rides snapshots.
    """

    def __init__(
        self,
        policy: PlacementPolicy,
        capacity: float | np.ndarray,
        n_shards: int = 1,
        *,
        mode: str = "batch",
        engine: str = "auto",
        rates: CostRates = DEFAULT_RATES,
        shard_seed: int = 0,
        max_pending: int | None = None,
        categorizer=None,
        track_jobs: bool = True,
        name: str = "service",
        wal: WriteAheadLog | str | None = None,
        fallback_categorizer=None,
        alerts: AlertManager | None = None,
        tracer: Tracer | None = None,
    ):
        if mode not in ("scalar", "batch"):
            raise ValueError(f"unknown service mode {mode!r}")
        if engine not in ("auto", "chunked", "compiled"):
            raise ValueError(f"unknown service engine {engine!r}")
        if engine == "compiled" and mode != "batch":
            raise ValueError("engine='compiled' requires mode='batch'")
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if mode == "batch" and not callable(getattr(policy, "decide_batch", None)):
            raise ValueError(
                f"policy {policy.name!r} does not implement decide_batch; "
                "use mode='scalar'"
            )
        if max_pending is not None and max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self.policy = policy
        self.n_shards = n_shards
        self.mode = mode
        self.engine = engine
        self.rates = rates
        self.shard_seed = shard_seed
        self.max_pending = max_pending
        self.categorizer = categorizer
        self.track_jobs = track_jobs
        lane_caps, total = _normalize_capacity(capacity, n_shards)
        self.lane_capacities = lane_caps
        self.capacity = total
        self.log = JobLog(rates=rates, n_shards=n_shards, shard_seed=shard_seed, name=name)
        self.kernel = self._make_kernel(lane_caps, total)
        self.stats = ServiceStats()
        self.registry = MetricsRegistry()
        self._metrics_t0 = perf_counter()
        self._m_cat: dict = {}  # category -> admission Counter cache
        self._init_metrics()
        self._frac = GrowArray(float)
        self._decided = 0
        self._plan = None  # cached (BatchDecision for job index _decided)
        self._now = -np.inf
        #: How far the kernel's release cursor may have advanced.  In
        #: batch mode, opening a chunk to consult the policy applies
        #: releases up to the first *queued* arrival — which can sit
        #: ahead of ``_now`` (the last decided arrival) while the chunk
        #: waits for more submissions.  ``complete`` must treat
        #: releases at or before this point as already fired, or it
        #: would re-free space the cursor already returned.
        self._horizon = -np.inf
        self._opened = False
        self._live: dict = {}  # job_id -> (index, lane, alloc, release_time)
        self._live_sweep_at = 64  # amortized prune threshold, see _maybe_sweep_live
        self.wal = WriteAheadLog(wal) if isinstance(wal, (str, Path)) else wal
        self.fallback_categorizer = fallback_categorizer
        self._wal_seq = 0 if self.wal is None else self.wal.seq
        self._wal_rec: dict | None = None  # record under construction
        self._replaying = False  # True while recover() replays the WAL
        self._replay_cats = None  # (cats, degraded) from the record
        self._degraded_since: float | None = None  # open outage start
        self._shards_ref = None  # routing vector for topology re-fires
        self.alerts = alerts
        self.tracer = tracer
        #: Sampled-span bookkeeping (see _trace_chunk): sorted log
        #: indices that sample, how much of the log has been hashed,
        #: and the first entry not yet recorded as a span.
        self._trace_sel: list = []
        self._trace_scanned = 0
        self._trace_cursor = 0
        self._trace_confirmed = 0
        #: Logical event clock: the largest arrival time ever submitted.
        #: Unlike ``_now`` (the last *decided* arrival, which lags in
        #: batch mode while chunks buffer) this advances identically
        #: across engine modes, so alert hysteresis measured against it
        #: is mode-invariant.
        self._clock = -np.inf

    def _make_kernel(self, lane_caps: np.ndarray, total: float):
        """Build the admission kernel this service drives.

        The seam the fleet layer plugs into:
        :class:`~repro.serve.router.FleetRouter` overrides this to
        return a scatter-gather kernel over worker processes while
        inheriting every other mechanism (log, WAL, categorizer, queue
        pump, shocks) unchanged.
        """
        if self.mode == "scalar":
            return ScalarKernel(lane_caps, total)
        return ChunkKernel(lane_caps, total, compiled=(self.engine == "compiled"))

    # -- metrics --------------------------------------------------------

    def _init_metrics(self) -> None:
        """Register the natively-observed instruments.

        Everything else (the pinned counters and gauges) is created
        lazily by :meth:`_sync_metrics`; the histograms and the
        per-category admission counters accumulate on the hot path and
        must exist from the first submission.
        """
        reg = self.registry
        self._pinned = None  # metric-object cache, built on first sync
        self._alert_sync = None  # selective-sync plan, built on first tick
        self._m_request = reg.histogram(
            "serve_request_seconds",
            help="Wall-clock latency of one submit() call",
        )
        self._m_batch = reg.histogram(
            "serve_batch_seconds",
            help="Wall-clock latency of one micro-batch submission",
        )
        self._m_chunk_jobs = reg.histogram(
            "serve_chunk_jobs", buckets=SIZE_BUCKETS_JOBS,
            help="Jobs decided per policy chunk",
        )

    def _cat_counter(self, cat: int):
        c = self._m_cat.get(cat)
        if c is None:
            c = self.registry.counter(
                "serve_admitted_by_category_total",
                labels={"category": str(cat)},
                help="SSD admissions by job category",
            )
            self._m_cat[cat] = c
        return c

    def _count_admissions(self, first: int, stop: int, requested) -> None:
        """Per-category admission counting for one decided chunk.

        Categories come from the policy's ``categories`` column (full
        trace in replay mode, the streamed prefix under an online
        categorizer); policies without one skip the breakdown.
        """
        cats = getattr(self.policy, "categories", None)
        if cats is None or len(cats) < stop:
            return
        sel = np.asarray(cats[first:stop])[requested]
        if sel.size:
            for cat, cnt in zip(*np.unique(sel, return_counts=True)):
                self._cat_counter(int(cat)).inc(int(cnt))

    def _sync_metrics(self) -> None:
        """Pin every derived metric to its authoritative source.

        Counters mirror ``ServiceStats`` and the kernel's admission
        counters *by assignment*, so a metrics snapshot can never
        disagree with the end-of-run roll-up — the bit-identity
        contract extends to the metrics surface.  Called by
        :meth:`metrics` / :meth:`metrics_text` /
        :meth:`evaluate_alerts`, never on the decision hot path.  The
        metric objects are resolved once (:meth:`_build_metric_pins`)
        and cached, so a per-batch alert-evaluation cadence costs
        attribute sets, not registry lookups.
        """
        st = self.stats
        kc = self.kernel.counters()
        pin = self._pinned
        if pin is None:
            pin = self._pinned = self._build_metric_pins()
        counters, gauges, lanes, act, act_lanes, g_uptime, g_dps = pin
        for m, v in zip(counters, (
            st.n_submitted, st.n_decided, st.n_chunks, st.forced_chunks,
            st.n_completions, st.duplicate_completes, st.stale_completes,
            st.n_shocks, st.n_evicted, st.evicted_bytes,
            st.degraded_jobs, len(st.degraded_intervals),
            st.categorizer_failures, kc["n_ssd_requested"],
            kc["n_spilled"], kc["n_evicted"], kc["scalar_fallback_jobs"],
            self._wal_seq,
        )):
            m.set(v)
        g_pending, g_maxpend, g_cap, g_peak, g_degraded = gauges
        g_pending.set(self.pending)
        g_maxpend.set(st.max_pending_seen)
        g_cap.set(float(self.capacity))
        g_peak.set(kc["peak_used"])
        g_degraded.set(1 if self._degraded_since is not None else 0)
        free = np.asarray(self.kernel.free, dtype=float)
        caps = np.asarray(self.lane_capacities, dtype=float)
        for L, (g_lcap, g_lfree, g_locc) in enumerate(lanes):
            cap = float(caps[L])
            g_lcap.set(cap)
            g_lfree.set(float(free[L]))
            g_locc.set(1.0 - float(free[L]) / cap if cap > 0 else 0.0)
        if act is not None:
            act_v = getattr(self.policy, "act", None)
            if act_v is not None:
                act.set(int(act_v))
        if act_lanes is not None:
            lanes_v = getattr(self.policy, "act_lanes", None)
            if lanes_v is not None:
                for g, a in zip(act_lanes, np.asarray(lanes_v)):
                    g.set(int(a))
        dt = perf_counter() - self._metrics_t0
        g_uptime.set(dt)
        g_dps.set(st.n_decided / dt if dt > 0 else 0.0)

    def _build_metric_pins(self):
        """Create and cache the pinned metric objects.

        Creation order matters: it is the registry's render order, part
        of the scrape surface, and must match what the old per-call
        get-or-create path produced.  A policy without an adaptive
        threshold (``act``) never gets the act gauges, exactly as
        before.
        """
        reg = self.registry
        counters = tuple(
            reg.counter(name, help=h) for name, h in (
                ("serve_submitted_total", "Jobs submitted to the service"),
                ("serve_decided_total", "Placement decisions made"),
                ("serve_chunks_total", "Policy chunks decided (batch mode)"),
                ("serve_forced_chunks_total",
                 "Chunks force-closed by backpressure"),
                ("serve_completions_total",
                 "Early completions that freed space"),
                ("serve_duplicate_completes_total",
                 "complete() calls for unknown or already-completed jobs"),
                ("serve_stale_completes_total",
                 "complete() timestamps clamped forward to the service clock"),
                ("serve_shocks_total", "Capacity shocks applied"),
                ("serve_evictions_total",
                 "Residents evicted by capacity shocks"),
                ("serve_evicted_bytes_total",
                 "Bytes evicted by capacity shocks"),
                ("serve_degraded_jobs_total",
                 "Jobs categorized by the fallback heuristic"),
                ("serve_degraded_intervals_total",
                 "Closed categorizer outage intervals"),
                ("serve_categorizer_failures_total",
                 "Categorizer calls that raised"),
                ("serve_ssd_requested_total",
                 "Jobs the policy sent to SSD"),
                ("serve_spilled_total",
                 "SSD admissions that spilled to HDD"),
                ("serve_kernel_evictions_total",
                 "Kernel-level shock evictions"),
                ("serve_scalar_fallback_total",
                 "Chunk jobs that took the scalar arithmetic path"),
                ("serve_wal_records_total",
                 "Write-ahead log records written or replayed"),
            )
        )
        gauges = (
            reg.gauge(
                "serve_pending_jobs",
                help="Submitted jobs awaiting a decision",
            ),
            reg.gauge(
                "serve_max_pending_seen", help="Peak admission-queue depth"
            ),
            reg.gauge("serve_capacity_bytes", help="Total SSD capacity"),
            reg.gauge(
                "serve_peak_ssd_used_bytes", help="Peak SSD bytes in use"
            ),
            reg.gauge(
                "serve_degraded",
                help="1 while the categorizer outage is open, else 0",
            ),
        )
        lanes = tuple(
            (
                reg.gauge(
                    "serve_lane_capacity_bytes", labels={"lane": str(L)},
                    help="Per-lane SSD capacity",
                ),
                reg.gauge(
                    "serve_lane_free_bytes", labels={"lane": str(L)},
                    help="Per-lane free SSD bytes",
                ),
                reg.gauge(
                    "serve_lane_occupancy_ratio", labels={"lane": str(L)},
                    help="Per-lane occupied fraction",
                ),
            )
            for L in range(self.n_shards)
        )
        act = act_lanes = None
        if getattr(self.policy, "act", None) is not None:
            act = reg.gauge(
                "serve_act_position",
                help="Global adaptive category threshold",
            )
        al = getattr(self.policy, "act_lanes", None)
        if al is not None:
            act_lanes = tuple(
                reg.gauge(
                    "serve_act_lane_position", labels={"lane": str(L)},
                    help="Per-shard adaptive category threshold",
                )
                for L in range(len(np.asarray(al)))
            )
        g_uptime = reg.gauge(
            "serve_uptime_seconds", help="Seconds since service construction"
        )
        g_dps = reg.gauge(
            "serve_decisions_per_second",
            help="Lifetime mean decision throughput",
        )
        return counters, gauges, lanes, act, act_lanes, g_uptime, g_dps

    def metrics(self) -> dict:
        """A point-in-time snapshot of every metric.

        Syncs the pinned counters/gauges from their authoritative
        sources first, then returns the registry's plain-dict snapshot
        (sample name → value; histograms as bucket/percentile dicts).
        """
        self._sync_metrics()
        if self.alerts is not None:
            self._evaluate_synced()
        return self.registry.snapshot()

    def metrics_text(self) -> str:
        """The Prometheus text exposition (0.0.4) of :meth:`metrics`."""
        self._sync_metrics()
        if self.alerts is not None:
            self._evaluate_synced()
        return self.registry.render()

    def evaluate_alerts(self) -> list:
        """Run one alert/SLO evaluation tick; returns the new events.

        Pins the metrics first (the same sync :meth:`metrics` does —
        the fleet router's override folds the per-worker registries),
        then hands the registry and the logical clock to the
        :class:`~repro.serve.alerts.AlertManager`.  A service without a
        manager returns ``[]``.  Never called on the decision hot path
        — drive it from your serving loop, the way the CLI evaluates
        once per submitted batch.
        """
        if self.alerts is None:
            return []
        plan = self._alert_sync
        if plan is None or plan[0] is not self.alerts:
            plan = self._alert_sync = self._build_alert_sync_plan()
        _, needs_kc, entries = plan
        if entries is None:
            self._sync_metrics()
        else:
            kc = self.kernel.counters() if needs_kc else None
            for m, base in entries:
                m.set(_ALERT_SYNC_GETTERS[base](self, kc))
        return self._evaluate_synced()

    def _build_alert_sync_plan(self):
        """Resolve which metrics an evaluation tick must pin.

        A per-batch alert cadence cannot afford the full
        :meth:`_sync_metrics` pass (~45 metric objects) when the rules
        read five of them, so the plan maps each *referenced* synced
        metric to its value source and :meth:`evaluate_alerts` pins
        just those — identical values, so the alert event stream is
        unchanged.  Referenced metrics outside the synced set are
        live-updated and need nothing.  Anything the fast table cannot
        express (per-lane or labeled synced metrics, a subclass that
        folds extra state into its sync — the fleet router) falls back
        to the full sync; the plan is ``(alerts, needs_kernel,
        entries-or-None)`` and rebuilds if the manager is swapped.
        """
        fallback = (self.alerts, False, None)
        if type(self)._sync_metrics is not PlacementService._sync_metrics:
            return fallback
        # One full sync up front creates every pinned metric, so the
        # registry's render order stays canonical no matter which sync
        # path later scrapes run through.
        self._sync_metrics()
        entries = []
        needs_kc = False
        for base, labels in self.alerts.referenced():
            if base not in _SYNCED_METRICS:
                continue  # live-updated (histogram / category counter)
            g = _ALERT_SYNC_GETTERS.get(base)
            if g is None or labels:
                return fallback
            m = self.registry.get(base)
            if m is None:
                return fallback
            if base in _KERNEL_SYNCED:
                needs_kc = True
            entries.append((m, base))
        return (self.alerts, needs_kc, entries)

    def _evaluate_synced(self) -> list:
        c = self._clock  # plain float compare; np.isfinite costs ~1us
        clock = float(c) if -_F_INF < c < _F_INF else 0.0
        return self.alerts.evaluate(
            self.registry, clock=clock, decided=self.stats.n_decided
        )

    # -- lifecycle ------------------------------------------------------

    @property
    def pending(self) -> int:
        """Submitted jobs still queued for a decision (batch mode)."""
        return len(self.log) - self._decided

    @property
    def n_decided(self) -> int:
        return self._decided

    def open(self, trace: TraceBase | None = None) -> "PlacementService":
        """Wire the policy up and start accepting submissions.

        With ``trace`` (replay mode) the policy receives exactly the
        hooks the offline runtime would give it —
        ``on_simulation_start`` with the full trace and the
        precomputed shard routing — and the caller must then submit the
        trace's jobs in order.  Without a trace (online mode) the
        policy is bound to the service's live job log: it sees the
        submitted prefix wherever it would have seen the trace.
        Called implicitly (online mode) by the first submission.
        """
        if self._opened:
            raise RuntimeError("service already opened")
        self._opened = True
        policy = self.policy
        if trace is not None:
            shards = (
                assign_shards(trace, self.n_shards, seed=self.shard_seed)
                if self.n_shards > 1
                else None
            )
            policy.on_simulation_start(trace, self.capacity, self.rates)
            policy.on_shard_topology(shards, self.lane_capacities.copy())
            self._shards_ref = shards
        else:
            if hasattr(policy, "bind_log"):
                policy.bind_log(self.log)
            policy.on_simulation_start(self.log, self.capacity, self.rates)
            shards_view = self.log.column("lanes") if self.n_shards > 1 else None
            policy.on_shard_topology(shards_view, self.lane_capacities.copy())
            self._shards_ref = shards_view
        return self

    def _ensure_open(self) -> None:
        if not self._opened:
            self.open()

    # -- submissions ----------------------------------------------------

    def submit(
        self,
        job: ShuffleJob | None = None,
        *,
        arrival: float | None = None,
        duration: float | None = None,
        size: float | None = None,
        read_bytes: float = 0.0,
        write_bytes: float = 0.0,
        read_ops: float = 0.0,
        pipeline: str = "pipeline0",
        user: str = "user0",
        job_id=None,
    ) -> Sequence[PlacementDecision]:
        """Submit one job; returns the decisions this submission resolved.

        In ``"scalar"`` mode the returned list holds exactly this job's
        decision.  In ``"batch"`` mode it holds every decision the
        submission unlocked — possibly none (the job is queued until
        the policy's decision chunk completes), possibly many (this
        arrival closed a chunk covering earlier queued jobs).
        """
        self._ensure_open()
        t_req = perf_counter()
        if job is not None:
            arrival, duration, size = job.arrival, job.duration, job.size
            read_bytes, write_bytes = job.read_bytes, job.write_bytes
            read_ops, pipeline, user = job.read_ops, job.pipeline, job.user
            if job_id is None:
                job_id = job.job_id
        elif arrival is None or duration is None or size is None:
            raise TypeError("submit() needs a ShuffleJob or arrival/duration/size")
        i = self.log.append_job(
            arrival, duration, size, read_bytes, write_bytes, read_ops,
            pipeline, user, job_id,
        )
        self.stats.n_submitted += 1
        if arrival > self._clock:
            self._clock = float(arrival)
        if self.wal is not None and not self._replaying:
            if job is not None:
                jr = job_to_record(job)
                jr["job_id"] = self.log.job_ids[i]
                self._wal_rec = {"op": "jobs", "jobs": [jr]}
            else:
                self._wal_rec = {
                    "op": "submit",
                    "arrival": float(arrival), "duration": float(duration),
                    "size": float(size), "read_bytes": float(read_bytes),
                    "write_bytes": float(write_bytes),
                    "read_ops": float(read_ops),
                    "pipeline": pipeline, "user": user, "job_id": job_id,
                }
        if self.categorizer is not None:
            self._categorize(i, i + 1, [job] if job is not None else None)
        self._wal_append()
        if self.mode == "scalar":
            out = [self._decide_scalar(i)]
        else:
            out = self._pump()
        self._m_request.observe(perf_counter() - t_req)
        return out

    def submit_batch(
        self,
        arrivals: np.ndarray,
        durations: np.ndarray,
        sizes: np.ndarray,
        read_bytes: np.ndarray | None = None,
        write_bytes: np.ndarray | None = None,
        read_ops: np.ndarray | None = None,
        pipelines: Sequence[str] | None = None,
        users: Sequence[str] | None = None,
        job_ids: Sequence | None = None,
    ) -> Sequence[PlacementDecision]:
        """Submit one arrival-ordered micro-batch of jobs as columns.

        Returns every decision the batch resolved (see :meth:`submit`);
        undecided jobs stay queued for later submissions or
        :meth:`drain`.
        """
        self._ensure_open()
        t_req = perf_counter()
        arrivals = np.asarray(arrivals, dtype=float)
        zeros = np.zeros(arrivals.size)
        first, stop = self.log.append_block(
            arrivals, durations, sizes,
            zeros if read_bytes is None else read_bytes,
            zeros if write_bytes is None else write_bytes,
            zeros if read_ops is None else read_ops,
            pipelines, users, job_ids,
        )
        self.stats.n_submitted += stop - first
        if arrivals.size and arrivals[-1] > self._clock:
            self._clock = float(arrivals[-1])
        if self.wal is not None and not self._replaying:
            self._wal_rec = {
                "op": "batch",
                "arrivals": arrivals.tolist(),
                "durations": np.asarray(durations, dtype=float).tolist(),
                "sizes": np.asarray(sizes, dtype=float).tolist(),
                "read_bytes": None if read_bytes is None
                else np.asarray(read_bytes, dtype=float).tolist(),
                "write_bytes": None if write_bytes is None
                else np.asarray(write_bytes, dtype=float).tolist(),
                "read_ops": None if read_ops is None
                else np.asarray(read_ops, dtype=float).tolist(),
                "pipelines": None if pipelines is None else list(pipelines),
                "users": None if users is None else list(users),
                "job_ids": None if job_ids is None else list(job_ids),
            }
        if self.categorizer is not None:
            self._categorize(first, stop, None)
        self._wal_append()
        if self.mode == "scalar":
            out = [self._decide_scalar(i) for i in range(first, stop)]
        else:
            out = self._pump()
        self._m_batch.observe(perf_counter() - t_req)
        return out

    def submit_jobs(self, jobs: Sequence[ShuffleJob]) -> Sequence[PlacementDecision]:
        """Submit one arrival-ordered micro-batch of rich job objects.

        Unlike :meth:`submit_batch` (bare columns), the original jobs —
        with their metadata and resource dictionaries — are handed to
        the categorizer, so model-driven admission sees the full
        Table-2 feature groups exactly as an offline extraction would.
        """
        self._ensure_open()
        t_req = perf_counter()
        jobs = list(jobs)
        if not jobs:
            return self._pump() if self.mode == "batch" else []
        first, stop = self.log.append_block(
            np.array([j.arrival for j in jobs]),
            np.array([j.duration for j in jobs]),
            np.array([j.size for j in jobs]),
            np.array([j.read_bytes for j in jobs]),
            np.array([j.write_bytes for j in jobs]),
            np.array([j.read_ops for j in jobs]),
            pipelines=[j.pipeline for j in jobs],
            users=[j.user for j in jobs],
            job_ids=[j.job_id for j in jobs],
        )
        self.stats.n_submitted += stop - first
        if jobs[-1].arrival > self._clock:
            self._clock = float(jobs[-1].arrival)
        if self.wal is not None and not self._replaying:
            self._wal_rec = {"op": "jobs", "jobs": [job_to_record(j) for j in jobs]}
        if self.categorizer is not None:
            self._categorize(first, stop, jobs)
        self._wal_append()
        if self.mode == "scalar":
            out = [self._decide_scalar(i) for i in range(first, stop)]
        else:
            out = self._pump()
        self._m_batch.observe(perf_counter() - t_req)
        return out

    def submit_block(self, block) -> Sequence[PlacementDecision]:
        """Submit one :class:`~repro.workloads.streaming.TraceBlock`."""
        return self.submit_batch(
            block.arrivals, block.durations, block.sizes,
            block.read_bytes, block.write_bytes, block.read_ops,
            pipelines=block.pipelines, users=block.users,
            job_ids=None if block.job_ids is None else list(block.job_ids),
        )

    def drain(self) -> Sequence[PlacementDecision]:
        """Decide every queued job now, closing partial chunks.

        The final-chunk clamping is exactly the offline engine's
        end-of-trace clamping, so a replay that submits a whole trace
        and then drains matches the offline run bit for bit.
        """
        self._ensure_open()
        if self.pending and self.wal is not None and not self._replaying:
            self.wal.append({"op": "drain"})
            self._wal_seq += 1
        return self._pump(force=True)

    def _wal_append(self) -> None:
        """Flush the submission record built (and annotated) this call."""
        rec, self._wal_rec = self._wal_rec, None
        if rec is not None:
            self.wal.append(rec)
            self._wal_seq += 1

    def _categorize(self, first: int, stop: int, jobs) -> None:
        """Run the on-the-fly categorizer over newly appended jobs.

        A categorizer failure degrades instead of raising: admission
        falls back to :meth:`_fallback_categories` (stable-hash
        heuristic by default), the failure and the affected jobs are
        counted, and the open degraded interval is closed at the first
        healthy call.  During WAL replay the record's categories are
        authoritative — the model is still re-run on non-degraded
        records so its rolling feature state matches the uninterrupted
        run, but its output is discarded in favour of the recorded one.
        """
        log = self.log
        replayed, self._replay_cats = self._replay_cats, None
        degraded = False
        if replayed is not None:
            cats, degraded = replayed
            cats = np.asarray(cats, dtype=np.int64)
            if not degraded:
                inner = getattr(self.categorizer, "inner", self.categorizer)
                try:
                    # Columnar submissions take the fused path when the
                    # categorizer supports it; output is discarded here,
                    # only the rolling feature state matters.
                    block = (
                        getattr(inner, "predict_block", None)
                        if jobs is None
                        else None
                    )
                    if block is not None:
                        block(log, first, stop)
                    else:
                        if jobs is None:
                            jobs = [log[i] for i in range(first, stop)]
                        inner(jobs)
                except Exception:
                    pass
        else:
            try:
                block = (
                    getattr(self.categorizer, "predict_block", None)
                    if jobs is None
                    else None
                )
                if block is not None:
                    cats = np.asarray(block(log, first, stop), dtype=np.int64)
                else:
                    if jobs is None:
                        jobs = [log[i] for i in range(first, stop)]
                    cats = np.asarray(self.categorizer(jobs), dtype=np.int64)
            except Exception:
                degraded = True
                if jobs is None:
                    jobs = [log[i] for i in range(first, stop)]
                cats = self._fallback_categories(jobs)
        t0 = float(log.arrivals[first])
        if degraded:
            self.stats.categorizer_failures += 1
            self.stats.degraded_jobs += stop - first
            if self._degraded_since is None:
                self._degraded_since = t0
        elif self._degraded_since is not None:
            self.stats.degraded_intervals.append((self._degraded_since, t0))
            self._degraded_since = None
        if self._wal_rec is not None:
            self._wal_rec["cats"] = [int(c) for c in cats]
            if degraded:
                self._wal_rec["degraded"] = True
        extend = getattr(self.policy, "extend_categories", None)
        if extend is not None:
            extend(cats)

    def _fallback_categories(self, jobs) -> np.ndarray:
        """Heuristic admission while the model is down.

        Stable hash of each job's pipeline into ``[1, n_categories)`` —
        the Adaptive Hash rule, so the adaptive threshold keeps
        modulating *how much* is admitted even though job importance is
        arbitrary.  A custom ``fallback_categorizer`` overrides this.
        """
        if self.fallback_categorizer is not None:
            return np.asarray(self.fallback_categorizer(jobs), dtype=np.int64)
        n_cat = getattr(self.policy, "n_categories", None)
        if n_cat is None or n_cat < 2:
            return np.zeros(len(jobs), dtype=np.int64)
        return np.array(
            [1 + stable_hash(j.pipeline) % (n_cat - 1) for j in jobs],
            dtype=np.int64,
        )

    @property
    def degraded_since(self) -> float | None:
        """Arrival time the current categorizer outage began (or None)."""
        return self._degraded_since

    @property
    def wal_seq(self) -> int:
        """WAL records this service has written or replayed so far."""
        return self._wal_seq

    # -- scalar mode ----------------------------------------------------

    def _decide_scalar(self, i: int) -> PlacementDecision:
        """One request-at-a-time decision (the serving latency path).

        Same kernel arithmetic as before, but allocation-free around
        it: the policy round-trip goes through the scalar
        ``decide_one``/``observe_one`` protocol (no context, decision,
        or outcome objects) and the log columns are read directly.
        """
        log = self.log
        kern = self.kernel
        t = log._arrivals.data.item(i)
        kern.release_until(t)
        if t > self._now:
            self._now = t
        if t > self._horizon:
            self._horizon = t
        s = int(log._lanes.data[i]) if self.n_shards > 1 else 0
        want_ssd, ssd_ttl = self.policy.decide_one(
            i, t, kern.free.item(s), kern.lane_capacity.item(s)
        )
        space_frac, frac, spill_time, alloc, release = kern.admit(
            i, t, log._sizes.data.item(i), log._durations.data.item(i), s,
            want_ssd, ssd_ttl,
        )
        self._frac.append(frac)
        self.policy.observe_one(i, t, want_ssd, space_frac, spill_time, s)
        job_id = log.job_ids[i]
        if self.track_jobs and alloc > 0 and release > self._now:
            self._live[job_id] = (i, s, float(alloc), float(release))
            self._maybe_sweep_live()
        self._decided += 1
        self.stats.n_decided += 1
        if want_ssd:
            cats = getattr(self.policy, "categories", None)
            if cats is not None and len(cats) > i:
                self._cat_counter(int(cats[i])).inc()
        tr = self.tracer
        if tr is not None and tr.sampled(job_id):
            self._trace_decision(
                tr, i, job_id, t, s, bool(want_ssd), float(space_frac),
                spill_time, float(release),
                getattr(self.policy, "categories", None),
            )
        return PlacementDecision(
            i, job_id, t, s, want_ssd, space_frac, spill_time, float(release),
        )

    # -- tracing ---------------------------------------------------------

    def _trace_decision(
        self, tr, i, job_id, t, lane, want_ssd, frac, spill, release, cats,
    ) -> None:
        """Record one sampled job's span (all timestamps logical).

        ``cats`` is the policy's category column (or ``None``), hoisted
        to the caller so the chunk recorder resolves it once per chunk
        instead of once per span.  The span is built whole and handed
        to :meth:`Tracer.add` — identical structure to the event-by-
        event path, minus its per-event call overhead.
        """
        t = float(t)
        events = [["submit", t, {"index": i}]]
        if cats is not None and len(cats) > i:
            events.append(["categorize", t, {"category": int(cats[i])}])
        events.append(["admit", t, {"want_ssd": want_ssd, "lane": lane}])
        if frac > 0.0:
            events.append(
                ["place", t, {"ssd_fraction": frac, "release": release}]
            )
        if spill is not None and spill == spill:  # skip None and NaN
            events.append(["spill", float(spill), {}])
        tr.add({"job_id": job_id, "events": events})

    def _trace_scan(self) -> None:
        """Advance the sampled-index scan to the current log length.

        With auto-assigned ids (id == submission index, the common
        replay shape) the sampling hash depends only on the integer id,
        so it runs *ahead* of the log in ``_TRACE_SCAN_BLOCK`` strides
        — a handful of vector passes per million decisions instead of
        one per submission.  Custom ids fall back to a scalar scan of
        the appended suffix; ``_trace_confirmed`` tracks how much of
        the log is known to carry auto ids, so if a custom-id append
        ever lands after the hash ran ahead, the speculative tail is
        dropped and rescanned from the real ids.

        Runs once per pump (the log cannot grow mid-pump); the sampled
        indices are then consumed chunk by chunk through a monotone
        cursor (chunks decide the log strictly in order), and the pump
        skips the recorder call entirely for chunks with nothing
        sampled — at production chunk rates the per-chunk fixed cost,
        not the hash, was the dominant tracing cost.
        """
        tr = self.tracer
        log = self.log
        n = len(log)
        sel = self._trace_sel
        if log._ids_auto:
            if self._trace_scanned < n:
                lo = self._trace_scanned
                hi = max(n, lo + _TRACE_SCAN_BLOCK)
                ids_u = np.arange(lo, hi, dtype=np.uint64)
                hit = np.flatnonzero(
                    ((ids_u * _PRIME_U64) & _MASK32) < np.uint64(tr.threshold)
                )
                sel.extend((lo + hit).tolist())
                self._trace_scanned = hi
            self._trace_confirmed = n
        else:
            conf = self._trace_confirmed
            if self._trace_scanned > conf:
                # Ids stopped being auto-assigned after the hash ran
                # ahead: entries above the last confirmed length were
                # hashed from the submission index, which no longer
                # equals the id.  Nothing at or above ``conf`` has been
                # consumed yet (the cursor trails the decided log), so
                # the speculative tail can be dropped wholesale.
                while sel and sel[-1] >= conf:
                    sel.pop()
                self._trace_scanned = conf
            if self._trace_scanned < n:
                ids_all = log.job_ids
                sel.extend(
                    k for k in range(self._trace_scanned, n)
                    if tr.sampled(ids_all[k])
                )
                self._trace_scanned = n
            self._trace_confirmed = n

    def _trace_pump(self, batches) -> None:
        """Record the spans sampled across one pump's decided chunks.

        Pure consumption: :meth:`_trace_scan` already extended
        ``_trace_sel`` past the decided horizon, and the pump only
        calls this when the cursor points below it.  One pass over the
        pump's decision batches replaces a recorder call per chunk —
        at production chunk rates that per-chunk fixed cost, not the
        sampling hash, was the dominant tracing cost.
        """
        tr = self.tracer
        sel = self._trace_sel
        cur = self._trace_cursor
        n_sel = len(sel)
        ids = self.log.job_ids
        cats = getattr(self.policy, "categories", None)
        for db in batches:
            outcomes = db._outcomes
            first = outcomes.first
            stop = first + len(outcomes.times)
            # Entries below ``first`` were decided before this
            # instance's cursor existed (a restore from a pre-tracing
            # snapshot rescans the whole log); skip them silently.
            while cur < n_sel and sel[cur] < first:
                cur += 1
            if cur >= n_sel:
                break
            if sel[cur] >= stop:
                continue
            times = outcomes.times
            req = outcomes.requested_ssd
            fracs = outcomes.ssd_space_fraction
            spills = outcomes.spill_time
            lanes = outcomes.shards
            rel_buf = db._rel
            while cur < n_sel and sel[cur] < stop:
                i = sel[cur]
                cur += 1
                k = i - first
                self._trace_decision(
                    tr, i, ids[i], float(times[k]),
                    0 if lanes is None else int(lanes[k]),
                    bool(req[k]), float(fracs[k]), float(spills[k]),
                    0.0 if rel_buf is None else float(rel_buf[k]),
                    cats,
                )
        self._trace_cursor = cur

    def export_trace(self, path) -> int:
        """Write the tracer's retained spans as JSONL; returns the count."""
        if self.tracer is None:
            raise RuntimeError("service has no tracer")
        return self.tracer.export_jsonl(path)

    # -- batch mode -----------------------------------------------------

    def _pump(self, force: bool = False) -> Sequence[PlacementDecision]:
        """Process every policy chunk the queue can close.

        A chunk closes when the policy's declared run of jobs is fully
        buffered; ``force`` (drain / backpressure) closes it at the
        available horizon instead, mirroring the offline engine's
        end-of-trace clamp.

        Returns the resolved decisions as a lazy sequence (``[]`` when
        nothing resolved): per-job decision objects are built only if
        the caller actually reads them.
        """
        out: list[_DecisionBatch] = []
        log = self.log
        kern = self.kernel
        n = len(log)
        # Peak queue depth is the backlog *before* closable chunks
        # drain, i.e. right after the triggering submission.
        self.stats.max_pending_seen = max(
            self.stats.max_pending_seen, n - self._decided
        )
        tracer = self.tracer
        tracing = tracer is not None and tracer.threshold
        if tracing:
            self._trace_scan()
            t_sel = self._trace_sel
        forcing = force
        while self._decided < n:
            first = self._decided
            if self._plan is None:
                t0 = float(log.arrivals[first])
                s0 = int(log.lanes[first]) if self.n_shards > 1 else 0
                ctx = kern.open_chunk(t0, s0)
                # The release cursor is now at t0, possibly ahead of
                # _now while the chunk waits for more submissions; see
                # _horizon and the complete() guard.
                if t0 > self._horizon:
                    self._horizon = t0
                self._plan = self.policy.decide_batch(first, ctx)
            bd = self._plan
            want = max(1, int(bd.count))
            if want > n - first and not forcing:
                if (
                    self.max_pending is not None
                    and n - self._decided > self.max_pending
                ):
                    forcing = True  # backpressure: stop holding the queue
                    self.stats.forced_chunks += 1
                else:
                    break
            count = min(want, n - first)
            stop = first + count
            self._frac.ensure(n)
            alloc_buf = np.zeros(count) if self.track_jobs else None
            rel_buf = np.zeros(count) if self.track_jobs else None
            outcomes = kern.run_chunk(
                bd, first, stop,
                log._arrivals.data, log._durations.data, log._sizes.data,
                log._lanes.data if self.n_shards > 1 else None,
                self._frac.data,
                alloc_buf, rel_buf,
            )
            self._frac.n = stop
            self.policy.observe_batch(outcomes)
            self._advance_now(float(log.arrivals[stop - 1]))
            if self.track_jobs:
                self._track_live_chunk(outcomes, alloc_buf, rel_buf)
            out.append(_DecisionBatch(outcomes, alloc_buf, rel_buf, log.job_ids))
            self._decided = stop
            self.stats.n_decided += count
            self.stats.n_chunks += 1
            self._count_admissions(first, stop, outcomes.requested_ssd)
            self._m_chunk_jobs.observe(count)
            self._plan = None
            n = len(log)
        if tracing and out:
            cur = self._trace_cursor
            if cur < len(t_sel) and t_sel[cur] < self._decided:
                self._trace_pump(out)
        if not out:
            return []
        if len(out) == 1:
            return out[0]
        return _DecisionConcat(out)

    # -- completion events ----------------------------------------------

    def _track_live_chunk(self, outcomes, alloc_buf, rel_buf) -> None:
        """Vectorized live-table insert for one decided chunk."""
        live = np.flatnonzero((alloc_buf > 0.0) & (rel_buf > self._now))
        if not live.size:
            return
        first = outcomes.first
        lanes = outcomes.shards
        job_ids = self.log.job_ids
        table = self._live
        allocs = alloc_buf[live].tolist()
        rels = rel_buf[live].tolist()
        lanes_l = [0] * live.size if lanes is None else lanes[live].tolist()
        for k, alloc, release, lane in zip(live.tolist(), allocs, rels, lanes_l):
            i = first + k
            table[job_ids[i]] = (i, lane, alloc, release)
        self._maybe_sweep_live()

    def _maybe_sweep_live(self) -> None:
        """Amortized prune of naturally-released live-table entries.

        An entry whose scheduled release has passed is dead weight —
        ``complete`` for it is already a guarded no-op — so instead of
        a per-decision release heap, the table is swept whenever it
        doubles past its post-sweep size.  O(live jobs) memory, O(1)
        amortized per decision.
        """
        if len(self._live) < self._live_sweep_at:
            return
        now = self._now
        self._live = {j: e for j, e in self._live.items() if e[3] > now}
        self._live_sweep_at = max(64, 2 * len(self._live))

    def _advance_now(self, t: float) -> None:
        """Move the service clock (never backwards)."""
        if t > self._now:
            self._now = t

    def complete(self, job_id, time: float | None = None) -> bool:
        """Signal that a job finished early, releasing its SSD space now.

        Returns ``True`` when outstanding space was actually freed;
        ``False`` when the job is unknown, held no space, was already
        released by its scheduled timeout, or was already completed — a
        duplicate ``complete`` for the same id is a counted no-op, never
        a double-free.  ``time`` advances the service clock (defaults
        to the last decision time); a timestamp *earlier* than the
        current clock is clamped to it and counted in
        ``ServiceStats.stale_completes`` — time never runs backwards.
        """
        self._ensure_open()
        if self.wal is not None and not self._replaying:
            self.wal.append(
                {"op": "complete", "job_id": job_id,
                 "time": None if time is None else float(time)}
            )
            self._wal_seq += 1
        if time is not None:
            t = float(time)
            if t < self._now:
                self.stats.stale_completes += 1
                t = self._now
            self._advance_now(t)
        entry = self._live.pop(job_id, None)
        if entry is None:
            self.stats.duplicate_completes += 1
            freed = False
        else:
            index, lane, alloc, release = entry
            if release <= self._now or release <= self._horizon:
                # Scheduled release already fired — either the clock
                # passed it, or an opened (still pending) chunk advanced
                # the kernel's release cursor past it.  Cancelling now
                # would free the space a second time.
                freed = False
            else:
                if self.mode == "scalar":
                    self.kernel.cancel(index, lane, alloc)
                else:
                    self.kernel.cancel(lane, alloc, release)
                self.stats.n_completions += 1
                freed = True
        if self.tracer is not None:
            # The caller's timestamp (a deterministic input) when given;
            # the service clock otherwise.
            t_ev = float(time) if time is not None else (
                float(self._now) if np.isfinite(self._now) else 0.0
            )
            self.tracer.event(job_id, "complete", t_ev, freed=freed)
        return freed

    # -- capacity shocks ------------------------------------------------

    def apply_shock(
        self,
        capacity: float | np.ndarray | None = None,
        *,
        lane: int | None = None,
        scale: float | None = None,
    ) -> ShockReport:
        """Change the lane capacity layout mid-stream.

        Three spellings:

        - ``apply_shock(bytes, lane=k)`` — resize one caching server
          (``0`` = lane loss, its old capacity again = restore);
        - ``apply_shock(vector)`` — set the full per-lane layout;
        - ``apply_shock(total)`` / ``apply_shock(scale=f)`` — a quota
          change: the current layout scales proportionally (an even
          split if the fleet currently has zero capacity).

        Queued decisions are flushed first — the shock lands on a chunk
        boundary, never inside one.  Residents that no longer fit are
        evicted latest-release-first through the kernel (each counted
        as a spill and in ``ServiceStats``), their live-table entries
        retired so a later ``complete`` cannot double-free, and
        ``on_shard_topology`` re-fires with the new layout so per-shard
        adaptive thresholds re-adapt; their accumulated state is
        preserved (see
        :meth:`~repro.core.AdaptiveCategoryPolicy.on_shard_topology`).
        """
        self._ensure_open()
        new_caps = self._resolve_shock(capacity, lane, scale)
        if self.wal is not None and not self._replaying:
            self.wal.append({"op": "shock", "caps": new_caps.tolist()})
            self._wal_seq += 1
        flushed = self._pump(force=True) if self.mode == "batch" else []
        kern = self.kernel
        scalar_evicted: list[tuple[float, int, float]] = []
        chunk_evicted: list[tuple[int, float, float]] = []
        for L in range(self.n_shards):
            if float(new_caps[L]) == float(self.lane_capacities[L]):
                continue
            entries = kern.resize_lane(L, float(new_caps[L]))
            if self.mode == "scalar":
                scalar_evicted.extend(entries)
            else:
                chunk_evicted.extend((L, r, a) for (r, a) in entries)
        # lane_capacities is the very array the kernel mutates; only
        # the scalar total needs re-syncing.
        self.capacity = float(kern.capacity)
        n_evicted = len(scalar_evicted) + len(chunk_evicted)
        evicted_bytes = sum(a for (_, _, a) in scalar_evicted) + sum(
            a for (_, _, a) in chunk_evicted
        )
        if n_evicted:
            self._purge_live(scalar_evicted, chunk_evicted)
        self.policy.on_shard_topology(
            self._shards_ref, self.lane_capacities.copy()
        )
        self.stats.n_shocks += 1
        self.stats.n_evicted += n_evicted
        self.stats.evicted_bytes += evicted_bytes
        return ShockReport(
            time=float(self._now) if np.isfinite(self._now) else 0.0,
            lane_capacities=self.lane_capacities.copy(),
            n_evicted=n_evicted,
            evicted_bytes=evicted_bytes,
            flushed=len(flushed),
            decisions=tuple(flushed),
        )

    def _resolve_shock(self, capacity, lane, scale) -> np.ndarray:
        """Resolve one shock spelling to the new per-lane layout."""
        cur = np.asarray(self.lane_capacities, dtype=float)
        if scale is not None:
            if capacity is not None or lane is not None:
                raise ValueError("scale= excludes capacity=/lane=")
            if scale < 0:
                raise ValueError("scale must be >= 0")
            return cur * float(scale)
        if capacity is None:
            raise ValueError("apply_shock needs capacity= or scale=")
        if lane is not None:
            if not 0 <= lane < self.n_shards:
                raise ValueError(f"lane {lane} out of range")
            cap = float(np.asarray(capacity, dtype=float))
            if cap < 0:
                raise ValueError("capacity must be >= 0")
            new = cur.copy()
            new[lane] = cap
            return new
        arr = np.asarray(capacity, dtype=float)
        if arr.ndim == 0:
            total = float(arr)
            if total < 0:
                raise ValueError("capacity must be >= 0")
            cur_total = float(cur.sum())
            if cur_total > 0:
                return cur * (total / cur_total)
            return np.full(self.n_shards, total / self.n_shards)
        if arr.shape != (self.n_shards,):
            raise ValueError(
                f"capacity vector has {arr.size} entries for "
                f"{self.n_shards} shards"
            )
        if (arr < 0).any():
            raise ValueError("capacity must be >= 0")
        return arr.astype(float)

    def _purge_live(self, scalar_evicted, chunk_evicted) -> None:
        """Retire evicted jobs from the live table.

        Scalar evictions carry the job index; chunk evictions are
        matched by ``(lane, release_time, alloc)`` — floats the table
        carries verbatim, so matches are exact.  Stale ``_live_sched``
        heap entries are skipped naturally when they surface.
        """
        if scalar_evicted:
            gone = {i for (_, i, _) in scalar_evicted}
            for jid in [j for j, v in self._live.items() if v[0] in gone]:
                del self._live[jid]
        if chunk_evicted:
            want: dict[tuple[int, float, float], int] = {}
            for L, r, a in chunk_evicted:
                key = (L, r, a)
                want[key] = want.get(key, 0) + 1
            for jid in list(self._live):
                _, lane_, alloc, release = self._live[jid]
                key = (lane_, release, alloc)
                c = want.get(key, 0)
                if c:
                    want[key] = c - 1
                    del self._live[jid]

    # -- checkpointing --------------------------------------------------

    def snapshot(self) -> ServiceSnapshot:
        """Checkpoint the full mutable state of the service.

        The policy, kernel, log, queue (including any pending jobs and
        cached chunk plan) and live-job table are deep copied as one
        object graph (shared references — e.g. a policy bound to the
        service's log — stay shared inside the copy).  A replay trace
        handed to :meth:`open` is not copied: it is immutable input,
        and both the live service and every restore keep referencing
        the original.  The write-ahead log handle is excluded — only
        its sequence number travels, as the snapshot's WAL anchor.
        """
        memo: dict = {}
        trace = getattr(self.policy, "_trace", None)
        if trace is not None and trace is not self.log:
            memo[id(trace)] = trace
        payload = {k: v for k, v in self.__dict__.items() if k != "wal"}
        payload = copy.deepcopy(payload, memo)
        payload["wal"] = None
        payload["__schema__"] = SNAPSHOT_SCHEMA
        payload["__version__"] = __version__
        return ServiceSnapshot(
            payload=payload,
            n_submitted=self.stats.n_submitted,
            n_decided=self._decided,
            n_pending=self.pending,
            wal_seq=self._wal_seq,
        )

    @staticmethod
    def _check_schema(payload: dict, expected: int, what: str) -> None:
        """Refuse a payload this library version cannot restore."""
        schema = payload.get("__schema__")
        if schema != expected:
            wrote = payload.get("__version__")
            wrote = (
                f"library version {wrote}" if wrote is not None
                else "an older library version (no schema tag)"
            )
            raise SnapshotMismatch(
                f"{what} has schema {schema!r}, this library "
                f"(version {__version__}) restores schema {expected}; "
                f"it was written by {wrote} — re-create the checkpoint "
                "with a matching version"
            )

    @classmethod
    def restore(cls, snapshot: ServiceSnapshot) -> "PlacementService":
        """Rebuild a service from a snapshot (the snapshot stays intact).

        Raises :class:`~repro.serve.types.SnapshotMismatch` when the
        snapshot's schema tag is one this library cannot restore — e.g.
        a checkpoint written by an incompatible version — instead of
        silently rebuilding a service with missing or misshapen state.
        Older-but-compatible schemas
        (:data:`~repro.serve.types.COMPAT_SNAPSHOT_SCHEMAS`) restore by
        backfilling the missing state with fresh defaults: a
        pre-metrics payload gets a fresh registry (counters restart
        rather than KeyError), a pre-alerting payload gets no
        manager/tracer.
        """
        payload = snapshot.payload
        if payload.get("__schema__") not in COMPAT_SNAPSHOT_SCHEMAS:
            cls._check_schema(payload, SNAPSHOT_SCHEMA, "service snapshot")
        trace = getattr(payload["policy"], "_trace", None)
        memo: dict = {}
        if trace is not None and trace is not payload["log"]:
            memo[id(trace)] = trace
        svc = object.__new__(cls)
        state = copy.deepcopy(payload, memo)
        state.pop("__schema__", None)
        state.pop("__version__", None)
        svc.__dict__ = state
        if "registry" not in state:
            # Pre-metrics checkpoint (schema 1): fresh surface, fresh
            # hot-path instruments.
            svc.registry = MetricsRegistry()
            svc._m_cat = {}
            svc._init_metrics()
        state.setdefault("alerts", None)
        state.setdefault("tracer", None)
        state.setdefault("_clock", state.get("_now", -np.inf))
        state.setdefault("_trace_sel", [])
        state.setdefault("_trace_scanned", 0)
        state.setdefault("_trace_confirmed", 0)
        state.setdefault("_trace_cursor", 0)
        state.setdefault("_pinned", None)
        state.setdefault("_alert_sync", None)
        # Wall-clock gauges restart with the restored instance; the
        # checkpointed perf_counter origin belongs to a dead process.
        svc._metrics_t0 = perf_counter()
        return svc

    def checkpoint(self, path) -> ServiceSnapshot:
        """Pickle a :meth:`snapshot` to ``path`` atomically.

        Written to a temp file then renamed, so a crash mid-checkpoint
        leaves the previous checkpoint intact.  Returns the snapshot.
        """
        snap = self.snapshot()
        path = str(path)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(snap, fh)
        os.replace(tmp, path)
        return snap

    @classmethod
    def recover(cls, checkpoint, wal) -> "PlacementService":
        """Rebuild the exact pre-crash service from checkpoint + WAL.

        ``checkpoint`` is a :class:`ServiceSnapshot` or a path written
        by :meth:`checkpoint`; ``wal`` a
        :class:`~repro.serve.wal.WriteAheadLog` or its path.  The
        snapshot is restored and every intact WAL record past its
        ``wal_seq`` anchor is replayed through the normal entry points
        (submissions at their original micro-batch granularity, with
        their recorded categories; completes; shocks; drains) — the
        same deterministic kernels run the same operations in the same
        order, so the recovered state matches the uninterrupted run
        bit for bit.  The WAL stays attached: the service keeps
        appending where the crashed instance left off.
        """
        if not isinstance(checkpoint, ServiceSnapshot):
            with open(checkpoint, "rb") as fh:
                loaded = pickle.load(fh)
            if not isinstance(loaded, ServiceSnapshot):
                raise SnapshotMismatch(
                    f"checkpoint file holds a {type(loaded).__name__}, "
                    "not a ServiceSnapshot — wrong file or incompatible "
                    "library version"
                )
            checkpoint = loaded
        if not isinstance(wal, WriteAheadLog):
            wal = WriteAheadLog(wal)
        svc = cls.restore(checkpoint)
        svc._replaying = True
        try:
            for seq, rec in wal.records(checkpoint.wal_seq):
                svc._apply_wal_record(rec)
                svc._wal_seq = seq + 1
        finally:
            svc._replaying = False
            svc._replay_cats = None
        svc.wal = wal
        return svc

    def _apply_wal_record(self, rec: dict) -> None:
        """Replay one WAL record through the normal entry points."""
        op = rec.get("op")
        if op == "submit":
            self._stash_replay_cats(rec)
            self.submit(
                arrival=rec["arrival"], duration=rec["duration"],
                size=rec["size"], read_bytes=rec["read_bytes"],
                write_bytes=rec["write_bytes"], read_ops=rec["read_ops"],
                pipeline=rec["pipeline"], user=rec["user"],
                job_id=rec["job_id"],
            )
        elif op == "batch":
            self._stash_replay_cats(rec)
            arrivals = np.asarray(rec["arrivals"], dtype=float)
            k = arrivals.size
            zeros = np.zeros(k)

            def col(name):
                v = rec[name]
                return zeros if v is None else np.asarray(v, dtype=float)

            self.submit_batch(
                arrivals, col("durations"), col("sizes"),
                col("read_bytes"), col("write_bytes"), col("read_ops"),
                pipelines=rec["pipelines"], users=rec["users"],
                job_ids=rec["job_ids"],
            )
        elif op == "jobs":
            self._stash_replay_cats(rec)
            self.submit_jobs([job_from_record(d) for d in rec["jobs"]])
        elif op == "complete":
            self.complete(rec["job_id"], time=rec["time"])
        elif op == "drain":
            self.drain()
        elif op == "shock":
            self.apply_shock(np.asarray(rec["caps"], dtype=float))
        else:
            raise WalCorruption(f"unknown WAL record op {op!r}")

    def _stash_replay_cats(self, rec: dict) -> None:
        if "cats" in rec:
            self._replay_cats = (rec["cats"], bool(rec.get("degraded", False)))

    # -- results --------------------------------------------------------

    def result(
        self, drain: bool = True, aggregate_only: bool = False
    ) -> SimResult:
        """Roll the decisions so far up into a
        :class:`~repro.storage.engine.SimResult`.

        Costs are computed over the service's job log — for a full
        replay this is column-for-column the input trace, so the result
        is bit-identical to the offline engine's.  ``drain`` (default)
        flushes queued jobs first; with ``drain=False`` the call raises
        if undecided jobs remain.  ``aggregate_only`` drops the per-job
        array exactly as ``run_placement(..., aggregate_only=True)``.
        """
        self._ensure_open()
        if drain:
            self.drain()
        elif self.pending:
            raise RuntimeError(
                f"{self.pending} submitted jobs still queued; drain() first "
                "or call result(drain=True)"
            )
        kern = self.kernel
        scalar_fallback = 0 if self.mode == "scalar" else kern.scalar_fallback_jobs
        return _finalize(
            self.log, self.policy, self.capacity, self.lane_capacities,
            self.n_shards, self.rates,
            self._frac.view().copy(),
            kern.n_ssd_requested, kern.n_spilled, kern.peak_used,
            scalar_fallback_jobs=scalar_fallback,
            aggregate_only=aggregate_only,
        )

    # -- replay ---------------------------------------------------------

    def replay(
        self, trace, batch_jobs: int | None = None
    ) -> SimResult:
        """Drive a whole trace through the service and return the result.

        Opens the service in replay mode, submits the trace — job by
        job in ``"scalar"`` mode, in micro-batches of ``batch_jobs``
        (default: one batch) in ``"batch"`` mode — then drains and
        finalizes.  The result is bit-identical to
        ``run_placement(trace, ...)`` with the matching engine.
        """
        from ..workloads.streaming import materialize_trace

        trace = materialize_trace(trace)
        self.open(trace)
        n = len(trace)
        if self.mode == "scalar":
            for i in range(n):
                self.submit(
                    arrival=trace.arrivals[i],
                    duration=trace.durations[i],
                    size=trace.sizes[i],
                    read_bytes=trace.read_bytes[i],
                    write_bytes=trace.write_bytes[i],
                    read_ops=trace.read_ops[i],
                    pipeline=trace.pipelines[i],
                )
        else:
            step = max(n, 1) if batch_jobs is None else max(int(batch_jobs), 1)
            pipelines = trace.pipelines
            for lo in range(0, n, step):
                hi = min(lo + step, n)
                self.submit_batch(
                    trace.arrivals[lo:hi], trace.durations[lo:hi],
                    trace.sizes[lo:hi], trace.read_bytes[lo:hi],
                    trace.write_bytes[lo:hi], trace.read_ops[lo:hi],
                    pipelines=pipelines[lo:hi],
                )
        return self.result()
