"""The stateful online placement service.

:class:`PlacementService` turns the offline placement runtime into a
live request-at-a-time controller: jobs are *submitted* as they arrive
(one at a time or in micro-batches), each submission mutates live
fleet/lane state — free space, pending releases, spillover windows,
adaptive thresholds — and yields a :class:`PlacementDecision` routing
the job to SSD or HDD on its caching server.  ``complete`` events
return space early; ``snapshot``/``restore`` checkpoint the full
service state mid-stream.

Relation to the offline runtime
-------------------------------
The service does not reimplement the engine: it drives the same
incremental kernels (:class:`~repro.storage.engine.ScalarKernel`,
:class:`~repro.storage.engine.ChunkKernel`) that
:func:`~repro.storage.engine.run_placement` drives, one submission at
a time instead of one trace at a time.  Two operating modes mirror the
two engines:

- ``mode="scalar"`` — one policy round-trip per submission, the legacy
  engine's arithmetic.  Replaying a trace job by job is
  **bit-identical** to ``simulate(trace, ..., engine="legacy")``.
- ``mode="batch"`` — submissions are queued and processed in the
  *policy's* decision-interval chunks (the chunked engine's
  arithmetic).  The queue is the admission buffer: a chunk runs as
  soon as the policy's declared run of jobs is fully buffered, and
  ``drain()`` flushes the tail exactly as the offline engine clamps
  its final chunk at trace end.  Because chunk boundaries are decided
  by the policy in both drivers — never by micro-batch boundaries —
  replaying a trace through any micro-batch slicing plus a final drain
  is **bit-identical** to ``simulate(trace, ..., engine="chunked")``.

``tests/test_serve_service.py`` pins both identities across policies,
engines and shard counts.

Backpressure
------------
``max_pending`` bounds the admission queue: when a submission leaves
more than ``max_pending`` undecided jobs queued (the policy's declared
chunk still incomplete), the service force-closes chunks at the
available horizon, trading the offline-equal chunk boundaries for
bounded decision latency — the same trade a production frontend makes
when it refuses to hold requests for a full decision interval.
"""

from __future__ import annotations

import copy
import heapq
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..cost import CostRates, DEFAULT_RATES
from ..storage.engine import (
    ChunkKernel,
    ScalarKernel,
    SimResult,
    _finalize,
    _normalize_capacity,
    assign_shards,
)
from ..storage.policy import PlacementContext, PlacementOutcome, PlacementPolicy
from ..workloads.job import ShuffleJob, TraceBase
from .log import GrowArray, JobLog

__all__ = ["PlacementDecision", "ServiceSnapshot", "ServiceStats", "PlacementService"]


@dataclass(frozen=True)
class PlacementDecision:
    """The service's verdict for one submitted job.

    Attributes
    ----------
    index:
        Submission index (position in the service's job log).
    job_id:
        Caller-supplied identity (submission index when omitted); the
        key ``complete`` events use.
    time:
        Arrival time the decision was applied at.
    shard:
        Caching server the job was routed to (0 with one global pool).
    requested_ssd:
        Whether the policy asked for SSD placement.
    ssd_space_fraction:
        Fraction of the footprint that fit on SSD (0.0 when HDD-routed
        or fully spilled).
    spill_time:
        When spillover began, or ``None`` if nothing spilled.
    release_time:
        Scheduled release of the job's SSD allocation (arrival +
        residency), meaningful when some space was allocated.
    """

    index: int
    job_id: object
    time: float
    shard: int
    requested_ssd: bool
    ssd_space_fraction: float
    spill_time: float | None
    release_time: float


@dataclass(frozen=True)
class ServiceSnapshot:
    """A deep-copied checkpoint of a :class:`PlacementService`.

    Produced by :meth:`PlacementService.snapshot`; consumed by
    :meth:`PlacementService.restore`.  The payload owns copies of all
    mutable state (kernel, policy, log, queue bookkeeping), so the
    original service may keep running and one snapshot may be restored
    any number of times.  Snapshots are picklable whenever the policy
    is, which is what makes on-disk checkpointing possible.
    """

    payload: dict = field(repr=False)
    n_submitted: int = 0
    n_decided: int = 0


@dataclass
class ServiceStats:
    """Running operational counters of one service instance."""

    n_submitted: int = 0
    n_decided: int = 0
    n_chunks: int = 0
    n_completions: int = 0
    duplicate_completes: int = 0
    forced_chunks: int = 0
    max_pending_seen: int = 0


class PlacementService:
    """Stateful request-at-a-time placement over the unified engine.

    Parameters
    ----------
    policy:
        Any :class:`~repro.storage.policy.PlacementPolicy`.  In
        ``"batch"`` mode it must implement ``decide_batch``.  Policies
        that consult a trace (categories, sizes) work in two ways:
        *replay* — pass the trace to :meth:`open` and submit its jobs
        in order — or *online* — use a serve-native policy
        (:class:`~repro.serve.OnlineAdaptivePolicy`) bound to the
        service's live job log, optionally fed by an on-the-fly
        ``categorizer``.
    capacity:
        Total SSD bytes (scalar, split evenly) or a per-shard vector,
        exactly as :func:`~repro.storage.engine.run_placement` takes it.
    n_shards:
        Caching-server count; jobs route by a stable pipeline hash.
    mode:
        ``"scalar"`` (decide per submission, legacy-engine arithmetic)
        or ``"batch"`` (queue and decide in policy chunks,
        chunked-engine arithmetic).
    max_pending:
        Backpressure bound on the admission queue (``"batch"`` mode):
        exceeding it force-closes chunks at the available horizon.
        ``None`` (default) never forces — decisions wait for the
        policy's full chunk (or :meth:`drain`), keeping replay
        bit-identical to the offline engine.
    categorizer:
        Optional callable ``jobs -> categories`` invoked on every
        submission (e.g. :class:`~repro.serve.OnlineCategorizer`:
        on-the-fly feature extraction + packed-forest prediction); the
        categories are streamed into the policy via its
        ``extend_categories`` hook.
    track_jobs:
        Keep a live table of outstanding SSD allocations so
        :meth:`complete` can release space early.  On by default; turn
        off to shave bookkeeping from pure-replay benchmarks.
    """

    def __init__(
        self,
        policy: PlacementPolicy,
        capacity: float | np.ndarray,
        n_shards: int = 1,
        *,
        mode: str = "batch",
        rates: CostRates = DEFAULT_RATES,
        shard_seed: int = 0,
        max_pending: int | None = None,
        categorizer=None,
        track_jobs: bool = True,
        name: str = "service",
    ):
        if mode not in ("scalar", "batch"):
            raise ValueError(f"unknown service mode {mode!r}")
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if mode == "batch" and not callable(getattr(policy, "decide_batch", None)):
            raise ValueError(
                f"policy {policy.name!r} does not implement decide_batch; "
                "use mode='scalar'"
            )
        if max_pending is not None and max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self.policy = policy
        self.n_shards = n_shards
        self.mode = mode
        self.rates = rates
        self.shard_seed = shard_seed
        self.max_pending = max_pending
        self.categorizer = categorizer
        self.track_jobs = track_jobs
        lane_caps, total = _normalize_capacity(capacity, n_shards)
        self.lane_capacities = lane_caps
        self.capacity = total
        self.log = JobLog(rates=rates, n_shards=n_shards, shard_seed=shard_seed, name=name)
        self.kernel = (
            ScalarKernel(lane_caps, total)
            if mode == "scalar"
            else ChunkKernel(lane_caps, total)
        )
        self.stats = ServiceStats()
        self._frac = GrowArray(float)
        self._decided = 0
        self._plan = None  # cached (BatchDecision for job index _decided)
        self._now = -np.inf
        self._opened = False
        self._live: dict = {}  # job_id -> (index, lane, alloc, release_time)
        self._live_sched: list[tuple[float, object]] = []  # (release_time, job_id)

    # -- lifecycle ------------------------------------------------------

    @property
    def pending(self) -> int:
        """Submitted jobs still queued for a decision (batch mode)."""
        return len(self.log) - self._decided

    @property
    def n_decided(self) -> int:
        return self._decided

    def open(self, trace: TraceBase | None = None) -> "PlacementService":
        """Wire the policy up and start accepting submissions.

        With ``trace`` (replay mode) the policy receives exactly the
        hooks the offline runtime would give it —
        ``on_simulation_start`` with the full trace and the
        precomputed shard routing — and the caller must then submit the
        trace's jobs in order.  Without a trace (online mode) the
        policy is bound to the service's live job log: it sees the
        submitted prefix wherever it would have seen the trace.
        Called implicitly (online mode) by the first submission.
        """
        if self._opened:
            raise RuntimeError("service already opened")
        self._opened = True
        policy = self.policy
        if trace is not None:
            shards = (
                assign_shards(trace, self.n_shards, seed=self.shard_seed)
                if self.n_shards > 1
                else None
            )
            policy.on_simulation_start(trace, self.capacity, self.rates)
            policy.on_shard_topology(shards, self.lane_capacities.copy())
        else:
            if hasattr(policy, "bind_log"):
                policy.bind_log(self.log)
            policy.on_simulation_start(self.log, self.capacity, self.rates)
            shards_view = self.log.column("lanes") if self.n_shards > 1 else None
            policy.on_shard_topology(shards_view, self.lane_capacities.copy())
        return self

    def _ensure_open(self) -> None:
        if not self._opened:
            self.open()

    # -- submissions ----------------------------------------------------

    def submit(
        self,
        job: ShuffleJob | None = None,
        *,
        arrival: float | None = None,
        duration: float | None = None,
        size: float | None = None,
        read_bytes: float = 0.0,
        write_bytes: float = 0.0,
        read_ops: float = 0.0,
        pipeline: str = "pipeline0",
        user: str = "user0",
        job_id=None,
    ) -> list[PlacementDecision]:
        """Submit one job; returns the decisions this submission resolved.

        In ``"scalar"`` mode the returned list holds exactly this job's
        decision.  In ``"batch"`` mode it holds every decision the
        submission unlocked — possibly none (the job is queued until
        the policy's decision chunk completes), possibly many (this
        arrival closed a chunk covering earlier queued jobs).
        """
        self._ensure_open()
        if job is not None:
            arrival, duration, size = job.arrival, job.duration, job.size
            read_bytes, write_bytes = job.read_bytes, job.write_bytes
            read_ops, pipeline, user = job.read_ops, job.pipeline, job.user
            if job_id is None:
                job_id = job.job_id
        elif arrival is None or duration is None or size is None:
            raise TypeError("submit() needs a ShuffleJob or arrival/duration/size")
        i = self.log.append_job(
            arrival, duration, size, read_bytes, write_bytes, read_ops,
            pipeline, user, job_id,
        )
        self.stats.n_submitted += 1
        if self.categorizer is not None:
            self._categorize(i, i + 1, [job] if job is not None else None)
        if self.mode == "scalar":
            return [self._decide_scalar(i)]
        return self._pump()

    def submit_batch(
        self,
        arrivals: np.ndarray,
        durations: np.ndarray,
        sizes: np.ndarray,
        read_bytes: np.ndarray | None = None,
        write_bytes: np.ndarray | None = None,
        read_ops: np.ndarray | None = None,
        pipelines: Sequence[str] | None = None,
        users: Sequence[str] | None = None,
        job_ids: Sequence | None = None,
    ) -> list[PlacementDecision]:
        """Submit one arrival-ordered micro-batch of jobs as columns.

        Returns every decision the batch resolved (see :meth:`submit`);
        undecided jobs stay queued for later submissions or
        :meth:`drain`.
        """
        self._ensure_open()
        arrivals = np.asarray(arrivals, dtype=float)
        zeros = np.zeros(arrivals.size)
        first, stop = self.log.append_block(
            arrivals, durations, sizes,
            zeros if read_bytes is None else read_bytes,
            zeros if write_bytes is None else write_bytes,
            zeros if read_ops is None else read_ops,
            pipelines, users, job_ids,
        )
        self.stats.n_submitted += stop - first
        if self.categorizer is not None:
            self._categorize(first, stop, None)
        if self.mode == "scalar":
            return [self._decide_scalar(i) for i in range(first, stop)]
        return self._pump()

    def submit_jobs(self, jobs: Sequence[ShuffleJob]) -> list[PlacementDecision]:
        """Submit one arrival-ordered micro-batch of rich job objects.

        Unlike :meth:`submit_batch` (bare columns), the original jobs —
        with their metadata and resource dictionaries — are handed to
        the categorizer, so model-driven admission sees the full
        Table-2 feature groups exactly as an offline extraction would.
        """
        self._ensure_open()
        jobs = list(jobs)
        if not jobs:
            return self._pump() if self.mode == "batch" else []
        first, stop = self.log.append_block(
            np.array([j.arrival for j in jobs]),
            np.array([j.duration for j in jobs]),
            np.array([j.size for j in jobs]),
            np.array([j.read_bytes for j in jobs]),
            np.array([j.write_bytes for j in jobs]),
            np.array([j.read_ops for j in jobs]),
            pipelines=[j.pipeline for j in jobs],
            users=[j.user for j in jobs],
            job_ids=[j.job_id for j in jobs],
        )
        self.stats.n_submitted += stop - first
        if self.categorizer is not None:
            self._categorize(first, stop, jobs)
        if self.mode == "scalar":
            return [self._decide_scalar(i) for i in range(first, stop)]
        return self._pump()

    def submit_block(self, block) -> list[PlacementDecision]:
        """Submit one :class:`~repro.workloads.streaming.TraceBlock`."""
        return self.submit_batch(
            block.arrivals, block.durations, block.sizes,
            block.read_bytes, block.write_bytes, block.read_ops,
            pipelines=block.pipelines, users=block.users,
            job_ids=None if block.job_ids is None else list(block.job_ids),
        )

    def drain(self) -> list[PlacementDecision]:
        """Decide every queued job now, closing partial chunks.

        The final-chunk clamping is exactly the offline engine's
        end-of-trace clamping, so a replay that submits a whole trace
        and then drains matches the offline run bit for bit.
        """
        self._ensure_open()
        return self._pump(force=True)

    def _categorize(self, first: int, stop: int, jobs) -> None:
        """Run the on-the-fly categorizer over newly appended jobs."""
        if jobs is None:
            jobs = [self.log[i] for i in range(first, stop)]
        cats = self.categorizer(jobs)
        extend = getattr(self.policy, "extend_categories", None)
        if extend is not None:
            extend(cats)

    # -- scalar mode ----------------------------------------------------

    def _decide_scalar(self, i: int) -> PlacementDecision:
        log = self.log
        kern = self.kernel
        t = log.arrivals[i]
        kern.release_until(t)
        self._advance_now(float(t))
        s = int(log.lanes[i]) if self.n_shards > 1 else 0
        ctx = PlacementContext(
            time=t, free_ssd=float(kern.free[s]),
            capacity=float(kern.lane_capacity[s]),
        )
        decision = self.policy.decide(i, ctx)
        space_frac, frac, spill_time, alloc, release = kern.admit(
            i, t, log.sizes[i], log.durations[i], s,
            decision.want_ssd, decision.ssd_ttl,
        )
        self._frac.append(frac if decision.want_ssd else 0.0)
        self.policy.observe(
            PlacementOutcome(
                job_index=i,
                time=t,
                requested_ssd=decision.want_ssd,
                ssd_space_fraction=space_frac if decision.want_ssd else 0.0,
                spill_time=spill_time,
                shard=s,
            )
        )
        job_id = log.job_ids[i]
        if self.track_jobs and alloc > 0 and release > self._now:
            self._track_live(job_id, i, s, float(alloc), float(release))
        self._decided += 1
        self.stats.n_decided += 1
        return PlacementDecision(
            index=i,
            job_id=job_id,
            time=float(t),
            shard=s,
            requested_ssd=decision.want_ssd,
            ssd_space_fraction=space_frac if decision.want_ssd else 0.0,
            spill_time=spill_time,
            release_time=float(release),
        )

    # -- batch mode -----------------------------------------------------

    def _pump(self, force: bool = False) -> list[PlacementDecision]:
        """Process every policy chunk the queue can close.

        A chunk closes when the policy's declared run of jobs is fully
        buffered; ``force`` (drain / backpressure) closes it at the
        available horizon instead, mirroring the offline engine's
        end-of-trace clamp.
        """
        out: list[PlacementDecision] = []
        log = self.log
        kern = self.kernel
        n = len(log)
        # Peak queue depth is the backlog *before* closable chunks
        # drain, i.e. right after the triggering submission.
        self.stats.max_pending_seen = max(
            self.stats.max_pending_seen, n - self._decided
        )
        forcing = force
        while self._decided < n:
            first = self._decided
            if self._plan is None:
                t0 = float(log.arrivals[first])
                s0 = int(log.lanes[first]) if self.n_shards > 1 else 0
                ctx = kern.open_chunk(t0, s0)
                self._plan = self.policy.decide_batch(first, ctx)
            bd = self._plan
            want = max(1, int(bd.count))
            if want > n - first and not forcing:
                if (
                    self.max_pending is not None
                    and n - self._decided > self.max_pending
                ):
                    forcing = True  # backpressure: stop holding the queue
                    self.stats.forced_chunks += 1
                else:
                    break
            count = min(want, n - first)
            stop = first + count
            self._frac.ensure(n)
            alloc_buf = np.zeros(count) if self.track_jobs else None
            rel_buf = np.zeros(count) if self.track_jobs else None
            outcomes = kern.run_chunk(
                bd, first, stop,
                log._arrivals.data, log._durations.data, log._sizes.data,
                log._lanes.data if self.n_shards > 1 else None,
                self._frac.data,
                alloc_buf, rel_buf,
            )
            self._frac.n = stop
            self.policy.observe_batch(outcomes)
            self._advance_now(float(log.arrivals[stop - 1]))
            out.extend(self._chunk_decisions(outcomes, alloc_buf, rel_buf))
            self._decided = stop
            self.stats.n_decided += count
            self.stats.n_chunks += 1
            self._plan = None
            n = len(log)
        return out

    def _chunk_decisions(self, outcomes, alloc_buf, rel_buf) -> list[PlacementDecision]:
        first = outcomes.first
        job_ids = self.log.job_ids
        lanes = outcomes.shards
        decisions = []
        for k in range(len(outcomes)):
            i = first + k
            st = outcomes.spill_time[k]
            alloc = 0.0 if alloc_buf is None else float(alloc_buf[k])
            release = float(outcomes.times[k]) if rel_buf is None else float(rel_buf[k])
            job_id = job_ids[i]
            if self.track_jobs and alloc > 0 and release > self._now:
                self._track_live(job_id, i, 0 if lanes is None else int(lanes[k]),
                                 alloc, release)
            decisions.append(
                PlacementDecision(
                    index=i,
                    job_id=job_id,
                    time=float(outcomes.times[k]),
                    shard=0 if lanes is None else int(lanes[k]),
                    requested_ssd=bool(outcomes.requested_ssd[k]),
                    ssd_space_fraction=float(outcomes.ssd_space_fraction[k]),
                    spill_time=None if np.isnan(st) else float(st),
                    release_time=release,
                )
            )
        return decisions

    # -- completion events ----------------------------------------------

    def _track_live(self, job_id, index, lane, alloc, release) -> None:
        self._live[job_id] = (index, lane, alloc, release)
        heapq.heappush(self._live_sched, (release, index, job_id))

    def _advance_now(self, t: float) -> None:
        """Move the service clock and prune naturally-released jobs."""
        if t > self._now:
            self._now = t
        sched = self._live_sched
        while sched and sched[0][0] <= self._now:
            _, _, job_id = heapq.heappop(sched)
            entry = self._live.get(job_id)
            if entry is not None and entry[3] <= self._now:
                del self._live[job_id]

    def complete(self, job_id, time: float | None = None) -> bool:
        """Signal that a job finished early, releasing its SSD space now.

        Returns ``True`` when outstanding space was actually freed;
        ``False`` when the job is unknown, held no space, was already
        released by its scheduled timeout, or was already completed — a
        duplicate ``complete`` for the same id is a counted no-op, never
        a double-free.  ``time`` advances the service clock (defaults
        to the last decision time).
        """
        self._ensure_open()
        if time is not None:
            self._advance_now(float(time))
        entry = self._live.pop(job_id, None)
        if entry is None:
            self.stats.duplicate_completes += 1
            return False
        index, lane, alloc, release = entry
        if release <= self._now:
            return False  # scheduled release already fired
        if self.mode == "scalar":
            self.kernel.cancel(index, lane, alloc)
        else:
            self.kernel.cancel(lane, alloc, release)
        self.stats.n_completions += 1
        return True

    # -- checkpointing --------------------------------------------------

    _SHARED_ATTRS = ("policy", "log", "kernel", "stats", "_frac", "_live",
                     "_live_sched", "_plan")

    def snapshot(self) -> ServiceSnapshot:
        """Checkpoint the full mutable state of the service.

        The policy, kernel, log, queue and live-job table are deep
        copied as one object graph (shared references — e.g. a policy
        bound to the service's log — stay shared inside the copy).  A
        replay trace handed to :meth:`open` is not copied: it is
        immutable input, and both the live service and every restore
        keep referencing the original.
        """
        memo: dict = {}
        trace = getattr(self.policy, "_trace", None)
        if trace is not None and trace is not self.log:
            memo[id(trace)] = trace
        payload = copy.deepcopy(self.__dict__, memo)
        return ServiceSnapshot(
            payload=payload,
            n_submitted=self.stats.n_submitted,
            n_decided=self._decided,
        )

    @classmethod
    def restore(cls, snapshot: ServiceSnapshot) -> "PlacementService":
        """Rebuild a service from a snapshot (the snapshot stays intact)."""
        payload = snapshot.payload
        trace = getattr(payload["policy"], "_trace", None)
        memo: dict = {}
        if trace is not None and trace is not payload["log"]:
            memo[id(trace)] = trace
        svc = object.__new__(cls)
        svc.__dict__ = copy.deepcopy(payload, memo)
        return svc

    # -- results --------------------------------------------------------

    def result(
        self, drain: bool = True, aggregate_only: bool = False
    ) -> SimResult:
        """Roll the decisions so far up into a
        :class:`~repro.storage.engine.SimResult`.

        Costs are computed over the service's job log — for a full
        replay this is column-for-column the input trace, so the result
        is bit-identical to the offline engine's.  ``drain`` (default)
        flushes queued jobs first; with ``drain=False`` the call raises
        if undecided jobs remain.  ``aggregate_only`` drops the per-job
        array exactly as ``run_placement(..., aggregate_only=True)``.
        """
        self._ensure_open()
        if drain:
            self.drain()
        elif self.pending:
            raise RuntimeError(
                f"{self.pending} submitted jobs still queued; drain() first "
                "or call result(drain=True)"
            )
        kern = self.kernel
        scalar_fallback = 0 if self.mode == "scalar" else kern.scalar_fallback_jobs
        return _finalize(
            self.log, self.policy, self.capacity, self.lane_capacities,
            self.n_shards, self.rates,
            self._frac.view().copy(),
            kern.n_ssd_requested, kern.n_spilled, kern.peak_used,
            scalar_fallback_jobs=scalar_fallback,
            aggregate_only=aggregate_only,
        )

    # -- replay ---------------------------------------------------------

    def replay(
        self, trace, batch_jobs: int | None = None
    ) -> SimResult:
        """Drive a whole trace through the service and return the result.

        Opens the service in replay mode, submits the trace — job by
        job in ``"scalar"`` mode, in micro-batches of ``batch_jobs``
        (default: one batch) in ``"batch"`` mode — then drains and
        finalizes.  The result is bit-identical to
        ``run_placement(trace, ...)`` with the matching engine.
        """
        from ..workloads.streaming import materialize_trace

        trace = materialize_trace(trace)
        self.open(trace)
        n = len(trace)
        if self.mode == "scalar":
            for i in range(n):
                self.submit(
                    arrival=trace.arrivals[i],
                    duration=trace.durations[i],
                    size=trace.sizes[i],
                    read_bytes=trace.read_bytes[i],
                    write_bytes=trace.write_bytes[i],
                    read_ops=trace.read_ops[i],
                    pipeline=trace.pipelines[i],
                )
        else:
            step = max(n, 1) if batch_jobs is None else max(int(batch_jobs), 1)
            pipelines = trace.pipelines
            for lo in range(0, n, step):
                hi = min(lo + step, n)
                self.submit_batch(
                    trace.arrivals[lo:hi], trace.durations[lo:hi],
                    trace.sizes[lo:hi], trace.read_bytes[lo:hi],
                    trace.write_bytes[lo:hi], trace.read_ops[lo:hi],
                    pipelines=pipelines[lo:hi],
                )
        return self.result()
