"""Shared serving-layer value types.

The decision/stat/snapshot objects the serving layer passes around,
split out of :mod:`repro.serve.service` so the single-process service
and the fleet layers (:mod:`repro.serve.router`,
:mod:`repro.serve.worker`) share one vocabulary without importing each
other:

- :class:`PlacementDecision` — the per-job verdict every submission
  path returns;
- :class:`_DecisionBatch` / :class:`_DecisionConcat` — lazy decision
  sequences (chunk resolutions materialize per-job tuples only when
  read);
- :class:`ServiceStats` — running operational counters;
- :class:`ShockReport` — what one capacity shock did;
- :class:`ServiceSnapshot` — a deep-copied checkpoint, now carrying a
  schema tag and the library version so a mismatched restore fails
  loudly (:class:`SnapshotMismatch`) instead of unpickling into
  undefined behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Sequence

import numpy as np

__all__ = [
    "SNAPSHOT_SCHEMA",
    "COMPAT_SNAPSHOT_SCHEMAS",
    "WORKER_SNAPSHOT_SCHEMA",
    "SnapshotMismatch",
    "PlacementDecision",
    "ServiceSnapshot",
    "ServiceStats",
    "ShockReport",
]

#: Schema tag written into every :class:`ServiceSnapshot` payload (and
#: pickled checkpoint).  Bump when the snapshot layout changes shape in
#: a way an older/newer library cannot restore.
#: 2: the payload carries the service's metrics registry (so recovered
#: counters continue instead of resetting).
#: 3: the payload carries the alert manager, tracer ring, and logical
#: clock (so recovered alert streams and spans continue).
SNAPSHOT_SCHEMA = 3

#: Older service-snapshot schemas :meth:`PlacementService.restore` can
#: still rebuild by backfilling the missing state with fresh defaults
#: (a pre-metrics payload gets a fresh registry; a pre-alerting payload
#: gets no manager/tracer).  Anything else fails loudly.
COMPAT_SNAPSHOT_SCHEMAS = frozenset({1, 2, SNAPSHOT_SCHEMA})

#: Schema tag of a :class:`~repro.serve.worker.PlacementWorker`
#: checkpoint payload.
WORKER_SNAPSHOT_SCHEMA = 1


class SnapshotMismatch(RuntimeError):
    """A checkpoint/snapshot payload this library version cannot restore."""


class PlacementDecision(NamedTuple):
    """The service's verdict for one submitted job.

    A named tuple rather than a dataclass: the service mints one per
    decided job on the hot path, and tuple construction is several
    times cheaper than dataclass ``__init__``.

    Attributes
    ----------
    index:
        Submission index (position in the service's job log).
    job_id:
        Caller-supplied identity (submission index when omitted); the
        key ``complete`` events use.
    time:
        Arrival time the decision was applied at.
    shard:
        Caching server the job was routed to (0 with one global pool).
    requested_ssd:
        Whether the policy asked for SSD placement.
    ssd_space_fraction:
        Fraction of the footprint that fit on SSD (0.0 when HDD-routed
        or fully spilled).
    spill_time:
        When spillover began, or ``None`` if nothing spilled.
    release_time:
        Scheduled release of the job's SSD allocation (arrival +
        residency), meaningful when some space was allocated.
    """

    index: int
    job_id: object
    time: float
    shard: int
    requested_ssd: bool
    ssd_space_fraction: float
    spill_time: float | None
    release_time: float


class _DecisionBatch(Sequence):
    """One chunk's decisions, materialized lazily.

    Batch submissions resolve whole chunks at once, and many callers
    (replay drivers, throughput benchmarks) never read the per-job
    decision objects.  This sequence holds the chunk's column arrays
    and builds the :class:`PlacementDecision` tuples only when indexed
    or iterated — callers that discard the return pay nothing, and
    callers that read it get one vectorized ``tolist`` conversion
    instead of per-element array scalars.
    """

    __slots__ = ("_outcomes", "_alloc", "_rel", "_job_ids", "_items")

    def __init__(self, outcomes, alloc_buf, rel_buf, job_ids):
        self._outcomes = outcomes
        self._alloc = alloc_buf
        self._rel = rel_buf
        self._job_ids = job_ids
        self._items: list[PlacementDecision] | None = None

    def _materialize(self) -> list[PlacementDecision]:
        if self._items is None:
            o = self._outcomes
            first = o.first
            n = len(o)
            times = o.times.tolist()
            req = o.requested_ssd.tolist()
            space = o.ssd_space_fraction.tolist()
            spills = o.spill_time.tolist()
            rels = times if self._rel is None else self._rel.tolist()
            lanes = [0] * n if o.shards is None else o.shards.tolist()
            ids = self._job_ids
            self._items = [
                PlacementDecision(
                    first + k, ids[first + k], times[k], lanes[k], req[k],
                    space[k],
                    # NaN-encoded "no spill" (NaN != NaN).
                    spills[k] if spills[k] == spills[k] else None,
                    rels[k],
                )
                for k in range(n)
            ]
        return self._items

    def __len__(self) -> int:
        return len(self._outcomes)

    def __getitem__(self, k):
        return self._materialize()[k]

    def __iter__(self):
        return iter(self._materialize())

    def __add__(self, other):
        return self._materialize() + list(other)

    def __radd__(self, other):
        return list(other) + self._materialize()


class _DecisionConcat(Sequence):
    """Several chunks' decisions as one lazy sequence."""

    __slots__ = ("_batches", "_items")

    def __init__(self, batches: list[_DecisionBatch]):
        self._batches = batches
        self._items: list[PlacementDecision] | None = None

    def _materialize(self) -> list[PlacementDecision]:
        if self._items is None:
            self._items = [d for b in self._batches for d in b]
        return self._items

    def __len__(self) -> int:
        return sum(len(b) for b in self._batches)

    def __getitem__(self, k):
        return self._materialize()[k]

    def __iter__(self):
        return iter(self._materialize())

    def __add__(self, other):
        return self._materialize() + list(other)

    def __radd__(self, other):
        return list(other) + self._materialize()


@dataclass(frozen=True)
class ServiceSnapshot:
    """A deep-copied checkpoint of a :class:`~repro.serve.PlacementService`.

    Produced by :meth:`PlacementService.snapshot`; consumed by
    :meth:`PlacementService.restore`.  The payload owns copies of all
    mutable state (kernel, policy, log, queue bookkeeping), so the
    original service may keep running and one snapshot may be restored
    any number of times.  Snapshots are picklable whenever the policy
    is, which is what makes on-disk checkpointing possible.

    A snapshot may be taken while an open chunk has pending jobs: the
    admission queue (``n_pending`` jobs and any cached chunk plan) is
    carried inside the payload, so a restore resumes with the exact
    same queue and the eventual chunk boundaries — and therefore every
    later decision — match the uninterrupted run bit for bit.

    ``wal_seq`` anchors the snapshot in its service's write-ahead log:
    :meth:`PlacementService.recover` replays WAL records from this
    sequence number on.  The WAL handle itself is never part of the
    payload (a restored service attaches its own).

    The payload carries a schema tag (``__schema__``) and the writing
    library's version (``__version__``); :meth:`PlacementService.restore`
    refuses payloads whose schema does not match — see
    :class:`SnapshotMismatch`.
    """

    payload: dict = field(repr=False)
    n_submitted: int = 0
    n_decided: int = 0
    n_pending: int = 0
    wal_seq: int = 0


@dataclass
class ServiceStats:
    """Running operational counters of one service instance.

    ``degraded_intervals`` holds closed ``(t_start, t_end)`` arrival
    spans during which the categorizer was down and admission ran on
    the heuristic fallback; an outage that has not ended yet is not in
    the list (see :attr:`PlacementService.degraded_since`).
    """

    n_submitted: int = 0
    n_decided: int = 0
    n_chunks: int = 0
    n_completions: int = 0
    duplicate_completes: int = 0
    stale_completes: int = 0
    forced_chunks: int = 0
    max_pending_seen: int = 0
    n_shocks: int = 0
    n_evicted: int = 0
    evicted_bytes: float = 0.0
    categorizer_failures: int = 0
    degraded_jobs: int = 0
    degraded_intervals: list = field(default_factory=list)


@dataclass(frozen=True)
class ShockReport:
    """What one :meth:`PlacementService.apply_shock` call did.

    ``decisions`` holds the queued decisions force-closed before the
    shock landed (shocks apply on chunk boundaries — a caller that
    normally collects decisions from ``submit`` returns picks the
    flushed ones up here); ``n_evicted`` / ``evicted_bytes`` count the
    resident allocations squeezed out by the new layout (each also
    counted as a spill).
    """

    time: float
    lane_capacities: np.ndarray
    n_evicted: int
    evicted_bytes: float
    flushed: int
    decisions: tuple = ()
