"""Dependency-free Prometheus-style metrics for the serving layer.

Three instrument kinds, the same vocabulary Prometheus clients use:

- :class:`Counter` — a monotonically increasing count (decisions,
  spills, evictions, degraded jobs...).  The service *pins* most of its
  counters to authoritative sources (``ServiceStats``, the kernel's
  admission counters) at snapshot time, so a metric can never drift
  from the end-of-run :class:`~repro.storage.engine.SimResult` roll-up
  — the property tests assert bit-exact equality.
- :class:`Gauge` — a point-in-time value (queue depth, per-lane free
  bytes and occupancy, per-shard ACT positions).
- :class:`Histogram` — fixed upper-bound buckets with **integer**
  counts and Prometheus ``le`` semantics (a value lands in the first
  bucket whose upper bound is >= it; an observation exactly on an edge
  belongs to that edge's bucket).  Because bucket counts are plain
  integers, :meth:`Histogram.merge` is exact, associative and
  commutative — the fleet's scatter-gather aggregation cannot depend
  on worker order.

A :class:`MetricsRegistry` holds one process's instruments, renders
the Prometheus text exposition format (:meth:`MetricsRegistry.render`)
and produces plain-dict snapshots (:meth:`MetricsRegistry.snapshot`).
Registries serialize to plain state dicts (:meth:`MetricsRegistry.state`)
so fleet workers can ship partial metrics over the existing op
transport; :func:`merge_states` folds them (counter sum, gauge sum,
histogram bucket merge) for the router.

:class:`MetricsServer` is an optional background HTTP scrape endpoint
(stdlib ``http.server``, daemon thread): it serves whatever text the
supplied callback returns, so callers control thread safety by handing
it a cached rendering (the CLI refreshes the cache from its serving
loop rather than letting the scrape thread touch live fleet
transports).

Everything here is deliberately plain Python (ints, floats, lists):
registries deep-copy and pickle with the service snapshot, which is
what lets WAL recovery *continue* a recovered service's counters from
the checkpoint + replay value instead of resetting them.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "merge_states",
    "LATENCY_BUCKETS_SECONDS",
    "SIZE_BUCKETS_JOBS",
]

#: Default latency buckets (seconds): 1-2.5-5 per decade from 1us to
#: 10s — decision latencies span ~5 orders of magnitude between the
#: scalar hot path and a forced fleet drain.
LATENCY_BUCKETS_SECONDS = tuple(
    m * 10.0 ** e for e in range(-6, 1) for m in (1.0, 2.5, 5.0)
) + (10.0,)

#: Default batch/chunk size buckets (jobs): powers of two up to 8192.
SIZE_BUCKETS_JOBS = tuple(float(2 ** k) for k in range(14))


def _check_labels(labels) -> tuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonic count.

    ``inc`` adds; ``set`` pins the value to an authoritative monotonic
    source (the service's sync path uses it so metrics can never
    disagree with the roll-up counters) and refuses to move backwards.
    """

    kind = "counter"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: tuple = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def set(self, value) -> None:
        if value < self.value:
            raise ValueError(
                f"counter {self.name} cannot move backwards "
                f"({self.value!r} -> {value!r})"
            )
        self.value = value


class Gauge:
    """A point-in-time value; goes up and down freely."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: tuple = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with exact (integer) merge.

    ``buckets`` are finite ascending upper bounds; an implicit +Inf
    overflow bucket is appended.  Prometheus ``le`` semantics: an
    observation lands in the first bucket whose upper bound is greater
    than or equal to it, so a value exactly on an edge counts toward
    that edge's bucket.

    ``merge`` adds bucket counts elementwise — integers, so the result
    is exact and independent of merge order (associative and
    commutative), which is what lets the fleet gather partial
    histograms from workers in any order.  ``sum`` is a float
    accumulator (latency totals); only the integer counts carry the
    order-independence guarantee.
    """

    kind = "histogram"
    __slots__ = (
        "name", "labels", "help", "edges", "counts", "count", "sum", "max",
    )

    def __init__(
        self, name: str, labels: tuple = (), help: str = "",
        buckets=LATENCY_BUCKETS_SECONDS,
    ):
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket")
        if any(later <= earlier for later, earlier in zip(edges[1:], edges)):
            raise ValueError("histogram buckets must be strictly ascending")
        if edges[-1] == float("inf"):
            edges = edges[:-1]  # +Inf bucket is implicit
        self.name = name
        self.labels = labels
        self.help = help
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value) -> None:
        v = float(value)
        self.counts[bisect_left(self.edges, v)] += 1
        self.count += 1
        self.sum += v
        if v > self.max:
            self.max = v

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (exact, order-independent)."""
        if other.edges != self.edges:
            raise ValueError(
                f"cannot merge histogram {other.name!r}: bucket edges differ"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-th percentile.

        ``q`` in [0, 100] (same convention as ``np.percentile``).  The
        overflow bucket reports the largest observation seen.  Returns
        0.0 when nothing was observed.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile q must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = max(1, -(-self.count * q // 100))  # ceil without floats
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= target:
                return self.edges[i] if i < len(self.edges) else self.max
        return self.max

    def quantile(self, q: float) -> float:
        """Linear-interpolated ``q``-quantile from the integer buckets.

        ``q`` in [0, 1].  Unlike :meth:`percentile` (which reports the
        containing bucket's upper bound), this interpolates linearly
        *within* the containing bucket — the same estimate Prometheus'
        ``histogram_quantile`` computes — so close quantiles separate
        even when they land in the same bucket.  The first bucket
        interpolates from 0; the overflow bucket reports the largest
        observation seen.  Returns 0.0 when nothing was observed.

        Deterministic: depends only on the integer bucket counts (and
        ``max`` for the overflow bucket), so it is merge-safe across
        the fleet and fair game for alert rules and SLO targets.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        if rank < 1.0:
            rank = 1.0
        cum = 0
        for i, c in enumerate(self.counts):
            if c and cum + c >= rank:
                if i >= len(self.edges):  # overflow bucket
                    return self.max
                lo = self.edges[i - 1] if i > 0 else 0.0
                hi = self.edges[i]
                return lo + (hi - lo) * (rank - cum) / c
            cum += c
        return self.max

    def snapshot(self) -> dict:
        cum, buckets = 0, []
        for i, edge in enumerate(self.edges):
            cum += self.counts[i]
            buckets.append((edge, cum))
        buckets.append((float("inf"), self.count))
        return {
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "buckets": buckets,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """One process's instruments, keyed by (name, sorted labels).

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call registers, later calls with the same name and labels return
    the same object (a kind conflict raises).  Plain data throughout —
    registries deep-copy and pickle inside service snapshots.
    """

    def __init__(self):
        self._metrics: dict = {}
        self._order: list = []

    def _get(self, cls, name: str, labels, help: str, **kw):
        key = (name, _check_labels(labels))
        m = self._metrics.get(key)
        if m is None:
            m = cls(name, key[1], help=help, **kw)
            self._metrics[key] = m
            self._order.append(key)
        elif not isinstance(m, cls):
            raise ValueError(
                f"metric {name!r} already registered as {m.kind}"
            )
        return m

    def counter(self, name: str, labels=None, help: str = "") -> Counter:
        return self._get(Counter, name, labels, help)

    def gauge(self, name: str, labels=None, help: str = "") -> Gauge:
        return self._get(Gauge, name, labels, help)

    def histogram(
        self, name: str, labels=None, help: str = "",
        buckets=LATENCY_BUCKETS_SECONDS,
    ) -> Histogram:
        return self._get(Histogram, name, labels, help, buckets=buckets)

    def get(self, name: str, labels=None):
        """The registered metric, or ``None``."""
        return self._metrics.get((name, _check_labels(labels)))

    def __iter__(self):
        return (self._metrics[k] for k in self._order)

    def __len__(self) -> int:
        return len(self._metrics)

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> dict:
        """Sample name (with label suffix) → value.

        Counters and gauges map to their numeric value; histograms to
        the dict :meth:`Histogram.snapshot` returns (cumulative
        buckets, count, sum, p50/p99).
        """
        out = {}
        for m in self:
            key = m.name + _label_suffix(m.labels)
            out[key] = m.snapshot() if m.kind == "histogram" else m.value
        return out

    def render(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines = []
        seen_family = set()
        for m in self:
            if m.name not in seen_family:
                seen_family.add(m.name)
                if m.help:
                    lines.append(f"# HELP {m.name} {m.help}")
                lines.append(f"# TYPE {m.name} {m.kind}")
            suffix = _label_suffix(m.labels)
            if m.kind == "histogram":
                cum = 0
                for i, edge in enumerate(m.edges):
                    cum += m.counts[i]
                    le = _label_suffix(m.labels + (("le", repr(edge)),))
                    lines.append(f"{m.name}_bucket{le} {cum}")
                le = _label_suffix(m.labels + (("le", "+Inf"),))
                lines.append(f"{m.name}_bucket{le} {m.count}")
                lines.append(f"{m.name}_count{suffix} {m.count}")
                lines.append(f"{m.name}_sum{suffix} {m.sum!r}")
            else:
                lines.append(f"{m.name}{suffix} {m.value!r}")
        return "\n".join(lines) + "\n"

    # -- wire state (fleet scatter-gather) -------------------------------

    def state(self) -> list:
        """A plain-data dump of every instrument (for the op transport)."""
        out = []
        for m in self:
            d = {
                "kind": m.kind, "name": m.name,
                "labels": list(m.labels), "help": m.help,
            }
            if m.kind == "histogram":
                d.update(
                    edges=list(m.edges), counts=list(m.counts),
                    count=m.count, sum=m.sum, max=m.max,
                )
            else:
                d["value"] = m.value
            out.append(d)
        return out

    def load_state(self, state: list) -> None:
        """Overwrite instruments from a state dump (create as needed).

        The fleet router uses this to install merged per-worker
        partials: values are *replaced*, not added, so repeated gathers
        never double count.
        """
        for d in state:
            labels = dict(d["labels"]) if d["labels"] else None
            if d["kind"] == "histogram":
                h = self.histogram(
                    d["name"], labels=labels, help=d["help"],
                    buckets=d["edges"],
                )
                if list(h.edges) != [float(e) for e in d["edges"]]:
                    raise ValueError(
                        f"histogram {d['name']!r} bucket edges changed"
                    )
                h.counts = [int(c) for c in d["counts"]]
                h.count = int(d["count"])
                h.sum = float(d["sum"])
                h.max = float(d["max"])
            elif d["kind"] == "counter":
                self.counter(d["name"], labels=labels, help=d["help"]) \
                    .value = d["value"]
            else:
                self.gauge(d["name"], labels=labels, help=d["help"]) \
                    .value = d["value"]


def merge_states(states) -> list:
    """Fold per-worker state dumps into one (sum / merge semantics).

    Counters and gauges sum; histograms merge bucket-wise.  Integer
    bucket and counter arithmetic makes the fold exact and independent
    of the order workers reply in.
    """
    acc = MetricsRegistry()
    for state in states:
        for d in state:
            labels = dict(d["labels"]) if d["labels"] else None
            if d["kind"] == "histogram":
                h = acc.histogram(
                    d["name"], labels=labels, help=d["help"],
                    buckets=d["edges"],
                )
                part = Histogram(d["name"], buckets=d["edges"])
                part.counts = [int(c) for c in d["counts"]]
                part.count = int(d["count"])
                part.sum = float(d["sum"])
                part.max = float(d["max"])
                h.merge(part)
            elif d["kind"] == "counter":
                acc.counter(d["name"], labels=labels, help=d["help"]) \
                    .inc(d["value"])
            else:
                acc.gauge(d["name"], labels=labels, help=d["help"]) \
                    .inc(d["value"])
    return acc.state()


class MetricsServer:
    """Background HTTP scrape endpoint over a text callback.

    Serves ``source()`` (a str) on ``GET /metrics`` (and ``/``) from a
    daemon thread; any other path is a 404.
    The callback runs on the scrape thread: hand it something
    thread-safe — the CLI passes a closure over a cached rendering it
    refreshes from the serving loop, never the live fleet transports.

    ``port=0`` binds an ephemeral port; read :attr:`port` / :attr:`url`
    after construction.
    """

    def __init__(self, source, host: str = "127.0.0.1", port: int = 0):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        self._source = source

        server_ref = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (stdlib casing)
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    body = b"not found\n"
                    self.send_response(404)
                    self.send_header(
                        "Content-Type", "text/plain; charset=utf-8"
                    )
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                try:
                    body = server_ref._source().encode()
                except Exception as exc:  # surface, don't kill the thread
                    self.send_response(500)
                    self.end_headers()
                    self.wfile.write(f"# scrape failed: {exc}\n".encode())
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *a):  # silence per-request stderr noise
                pass

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True,
            name=f"metrics-server:{self.port}",
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
