"""On-the-fly category prediction for the online placement service.

Offline, the BYOM pipeline extracts the whole deployment week's feature
matrix and predicts every category before the first simulated arrival.
A live service cannot: each arriving job's features depend on the
history observed *so far*, and the prediction must happen on the
admission path.  :class:`OnlineCategorizer` fuses the two incremental
pieces — the stateful
:class:`~repro.workloads.features.OnlineFeatureExtractor` (Table-2 rows
per arrival) and the packed-forest inference of the fitted GBT
(:meth:`~repro.ml.packed.PackedForest.decision_scores` for
micro-batches, :meth:`~repro.ml.packed.PackedForest.decision_scores_one`
for single requests) — into one callable the
:class:`~repro.serve.PlacementService` invokes per submission.

Predictions are bit-identical to the offline
``model.predict(extract_features(trace))`` path over the same jobs
(``tests/test_serve_online.py``).
"""

from __future__ import annotations

import numpy as np

from ..core.category_model import CategoryModel
from ..cost import CostRates, DEFAULT_RATES
from ..ml.gbdt import GBTClassifier
from ..workloads.features import DEFAULT_HASH_BUCKETS, OnlineFeatureExtractor
from ..workloads.job import Trace

__all__ = ["OnlineCategorizer"]


class OnlineCategorizer:
    """``jobs -> categories`` for arriving jobs, model-driven.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.category_model.CategoryModel` (its
        GBT classifier is used) or a fitted
        :class:`~repro.ml.gbdt.GBTClassifier` directly.
    rates:
        Cost model for the history features (group A); must match the
        rates the offline feature extraction used.
    n_hash_buckets:
        Metadata hashing width, as in :func:`extract_features`.
    """

    def __init__(
        self,
        model: CategoryModel | GBTClassifier,
        rates: CostRates = DEFAULT_RATES,
        n_hash_buckets: int = DEFAULT_HASH_BUCKETS,
    ):
        gbt = model.model if isinstance(model, CategoryModel) else model
        if gbt.binner_ is None or gbt.classes_ is None:
            raise ValueError("categorizer needs a fitted model")
        self.gbt = gbt
        self.extractor = OnlineFeatureExtractor(rates, n_hash_buckets)
        # Serving scratch, reused across calls (grown on demand).
        self._xb: np.ndarray | None = None
        self._raw: np.ndarray | None = None
        self._xb_one: np.ndarray | None = None
        self._raw_one: np.ndarray | None = None

    def warm_start(self, trace: Trace) -> "OnlineCategorizer":
        """Seed feature history from already-observed jobs (e.g. the
        training week), without predicting anything."""
        self.extractor.warm_start(trace)
        return self

    def __call__(self, jobs) -> np.ndarray:
        """Predicted importance category per arriving job."""
        X = self.extractor.push(jobs)
        return self._predict_rows(X)

    def predict_block(self, log, first: int, stop: int) -> np.ndarray:
        """Categories for jobs ``[first, stop)`` of a columnar job log.

        The fused serving path: feature extraction
        (:meth:`OnlineFeatureExtractor.push_block`), binning and
        packed-forest scoring all run over the log's columns directly,
        through scratch buffers reused across calls — no per-job
        objects and no intermediate matrices crossing this boundary.
        Bit-identical to ``self([log[i] for i in range(first, stop)])``
        because column-submitted jobs carry empty metadata/resources.
        """
        X = self.extractor.push_block(
            log.arrivals[first:stop],
            log.durations[first:stop],
            log.sizes[first:stop],
            log.read_bytes[first:stop],
            log.write_bytes[first:stop],
            log.read_ops[first:stop],
            log.pipelines[first:stop],
        )
        return self._predict_rows(X)

    def _predict_rows(self, X: np.ndarray) -> np.ndarray:
        gbt = self.gbt
        n = X.shape[0]
        k = len(gbt.classes_)
        if gbt.packed_ is None:
            # Single-class fit: every prediction is that class.
            return np.full(n, int(gbt.classes_[0]), dtype=int)
        if n == 1:
            # Request-at-a-time: 1-D scratch end to end.
            xb = self._xb_one
            if xb is None or xb.size != X.shape[1]:
                xb = self._xb_one = np.empty(X.shape[1], dtype=np.uint8)
                self._raw_one = np.empty(k)
            gbt.binner_.transform_one(X[0], out=xb)
            raw = gbt.packed_.decision_scores_one(
                xb, gbt.base_score_, gbt.learning_rate, k, out=self._raw_one
            ).reshape(1, -1)
        else:
            xb = self._xb
            if xb is None or xb.shape[0] < n or xb.shape[1] != X.shape[1]:
                xb = self._xb = np.zeros((max(n, 256), X.shape[1]), dtype=np.uint8)
                self._raw = np.empty((xb.shape[0], k))
            gbt.binner_.transform(X, out=xb[:n])
            raw = gbt.packed_.decision_scores(
                xb[:n], gbt.base_score_, gbt.learning_rate, k, out=self._raw[:n]
            )
        return gbt.classes_[np.argmax(raw, axis=1)].astype(int)
