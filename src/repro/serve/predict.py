"""On-the-fly category prediction for the online placement service.

Offline, the BYOM pipeline extracts the whole deployment week's feature
matrix and predicts every category before the first simulated arrival.
A live service cannot: each arriving job's features depend on the
history observed *so far*, and the prediction must happen on the
admission path.  :class:`OnlineCategorizer` fuses the two incremental
pieces — the stateful
:class:`~repro.workloads.features.OnlineFeatureExtractor` (Table-2 rows
per arrival) and the packed-forest inference of the fitted GBT
(:meth:`~repro.ml.packed.PackedForest.decision_scores` for
micro-batches, :meth:`~repro.ml.packed.PackedForest.decision_scores_one`
for single requests) — into one callable the
:class:`~repro.serve.PlacementService` invokes per submission.

Predictions are bit-identical to the offline
``model.predict(extract_features(trace))`` path over the same jobs
(``tests/test_serve_online.py``).
"""

from __future__ import annotations

import numpy as np

from ..core.category_model import CategoryModel
from ..cost import CostRates, DEFAULT_RATES
from ..ml.gbdt import GBTClassifier
from ..workloads.features import DEFAULT_HASH_BUCKETS, OnlineFeatureExtractor
from ..workloads.job import Trace

__all__ = ["OnlineCategorizer"]


class OnlineCategorizer:
    """``jobs -> categories`` for arriving jobs, model-driven.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.category_model.CategoryModel` (its
        GBT classifier is used) or a fitted
        :class:`~repro.ml.gbdt.GBTClassifier` directly.
    rates:
        Cost model for the history features (group A); must match the
        rates the offline feature extraction used.
    n_hash_buckets:
        Metadata hashing width, as in :func:`extract_features`.
    """

    def __init__(
        self,
        model: CategoryModel | GBTClassifier,
        rates: CostRates = DEFAULT_RATES,
        n_hash_buckets: int = DEFAULT_HASH_BUCKETS,
    ):
        gbt = model.model if isinstance(model, CategoryModel) else model
        if gbt.binner_ is None or gbt.classes_ is None:
            raise ValueError("categorizer needs a fitted model")
        self.gbt = gbt
        self.extractor = OnlineFeatureExtractor(rates, n_hash_buckets)

    def warm_start(self, trace: Trace) -> "OnlineCategorizer":
        """Seed feature history from already-observed jobs (e.g. the
        training week), without predicting anything."""
        self.extractor.warm_start(trace)
        return self

    def __call__(self, jobs) -> np.ndarray:
        """Predicted importance category per arriving job."""
        gbt = self.gbt
        X = self.extractor.push(jobs)
        k = len(gbt.classes_)
        if gbt.packed_ is None:
            # Single-class fit: every prediction is that class.
            return np.full(X.shape[0], int(gbt.classes_[0]), dtype=int)
        Xb = gbt.binner_.transform(X)
        if Xb.shape[0] == 1:
            raw = gbt.packed_.decision_scores_one(
                Xb[0], gbt.base_score_, gbt.learning_rate, k
            ).reshape(1, -1)
        else:
            raw = gbt.packed_.decision_scores(
                Xb, gbt.base_score_, gbt.learning_rate, k
            )
        return gbt.classes_[np.argmax(raw, axis=1)].astype(int)
