"""Scripted fault injection for the online placement service.

Chaos harness of the fault-tolerance story: a :class:`FaultPlan` is a
deterministic script of :class:`FaultEvent`\\ s keyed by submission
count, and a :class:`FaultInjector` wraps a
:class:`~repro.serve.PlacementService` (transparent proxy — everything
it does not intercept delegates to the service) and fires each event at
the submission boundary where its trigger count is reached.  The same
plan against the same trace is exactly reproducible, which is what lets
the chaos suite pin adaptive-vs-baseline numbers per scenario.

Event kinds
-----------
- ``lane_loss``     — a caching server dies: its lane drops to zero
  capacity (residents evicted through the kernel); the pre-fault
  capacity is remembered for a later ``lane_restore``.
- ``lane_shrink``   — the lane shrinks to ``capacity`` bytes or by
  ``scale`` (default 0.5); also remembered for restore.
- ``lane_restore``  — the lane returns to its pre-loss/shrink capacity
  (no-op if it was never lost or shrunk).
- ``quota``         — fleet-wide quota change: ``scale`` multiplies the
  current layout, or ``capacity`` sets the new total.
- ``cat_fail``      — the categorizer starts failing: every call
  raises, the service degrades to heuristic admission (no-op when the
  service has no categorizer).
- ``cat_recover``   — the categorizer heals.
- ``drop_complete`` — the next ``count`` ``complete()`` calls are
  swallowed before they reach the service (a lost completion event).
- ``dup_complete``  — the next ``count`` ``complete()`` calls are
  delivered twice (an at-least-once delivery duplicate).
- ``submit_error``  — the next ``count`` submissions fail with
  :class:`TransientSubmitError` *before* touching the service (the
  :class:`~repro.serve.LoadGenerator` retries these with backoff).
- ``worker_kill``   — a fleet worker process dies: ``lane`` names the
  worker (taken modulo the fleet size); fired as
  ``service.kill_worker(...)`` against a
  :class:`~repro.serve.FleetRouter`, whose per-worker WAL/checkpoint
  failover recovers it transparently on the next touch.  A no-op
  against a single-process service (nothing to kill).
- ``crash``         — the process dies at this boundary: the injector
  calls its ``crash`` hook (the CLI exits hard there) or raises
  :class:`InjectedCrash`.

None of these ever surfaces from the *service* as an unhandled
exception — ``submit_error`` and ``crash`` are raised by the injector
itself, by design, before any service state mutates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "TransientSubmitError",
    "InjectedCrash",
]

FAULT_KINDS = (
    "lane_loss",
    "lane_shrink",
    "lane_restore",
    "quota",
    "cat_fail",
    "cat_recover",
    "drop_complete",
    "dup_complete",
    "submit_error",
    "worker_kill",
    "crash",
)


class TransientSubmitError(RuntimeError):
    """An injected transient submission failure (retryable)."""


class InjectedCrash(RuntimeError):
    """An injected process crash (not retryable — the run is over)."""


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault, fired when ``at`` jobs have been submitted.

    ``lane``/``capacity``/``scale`` parameterize the topology kinds
    (``worker_kill`` reuses ``lane`` as the fleet worker id);
    ``count`` is how many calls ``drop_complete``/``dup_complete``/
    ``submit_error`` affect.  Events with equal ``at`` fire in plan
    order.
    """

    at: int
    kind: str
    lane: int | None = None
    capacity: float | None = None
    scale: float | None = None
    count: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("at must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.kind in ("lane_loss", "lane_shrink", "lane_restore", "worker_kill"):
            if self.lane is None:
                raise ValueError(f"{self.kind} needs lane=")

    def to_record(self) -> dict:
        rec = {"at": self.at, "kind": self.kind}
        if self.lane is not None:
            rec["lane"] = self.lane
        if self.capacity is not None:
            rec["capacity"] = self.capacity
        if self.scale is not None:
            rec["scale"] = self.scale
        if self.count != 1:
            rec["count"] = self.count
        return rec

    @classmethod
    def from_record(cls, rec: dict) -> "FaultEvent":
        return cls(
            at=int(rec["at"]), kind=rec["kind"],
            lane=rec.get("lane"), capacity=rec.get("capacity"),
            scale=rec.get("scale"), count=int(rec.get("count", 1)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, JSON-serializable script of fault events."""

    events: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def to_json(self) -> str:
        return json.dumps(
            {"events": [e.to_record() for e in self.events]}, indent=2
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        events = data["events"] if isinstance(data, dict) else data
        return cls(tuple(FaultEvent.from_record(r) for r in events))

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


class _FlakyCategorizer:
    """Wraps the service's categorizer with a switchable outage.

    While ``down``, every call raises *before* touching the wrapped
    model — no feature-extractor state mutates, so a WAL replay that
    skips the model on degraded records stays bit-exact.  The service's
    replay path reaches the healthy model through :attr:`inner`.
    """

    def __init__(self, inner):
        self.inner = inner
        self.down = False

    def __call__(self, jobs):
        if self.down:
            raise RuntimeError("injected categorizer outage")
        return self.inner(jobs)


class FaultInjector:
    """Fire a :class:`FaultPlan` against a service at submission boundaries.

    A transparent proxy: use it exactly like the service it wraps
    (``submit_block``/``submit_batch``/``submit_jobs``/``submit``/
    ``complete``/``drain`` are intercepted; everything else — ``result``,
    ``stats``, ``snapshot`` … — delegates).  Before each submission,
    every event whose ``at`` is at or below the number of jobs already
    submitted fires, in plan order; fired events land in :attr:`fired`.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.PlacementService` to torment.
    plan:
        A :class:`FaultPlan` (or an iterable of events).
    crash:
        Optional zero-arg hook run on a ``crash`` event (the CLI passes
        a hard process exit); :class:`InjectedCrash` is raised if the
        hook returns.
    """

    def __init__(self, service, plan, *, crash=None):
        self.service = service
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan(tuple(plan))
        self.plan = plan
        self._queue = sorted(
            enumerate(plan.events), key=lambda kv: (kv[1].at, kv[0])
        )
        self._queue = [e for _, e in self._queue]
        self._crash = crash
        self._sent = 0
        self._orig_caps: dict[int, float] = {}
        self._drop_completes = 0
        self._dup_completes = 0
        self._pending_errors = 0
        self._flaky: _FlakyCategorizer | None = None
        self.fired: list[FaultEvent] = []
        self.n_dropped_completes = 0
        self.n_duplicated_completes = 0

    def __getattr__(self, name):
        return getattr(self.service, name)

    @property
    def n_submitted_through(self) -> int:
        """Jobs submitted through this injector (the trigger clock)."""
        return self._sent

    # -- event firing ---------------------------------------------------

    def _fire_due(self) -> None:
        while self._queue and self._queue[0].at <= self._sent:
            self._fire(self._queue.pop(0))

    def _fire(self, ev: FaultEvent) -> None:
        self.fired.append(ev)
        svc = self.service
        if ev.kind == "lane_loss":
            self._orig_caps.setdefault(ev.lane, float(svc.lane_capacities[ev.lane]))
            svc.apply_shock(0.0, lane=ev.lane)
        elif ev.kind == "lane_shrink":
            cur = float(svc.lane_capacities[ev.lane])
            self._orig_caps.setdefault(ev.lane, cur)
            new = ev.capacity if ev.capacity is not None else cur * (
                ev.scale if ev.scale is not None else 0.5
            )
            svc.apply_shock(float(new), lane=ev.lane)
        elif ev.kind == "lane_restore":
            orig = self._orig_caps.pop(ev.lane, None)
            if orig is not None:
                svc.apply_shock(orig, lane=ev.lane)
        elif ev.kind == "quota":
            if ev.scale is not None:
                svc.apply_shock(scale=ev.scale)
            elif ev.capacity is not None:
                svc.apply_shock(float(np.asarray(ev.capacity, dtype=float)))
            else:
                raise ValueError("quota event needs scale= or capacity=")
        elif ev.kind == "cat_fail":
            if svc.categorizer is not None:
                if self._flaky is None:
                    self._flaky = _FlakyCategorizer(svc.categorizer)
                    svc.categorizer = self._flaky
                self._flaky.down = True
        elif ev.kind == "cat_recover":
            if self._flaky is not None:
                self._flaky.down = False
        elif ev.kind == "drop_complete":
            self._drop_completes += ev.count
        elif ev.kind == "dup_complete":
            self._dup_completes += ev.count
        elif ev.kind == "submit_error":
            self._pending_errors += ev.count
        elif ev.kind == "worker_kill":
            kill = getattr(svc, "kill_worker", None)
            if kill is not None:
                kill(ev.lane % svc.n_workers)
        elif ev.kind == "crash":
            if self._crash is not None:
                self._crash()
            raise InjectedCrash(f"injected crash at submission {self._sent}")

    def _pre_submit(self, k: int) -> None:
        self._fire_due()
        if self._pending_errors:
            self._pending_errors -= 1
            raise TransientSubmitError(
                f"injected transient failure at submission {self._sent}"
            )
        self._sent += k

    # -- intercepted service API ----------------------------------------

    def submit(self, job=None, **kw):
        self._pre_submit(1)
        return self.service.submit(job, **kw)

    def submit_batch(self, arrivals, *args, **kw):
        self._pre_submit(int(np.asarray(arrivals).size))
        return self.service.submit_batch(arrivals, *args, **kw)

    def submit_jobs(self, jobs):
        jobs = list(jobs)
        self._pre_submit(len(jobs))
        return self.service.submit_jobs(jobs)

    def submit_block(self, block):
        self._pre_submit(len(block))
        return self.service.submit_block(block)

    def complete(self, job_id, time=None):
        if self._drop_completes:
            self._drop_completes -= 1
            self.n_dropped_completes += 1
            return False
        out = self.service.complete(job_id, time=time)
        if self._dup_completes:
            self._dup_completes -= 1
            self.n_duplicated_completes += 1
            self.service.complete(job_id, time=time)
        return out

    def drain(self):
        self._fire_due()
        return self.service.drain()
