"""Append-only columnar job log backing the online placement service.

The offline runtime materializes a whole trace before the event loop
starts; a live service cannot.  :class:`JobLog` is the online stand-in:
a :class:`~repro.workloads.job.TraceBase` whose columns are growable
buffers appended one job (or one micro-batch) at a time.  Everything
the engine kernels and the feedback policies consume — arrivals,
durations, sizes, I/O columns, per-job TCIO rates, lane routing — is a
live view over the buffers, so a policy bound to the log always sees
exactly the jobs submitted so far.

Views returned by the column properties are invalidated by the next
append (the buffer may reallocate); :class:`ColumnView` wraps a column
as a persistent indexable handle for consumers that must hold one
across appends (e.g. a policy's per-job TCIO lookup).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..cost import CostRates, DEFAULT_RATES, tcio_rate, tcio_rate_scalar
from ..workloads.job import ShuffleJob, TraceBase
from ..workloads.metadata import stable_hash

__all__ = ["GrowArray", "ColumnView", "JobLog"]


class GrowArray:
    """A float/int buffer with amortized O(1) append and array views.

    ``data`` exposes the backing buffer (over-allocated); ``view()``
    the populated prefix.  Chunk processors may write through ``data``
    at any populated index.
    """

    __slots__ = ("_buf", "n")

    def __init__(self, dtype=float, capacity: int = 1024):
        self._buf = np.zeros(capacity, dtype=dtype)
        self.n = 0

    def __len__(self) -> int:
        return self.n

    @property
    def data(self) -> np.ndarray:
        return self._buf

    def view(self) -> np.ndarray:
        return self._buf[: self.n]

    def ensure(self, capacity: int) -> None:
        if capacity > self._buf.size:
            new = np.zeros(
                max(capacity, 2 * self._buf.size), dtype=self._buf.dtype
            )
            new[: self.n] = self._buf[: self.n]
            self._buf = new

    def append(self, value) -> None:
        n = self.n
        if n >= self._buf.size:
            self.ensure(n + 1)
        self._buf[n] = value
        self.n = n + 1

    def extend(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        self.ensure(self.n + values.size)
        self._buf[self.n : self.n + values.size] = values
        self.n += values.size


class ColumnView:
    """Stable indexable handle over one growing :class:`JobLog` column.

    Resolves the column at every access, so it stays valid across
    appends (unlike a raw numpy view of the buffer).  Supports exactly
    the access patterns the feedback policies use: integer and slice
    indexing plus ``len``.
    """

    __slots__ = ("_log", "_name")

    def __init__(self, log: "JobLog", name: str):
        self._log = log
        self._name = name

    def __getitem__(self, key):
        return getattr(self._log, self._name)[key]

    def __len__(self) -> int:
        return len(self._log)

    def __array__(self, dtype=None, copy=None):
        arr = getattr(self._log, self._name)
        return np.asarray(arr, dtype=dtype)


class JobLog(TraceBase):
    """The service's live trace: submitted jobs as growable columns.

    Implements the full :class:`~repro.workloads.job.TraceBase`
    protocol (costs, TCIO, peak usage), so it can be handed to
    ``policy.on_simulation_start`` and to the engine's cost roll-up in
    place of an offline trace.  Two extra columns are maintained for
    the service: per-job ``tcio_rates`` (appended incrementally with
    the construction rates — bit-identical to a full-trace
    ``trace.tcio(rates)`` because the rate is elementwise) and
    ``lanes`` (the caching-server routing, hashed per pipeline exactly
    as :func:`~repro.storage.engine.assign_shards` hashes it).
    """

    def __init__(
        self,
        rates: CostRates = DEFAULT_RATES,
        n_shards: int = 1,
        shard_seed: int = 0,
        name: str = "service",
    ):
        self.name = name
        self.rates = rates
        self.n_shards = n_shards
        self.shard_seed = shard_seed
        self._arrivals = GrowArray(float)
        self._durations = GrowArray(float)
        self._sizes = GrowArray(float)
        self._read_bytes = GrowArray(float)
        self._write_bytes = GrowArray(float)
        self._read_ops = GrowArray(float)
        self._tcio = GrowArray(float)
        self._lanes = GrowArray(np.intp)
        self._pipelines: list[str] = []
        self._users: list[str] = []
        self._job_ids: list = []
        #: True while every id is the auto-assigned submission index —
        #: lets the tracer sample whole chunks with one arange instead
        #: of converting the id list (see PlacementService._trace_scan).
        self._ids_auto = True
        self._lane_cache: dict[str, int] = {}

    # -- column views ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._arrivals)

    def __repr__(self) -> str:
        return f"JobLog({self.name!r}, {len(self)} jobs)"

    @property
    def arrivals(self) -> np.ndarray:
        return self._arrivals.view()

    @property
    def durations(self) -> np.ndarray:
        return self._durations.view()

    @property
    def sizes(self) -> np.ndarray:
        return self._sizes.view()

    @property
    def read_bytes(self) -> np.ndarray:
        return self._read_bytes.view()

    @property
    def write_bytes(self) -> np.ndarray:
        return self._write_bytes.view()

    @property
    def read_ops(self) -> np.ndarray:
        return self._read_ops.view()

    @property
    def tcio_rates(self) -> np.ndarray:
        """Per-job HDD TCIO rate under the log's construction rates."""
        return self._tcio.view()

    @property
    def lanes(self) -> np.ndarray:
        """Per-job caching-server routing (all zeros with one lane)."""
        return self._lanes.view()

    @property
    def pipelines(self) -> list[str]:
        return self._pipelines

    @property
    def users(self) -> list[str]:
        return self._users

    @property
    def job_ids(self) -> list:
        """Caller-supplied job identities (submission index if absent)."""
        return self._job_ids

    # TraceBase caches these; a growing log must not.
    @property
    def ends(self) -> np.ndarray:  # type: ignore[override]
        return self.arrivals + self.durations

    @property
    def total_bytes(self) -> np.ndarray:  # type: ignore[override]
        return self.read_bytes + self.write_bytes

    def column(self, name: str) -> ColumnView:
        """A growth-stable handle for one column (see :class:`ColumnView`)."""
        return ColumnView(self, name)

    def __iter__(self) -> Iterator[ShuffleJob]:
        return (self[i] for i in range(len(self)))

    def __getitem__(self, i: int) -> ShuffleJob:
        return ShuffleJob(
            job_id=i,
            cluster="service",
            user=self._users[i],
            pipeline=self._pipelines[i],
            archetype="service",
            arrival=float(self.arrivals[i]),
            duration=float(self.durations[i]),
            size=float(self.sizes[i]),
            read_bytes=float(self.read_bytes[i]),
            write_bytes=float(self.write_bytes[i]),
            read_ops=float(self.read_ops[i]),
        )

    # -- appends --------------------------------------------------------

    def _lane_of(self, pipeline: str) -> int:
        """Stable pipeline-to-lane routing, cached per unique pipeline.

        Identical to :func:`~repro.storage.engine.assign_shards` for
        the same seed: both hash each unique pipeline once.
        """
        if self.n_shards == 1:
            return 0
        lane = self._lane_cache.get(pipeline)
        if lane is None:
            lane = stable_hash(pipeline, seed=self.shard_seed) % self.n_shards
            self._lane_cache[pipeline] = lane
        return lane

    def append_job(
        self,
        arrival: float,
        duration: float,
        size: float,
        read_bytes: float = 0.0,
        write_bytes: float = 0.0,
        read_ops: float = 0.0,
        pipeline: str = "pipeline0",
        user: str = "user0",
        job_id=None,
    ) -> int:
        """Append one job; returns its log index.

        Arrivals must be non-decreasing (the service is an arrival-time
        event loop) and sizes/durations/volumes non-negative, mirroring
        :class:`~repro.workloads.job.ShuffleJob` validation.
        """
        n = len(self)
        if n and arrival < self._arrivals.data[n - 1]:
            raise ValueError(
                f"job arrives at t={arrival:g}, before the previous submission "
                f"t={float(self._arrivals.data[n - 1]):g}; submissions must be "
                "arrival-ordered"
            )
        if duration < 0 or size < 0 or read_bytes < 0 or write_bytes < 0 or read_ops < 0:
            raise ValueError("negative duration, size or I/O volume")
        self._arrivals.append(arrival)
        self._durations.append(duration)
        self._sizes.append(size)
        self._read_bytes.append(read_bytes)
        self._write_bytes.append(write_bytes)
        self._read_ops.append(read_ops)
        self._tcio.append(tcio_rate_scalar(read_ops, write_bytes, duration, self.rates))
        self._lanes.append(self._lane_of(pipeline))
        self._pipelines.append(pipeline)
        self._users.append(user)
        if job_id is None:
            self._job_ids.append(n)
        else:
            self._job_ids.append(job_id)
            if not (isinstance(job_id, int) and job_id == n):
                self._ids_auto = False
        return n

    def append_block(
        self,
        arrivals: np.ndarray,
        durations: np.ndarray,
        sizes: np.ndarray,
        read_bytes: np.ndarray,
        write_bytes: np.ndarray,
        read_ops: np.ndarray,
        pipelines: Sequence[str] | None = None,
        users: Sequence[str] | None = None,
        job_ids: Sequence | None = None,
    ) -> tuple[int, int]:
        """Append one micro-batch of columns; returns ``(first, stop)``.

        Validation matches :meth:`append_job`; the TCIO column is
        computed vectorized over the batch (elementwise, so identical
        to the per-job path).
        """
        arrivals = np.ascontiguousarray(arrivals, dtype=float)
        durations = np.ascontiguousarray(durations, dtype=float)
        sizes = np.ascontiguousarray(sizes, dtype=float)
        read_bytes = np.ascontiguousarray(read_bytes, dtype=float)
        write_bytes = np.ascontiguousarray(write_bytes, dtype=float)
        read_ops = np.ascontiguousarray(read_ops, dtype=float)
        k = arrivals.size
        for col, label in (
            (durations, "durations"), (sizes, "sizes"),
            (read_bytes, "read_bytes"), (write_bytes, "write_bytes"),
            (read_ops, "read_ops"),
        ):
            if col.size != k:
                raise ValueError(f"batch column {label!r} has {col.size} entries, expected {k}")
            if (col < 0).any():
                raise ValueError(f"batch column {label!r} has negative entries")
        first = len(self)
        if k == 0:
            return first, first
        if k > 1 and (np.diff(arrivals) < 0).any():
            raise ValueError("batch arrivals must be non-decreasing")
        if first and arrivals[0] < self._arrivals.data[first - 1]:
            raise ValueError(
                f"batch starts at t={float(arrivals[0]):g}, before the previous "
                f"submission t={float(self._arrivals.data[first - 1]):g}"
            )
        self._arrivals.extend(arrivals)
        self._durations.extend(durations)
        self._sizes.extend(sizes)
        self._read_bytes.extend(read_bytes)
        self._write_bytes.extend(write_bytes)
        self._read_ops.extend(read_ops)
        self._tcio.extend(tcio_rate(read_ops, write_bytes, durations, self.rates))
        if pipelines is None:
            pipelines = ["pipeline0"] * k
        elif len(pipelines) != k:
            raise ValueError(f"batch pipelines has {len(pipelines)} entries, expected {k}")
        self._lanes.extend(
            np.fromiter(
                (self._lane_of(p) for p in pipelines), dtype=np.intp, count=k
            )
        )
        self._pipelines.extend(pipelines)
        if users is None:
            self._users.extend(["user0"] * k)
        elif len(users) != k:
            raise ValueError(f"batch users has {len(users)} entries, expected {k}")
        else:
            self._users.extend(users)
        if job_ids is None:
            self._job_ids.extend(range(first, first + k))
        elif len(job_ids) != k:
            raise ValueError(f"batch job_ids has {len(job_ids)} entries, expected {k}")
        else:
            self._job_ids.extend(job_ids)
            self._ids_auto = False
        return first, first + k
