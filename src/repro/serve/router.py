"""Fleet front door: one placement service scaled across N workers.

:class:`FleetRouter` is a :class:`~repro.serve.PlacementService` whose
kernel is a *facade*: admission arithmetic runs on N
:class:`~repro.serve.worker.PlacementWorker` instances (in-process
objects or forked children, see :mod:`repro.serve.transport`), each
owning the round-robin lane subset ``lane % n_workers == w``.  The
policy, job log, admission queue, service WAL, shock and snapshot
machinery are all inherited unchanged — the refactor swaps only the
kernel seam (:meth:`PlacementService._make_kernel`), which is what
keeps the fleet's decision stream bit-identical to one process:

- **Batch mode** — :class:`FleetChunkKernel` scatters each micro-batch
  chunk to the owning workers as SoA column blocks and gathers their
  outcome columns back into one
  :class:`~repro.storage.policy.BatchOutcomes`.  A full-lane *ledger*
  kernel tracks global free state (needed for the global peak sample
  and for catch-up arithmetic the workers cannot see), overwritten
  lane-by-lane with each worker's authoritative values at gather.
- **Scalar mode** — :class:`FleetScalarKernel` forwards each admit to
  the owning worker and mirrors the result into a full-lane
  :class:`~repro.storage.engine.ScalarKernel` replica.

Fault tolerance is per worker: every mutating op is appended to that
worker's write-ahead log *before* dispatch, workers checkpoint
periodically (``worker_checkpoint_every`` logged ops), and a dead
worker is rebuilt as checkpoint + WAL-suffix replay while the rest of
the fleet keeps serving — including the op that was in flight when the
worker died, which is always the WAL tail.  See ``docs/fleet.md`` for
the full walkthrough.
"""

from __future__ import annotations

import heapq
import os
import pickle

import numpy as np

from ..storage.engine import (
    ChunkKernel,
    ScalarKernel,
    SimResult,
    _ttl_release_fracs,
)
from ..storage.policy import BatchOutcomes
from .metrics import merge_states
from .service import PlacementService
from .transport import InProcessTransport, SubprocessTransport, WorkerDied
from .types import WORKER_SNAPSHOT_SCHEMA, SnapshotMismatch
from .wal import WriteAheadLog
from .worker import PlacementWorker

__all__ = ["FleetRouter", "worker_lanes"]

#: Worker ops that mutate kernel state — exactly these are WAL-logged
#: (and therefore replayed during worker recovery).
_MUTATING_OPS = frozenset(
    {"open", "chunk", "fit", "sync", "admit", "cancel", "resize"}
)

#: Op-dict keys that carry arrays, and the dtype each restores to when
#: a WAL record (JSON lists) is replayed.
_ARRAY_KEYS = {
    "t": float, "dur": float, "size": float, "ttl": float, "lane": np.intp,
}


def worker_lanes(n_shards: int, n_workers: int) -> list[np.ndarray]:
    """Round-robin lane ownership: worker ``w`` owns ``w, w+N, w+2N...``

    Round-robin (not contiguous blocks) so every worker count divides
    any shard count without remainder special-casing, and the
    global→local translation is arithmetic: ``owner = lane % N``,
    ``local = lane // N``.  Workers past ``n_shards`` own zero lanes.
    """
    return [
        np.arange(w, n_shards, n_workers, dtype=np.intp)
        for w in range(n_workers)
    ]


def _op_to_record(op: dict) -> dict:
    """An op dict as a JSON-serializable WAL record."""
    rec = {}
    for k, v in op.items():
        rec[k] = v.tolist() if isinstance(v, np.ndarray) else v
    return rec


def _op_from_record(rec: dict) -> dict:
    """Rebuild a dispatchable op from a WAL record (lists → arrays)."""
    op = dict(rec)
    for k, dtype in _ARRAY_KEYS.items():
        v = op.get(k)
        if isinstance(v, list):
            op[k] = np.asarray(v, dtype=dtype)
    return op


class _WorkerPool:
    """The fleet's workers: transports, per-worker WALs, counter cache.

    Owns everything per-worker so the two kernel facades stay pure
    arithmetic: spawning (by transport kind), WAL-before-dispatch
    logging, periodic checkpointing, crash detection and recovery, and
    the running counter cache every reply refreshes (so results never
    need an extra round-trip to a worker — or a live worker at all).

    Picklable/deep-copyable: ``__getstate__`` swaps the live transports
    for point-in-time worker payloads; a restored pool respawns workers
    lazily on first dispatch, so snapshots of a subprocess fleet do not
    fork children just by existing.  Restored pools run without
    per-worker durability (their WAL handles are not carried).
    """

    _COUNTER_KEYS = (
        "n_ssd_requested", "n_spilled", "n_evicted", "evicted_bytes",
        "n_scalar", "peak",
    )

    def __init__(
        self, *, n_shards, lane_caps, total, mode, compiled,
        n_workers, transport, worker_dir, checkpoint_every,
    ):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if transport not in ("inprocess", "subprocess"):
            raise ValueError(f"unknown transport {transport!r}")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("worker_checkpoint_every must be >= 1")
        self.n_shards = int(n_shards)
        self.n_workers = int(n_workers)
        self.transport_kind = transport
        self.worker_dir = None if worker_dir is None else os.fspath(worker_dir)
        self.checkpoint_every = checkpoint_every
        self.lanes_by_worker = worker_lanes(self.n_shards, self.n_workers)
        caps = np.asarray(lane_caps, dtype=float)
        self.specs = []
        for w, lw in enumerate(self.lanes_by_worker):
            sub = caps[lw].copy()
            self.specs.append({
                "worker_id": w,
                "mode": mode,
                "compiled": bool(compiled),
                "lane_caps": sub,
                "lanes": lw,
                "path_lanes": self.n_shards,
                # A single-worker fleet is the whole pool: it tracks
                # the global peak itself and uses the exact capacity
                # scalar; with more workers the router samples the
                # peak and each worker runs on its subset total.
                "track_peak": self.n_workers == 1,
                "total": float(total) if self.n_workers == 1
                else float(sub.sum()),
            })
        self.wals: list = [None] * self.n_workers
        if self.worker_dir is not None:
            os.makedirs(self.worker_dir, exist_ok=True)
            self.wals = [
                WriteAheadLog(self._wal_path(w))
                for w in range(self.n_workers)
            ]
        self.counters = [self._zero_counters() for _ in range(self.n_workers)]
        self.n_recoveries = 0  # workers rebuilt from checkpoint + WAL
        self._pending_payloads = None
        self.transports = [self._spawn(w) for w in range(self.n_workers)]

    @staticmethod
    def _zero_counters() -> dict:
        return {
            "n_ssd_requested": 0, "n_spilled": 0, "n_evicted": 0,
            "evicted_bytes": 0.0, "n_scalar": 0, "peak": 0.0,
        }

    def _wal_path(self, w: int) -> str:
        return os.path.join(self.worker_dir, f"worker{w}.wal")

    def _ckpt_path(self, w: int) -> str:
        return os.path.join(self.worker_dir, f"worker{w}.ckpt")

    def _spawn(self, w: int):
        if self.transport_kind == "subprocess":
            return SubprocessTransport(w, self.specs[w])
        return InProcessTransport(w, PlacementWorker(self.specs[w]))

    def _ensure(self) -> None:
        """Respawn workers after an unpickle/restore (lazily)."""
        if self.transports is not None:
            return
        payloads = self._pending_payloads
        self._pending_payloads = None
        self.transports = []
        for w in range(self.n_workers):
            tr = self._spawn(w)
            if payloads is not None:
                tr.request({"op": "restore", "payload": payloads[w]})
            self.transports.append(tr)

    # -- dispatch -------------------------------------------------------

    def _log_op(self, w: int, op: dict) -> bool:
        """WAL-before-dispatch; returns whether the op was logged."""
        wal = self.wals[w]
        if wal is None or op.get("op") not in _MUTATING_OPS:
            return False
        wal.append(_op_to_record(op))
        return True

    def _update(self, w: int, reply: dict) -> None:
        c = self.counters[w]
        for k in self._COUNTER_KEYS:
            if k in reply:
                c[k] = reply[k]

    def _maybe_checkpoint(self, w: int) -> None:
        every = self.checkpoint_every
        wal = self.wals[w]
        if not every or wal is None or wal.seq % every:
            return
        try:
            self.transports[w].request({
                "op": "checkpoint",
                "path": self._ckpt_path(w),
                "anchor": wal.seq,
            })
        except WorkerDied:
            # The next real op notices and recovers; this checkpoint
            # simply did not advance the anchor.
            pass

    def request(self, w: int, op: dict) -> dict:
        """One op to worker ``w``, with transparent crash recovery.

        A mutating op is in the WAL before dispatch, so when the worker
        dies mid-op the replay's last reply *is* this op's reply; a
        non-mutating op is re-issued against the recovered worker.
        """
        self._ensure()
        logged = self._log_op(w, op)
        try:
            reply = self.transports[w].request(op)
        except WorkerDied:
            last = self.recover(w)
            reply = last if logged else self.transports[w].request(op)
        self._update(w, reply)
        if logged:
            self._maybe_checkpoint(w)
        return reply

    def scatter(self, ops: dict) -> dict:
        """Send every op before receiving any reply (workers overlap).

        ``ops`` maps worker id → op dict; returns worker id → reply.
        Dead workers are recovered exactly as in :meth:`request`.
        """
        self._ensure()
        logged = {w: self._log_op(w, op) for w, op in ops.items()}
        failed = set()
        for w, op in ops.items():
            try:
                self.transports[w].send(op)
            except WorkerDied:
                failed.add(w)
        replies = {}
        for w, op in ops.items():
            if w not in failed:
                try:
                    replies[w] = self.transports[w].recv()
                except WorkerDied:
                    failed.add(w)
            if w in failed:
                last = self.recover(w)
                replies[w] = (
                    last if logged[w] else self.transports[w].request(op)
                )
            self._update(w, replies[w])
            if logged[w]:
                self._maybe_checkpoint(w)
        return replies

    # -- lifecycle ------------------------------------------------------

    def kill(self, w: int) -> None:
        self._ensure()
        self.transports[w].kill()

    def alive(self, w: int) -> bool:
        self._ensure()
        return self.transports[w].alive

    def recover(self, w: int) -> dict | None:
        """Rebuild worker ``w`` as checkpoint + WAL-suffix replay.

        Returns the last replayed reply (``None`` when nothing needed
        replaying) — which, when recovery was triggered by a mutating
        op's dispatch failure, is that op's reply: the op went to the
        WAL before the wire.
        """
        self._ensure()
        if self.wals[w] is None:
            raise WorkerDied(
                w,
                "no worker_dir was configured, so there is no checkpoint "
                "or WAL to recover from",
            )
        try:
            self.transports[w].kill()
        except Exception:
            pass
        payload = None
        anchor = 0
        ckpt = self._ckpt_path(w)
        if os.path.exists(ckpt):
            with open(ckpt, "rb") as fh:
                payload = pickle.load(fh)
            schema = (
                payload.get("__schema__") if isinstance(payload, dict)
                else None
            )
            if schema != WORKER_SNAPSHOT_SCHEMA:
                raise SnapshotMismatch(
                    f"worker {w} checkpoint has schema {schema!r}, this "
                    f"library restores schema {WORKER_SNAPSHOT_SCHEMA}"
                )
            anchor = int(payload.get("anchor", 0))
        tr = self._spawn(w)
        self.transports[w] = tr
        if payload is not None:
            tr.request({"op": "restore", "payload": payload})
        last = None
        for _seq, rec in WriteAheadLog.read(self._wal_path(w), anchor):
            last = tr.request(_op_from_record(rec))
        if last is not None:
            self._update(w, last)
        self.n_recoveries += 1
        return last

    def close(self) -> None:
        if self.transports is not None:
            for tr in self.transports:
                try:
                    tr.close()
                except Exception:
                    pass
        for wal in self.wals:
            if wal is not None:
                wal.close()

    # -- aggregates -----------------------------------------------------

    def total(self, key: str):
        return sum(c[key] for c in self.counters)

    # -- pickling / deep copy -------------------------------------------

    def __getstate__(self):
        if self.transports is None and self._pending_payloads is not None:
            payloads = list(self._pending_payloads)
        else:
            self._ensure()
            payloads = [
                self.request(w, {"op": "state"})["payload"]
                for w in range(self.n_workers)
            ]
        state = self.__dict__.copy()
        state["transports"] = None
        state["wals"] = [None] * self.n_workers
        state["worker_dir"] = None
        state["checkpoint_every"] = None
        state["_pending_payloads"] = payloads
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


class FleetChunkKernel:
    """Scatter-gather facade over per-worker :class:`ChunkKernel` s.

    Presents the exact ``ChunkKernel`` surface the service drives
    (``open_chunk`` / ``run_chunk`` / ``cancel`` / ``resize_lane`` plus
    the counter properties) while the admission arithmetic runs on the
    workers.  The *ledger* — a full-lane ``ChunkKernel`` that never
    runs a chunk itself — tracks the global release schedule and free
    vector: the global peak sample needs cross-worker event
    interleaving, and cancel/resize catch-up needs the fleet-wide
    release cursor, neither of which any single worker can see.
    """

    def __init__(self, lane_caps, total, pool: _WorkerPool):
        self.pool = pool
        self.ledger = ChunkKernel(
            lane_caps, total, compiled=False, track_peak=False
        )
        self._peak = 0.0
        self._cursor = -np.inf

    # -- passthrough state ----------------------------------------------

    @property
    def capacity(self):
        return self.ledger.capacity

    @property
    def lane_capacity(self):
        return self.ledger.lane_capacity

    @property
    def free(self):
        return self.ledger.free

    @property
    def peak_used(self) -> float:
        if self.pool.n_workers == 1:
            return self.pool.counters[0]["peak"]
        return self._peak

    @property
    def n_ssd_requested(self) -> int:
        return self.pool.total("n_ssd_requested")

    @property
    def n_spilled(self) -> int:
        return self.pool.total("n_spilled")

    @property
    def n_evicted(self) -> int:
        return self.pool.total("n_evicted")

    @property
    def evicted_bytes(self) -> float:
        return self.pool.total("evicted_bytes")

    @property
    def scalar_fallback_jobs(self) -> int:
        return self.pool.total("n_scalar")

    def counters(self) -> dict:
        """Fleet-wide admission counters (cache sums; no round-trips)."""
        return {
            "n_ssd_requested": int(self.n_ssd_requested),
            "n_spilled": int(self.n_spilled),
            "n_evicted": int(self.n_evicted),
            "evicted_bytes": float(self.evicted_bytes),
            "scalar_fallback_jobs": int(self.scalar_fallback_jobs),
            "peak_used": float(self.peak_used),
        }

    @property
    def st(self):
        return self.ledger.st

    def _catch(self):
        # JSON WALs cannot carry -inf portably; None means "no chunk
        # has run yet, nothing to catch up".
        return None if self._cursor == -np.inf else float(self._cursor)

    # -- chunk lifecycle ------------------------------------------------

    def open_chunk(self, t0: float, lane: int):
        st = self.ledger.st
        j = st.rel_pos + int(np.searchsorted(
            st.rel_t[st.rel_pos:], t0, side="right"
        ))
        if j > st.rel_pos:
            # The single-process kernel pops everything matured by t0
            # as one release_until call per open, and the pop
            # granularity is part of the float association (pairwise
            # np.sum on single-lane pools).  Mirror each boundary that
            # pops entries to the owning workers, then adopt their
            # authoritative free values before snapshotting the
            # context the policy plans against.
            owners = np.unique(st.rel_l[st.rel_pos:j] % self.pool.n_workers)
            replies = self.pool.scatter(
                {int(w): {"op": "open", "t0": float(t0)} for w in owners}
            )
            st.release_until(t0)
            for w, reply in replies.items():
                st.free[self.pool.lanes_by_worker[w]] = reply["free"]
        ctx = self.ledger.open_chunk(t0, lane)
        if t0 > self._cursor:
            self._cursor = t0
        return ctx

    def run_chunk(
        self, bd, first, stop, arrivals, durations, sizes, shards,
        ssd_fraction, alloc_out=None, release_out=None, t_last=None,
    ):
        count = stop - first
        chunk_t = arrivals[first:stop]
        if t_last is None:
            t_last = float(chunk_t[count - 1])
        chunk_lanes = shards[first:stop] if shards is not None else None
        space = np.zeros(count)
        spill_col = np.full(count, np.nan)
        if bd.fit_check:
            requested = self._run_fit(
                bd, first, stop, t_last, arrivals, durations, sizes,
                chunk_lanes, space, spill_col, ssd_fraction,
                alloc_out, release_out,
            )
        else:
            requested = np.asarray(bd.want_ssd, dtype=bool)[:count].copy()
            cand = np.flatnonzero(requested)
            if cand.size:
                self._run_mask(
                    bd, first, cand, t_last, arrivals, durations, sizes,
                    chunk_lanes, space, spill_col, ssd_fraction,
                    alloc_out, release_out,
                )
        outcomes = BatchOutcomes(
            first=first,
            times=chunk_t,
            requested_ssd=requested,
            ssd_space_fraction=np.where(requested, space, 0.0),
            spill_time=spill_col,
            shards=chunk_lanes,
        )
        self.ledger.st.merge_new()
        return outcomes

    def _run_mask(
        self, bd, first, cand, t_last, arrivals, durations, sizes,
        chunk_lanes, space, spill_col, ssd_fraction, alloc_out, release_out,
    ):
        pool = self.pool
        W = pool.n_workers
        st = self.ledger.st
        idx = first + cand
        ct = arrivals[idx]
        cs = sizes[idx]
        cdur = durations[idx]
        ttl_vals = (
            None if bd.ssd_ttl is None
            else np.asarray(bd.ssd_ttl, dtype=float)[cand]
        )
        release, _ = _ttl_release_fracs(ct, cdur, ttl_vals)
        if chunk_lanes is None:
            lane = np.zeros(cand.size, dtype=np.intp)
        else:
            lane = chunk_lanes[cand]
        t0 = float(arrivals[first])

        # The ledger's pending-release window for this chunk (entries
        # past t0 — open_chunk consumed everything at or before it —
        # and at or before t_last), viewed before consumption: the
        # global peak pass below interleaves these with the chunk's
        # own events exactly as the single-process kernel does.
        j2 = st.rel_pos + int(np.searchsorted(
            st.rel_t[st.rel_pos:], t_last, side="right"
        ))
        old_t = st.rel_t[st.rel_pos:j2]
        old_a = st.rel_a[st.rel_pos:j2]
        old_l = st.rel_l[st.rel_pos:j2]
        inside = release <= t_last
        total_free_start = float(st.free.sum())

        owner = lane % W
        ops = {}
        parts = {}
        for w in range(W):
            pw = np.flatnonzero(owner == w)
            if pw.size:
                parts[w] = pw
                ops[w] = {
                    "op": "chunk", "t0": t0, "t_last": t_last,
                    "t": ct[pw], "dur": cdur[pw], "size": cs[pw],
                    "lane": lane[pw] // W,
                    "ttl": None if ttl_vals is None else ttl_vals[pw],
                }
        if old_l.size and len(parts) < W:
            # A worker with no candidates this chunk but releases
            # maturing inside the window must still consume them with
            # the clean-lane (sum-then-add) float association — the
            # single-process run consumed those entries through lane
            # trajectories, and leaving them for a later release_until
            # catch-up would change the association.
            win_owner = old_l % W
            for w in range(W):
                if w not in ops and np.any(win_owner == w):
                    ops[w] = {"op": "sync", "t0": t0, "t_last": t_last}
        replies = pool.scatter(ops)

        # Ledger roll-forward: consume the window clean for every lane,
        # then overwrite each replying worker's lanes with its
        # authoritative free vector (a worker whose lane bound mid-
        # chunk followed the binding replay, which the clean
        # consumption cannot reproduce).
        st.consume_window_clean(t_last)
        alloc_arr = np.zeros(cand.size)
        for w, reply in replies.items():
            st.free[pool.lanes_by_worker[w]] = reply["free"]
            pw = parts.get(w)
            if pw is None:
                continue
            space[cand[pw]] = reply["space"]
            spill_col[cand[pw]] = reply["spill"]
            ssd_fraction[idx[pw]] = reply["frac"]
            alloc_arr[pw] = reply["alloc"]
        # Releases maturing past the chunk buffer in global candidate
        # order.  The single-process kernel buffers per lane as it
        # processes them; at exactly-equal release timestamps across
        # lanes the pending-heap order can differ (docs/fleet.md).
        for k in np.flatnonzero((alloc_arr > 0.0) & ~inside):
            st.buffer_release(float(release[k]), float(alloc_arr[k]),
                              int(lane[k]))
        if alloc_out is not None:
            alloc_out[cand] = alloc_arr
            release_out[cand] = release
        if W > 1:
            # Global peak: replay the fleet-wide event timeline —
            # window releases, candidate arrivals (allocations), and
            # in-chunk releases — in the single-process event order
            # and sample free at each arrival.
            pos = np.arange(cand.size)
            ev_t = np.concatenate([old_t, ct, release[inside]])
            ev_k = np.concatenate(
                [np.full(old_t.size, -1), 2 * pos, 2 * pos[inside] + 1]
            )
            order = np.lexsort((ev_k, ev_t))
            ko = ev_k[order]
            arr_pos = (ko >= 0) & ((ko & 1) == 0)
            ev_pd = np.concatenate([old_a, -alloc_arr, alloc_arr[inside]])
            low = float(
                (total_free_start + np.cumsum(ev_pd[order]))[arr_pos].min()
            )
            peak = st.capacity - low
            if peak > self._peak:
                self._peak = peak
        if t_last > self._cursor:
            self._cursor = t_last

    def _run_fit(
        self, bd, first, stop, t_last, arrivals, durations, sizes,
        chunk_lanes, space, spill_col, ssd_fraction, alloc_out, release_out,
    ):
        pool = self.pool
        W = pool.n_workers
        st = self.ledger.st
        count = stop - first
        t0 = float(arrivals[first])
        chunk_t = arrivals[first:stop]
        chunk_dur = durations[first:stop]
        chunk_size = sizes[first:stop]
        ttl_vals = (
            None if bd.ssd_ttl is None
            else np.asarray(bd.ssd_ttl, dtype=float)
        )
        release, time_frac = _ttl_release_fracs(chunk_t, chunk_dur, ttl_vals)
        if chunk_lanes is None:
            lane = np.zeros(count, dtype=np.intp)
        else:
            lane = chunk_lanes

        # Fit verdicts depend only on the job's own lane, so each
        # worker runs the per-job loop over its share and the verdict
        # columns come back exact.
        owner = lane % W
        ops = {}
        parts = {}
        for w in range(W):
            pw = np.flatnonzero(owner == w)
            if pw.size:
                parts[w] = pw
                ops[w] = {
                    "op": "fit", "t0": t0, "t_last": t_last,
                    "t": chunk_t[pw], "dur": chunk_dur[pw],
                    "size": chunk_size[pw], "lane": lane[pw] // W,
                    "ttl": None if ttl_vals is None else ttl_vals[pw],
                }
        replies = pool.scatter(ops)
        requested = np.zeros(count, dtype=bool)
        for w, pw in parts.items():
            requested[pw] = replies[w]["requested"]

        # Replay the single-process per-job loop on the ledger with the
        # workers' verdicts substituted for the fit test — same release
        # pops, same subtractions, same in-chunk local heap — for the
        # global free vector, release schedule, and peak samples.
        track = W > 1
        local_heap: list = []
        for k in range(count):
            gi = first + k
            t = float(arrivals[gi])
            st.release_until(t)
            while local_heap and local_heap[0][0] <= t:
                _, hl, amt = heapq.heappop(local_heap)
                st.free[hl] += amt
            if not requested[k]:
                continue
            L = int(lane[k])
            size = float(chunk_size[k])
            st.free[L] -= size
            if track:
                used = st.capacity - float(st.free.sum())
                if used > self._peak:
                    self._peak = used
            if size > 0:
                rt = float(release[k])
                if rt <= t_last:
                    heapq.heappush(local_heap, (rt, L, size))
                else:
                    st.buffer_release(rt, size, L)
            space[k] = 1.0
            ssd_fraction[gi] = float(time_frac[k])
            if alloc_out is not None:
                alloc_out[k] = size
                release_out[k] = float(release[k])
        for rt, hl, amt in local_heap:
            st.buffer_release(rt, amt, hl)
        if t_last > self._cursor:
            self._cursor = t_last
        return requested

    # -- out-of-band mutations ------------------------------------------

    def cancel(self, lane: int, alloc: float, release_time: float) -> None:
        W = self.pool.n_workers
        self.pool.request(int(lane) % W, {
            "op": "cancel", "catch": self._catch(),
            "lane": int(lane) // W, "alloc": float(alloc),
            "release": float(release_time),
        })
        self.ledger.cancel(lane, alloc, release_time)

    def resize_lane(self, lane: int, new_capacity: float):
        W = self.pool.n_workers
        self.pool.request(int(lane) % W, {
            "op": "resize", "catch": self._catch(),
            "lane": int(lane) // W, "cap": float(new_capacity),
        })
        return self.ledger.resize_lane(lane, new_capacity)


class FleetScalarKernel:
    """Scatter facade over per-worker :class:`ScalarKernel` s.

    Each admit goes to the lane's owner; the returned free value and
    release entry are mirrored into a full-lane ``ScalarKernel``
    replica, whose heap and free vector stay bit-identical to a
    single-process run — that is what makes cancel/resize (which the
    mirror executes locally, forwarding to the worker for its copy)
    and the global peak sample exact.
    """

    def __init__(self, lane_caps, total, pool: _WorkerPool):
        self.pool = pool
        self.mirror = ScalarKernel(lane_caps, total, track_peak=False)
        self._peak = 0.0
        self._cursor = -np.inf

    @property
    def capacity(self):
        return self.mirror.capacity

    @property
    def lane_capacity(self):
        return self.mirror.lane_capacity

    @property
    def free(self):
        return self.mirror.free

    @property
    def peak_used(self) -> float:
        if self.pool.n_workers == 1:
            return self.pool.counters[0]["peak"]
        return self._peak

    @property
    def n_ssd_requested(self) -> int:
        return self.pool.total("n_ssd_requested")

    @property
    def n_spilled(self) -> int:
        return self.pool.total("n_spilled")

    @property
    def n_evicted(self) -> int:
        return self.pool.total("n_evicted")

    @property
    def evicted_bytes(self) -> float:
        return self.pool.total("evicted_bytes")

    def counters(self) -> dict:
        """Fleet-wide admission counters (cache sums; no round-trips)."""
        return {
            "n_ssd_requested": int(self.n_ssd_requested),
            "n_spilled": int(self.n_spilled),
            "n_evicted": int(self.n_evicted),
            "evicted_bytes": float(self.evicted_bytes),
            "scalar_fallback_jobs": int(self.pool.total("n_scalar")),
            "peak_used": float(self.peak_used),
        }

    def _catch(self):
        return None if self._cursor == -np.inf else float(self._cursor)

    def release_until(self, t: float) -> None:
        self.mirror.release_until(t)
        if t > self._cursor:
            self._cursor = t

    def admit(self, i, t, size, duration, lane, want_ssd, ssd_ttl=None):
        if not want_ssd:
            # Same early return as ScalarKernel.admit — no counters
            # move, so no worker round-trip is needed.
            return 0.0, 0.0, None, 0.0, t
        pool = self.pool
        W = pool.n_workers
        reply = pool.request(int(lane) % W, {
            "op": "admit", "i": int(i), "t": float(t),
            "size": float(size), "dur": float(duration),
            "lane": int(lane) // W,
            "ttl": None if ssd_ttl is None else float(ssd_ttl),
        })
        space_frac, frac, spill_time, alloc, release = reply["res"]
        mirror = self.mirror
        f = reply["free"]
        mirror.free[lane] = f
        if alloc > 0:
            heapq.heappush(mirror.heap, (release, int(i), int(lane), alloc))
        if W > 1:
            used = mirror.capacity - (
                f if mirror.free.size == 1 else float(mirror.free.sum())
            )
            if used > self._peak:
                self._peak = used
        return space_frac, frac, spill_time, alloc, release

    def cancel(self, i: int, lane: int, alloc: float) -> None:
        W = self.pool.n_workers
        self.pool.request(int(lane) % W, {
            "op": "cancel", "catch": self._catch(), "i": int(i),
            "lane": int(lane) // W, "alloc": float(alloc),
        })
        self.mirror.cancel(i, lane, alloc)

    def resize_lane(self, lane: int, new_capacity: float):
        W = self.pool.n_workers
        self.pool.request(int(lane) % W, {
            "op": "resize", "catch": self._catch(),
            "lane": int(lane) // W, "cap": float(new_capacity),
        })
        return self.mirror.resize_lane(lane, new_capacity)


class FleetRouter(PlacementService):
    """The fleet front door: a :class:`PlacementService` over N workers.

    Drop-in for the single-process service — same ``open`` / ``submit``
    / ``submit_batch`` / ``complete`` / ``apply_shock`` / ``drain`` /
    ``result`` surface, same WAL/checkpoint/recover machinery — with
    the kernel swapped for a scatter-gather facade.  Every aggregate it
    reports is bit-identical to the single-process run on the same
    inputs, for any worker count and either transport.

    Parameters beyond :class:`PlacementService`:

    n_workers:
        Fleet size (1 = a single worker owning every lane, still
        behind the transport seam).
    transport:
        ``"inprocess"`` (worker objects in this process, the default)
        or ``"subprocess"`` (forked children behind pipes).
    worker_dir:
        Directory for per-worker WALs and checkpoints.  Required for
        worker crash recovery: with it, a dead worker is rebuilt
        transparently on the next op that touches it (or explicitly
        via :meth:`recover_worker`); without it a dead worker raises
        :class:`~repro.serve.transport.WorkerDied`.
    worker_checkpoint_every:
        Checkpoint a worker every this many logged ops (default 64; a
        recovery then replays at most this much WAL suffix).
    """

    def __init__(
        self, policy, capacity, n_shards: int = 1, *,
        n_workers: int = 1, transport: str = "inprocess",
        worker_dir=None, worker_checkpoint_every: int | None = 64,
        **kwargs,
    ):
        # _make_kernel runs inside super().__init__, so the fleet
        # config must exist first.
        self._fleet_config = {
            "n_workers": int(n_workers),
            "transport": transport,
            "worker_dir": worker_dir,
            "checkpoint_every": worker_checkpoint_every,
        }
        self.pool = None
        super().__init__(policy, capacity, n_shards, **kwargs)

    def _make_kernel(self, lane_caps, total):
        cfg = self._fleet_config
        pool = _WorkerPool(
            n_shards=self.n_shards,
            lane_caps=lane_caps,
            total=total,
            mode=self.mode,
            compiled=self.engine == "compiled",
            n_workers=cfg["n_workers"],
            transport=cfg["transport"],
            worker_dir=cfg["worker_dir"],
            checkpoint_every=cfg["checkpoint_every"],
        )
        self.pool = pool
        if self.mode == "scalar":
            return FleetScalarKernel(lane_caps, total, pool)
        return FleetChunkKernel(lane_caps, total, pool)

    # -- fleet surface --------------------------------------------------

    @property
    def n_workers(self) -> int:
        return self.pool.n_workers

    def worker_alive(self, w: int) -> bool:
        return self.pool.alive(w)

    def kill_worker(self, w: int) -> None:
        """Crash worker ``w`` (SIGKILL / dropped state) — chaos hook."""
        self.pool.kill(w)

    def recover_worker(self, w: int) -> None:
        """Rebuild worker ``w`` from its checkpoint + WAL suffix now.

        Recovery also happens transparently on the next op routed to a
        dead worker; this forces it eagerly (e.g. from a chaos scenario
        or an operator console).  Requires ``worker_dir``.
        """
        self.pool.recover(w)

    def close(self) -> None:
        """Shut the fleet down (stop workers, close per-worker WALs)."""
        if self.pool is not None:
            self.pool.close()

    # -- metrics --------------------------------------------------------

    def _sync_metrics(self) -> None:
        """Fleet metrics: the service sync plus a worker gather.

        The serve-side counters come from the reply-refreshed counter
        cache (via ``kernel.counters()``), so they are exact even with
        dead workers.  On top of that, each live worker's partial op
        metrics are fetched and folded — counter sums, exact histogram
        bucket merges, order-independent — then installed by overwrite,
        so repeated gathers never double count.  A worker that is down
        and unrecoverable simply drops out of this round's gather.
        """
        super()._sync_metrics()
        reg = self.registry
        pool = self.pool
        reg.gauge(
            "serve_workers", help="Configured fleet width"
        ).set(pool.n_workers)
        states = []
        alive = 0
        for w in range(pool.n_workers):
            try:
                reply = pool.request(w, {"op": "metrics"})
            except WorkerDied:
                continue
            alive += 1
            states.append(reply["state"])
        reg.gauge(
            "serve_workers_alive",
            help="Workers that answered the last metrics gather",
        ).set(alive)
        reg.counter(
            "serve_worker_recoveries",
            help="Workers rebuilt from checkpoint + WAL-suffix replay",
        ).set(pool.n_recoveries)
        if states:
            reg.load_state(merge_states(states))

    def worker_op_spans(self) -> list[dict]:
        """Every live worker's op-span ring, gathered fleet-wide.

        One non-mutating ``{"op": "spans"}`` round-trip per worker —
        never WAL-logged (``"spans"`` is not in ``_MUTATING_OPS``), so
        gathering spans cannot change what a recovery replays.  A dead,
        unrecoverable worker drops out of the gather; a recoverable one
        is rebuilt transparently and reports a fresh ring (worker op
        spans are auxiliary telemetry, not checkpointed — see
        :meth:`~repro.serve.worker.PlacementWorker._op_spans`).
        """
        pool = self.pool
        spans: list[dict] = []
        for w in range(pool.n_workers):
            try:
                reply = pool.request(w, {"op": "spans"})
            except WorkerDied:
                continue
            spans.extend(reply["spans"])
        return spans

    # -- roll-up --------------------------------------------------------

    def result(
        self, drain: bool = True, aggregate_only: bool = False
    ) -> SimResult:
        """Scatter-gather roll-up: per-worker partial results, merged.

        Each worker's part carries its counters and its jobs' decision
        fractions (sliced from the router's log by lane ownership);
        :meth:`SimResult.merge` reassembles the per-job array and
        recomputes the cost roll-up over the full trace, so the merged
        result is bit-identical to the single-process service's.
        Counters come from the router's reply-refreshed cache — no
        worker round-trip, so a roll-up works even mid-outage.
        """
        self._ensure_open()
        if drain:
            self.drain()
        elif self.pending:
            raise RuntimeError(
                f"{self.pending} submitted jobs still queued; drain() first "
                "or call result(drain=True)"
            )
        pool = self.pool
        n = len(self.log)
        frac = self._frac.view()
        lanes_col = self.log.lanes if self.n_shards > 1 else None
        parts = []
        for w in range(pool.n_workers):
            lw = pool.lanes_by_worker[w]
            c = pool.counters[w]
            if lanes_col is None:
                ji = (
                    np.arange(n, dtype=np.intp) if w == 0
                    else np.empty(0, dtype=np.intp)
                )
            else:
                ji = np.flatnonzero(np.isin(lanes_col, lw))
            parts.append(SimResult(
                policy_name=self.policy.name,
                capacity=(
                    float(self.lane_capacities[lw].sum()) if lw.size else 0.0
                ),
                n_jobs=int(ji.size),
                baseline_tco=0.0,
                realized_tco=0.0,
                baseline_tcio=0.0,
                realized_hdd_tcio=0.0,
                n_ssd_requested=int(c["n_ssd_requested"]),
                n_spilled=int(c["n_spilled"]),
                peak_ssd_used=float(c["peak"]),
                ssd_fraction=frac[ji].copy(),
                n_shards=max(int(lw.size), 1),
                scalar_fallback_jobs=int(c["n_scalar"]),
                lane_capacities=self.lane_capacities[lw].copy(),
                job_indices=ji,
                lane_indices=lw.copy(),
            ))
        return SimResult.merge(
            parts,
            trace=self.log,
            rates=self.rates,
            policy_name=self.policy.name,
            capacity=float(self.capacity),
            n_shards=self.n_shards,
            lane_capacities=self.lane_capacities.copy(),
            peak_ssd_used=float(self.kernel.peak_used),
            n_jobs=n,
            aggregate_only=aggregate_only,
        )
