"""Block transports: how the fleet router talks to its workers.

A :class:`~repro.serve.router.FleetRouter` scatter-gathers micro-batch
chunks to N :class:`~repro.serve.worker.PlacementWorker` instances.
The *transport* is the seam between them: an object that carries one
worker's op dicts (SoA column blocks, admission ops, checkpoint
requests) to wherever the worker runs and brings its replies back.

Two implementations:

- :class:`InProcessTransport` — the worker lives in this process and
  ops execute synchronously on :meth:`request`.  Zero copies, zero
  serialization; the default, and the reference the subprocess
  transport is tested bit-identical against.
- :class:`SubprocessTransport` — the worker runs in a forked
  ``multiprocessing`` child connected by a duplex pipe.  NumPy column
  blocks pickle across natively.  A dead child (crash, kill, exit)
  surfaces as :class:`WorkerDied` on the next request, which is the
  router's signal to run per-worker recovery.

Both expose the same tiny surface — ``request`` (send one op, wait for
its reply), split ``send``/``recv`` halves (the router *scatters* one
chunk's ops to every worker before *gathering* any reply, which is
where subprocess workers overlap their compute), ``kill`` (hard-stop
the worker, simulating a crash), ``close`` (orderly shutdown),
``alive`` — so the router and the chaos suite never branch on which
one they hold.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from abc import ABC, abstractmethod

__all__ = [
    "WorkerDied",
    "WorkerTransport",
    "InProcessTransport",
    "SubprocessTransport",
]


class WorkerDied(RuntimeError):
    """The worker behind a transport is gone (crashed, killed, exited).

    Carries the worker id so the router knows which lane subset lost
    its owner; the op that hit the failure was logged to the worker's
    WAL before dispatch, so recovery replays it.
    """

    def __init__(self, worker_id: int, detail: str = ""):
        self.worker_id = worker_id
        msg = f"worker {worker_id} died"
        super().__init__(f"{msg}: {detail}" if detail else msg)


class WorkerTransport(ABC):
    """One router-to-worker channel; see the module docstring."""

    #: Router-assigned worker id, for error attribution.
    worker_id: int

    @abstractmethod
    def send(self, op: dict) -> None:
        """Dispatch one op dict without waiting for the reply.

        Pair with :meth:`recv`; the router scatters a chunk by calling
        ``send`` on every participating transport before ``recv`` on
        any, so subprocess workers compute concurrently.
        """

    @abstractmethod
    def recv(self) -> dict:
        """Block for the reply to the oldest unanswered :meth:`send`.

        Raises :class:`WorkerDied` when the worker cannot answer.
        """

    def request(self, op: dict) -> dict:
        """Send one op dict, block for the worker's reply dict.

        Raises :class:`WorkerDied` when the worker cannot answer.
        """
        self.send(op)
        return self.recv()

    @abstractmethod
    def kill(self) -> None:
        """Hard-stop the worker (no drain, no checkpoint) — a crash."""

    @abstractmethod
    def close(self) -> None:
        """Orderly shutdown: deliver a ``stop`` op and reap the worker."""

    @property
    @abstractmethod
    def alive(self) -> bool:
        """Whether the worker can still answer requests."""


class InProcessTransport(WorkerTransport):
    """The worker object lives here; ops run synchronously.

    ``kill`` flips a dead flag and drops the worker, so crash/recover
    choreography (and its tests) run identically to the subprocess
    transport — just without a second process.
    """

    def __init__(self, worker_id: int, worker):
        self.worker_id = worker_id
        self._worker = worker
        self._dead = False
        self._replies: list[dict] = []

    def send(self, op: dict) -> None:
        if self._dead or self._worker is None:
            raise WorkerDied(self.worker_id, "killed (in-process)")
        # Synchronous execution; the reply queues until recv.
        self._replies.append(self._worker.handle(op))

    def recv(self) -> dict:
        if not self._replies:
            raise WorkerDied(self.worker_id, "recv with no pending send")
        return self._replies.pop(0)

    def kill(self) -> None:
        self._dead = True
        self._worker = None
        self._replies.clear()

    def close(self) -> None:
        self._worker = None
        self._dead = True

    @property
    def alive(self) -> bool:
        return not self._dead and self._worker is not None


def _child_main(conn, spec: dict) -> None:
    """Entry point of a forked worker child: serve ops until stop/EOF."""
    # Import here: the child only needs the worker, and a top-level
    # import would make transport <-> worker circular.
    from .worker import PlacementWorker

    worker = PlacementWorker.from_spec(spec)
    try:
        while True:
            try:
                op = conn.recv()
            except EOFError:
                break
            try:
                reply = worker.handle(op)
            except Exception as exc:  # surface, don't kill the child
                reply = {"error": f"{type(exc).__name__}: {exc}"}
            conn.send(reply)
            if op.get("op") == "stop":
                break
    finally:
        conn.close()


class SubprocessTransport(WorkerTransport):
    """A forked ``multiprocessing`` child behind a duplex pipe.

    Fork (not spawn): the child inherits the parent's imports, so
    startup is milliseconds, and the worker spec — plain dict of
    scalars and small arrays — still travels explicitly so a recovery
    respawn builds the identical worker.  Every broken-pipe condition
    is normalized to :class:`WorkerDied`.
    """

    def __init__(self, worker_id: int, spec: dict):
        self.worker_id = worker_id
        self._spec = spec
        ctx = multiprocessing.get_context("fork")
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=_child_main, args=(child_conn, spec), daemon=True
        )
        self._proc.start()
        child_conn.close()

    def send(self, op: dict) -> None:
        if not self.alive:
            raise WorkerDied(self.worker_id, "process not running")
        try:
            self._conn.send(op)
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise WorkerDied(self.worker_id, str(exc)) from None

    def recv(self) -> dict:
        try:
            reply = self._conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise WorkerDied(self.worker_id, str(exc)) from None
        if "error" in reply:
            raise RuntimeError(
                f"worker {self.worker_id}: {reply['error']}"
            )
        return reply

    def kill(self) -> None:
        """SIGKILL the child — the hardest crash a process can have."""
        if self._proc.is_alive():
            os.kill(self._proc.pid, signal.SIGKILL)
            self._proc.join(timeout=5.0)
        self._conn.close()

    def close(self) -> None:
        if self._proc.is_alive():
            try:
                self._conn.send({"op": "stop"})
                self._conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                pass
            self._proc.join(timeout=5.0)
            if self._proc.is_alive():
                self._proc.terminate()
                self._proc.join(timeout=5.0)
        self._conn.close()

    @property
    def alive(self) -> bool:
        return self._proc.is_alive()
