"""Online placement serving: the live counterpart of the offline runtime.

Everything below :mod:`repro.storage` replays a finished trace; this
subsystem runs the same placement computation *forward in time*, the
way the paper's production system runs it — jobs arrive, get routed to
a caching server, the adaptive threshold reacts, completions return
space:

- :class:`PlacementService` — the stateful request-at-a-time (or
  micro-batch) controller over the unified engine's incremental
  kernels; submissions mutate live lane state and return
  :class:`PlacementDecision` objects, ``complete`` events free space
  early, and ``snapshot``/``restore`` checkpoint the whole thing.
- :class:`OnlineAdaptivePolicy` — Algorithm 1 over streaming
  categories, anchored on the service's live :class:`~repro.serve.log.JobLog`.
- :class:`OnlineCategorizer` — on-the-fly Table-2 feature extraction
  plus packed-forest GBT prediction on the admission path.
- :class:`LoadGenerator` — timed arrival streams from any trace
  source, for latency/throughput measurement; open-loop (fixed offered
  rate with burst shapes) or closed-loop (latency-aware pacing with a
  bounded in-flight window and warmup/measure split); retries
  transient submit failures with bounded backoff.
- :class:`MetricsRegistry` / :meth:`PlacementService.metrics` — a
  dependency-free Prometheus-style metrics surface (counters pinned to
  the roll-up sources, per-lane gauges, exact-merge histograms), with
  text exposition and an optional :class:`MetricsServer` scrape
  endpoint; the fleet router aggregates per-worker partials through
  the same scatter-gather seam (see :mod:`repro.serve.metrics` and
  ``docs/observability.md``).
- :class:`WriteAheadLog` / :meth:`PlacementService.recover` — crash
  durability: checkpoint + WAL-suffix replay to the exact pre-crash
  state (see :mod:`repro.serve.wal`).
- :class:`FleetRouter` / :class:`PlacementWorker` /
  :mod:`repro.serve.transport` — fleet-scale serving: the same service
  surface scatter-gathered over N workers (in-process or forked
  children), bit-identical to one process for any worker count, with
  per-worker WAL/checkpoint failover (see :mod:`repro.serve.router`).
- :class:`FaultPlan` / :class:`FaultInjector` — scripted chaos (lane
  loss/shrink/restore, quota changes, categorizer outages, lost or
  duplicated completions, transient errors, crash points); named
  scenarios and the adaptive-vs-baseline runner live in
  :mod:`repro.serve.scenarios`.
- :class:`AlertRule` / :class:`SloSpec` / :class:`AlertManager` —
  deterministic alerting and SLO burn-rate accounting over the pinned
  metrics surface, evaluated on the logical clock so the alert event
  stream is bit-identical across engines, worker counts, transports,
  and WAL recovery (see :mod:`repro.serve.alerts`).
- :class:`Tracer` — deterministic per-request spans (submit →
  categorize → admit → place/spill → complete) with job-id-hash
  sampling and a bounded ring, exported as JSONL; fleet workers keep a
  tiny op-span ring gathered through a non-mutating transport op (see
  :mod:`repro.serve.tracing`).

Replaying a trace through the service is bit-identical to the offline
``simulate``/``simulate_sharded`` run with the matching engine — the
service drives the same kernels; see :mod:`repro.serve.service`.
"""

from .alerts import AlertManager, AlertRule, SloSpec, load_alert_config
from .faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    TransientSubmitError,
)
from .loadgen import LoadGenerator, LoadReport, metrics_latency_summary
from .log import ColumnView, GrowArray, JobLog
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsServer,
    merge_states,
)
from .policy import OnlineAdaptivePolicy
from .predict import OnlineCategorizer
from .router import FleetRouter, worker_lanes
from .scenarios import (
    EXPECTED_ALERTS,
    SCENARIOS,
    ChaosScenario,
    ScenarioRow,
    default_alert_rules,
    expected_alerts,
)
from .service import (
    PlacementDecision,
    PlacementService,
    ServiceSnapshot,
    ServiceStats,
    ShockReport,
)
from .transport import (
    InProcessTransport,
    SubprocessTransport,
    WorkerDied,
    WorkerTransport,
)
from .tracing import SAMPLE_MODULUS, Tracer, sample_hash, sample_mask
from .types import SnapshotMismatch
from .wal import WalCorruption, WriteAheadLog
from .worker import PlacementWorker

__all__ = [
    "PlacementService",
    "PlacementDecision",
    "ServiceSnapshot",
    "ServiceStats",
    "ShockReport",
    "SnapshotMismatch",
    "FleetRouter",
    "PlacementWorker",
    "worker_lanes",
    "WorkerTransport",
    "InProcessTransport",
    "SubprocessTransport",
    "WorkerDied",
    "OnlineAdaptivePolicy",
    "OnlineCategorizer",
    "LoadGenerator",
    "LoadReport",
    "metrics_latency_summary",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "merge_states",
    "JobLog",
    "GrowArray",
    "ColumnView",
    "WriteAheadLog",
    "WalCorruption",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "TransientSubmitError",
    "InjectedCrash",
    "ChaosScenario",
    "ScenarioRow",
    "SCENARIOS",
    "EXPECTED_ALERTS",
    "expected_alerts",
    "default_alert_rules",
    "AlertRule",
    "SloSpec",
    "AlertManager",
    "load_alert_config",
    "Tracer",
    "sample_hash",
    "sample_mask",
    "SAMPLE_MODULUS",
]
