"""Named chaos scenarios and the adaptive-vs-baseline runner.

One :class:`ChaosScenario` is a reproducible fault script scaled to the
trace: its builder receives ``(n_jobs, n_shards)`` and returns the
:class:`~repro.serve.faults.FaultPlan` to fire.  The runner drives the
same trace, the same micro-batch slicing, the same deterministic
completion stream, and the same plan through each competing policy, so
the per-scenario rows isolate exactly one variable — how the placement
policy copes with the faults.

Used by the ``chaos`` CLI subcommand and
``benchmarks/bench_chaos_scenarios.py`` (fixed seeds; the committed
baseline lives in ``benchmarks/results/chaos_scenarios.txt``).
"""

from __future__ import annotations

import contextlib
import tempfile
from dataclasses import dataclass

import numpy as np

from ..workloads.metadata import stable_hash
from .alerts import AlertManager, AlertRule
from .faults import FaultEvent, FaultInjector, FaultPlan, TransientSubmitError

__all__ = [
    "ChaosScenario",
    "ScenarioRow",
    "SCENARIOS",
    "EXPECTED_ALERTS",
    "expected_alerts",
    "default_alert_rules",
    "default_policies",
    "run_scenario",
    "run_suite",
    "format_rows",
]


@dataclass(frozen=True)
class ChaosScenario:
    """A named, trace-scaled fault script.

    ``min_workers > 1`` marks a scenario that only makes sense against
    a worker fleet (``worker_kill``): the runner raises its effective
    worker count to at least this, standing up a
    :class:`~repro.serve.FleetRouter` where a plain service would do.
    """

    name: str
    description: str
    builder: object  # (n_jobs, n_shards) -> FaultPlan
    min_workers: int = 1

    def plan(self, n_jobs: int, n_shards: int) -> FaultPlan:
        return self.builder(n_jobs, n_shards)


def _lane(n_shards: int) -> int:
    return min(1, n_shards - 1)


def _nofault(n, s):
    return FaultPlan()


def _lane_loss(n, s):
    return FaultPlan((
        FaultEvent(at=int(0.3 * n), kind="lane_loss", lane=_lane(s)),
        FaultEvent(at=int(0.7 * n), kind="lane_restore", lane=_lane(s)),
    ))


def _lane_shrink(n, s):
    return FaultPlan((
        FaultEvent(at=int(0.25 * n), kind="lane_shrink", lane=0, scale=0.25),
        FaultEvent(at=int(0.25 * n), kind="lane_shrink", lane=_lane(s), scale=0.25),
        FaultEvent(at=int(0.75 * n), kind="lane_restore", lane=0),
        FaultEvent(at=int(0.75 * n), kind="lane_restore", lane=_lane(s)),
    ))


def _quota_cut(n, s):
    # 0.5 then 2.0 are powers of two: the restore is float-exact.
    return FaultPlan((
        FaultEvent(at=int(0.4 * n), kind="quota", scale=0.5),
        FaultEvent(at=int(0.8 * n), kind="quota", scale=2.0),
    ))


def _cat_outage(n, s):
    return FaultPlan((
        FaultEvent(at=int(0.2 * n), kind="cat_fail"),
        FaultEvent(at=int(0.6 * n), kind="cat_recover"),
    ))


def _complete_chaos(n, s):
    return FaultPlan((
        FaultEvent(at=int(0.3 * n), kind="drop_complete", count=40),
        FaultEvent(at=int(0.5 * n), kind="dup_complete", count=40),
        FaultEvent(at=int(0.6 * n), kind="submit_error", count=2),
    ))


def _worker_kill(n, s):
    # Two kills of the same worker exercise repeated WAL/checkpoint
    # recovery; failover is bit-exact, so this row must match nofault.
    return FaultPlan((
        FaultEvent(at=int(0.35 * n), kind="worker_kill", lane=1),
        FaultEvent(at=int(0.65 * n), kind="worker_kill", lane=1),
    ))


SCENARIOS = (
    ChaosScenario("nofault", "clean run (reference row)", _nofault),
    ChaosScenario("lane_loss", "one caching server dies, later returns", _lane_loss),
    ChaosScenario("lane_shrink", "two lanes shrink to 25%, later restore", _lane_shrink),
    ChaosScenario("quota_cut", "fleet quota halved, later restored", _quota_cut),
    ChaosScenario("cat_outage", "categorizer down for 40% of the stream", _cat_outage),
    ChaosScenario(
        "complete_chaos",
        "lost + duplicated completions, transient submit failures",
        _complete_chaos,
    ),
    ChaosScenario(
        "worker_kill",
        "a fleet worker dies twice, failover replays it back",
        _worker_kill,
        min_workers=3,
    ),
)


def default_alert_rules() -> list[AlertRule]:
    """The standard chaos alert set, fresh rule objects per call.

    Every input is a pinned, mode-invariant metric, so the alert event
    stream these rules produce is part of the determinism contract:

    - ``capacity-shock`` — the fleet quota moved down between two
      evaluations (rate-of-change of ``serve_capacity_bytes``); fires
      for lane loss, lane shrink, and quota cuts, resolves when
      capacity is restored.
    - ``degraded-mode`` — admission is running on the heuristic
      fallback (``serve_degraded`` gauge); fires for categorizer
      outages.
    - ``fleet-liveness`` — a worker was rebuilt from checkpoint + WAL
      (``serve_worker_recoveries``); fires for worker kills.  The
      metric only exists on a :class:`~repro.serve.FleetRouter`, so the
      rule is inert on a single-process service.
    """
    return [
        AlertRule(
            "capacity-shock", "serve_capacity_bytes", kind="rate",
            op="<", threshold=0.0,
            description="fleet SSD capacity dropped between evaluations",
        ),
        AlertRule(
            "degraded-mode", "serve_degraded", op=">", threshold=0.0,
            description="categorizer down; admission on heuristic fallback",
        ),
        AlertRule(
            "fleet-liveness", "serve_worker_recoveries", op=">",
            threshold=0.0,
            description="a fleet worker was rebuilt from checkpoint + WAL",
        ),
    ]


#: The alert names each scenario must fire under
#: :func:`default_alert_rules` — and, for ``nofault``, the assertion
#: that the clean run emits *zero* alert events (no false positives).
#: ``complete_chaos`` perturbs only the completion stream, which no
#: default rule watches, so it is a zero-alert scenario too.
EXPECTED_ALERTS = {
    "nofault": frozenset(),
    "lane_loss": frozenset({"capacity-shock"}),
    "lane_shrink": frozenset({"capacity-shock"}),
    "quota_cut": frozenset({"capacity-shock"}),
    "cat_outage": frozenset({"degraded-mode"}),
    "complete_chaos": frozenset(),
    "worker_kill": frozenset({"fleet-liveness"}),
}


def expected_alerts(scenario: str, *, categorizer: bool = True) -> frozenset:
    """The alert set one contender must fire under a scenario.

    A contender with no categorizer (the first-fit baseline) cannot
    enter degraded mode, so ``cat_outage`` fires nothing for it — pass
    ``categorizer=False`` to drop that expectation.
    """
    exp = EXPECTED_ALERTS[scenario]
    if not categorizer:
        exp = exp - frozenset({"degraded-mode"})
    return exp


def get_scenario(name: str) -> ChaosScenario:
    for sc in SCENARIOS:
        if sc.name == name:
            return sc
    raise KeyError(
        f"unknown scenario {name!r}; pick from "
        f"{', '.join(sc.name for sc in SCENARIOS)}"
    )


@dataclass(frozen=True)
class ScenarioRow:
    """One (scenario, policy) outcome.

    ``degraded_intervals`` is read from the service's live metrics
    surface (``serve_degraded_intervals_total``) rather than the stats
    object — the bench asserts the two agree, so the scrape endpoint
    can never drift from the roll-up.

    ``alerts_fired`` holds the names that reached ``firing`` during the
    run (sorted) when the runner attached an alert manager, and
    ``alert_events`` the total transition-event count — zero on a clean
    run is the no-false-positives assertion.
    """

    scenario: str
    policy: str
    tco_savings_pct: float
    n_spilled: int
    n_evicted: int
    n_shocks: int
    degraded_jobs: int
    dropped_completes: int
    duplicate_completes: int
    n_retries: int
    degraded_intervals: int = 0
    alerts_fired: tuple = ()
    alert_events: int = 0


def default_policies(n_categories: int = 15):
    """The standard adaptive-vs-baseline contenders.

    ``adaptive`` is the serve-native Algorithm-1 policy fed by a
    seeded-hash categorizer (a different seed than the degraded-mode
    fallback, so categorizer outages visibly change admission);
    ``baseline`` is first-fit with no categorizer.  Each builder
    returns ``(policy, categorizer)``.
    """

    def build_adaptive():
        from .policy import OnlineAdaptivePolicy

        def categorizer(jobs):
            return np.array(
                [1 + stable_hash(j.pipeline, seed=1) % (n_categories - 1)
                 for j in jobs],
                dtype=np.int64,
            )

        return (
            OnlineAdaptivePolicy(n_categories, per_shard_act=True),
            categorizer,
        )

    def build_baseline():
        from ..baselines import FirstFitPolicy

        return FirstFitPolicy(), None

    return {"adaptive": build_adaptive, "baseline": build_baseline}


def _drive_contender(
    svc, scenario, trace, *, scenario_name, pname, batch_jobs,
    complete_fraction, seed, max_retries, n_shards, metrics_hook=None,
) -> ScenarioRow:
    """Stream the trace through one contender under the scenario's plan."""
    n = len(trace)
    inj = FaultInjector(svc, scenario.plan(n, n_shards))
    rng = np.random.default_rng(seed)
    n_retries = 0
    for lo in range(0, n, batch_jobs):
        hi = min(lo + batch_jobs, n)
        for attempt in range(max_retries + 1):
            try:
                decisions = inj.submit_batch(
                    trace.arrivals[lo:hi], trace.durations[lo:hi],
                    trace.sizes[lo:hi], trace.read_bytes[lo:hi],
                    trace.write_bytes[lo:hi], trace.read_ops[lo:hi],
                    pipelines=trace.pipelines[lo:hi],
                )
                break
            except TransientSubmitError:
                n_retries += 1
                if attempt == max_retries:
                    raise
        # The completion lottery draws per *submitted batch*, not per
        # decision, so every contender consumes the same randomness.
        lottery = rng.random(hi - lo)
        for k, d in enumerate(decisions[: hi - lo]):
            if lottery[k] < complete_fraction:
                inj.complete(d.job_id)
        # One alert tick per submitted batch — the same deterministic
        # cadence for every contender, before any scrape-endpoint
        # refresh the hook may add.
        if svc.alerts is not None:
            svc.evaluate_alerts()
        if metrics_hook is not None:
            metrics_hook(svc)
    inj.drain()
    metrics = svc.metrics()
    res = svc.result()
    st = svc.stats
    am = svc.alerts
    return ScenarioRow(
        scenario=scenario_name,
        policy=pname,
        tco_savings_pct=float(res.tco_savings_pct),
        n_spilled=int(res.n_spilled),
        n_evicted=int(st.n_evicted),
        n_shocks=int(st.n_shocks),
        degraded_jobs=int(st.degraded_jobs),
        dropped_completes=int(inj.n_dropped_completes),
        duplicate_completes=int(st.duplicate_completes),
        n_retries=n_retries,
        degraded_intervals=int(metrics["serve_degraded_intervals_total"]),
        alerts_fired=() if am is None else tuple(am.fired()),
        alert_events=0 if am is None else len(am.events),
    )


def run_scenario(
    scenario: ChaosScenario,
    trace,
    *,
    capacity,
    n_shards: int = 4,
    batch_jobs: int = 64,
    policies=None,
    complete_fraction: float = 0.25,
    seed: int = 0,
    max_retries: int = 5,
    n_workers: int = 1,
    transport: str = "inprocess",
    worker_dir: "str | None" = None,
    metrics_hook=None,
    alerts=False,
    tracer=None,
) -> list[ScenarioRow]:
    """Run one scenario through every contender; returns one row each.

    ``metrics_hook`` (optional) is called with the live service after
    every submitted batch — the ``chaos`` CLI hangs its scrape-endpoint
    refresh on it.

    ``alerts`` attaches an alert manager to each contender and ticks it
    once per submitted batch: ``True`` uses :func:`default_alert_rules`,
    a callable is invoked per contender and must return a fresh
    :class:`~repro.serve.alerts.AlertManager` (managers hold per-run
    state and cannot be shared).  The row then reports
    ``alerts_fired`` / ``alert_events`` — compare against
    :data:`EXPECTED_ALERTS`.

    ``tracer`` (optional) is a zero-argument callable returning a fresh
    :class:`~repro.serve.tracing.Tracer` per contender — the caller
    keeps its own references to read the spans back (the ``chaos`` CLI
    does exactly that for ``--trace-out``).

    Every contender sees the identical stream: the same micro-batch
    slicing, the same fault plan, and the same deterministic completion
    lottery (each decided job completes early with probability
    ``complete_fraction``, drawn from ``seed`` independently of the
    policy's decisions).  Injected transient submit errors are retried
    up to ``max_retries`` times, mirroring the load generator.

    The effective fleet size is ``max(n_workers, scenario.min_workers)``;
    above 1 the contender is a :class:`~repro.serve.FleetRouter` with
    per-worker durability under ``worker_dir`` (a temporary directory
    when not given), so ``worker_kill`` events recover transparently.
    Fleet decisions are bit-identical to single-process, so the only
    thing a fleet row can change is surviving the kills.
    """
    policies = default_policies() if policies is None else policies
    eff_workers = max(int(n_workers), scenario.min_workers)

    def make_alerts():
        if not alerts:
            return None
        if callable(alerts):
            return alerts()
        return AlertManager(rules=default_alert_rules())

    def make_tracer():
        return None if tracer is None else tracer()

    rows = []
    for pname, build in policies.items():
        policy, categorizer = build()
        if eff_workers > 1:
            from .router import FleetRouter

            ctx = (
                tempfile.TemporaryDirectory()
                if worker_dir is None
                else contextlib.nullcontext(worker_dir)
            )
            with ctx as wdir:
                svc = FleetRouter(
                    policy, capacity, n_shards, mode="batch",
                    categorizer=categorizer, n_workers=eff_workers,
                    transport=transport, worker_dir=wdir,
                    alerts=make_alerts(), tracer=make_tracer(),
                )
                if categorizer is None:
                    svc.open(trace)
                try:
                    row = _drive_contender(
                        svc, scenario, trace, scenario_name=scenario.name,
                        pname=pname, batch_jobs=batch_jobs,
                        complete_fraction=complete_fraction, seed=seed,
                        max_retries=max_retries, n_shards=n_shards,
                        metrics_hook=metrics_hook,
                    )
                finally:
                    svc.close()
        else:
            from .service import PlacementService

            svc = PlacementService(
                policy, capacity, n_shards, mode="batch",
                categorizer=categorizer, alerts=make_alerts(),
                tracer=make_tracer(),
            )
            if categorizer is None:
                svc.open(trace)
            row = _drive_contender(
                svc, scenario, trace, scenario_name=scenario.name,
                pname=pname, batch_jobs=batch_jobs,
                complete_fraction=complete_fraction, seed=seed,
                max_retries=max_retries, n_shards=n_shards,
                metrics_hook=metrics_hook,
            )
        rows.append(row)
    return rows


def run_suite(trace, *, capacity, n_shards: int = 4, batch_jobs: int = 64,
              scenarios=SCENARIOS, policies=None, seed: int = 0,
              n_workers: int = 1, transport: str = "inprocess",
              worker_dir: "str | None" = None,
              metrics_hook=None, alerts=False,
              tracer=None) -> list[ScenarioRow]:
    """Run every scenario; returns all rows in suite order."""
    rows = []
    for sc in scenarios:
        rows.extend(run_scenario(
            sc, trace, capacity=capacity, n_shards=n_shards,
            batch_jobs=batch_jobs, policies=policies, seed=seed,
            n_workers=n_workers, transport=transport, worker_dir=worker_dir,
            metrics_hook=metrics_hook, alerts=alerts, tracer=tracer,
        ))
    return rows


def format_rows(rows) -> str:
    """Render scenario rows as the fixed-width table the bench commits."""
    head = (
        f"{'scenario':<16} {'policy':<10} {'tco_sav%':>9} {'spilled':>8} "
        f"{'evicted':>8} {'shocks':>7} {'degraded':>9} {'d_ivals':>8} "
        f"{'dropped':>8} {'dup':>5} {'retries':>8} alerts"
    )
    lines = [head, "-" * len(head)]
    for r in rows:
        alerts = ",".join(r.alerts_fired) if r.alerts_fired else "-"
        lines.append(
            f"{r.scenario:<16} {r.policy:<10} {r.tco_savings_pct:>9.2f} "
            f"{r.n_spilled:>8} {r.n_evicted:>8} {r.n_shocks:>7} "
            f"{r.degraded_jobs:>9} {r.degraded_intervals:>8} "
            f"{r.dropped_completes:>8} {r.duplicate_completes:>5} "
            f"{r.n_retries:>8} {alerts}"
        )
    return "\n".join(lines)
