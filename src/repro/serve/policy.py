"""Serve-native policies: Algorithm 1 without a precomputed trace.

The offline :class:`~repro.core.adaptive.AdaptiveCategoryPolicy` takes
its per-job categories as one aligned array and checks it against the
trace length up front — fine for replay, impossible for a live service
where jobs (and their model predictions) stream in.
:class:`OnlineAdaptivePolicy` is the same Algorithm-1 machinery —
spillover window, tolerance band, decision interval, optional
per-shard thresholds — re-anchored on the service's live
:class:`~repro.serve.log.JobLog`: categories are appended as the
categorizer produces them, and every per-job lookup (arrival, end,
TCIO rate, lane) resolves against the submitted prefix.
"""

from __future__ import annotations

import numpy as np

from ..config import AdaptiveParams
from ..core.adaptive import AdaptiveCategoryPolicy
from ..cost import CostRates
from ..core.spillover import SpilloverWindow
from .log import GrowArray, JobLog

__all__ = ["OnlineAdaptivePolicy"]


class OnlineAdaptivePolicy(AdaptiveCategoryPolicy):
    """Adaptive Category Selection over streaming categories.

    Construct with the category count only; bind to a service log with
    :meth:`bind_log` (the :class:`~repro.serve.PlacementService` does
    this in online mode) and stream categories in with
    :meth:`extend_categories` — the service calls it with the
    categorizer's output on every submission.  ``decide`` /
    ``decide_batch`` / ``observe`` / ``observe_batch`` are inherited
    unchanged: the decision rule, threshold updates, and per-shard
    counters are exactly the offline policy's, evaluated over the jobs
    submitted so far.
    """

    def __init__(
        self,
        n_categories: int,
        params: AdaptiveParams | None = None,
        name: str = "Adaptive Online",
        per_shard_act: bool = False,
    ):
        super().__init__(
            np.empty(0, dtype=int), n_categories, params, name, per_shard_act
        )
        self._cats = GrowArray(int)
        self._log: JobLog | None = None

    def bind_log(self, log: JobLog) -> None:
        """Anchor per-job lookups on the service's live job log."""
        self._log = log

    def extend_categories(self, categories: np.ndarray) -> None:
        """Append predicted categories for newly submitted jobs."""
        categories = np.asarray(categories, dtype=int)
        if categories.size and (
            categories.min() < 0 or categories.max() >= self.n_categories
        ):
            raise ValueError("categories out of range [0, n_categories)")
        self._cats.extend(categories)
        self.categories = self._cats.view()

    def on_simulation_start(self, trace, capacity: float, rates: CostRates) -> None:
        """Reset adaptive state; the trace is the live log, not a replay.

        Mirrors the parent reset but skips the categories-length check
        (categories stream in after jobs) and reads per-job TCIO rates
        from the log's incrementally maintained column instead of one
        whole-trace pass.
        """
        if self._log is None and isinstance(trace, JobLog):
            self._log = trace
        if self._log is None or trace is not self._log:
            raise ValueError(
                "OnlineAdaptivePolicy runs against a live JobLog; for trace "
                "replays use AdaptiveCategoryPolicy"
            )
        self._trace = self._log
        self._tcio = self._log.column("tcio_rates")
        self.act = min(max(self.params.initial_act, 1), self.n_categories - 1)
        self._td = -np.inf
        self._window = SpilloverWindow()
        self.trajectory = []
        self.shard_ssd_requested = np.zeros(1, dtype=np.int64)
        self.shard_spills = np.zeros(1, dtype=np.int64)
        self._shards = None
        self.act_lanes = None
        self._req_mark = None
        self._spill_mark = None
        self._rebuild_admit_table()
