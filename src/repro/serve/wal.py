"""Submission write-ahead log for the online placement service.

Durability half of the fault-tolerance story: every state-mutating
operation the :class:`~repro.serve.PlacementService` accepts —
submissions (at their actual micro-batch granularity), ``complete``
events, ``drain`` calls, capacity shocks — is appended to the WAL
*before* it mutates service state.  A service rebuilt from a periodic
:meth:`~repro.serve.PlacementService.snapshot` checkpoint plus a replay
of the WAL suffix lands in the exact pre-crash state: the service
drives deterministic kernels, JSON round-trips floats exactly
(shortest-repr), and submission records carry the categorizer's output
so model-driven admission replays verbatim even through degraded
intervals.

Record format
-------------
One record per line::

    <crc32 hex, 8 chars> <compact JSON object>\\n

The CRC covers the JSON payload.  A torn tail — a partial line from a
crash mid-write, or a final record whose CRC does not match — is
*tolerated*: reads stop at the last intact record, and opening the file
for append truncates the torn bytes first so new records never
concatenate with them.  Corruption that is **followed by** further
intact records is indistinguishable from a torn tail to a line scanner;
reads stop there too, which is the conservative choice (never replay
past a hole).

Record kinds (the service writes and replays these):

- ``{"op": "submit", ...}`` — one bare-column job (``submit`` kwargs);
- ``{"op": "batch", ...}`` — one arrival-ordered column micro-batch;
- ``{"op": "jobs", "jobs": [...]}`` — rich :class:`ShuffleJob` objects
  with metadata/resources (the ``submit_jobs`` path), so the
  categorizer's Table-2 feature groups survive replay;
- ``{"op": "complete", "job_id": ..., "time": ...}``;
- ``{"op": "drain"}``;
- ``{"op": "shock", "caps": [...]}`` — resolved per-lane capacities.

Submission records optionally carry ``"cats"`` (the categorizer output
for the batch) and ``"degraded": true`` (the output came from the
heuristic fallback while the model was down).

Job identities crossing the WAL must round-trip through JSON (ints and
strings do; a tuple id comes back as a list and would no longer match
its ``complete`` event).
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Iterator

from ..workloads.job import ShuffleJob

__all__ = ["WalCorruption", "WriteAheadLog", "job_to_record", "job_from_record"]


class WalCorruption(RuntimeError):
    """Raised when a WAL replay hits an unusable record."""


def job_to_record(job: ShuffleJob) -> dict:
    """Serialize one rich job for a ``{"op": "jobs"}`` record."""
    return {
        "job_id": job.job_id,
        "cluster": job.cluster,
        "user": job.user,
        "pipeline": job.pipeline,
        "archetype": job.archetype,
        "arrival": job.arrival,
        "duration": job.duration,
        "size": job.size,
        "read_bytes": job.read_bytes,
        "write_bytes": job.write_bytes,
        "read_ops": job.read_ops,
        "metadata": job.metadata,
        "resources": job.resources,
    }


def job_from_record(rec: dict) -> ShuffleJob:
    """Rebuild the rich job a ``{"op": "jobs"}`` record serialized."""
    return ShuffleJob(
        job_id=rec["job_id"],
        cluster=rec["cluster"],
        user=rec["user"],
        pipeline=rec["pipeline"],
        archetype=rec["archetype"],
        arrival=rec["arrival"],
        duration=rec["duration"],
        size=rec["size"],
        read_bytes=rec["read_bytes"],
        write_bytes=rec["write_bytes"],
        read_ops=rec["read_ops"],
        metadata=rec.get("metadata") or {},
        resources=rec.get("resources") or {},
    )


class WriteAheadLog:
    """Append-only, CRC-framed, torn-tail-tolerant record log.

    Parameters
    ----------
    path:
        Log file; created if absent.  Opening an existing file counts
        its intact records (they become the initial :attr:`seq`) and
        truncates any torn tail so appends start on a clean boundary.
    fsync:
        Force each record to stable storage (``os.fsync``) at append
        time.  Off by default — appends are flushed to the OS either
        way, which survives process death (the crash model the tests
        exercise); turn it on to also survive machine death.
    """

    def __init__(self, path, fsync: bool = False):
        self.path = Path(path)
        self.fsync = fsync
        n, end = self._scan(self.path)
        if self.path.exists():
            self._fh = open(self.path, "r+b")
            self._fh.truncate(end)
            self._fh.seek(end)
        else:
            self._fh = open(self.path, "w+b")
        self._seq = n

    @property
    def seq(self) -> int:
        """Number of intact records in the log (next record's index)."""
        return self._seq

    def __len__(self) -> int:
        return self._seq

    def append(self, record: dict) -> int:
        """Append one record durably; returns its sequence number."""
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        self._fh.write(b"%08x " % zlib.crc32(payload) + payload + b"\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        seq = self._seq
        self._seq += 1
        return seq

    def records(self, start: int = 0) -> Iterator[tuple[int, dict]]:
        """Iterate intact ``(seq, record)`` pairs from ``start`` on.

        Reads the file as it is on disk (independent of the append
        handle's position) and stops at the first torn or corrupt
        record.
        """
        return self.read(self.path, start)

    @staticmethod
    def read(path, start: int = 0) -> Iterator[tuple[int, dict]]:
        """Scan a WAL file read-only (no truncation of a torn tail)."""
        try:
            data = Path(path).read_bytes()
        except FileNotFoundError:
            return
        seq = 0
        pos = 0
        while True:
            nl = data.find(b"\n", pos)
            if nl < 0:
                return  # torn tail: no newline
            record = WriteAheadLog._decode(data[pos:nl])
            if record is None:
                return  # torn or corrupt record
            if seq >= start:
                yield seq, record
            seq += 1
            pos = nl + 1

    @classmethod
    def _scan(cls, path) -> tuple[int, int]:
        """Count intact records; return ``(count, clean byte offset)``."""
        try:
            data = Path(path).read_bytes()
        except FileNotFoundError:
            return 0, 0
        n = 0
        pos = 0
        while True:
            nl = data.find(b"\n", pos)
            if nl < 0 or cls._decode(data[pos:nl]) is None:
                return n, pos
            n += 1
            pos = nl + 1

    @staticmethod
    def _decode(line: bytes) -> dict | None:
        """Parse one framed line; ``None`` on any framing/CRC failure."""
        try:
            head, payload = line.split(b" ", 1)
            if len(head) != 8 or int(head, 16) != zlib.crc32(payload):
                return None
            record = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"WriteAheadLog({str(self.path)!r}, {self._seq} records)"
