"""Unit constants and helpers shared across the library.

All sizes are in bytes, all times in seconds, unless a name says
otherwise.  Cost quantities are in abstract "cost units" (the paper
reports savings as percentages, so the absolute scale cancels out).
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB
PIB = 1024 * TIB

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY

#: Write-grouping chunk size used by the TCIO model: small writes are
#: batched into chunks of this size before they reach the disks
#: (Section 3 of the paper).
WRITE_GROUP_BYTES = 1 * MIB


def fmt_bytes(n: float) -> str:
    """Render a byte count with a binary-prefix unit, e.g. ``1.50 GiB``."""
    for unit, scale in (("PiB", PIB), ("TiB", TIB), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= scale:
            return f"{n / scale:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_duration(seconds: float) -> str:
    """Render a duration compactly, e.g. ``2.0h`` or ``35s``."""
    if seconds >= DAY:
        return f"{seconds / DAY:.1f}d"
    if seconds >= HOUR:
        return f"{seconds / HOUR:.1f}h"
    if seconds >= MINUTE:
        return f"{seconds / MINUTE:.1f}m"
    return f"{seconds:.0f}s"
