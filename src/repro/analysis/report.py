"""ASCII table / series rendering and CSV export for experiment output.

Benchmarks print their reproduced tables and figure series through
these helpers so that ``pytest benchmarks/ --benchmark-only`` output is
directly comparable with the paper.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Sequence

__all__ = ["render_table", "render_series", "render_sparkline", "write_csv"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render a monospace table with column alignment."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x: Sequence[Any],
    series: dict[str, Sequence[Any]],
    x_name: str = "x",
    title: str | None = None,
) -> str:
    """Render named series against a shared x axis as a table."""
    headers = [x_name] + list(series)
    rows = []
    for i, xv in enumerate(x):
        rows.append([xv] + [vals[i] for vals in series.values()])
    return render_table(headers, rows, title=title)


_SPARK_CHARS = " .:-=+*#%@"


def render_sparkline(values, width: int = 60, label: str = "") -> str:
    """Render a numeric series as a one-line character sparkline.

    Values are min-max normalized onto a 10-level character ramp; the
    series is resampled to ``width`` columns.  Offline-friendly stand-in
    for the paper's line plots.
    """
    import numpy as np

    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return f"{label} (empty)"
    if arr.size > width:
        idx = np.linspace(0, arr.size - 1, width).round().astype(int)
        arr = arr[idx]
    lo, hi = float(np.nanmin(arr)), float(np.nanmax(arr))
    if hi - lo < 1e-12:
        levels = np.zeros(arr.size, dtype=int)
    else:
        levels = ((arr - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)).round().astype(int)
    line = "".join(_SPARK_CHARS[k] for k in levels)
    prefix = f"{label} " if label else ""
    return f"{prefix}[{line}] min={lo:.3g} max={hi:.3g}"


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> None:
    """Write rows to a CSV file (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    writer.writerows(rows)
    path.write_text(buf.getvalue())
