"""Fleet-level aggregation of per-cluster simulation results.

The paper motivates the problem at fleet scale: "Improvement as low as
1% represents a large amount in the context of hyperscale data centers".
This module rolls per-cluster :class:`~repro.storage.SimResult` outcomes
up into fleet totals — savings percentages weighted by each cluster's
all-HDD baseline TCO — and compares methods at the fleet level.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.simulator import SimResult

__all__ = ["FleetSummary", "aggregate_fleet", "compare_methods_fleetwide"]


@dataclass(frozen=True)
class FleetSummary:
    """Aggregate savings of one method across many clusters."""

    method: str
    n_clusters: int
    baseline_tco: float
    realized_tco: float
    baseline_tcio: float
    realized_hdd_tcio: float

    @property
    def tco_savings_pct(self) -> float:
        if self.baseline_tco <= 0:
            return 0.0
        return 100.0 * (self.baseline_tco - self.realized_tco) / self.baseline_tco

    @property
    def tcio_savings_pct(self) -> float:
        if self.baseline_tcio <= 0:
            return 0.0
        return 100.0 * (self.baseline_tcio - self.realized_hdd_tcio) / self.baseline_tcio


def aggregate_fleet(results: dict[str, SimResult], method: str = "") -> FleetSummary:
    """Combine per-cluster results of one method into fleet totals.

    Percentages are recomputed from summed absolute costs, so large
    clusters weigh more — a fleet average, not a mean of percentages.
    """
    if not results:
        raise ValueError("no cluster results")
    names = {r.policy_name for r in results.values()}
    if not method:
        if len(names) != 1:
            raise ValueError(f"mixed methods in results: {sorted(names)}")
        method = next(iter(names))
    return FleetSummary(
        method=method,
        n_clusters=len(results),
        baseline_tco=sum(r.baseline_tco for r in results.values()),
        realized_tco=sum(r.realized_tco for r in results.values()),
        baseline_tcio=sum(r.baseline_tcio for r in results.values()),
        realized_hdd_tcio=sum(r.realized_hdd_tcio for r in results.values()),
    )


def compare_methods_fleetwide(
    per_cluster: dict[str, dict[str, SimResult]]
) -> dict[str, FleetSummary]:
    """Fleet summaries per method from ``{cluster: {method: result}}``.

    The input shape matches :func:`repro.analysis.fig6_cluster_savings`.
    """
    if not per_cluster:
        raise ValueError("no clusters")
    methods = set.intersection(*(set(m) for m in per_cluster.values()))
    if not methods:
        raise ValueError("no method present in every cluster")
    out: dict[str, FleetSummary] = {}
    for method in sorted(methods):
        out[method] = aggregate_fleet(
            {c: per_cluster[c][method] for c in per_cluster}, method=method
        )
    return out
