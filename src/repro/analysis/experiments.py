"""Experiment runners: one function per paper figure/table.

Each runner builds its workload, executes every compared method through
the placement simulator, and returns plain data structures that the
benchmark harness renders with :mod:`repro.analysis.report`.  See
DESIGN.md's experiment index for the figure-to-function mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..baselines import (
    CategoryAdmissionPolicy,
    FirstFitPolicy,
    LifetimeModel,
    LifetimePolicy,
)
from ..config import AdaptiveParams, ModelParams
from ..core import (
    AdaptiveCategoryPolicy,
    ByomPipeline,
    PreparedCluster,
    hash_categories,
    prepare_cluster,
)
from ..cost import CostRates, DEFAULT_RATES
from ..oracle import oracle_placement
from ..storage import SimResult, analytic_result, simulate, simulate_sharded
from ..units import HOUR, WEEK
from ..workloads import (
    ClusterSpec,
    Trace,
    default_cluster_specs,
    generate_cluster_trace,
    materialize_trace,
)

__all__ = [
    "MethodSuite",
    "standard_cluster",
    "standard_suite",
    "run_method_suite",
    "fig1_workload_diversity",
    "fig4_oracle_density",
    "fig6_cluster_savings",
    "fig7_quota_sweep",
    "fig8_generalization",
    "fig9_model_analysis",
    "fig10_holdout_generalization",
    "fig11_true_category",
    "fig15_sensitivity",
    "fig16_act_dynamics",
    "table4_category_count",
]

#: Default model size used by experiment runners: the paper's 15
#: categories with a reduced tree budget (see ModelParams docs).
EXPERIMENT_MODEL = ModelParams(n_rounds=10)

#: Quota grid for savings-vs-quota sweeps (Figure 7 and friends).
DEFAULT_QUOTAS = (0.01, 0.05, 0.1, 0.2, 0.5, 1.0)


@dataclass
class MethodSuite:
    """A trained bundle of all methods for one prepared cluster.

    Training happens once; :meth:`run` then evaluates any method at any
    SSD quota.  ``peak`` is the test week's infinite-SSD peak usage, the
    quota denominator (Section 5.1).
    """

    cluster: PreparedCluster
    model_params: ModelParams = field(default_factory=lambda: EXPERIMENT_MODEL)
    adaptive_params: AdaptiveParams = field(default_factory=AdaptiveParams)
    rates: CostRates = DEFAULT_RATES
    pipeline: ByomPipeline | None = None
    lifetime_model: LifetimeModel | None = None

    def __post_init__(self) -> None:
        if self.pipeline is None:
            self.pipeline = ByomPipeline(
                self.model_params, self.adaptive_params, self.rates
            ).train(self.cluster.train, self.cluster.features_train)
        if self.lifetime_model is None:
            self.lifetime_model = LifetimeModel().fit(
                self.cluster.features_train, self.cluster.train.durations
            )

    @property
    def peak(self) -> float:
        return self.cluster.peak_ssd_usage

    def capacity(self, quota: float) -> float:
        return quota * self.peak

    def run(
        self,
        method: str,
        quota: float,
        engine: str = "auto",
        n_shards: int = 1,
        shard_weights: tuple[float, ...] | None = None,
        per_shard_act: bool = False,
        trace_source: "object | None" = None,
        **kw,
    ) -> SimResult:
        """Evaluate one method at one quota on the test week.

        Parameters
        ----------
        method:
            One of ``"Adaptive Ranking"``, ``"Adaptive Hash"``,
            ``"ML Baseline"``, ``"FirstFit"``, ``"Heuristic"``,
            ``"True category"``, ``"Oracle TCO"``, ``"Oracle TCIO"``.
        quota:
            SSD capacity as a fraction of the test week's peak usage.
        engine:
            Simulator event loop: every method's policy implements the
            batch protocol, so ``"auto"`` runs the chunked fast path;
            pass ``"legacy"`` to force the reference per-job loop (used
            by equivalence tests and benchmarks).
        n_shards:
            Evaluate with the quota capacity split across that many
            caching servers (the fragmentation ablation); the
            clairvoyant oracles ignore sharding — they remain the
            unsharded upper bound.
        shard_weights:
            Relative per-server capacity slices (normalized to the
            quota capacity — a heterogeneous fleet, e.g.
            ``(2, 1, 0.5)``); ``None`` splits evenly.
        per_shard_act:
            Run the adaptive methods with one admission threshold per
            caching server instead of the global ACT.
        trace_source:
            Replay the evaluation from a streamed stand-in for the test
            week instead of the in-memory trace: a
            :class:`~repro.workloads.streaming.TraceSource` or a
            ``.csv``/``.npz`` path (e.g. the test week serialized with
            ``save_csv_trace``).  The source must stream the *same jobs
            in the same order* as the prepared test week — model
            predictions and features stay aligned by job position — and
            then yields bit-identical results while skipping the
            job-object materialization::

                save_csv_trace(suite.cluster.test, "week2.csv")
                suite.run("Adaptive Ranking", 0.05,
                          trace_source=stream_csv_trace("week2.csv"))
        """
        test = self.cluster.test
        if trace_source is not None:
            test = materialize_trace(trace_source)
            if len(test) != len(self.cluster.test):
                raise ValueError(
                    f"trace_source streams {len(test)} jobs but the prepared "
                    f"test week has {len(self.cluster.test)}; the source must "
                    "replay the same jobs in the same order"
                )
        cap = self.capacity(quota)
        if method == "Adaptive Ranking":
            policy = self.pipeline.make_policy(
                test, self.cluster.features_test, per_shard_act=per_shard_act
            )
        elif method == "Adaptive Hash":
            policy = AdaptiveCategoryPolicy(
                hash_categories(test, self.model_params.n_categories),
                self.model_params.n_categories,
                self.adaptive_params,
                name="Adaptive Hash",
                per_shard_act=per_shard_act,
            )
        elif method == "ML Baseline":
            policy = LifetimePolicy(self.lifetime_model, self.cluster.features_test)
        elif method == "FirstFit":
            policy = FirstFitPolicy()
        elif method == "Heuristic":
            policy = CategoryAdmissionPolicy(self.cluster.train, self.rates)
        elif method == "True category":
            policy = self.pipeline.true_category_policy(
                test, per_shard_act=per_shard_act
            )
        elif method in ("Oracle TCO", "Oracle TCIO"):
            # LP-relaxed oracle: fractional placement matches the
            # simulator's partial-fit semantics, so this is a true upper
            # bound on every policy (see repro.oracle.ilp).
            objective = "tco" if method == "Oracle TCO" else "tcio"
            result = oracle_placement(
                test, cap, objective, self.rates, integrality=False, **kw
            )
            return analytic_result(
                test, result.ssd_fraction(), cap, self.rates, name=method
            )
        else:
            raise ValueError(f"unknown method {method!r}")
        if shard_weights is not None:
            w = np.asarray(shard_weights, dtype=float)
            if w.size != n_shards:
                raise ValueError(
                    f"shard_weights has {w.size} entries for {n_shards} shards"
                )
            cap = cap * w / w.sum()
        if n_shards > 1:
            return simulate_sharded(
                test, policy, cap, n_shards, self.rates, engine=engine
            )
        return simulate(test, policy, cap, self.rates, engine=engine)


@lru_cache(maxsize=16)
def standard_cluster(
    index: int = 0, n_clusters: int = 10, rates: CostRates = DEFAULT_RATES
) -> PreparedCluster:
    """Generate + prepare one of the default 10 clusters (cached)."""
    spec = default_cluster_specs(n_clusters)[index]
    trace = generate_cluster_trace(spec, duration=2 * WEEK)
    return prepare_cluster(trace, rates)


@lru_cache(maxsize=16)
def standard_suite(index: int = 0, n_clusters: int = 10) -> MethodSuite:
    """A trained MethodSuite for one default cluster (cached, so multiple
    experiments in one process share the same trained models)."""
    return MethodSuite(standard_cluster(index, n_clusters))


def run_method_suite(
    cluster: PreparedCluster,
    methods: tuple[str, ...],
    quotas: tuple[float, ...],
    model_params: ModelParams | None = None,
    adaptive_params: AdaptiveParams | None = None,
    rates: CostRates = DEFAULT_RATES,
    oracle_kw: dict | None = None,
) -> dict[str, dict[float, SimResult]]:
    """Evaluate ``methods x quotas`` on one cluster."""
    suite = MethodSuite(
        cluster,
        model_params=model_params or EXPERIMENT_MODEL,
        adaptive_params=adaptive_params or AdaptiveParams(),
        rates=rates,
    )
    out: dict[str, dict[float, SimResult]] = {}
    for method in methods:
        kw = oracle_kw or {}
        out[method] = {
            q: suite.run(method, q, **(kw if method.startswith("Oracle") else {}))
            for q in quotas
        }
    return out


# ---------------------------------------------------------------------------
# Figure 1: workload diversity
# ---------------------------------------------------------------------------


def fig1_workload_diversity(
    hours: int = 12, seed: int = 11
) -> dict[str, dict[str, np.ndarray]]:
    """Hourly space-usage and lifetime series for two contrasting workloads.

    Reproduces the *contrast* of Figure 1: two workloads whose space
    usage and lifetimes differ by orders of magnitude.
    """
    specs = {
        "Workload 0": ClusterSpec(
            "W0", {"video": 1}, n_pipelines=3, n_users=2, seed=seed
        ),
        "Workload 1": ClusterSpec(
            "W1", {"streaming": 1}, n_pipelines=3, n_users=2, seed=seed + 1
        ),
    }
    out: dict[str, dict[str, np.ndarray]] = {}
    for name, spec in specs.items():
        trace = generate_cluster_trace(spec, duration=hours * HOUR)
        space = np.zeros(hours)
        lifetime = np.zeros(hours)
        counts = np.zeros(hours)
        for job in trace:
            h = int(job.arrival // HOUR)
            if h >= hours:
                continue
            space[h] += job.size
            lifetime[h] += job.duration
            counts[h] += 1
        mean_lifetime = np.divide(
            lifetime, counts, out=np.zeros(hours), where=counts > 0
        )
        out[name] = {
            "hour": np.arange(hours, dtype=float),
            "space_bytes": space,
            "mean_lifetime_s": mean_lifetime,
        }
    return out


# ---------------------------------------------------------------------------
# Figure 4: oracle decisions vs (I/O density, TCO savings)
# ---------------------------------------------------------------------------


def fig4_oracle_density(
    cluster: PreparedCluster | None = None,
    quotas: tuple[float, ...] = (0.01, 0.05, 0.2),
    rates: CostRates = DEFAULT_RATES,
    max_milp_jobs: int = 3000,
) -> dict:
    """Oracle admissions under growing SSD quota, with job structure.

    Returns per-job density/savings plus one admission mask per quota.
    The paper's takeaway: as quota grows, the oracle reaches into ever
    lower I/O densities, and never admits negative-savings jobs.
    """
    cluster = cluster or standard_cluster(0)
    test = cluster.test
    peak = cluster.peak_ssd_usage
    density = test.io_density(rates)
    savings = test.costs(rates).savings
    admitted = {}
    for q in quotas:
        res = oracle_placement(
            test, q * peak, "tco", rates, max_milp_jobs=max_milp_jobs, time_limit=30.0
        )
        admitted[q] = res.decisions
    return {"io_density": density, "tco_savings": savings, "admitted": admitted}


# ---------------------------------------------------------------------------
# Figure 6: per-cluster savings at fixed quota
# ---------------------------------------------------------------------------

FIG6_METHODS = ("Adaptive Ranking", "Adaptive Hash", "ML Baseline", "FirstFit", "Heuristic")


def fig6_cluster_savings(
    n_clusters: int = 10,
    quota: float = 0.01,
    methods: tuple[str, ...] = FIG6_METHODS,
) -> dict[str, dict[str, SimResult]]:
    """TCO/TCIO savings per cluster at a fixed 1% SSD quota."""
    out: dict[str, dict[str, SimResult]] = {}
    for i in range(n_clusters):
        suite = standard_suite(i, n_clusters)
        out[f"C{i}"] = {m: suite.run(m, quota) for m in methods}
    return out


# ---------------------------------------------------------------------------
# Figure 7: savings vs quota sweep, all methods incl. oracles
# ---------------------------------------------------------------------------

FIG7_METHODS = FIG6_METHODS + ("Oracle TCO", "Oracle TCIO")


def fig7_quota_sweep(
    cluster: PreparedCluster | None = None,
    quotas: tuple[float, ...] = DEFAULT_QUOTAS,
    methods: tuple[str, ...] = FIG7_METHODS,
) -> dict[str, dict[float, SimResult]]:
    """TCO savings percentage vs SSD quota for the seven methods."""
    if cluster is None:
        suite = standard_suite(0)
    else:
        suite = MethodSuite(cluster)
    oracle_kw = {"time_limit": 30.0}
    out: dict[str, dict[float, SimResult]] = {}
    for method in methods:
        kw = oracle_kw if method.startswith("Oracle") else {}
        out[method] = {q: suite.run(method, q, **kw) for q in quotas}
    return out


# ---------------------------------------------------------------------------
# Figure 8: cross-cluster generalization
# ---------------------------------------------------------------------------


def fig8_generalization(
    train_clusters: tuple[int, ...] = (0, 1, 2, 3),
    test_cluster: int = 0,
    quotas: tuple[float, ...] = DEFAULT_QUOTAS,
) -> dict[str, dict[float, float]]:
    """Train the category model on C_i, evaluate placement on C0.

    C3 is the outlier cluster running workloads rare elsewhere; its
    model is the one expected to transfer poorly.
    """
    target = standard_cluster(test_cluster)
    out: dict[str, dict[float, float]] = {}

    best_baseline: dict[float, float] = {}
    target_suite = standard_suite(test_cluster)
    for q in quotas:
        candidates = [
            target_suite.run(m, q).tco_savings_pct
            for m in ("FirstFit", "Heuristic", "ML Baseline")
        ]
        best_baseline[q] = max(candidates)
    out[f"Best baseline C{test_cluster}"] = best_baseline

    for i in train_clusters:
        source = standard_cluster(i)
        pipe = ByomPipeline(EXPERIMENT_MODEL).train(
            source.train, source.features_train
        )
        series: dict[float, float] = {}
        for q in quotas:
            result = pipe.deploy(
                target.test, target.features_test, q, target.peak_ssd_usage
            )
            series[q] = result.tco_savings_pct
        out[f"Train C{i}, test C{test_cluster}"] = series
    return out


# ---------------------------------------------------------------------------
# Figure 9: model analysis (timing, accuracy vs data size, importance)
# ---------------------------------------------------------------------------


def fig9_model_analysis(
    cluster: PreparedCluster | None = None,
    n_timing_jobs: int = 50,
    train_sizes: tuple[int, ...] = (250, 500, 1000, 2000, 4000),
    importance_categories: tuple[int, ...] = (0, 1, 4, 8, 14),
) -> dict:
    """Inference latency, accuracy vs training size, group importance."""
    from ..core.category_model import CategoryModel
    from ..ml.importance import feature_group_importance

    cluster = cluster or standard_cluster(0)
    model = CategoryModel(EXPERIMENT_MODEL)
    model.fit(cluster.train, cluster.features_train)

    # (a) per-job inference latency on the first n jobs of the test week.
    subset = cluster.features_test.take(np.arange(min(n_timing_jobs, len(cluster.test))))
    _, timing = model.predict_timed(subset)

    # (b) accuracy as a function of training-set size.
    acc_by_size: dict[int, float] = {}
    rng = np.random.default_rng(0)
    n_train = len(cluster.train)
    for size in train_sizes:
        if size > n_train:
            continue
        idx = np.sort(rng.choice(n_train, size=size, replace=False))
        sub_trace = Trace([cluster.train[i] for i in idx], name="sub")
        sub_features = cluster.features_train.take(idx)
        m = CategoryModel(EXPERIMENT_MODEL).fit(sub_trace, sub_features)
        acc_by_size[size] = m.top1_accuracy(cluster.test, cluster.features_test)
    full_acc = model.top1_accuracy(cluster.test, cluster.features_test)

    # (c) feature-group importance per category (AUC decrease).
    labels_train = model.labels_for(cluster.train)
    labels_test = model.labels_for(cluster.test)
    categories = np.array(
        [c for c in importance_categories if c < model.n_categories]
    )
    importance = feature_group_importance(
        cluster.features_train,
        labels_train,
        cluster.features_test,
        labels_test,
        categories=categories,
    )
    return {
        "timing": timing,
        "accuracy_by_size": acc_by_size,
        "full_accuracy": full_acc,
        "importance": importance,
    }


# ---------------------------------------------------------------------------
# Figure 10: generalization to held-out users / pipelines
# ---------------------------------------------------------------------------


def _holdout_series(
    cluster: PreparedCluster,
    holdout_mask_train: np.ndarray,
    quotas: tuple[float, ...],
) -> dict[str, dict[float, float]]:
    """Train with vs without the masked training jobs; deploy on test."""
    out: dict[str, dict[float, float]] = {"with": {}, "without": {}}
    pipe_with = ByomPipeline(EXPERIMENT_MODEL).train(
        cluster.train, cluster.features_train
    )
    keep = ~holdout_mask_train
    reduced_trace = cluster.train.subset(keep, name="holdout-train")
    reduced_features = cluster.features_train.take(np.flatnonzero(keep))
    pipe_without = ByomPipeline(EXPERIMENT_MODEL).train(reduced_trace, reduced_features)
    for q in quotas:
        out["with"][q] = pipe_with.deploy(
            cluster.test, cluster.features_test, q, cluster.peak_ssd_usage
        ).tco_savings_pct
        out["without"][q] = pipe_without.deploy(
            cluster.test, cluster.features_test, q, cluster.peak_ssd_usage
        ).tco_savings_pct
    return out


def _second_largest(keys: list[str], weights: np.ndarray) -> str:
    """The second-largest key by accumulated weight (paper holds out the
    second-largest TCO consumer)."""
    totals: dict[str, float] = {}
    for k, w in zip(keys, weights):
        totals[k] = totals.get(k, 0.0) + w
    ranked = sorted(totals, key=totals.get, reverse=True)
    return ranked[1] if len(ranked) > 1 else ranked[0]


def fig10_holdout_generalization(
    cluster_indices: tuple[int, ...] = (0, 1, 2, 4, 5),
    quotas: tuple[float, ...] = (0.01, 0.1, 0.5, 1.0),
    kind: str = "user",
    rates: CostRates = DEFAULT_RATES,
) -> dict[str, dict[str, dict[float, float]]]:
    """Per-cluster train-with vs train-without a high-TCO user/pipeline."""
    if kind not in ("user", "pipeline"):
        raise ValueError("kind must be 'user' or 'pipeline'")
    out: dict[str, dict[str, dict[float, float]]] = {}
    for idx in cluster_indices:
        cluster = standard_cluster(idx)
        train = cluster.train
        tco = train.costs(rates).c_hdd
        keys = train.users if kind == "user" else train.pipelines
        target = _second_largest(list(keys), tco)
        mask = np.array([k == target for k in keys])
        out[f"C{idx}"] = _holdout_series(cluster, mask, quotas)
    return out


# ---------------------------------------------------------------------------
# Figure 11: predicted vs true categories
# ---------------------------------------------------------------------------


def fig11_true_category(
    cluster: PreparedCluster | None = None,
    quotas: tuple[float, ...] = DEFAULT_QUOTAS,
) -> dict[str, dict[float, float]]:
    """End-to-end savings with model predictions vs ground-truth labels."""
    suite = standard_suite(0) if cluster is None else MethodSuite(cluster)
    out: dict[str, dict[float, float]] = {"Predicted category": {}, "True category": {}}
    for q in quotas:
        out["Predicted category"][q] = suite.run("Adaptive Ranking", q).tco_savings_pct
        out["True category"][q] = suite.run("True category", q).tco_savings_pct
    return out


# ---------------------------------------------------------------------------
# Figure 15: adaptive-parameter sensitivity
# ---------------------------------------------------------------------------

SENSITIVITY_TOLERANCES = ((0.005, 0.03), (0.01, 0.15), (0.05, 0.25))
SENSITIVITY_WINDOWS = (600.0, 900.0, 1800.0)
SENSITIVITY_INTERVALS = (600.0, 900.0, 1800.0)


def fig15_sensitivity(
    cluster: PreparedCluster | None = None,
    quotas: tuple[float, ...] = (0.01, 0.1, 0.5, 1.0),
    tolerances: tuple[tuple[float, float], ...] = SENSITIVITY_TOLERANCES,
    windows: tuple[float, ...] = SENSITIVITY_WINDOWS,
    intervals: tuple[float, ...] = SENSITIVITY_INTERVALS,
) -> dict:
    """TCO-savings band across the 27 hyper-parameter combinations."""
    cluster = cluster or standard_cluster(0)
    pipe = ByomPipeline(EXPERIMENT_MODEL).train(cluster.train, cluster.features_train)
    categories = pipe.model.predict(cluster.features_test)
    curves: list[list[float]] = []
    combos: list[AdaptiveParams] = []
    for tol in tolerances:
        for tw in windows:
            for tl in intervals:
                combos.append(
                    AdaptiveParams(
                        spillover_low=tol[0],
                        spillover_high=tol[1],
                        lookback_window=tw,
                        decision_interval=tl,
                    )
                )
    for params in combos:
        row = []
        for q in quotas:
            policy = AdaptiveCategoryPolicy(
                categories, pipe.model_params.n_categories, params
            )
            res = simulate(
                cluster.test, policy, q * cluster.peak_ssd_usage, DEFAULT_RATES
            )
            row.append(res.tco_savings_pct)
        curves.append(row)
    arr = np.asarray(curves)
    return {
        "quotas": np.asarray(quotas),
        "lower": arr.min(axis=0),
        "upper": arr.max(axis=0),
        "curves": arr,
        "combos": combos,
    }


# ---------------------------------------------------------------------------
# Figure 16: ACT dynamics
# ---------------------------------------------------------------------------


def fig16_act_dynamics(
    cluster: PreparedCluster | None = None,
    quotas: tuple[float, ...] = (0.0001, 0.01, 0.1, 0.5),
) -> dict[float, list]:
    """Category-admission-threshold trajectories at several quotas."""
    cluster = cluster or standard_cluster(0)
    pipe = ByomPipeline(EXPERIMENT_MODEL).train(cluster.train, cluster.features_train)
    categories = pipe.model.predict(cluster.features_test)
    out: dict[float, list] = {}
    for q in quotas:
        policy = AdaptiveCategoryPolicy(categories, pipe.model_params.n_categories)
        simulate(cluster.test, policy, q * cluster.peak_ssd_usage, DEFAULT_RATES)
        out[q] = policy.trajectory
    return out


# ---------------------------------------------------------------------------
# Table 4: sensitivity to the number of categories
# ---------------------------------------------------------------------------


def table4_category_count(
    cluster: PreparedCluster | None = None,
    category_counts: tuple[int, ...] = (2, 5, 15, 25, 35),
    quota: float = 0.1,
) -> dict[int, dict[str, float]]:
    """TCO savings and top-1 accuracy as N varies (paper peak: N=15)."""
    cluster = cluster or standard_cluster(0)
    out: dict[int, dict[str, float]] = {}
    for n in category_counts:
        params = ModelParams(n_categories=n, n_rounds=EXPERIMENT_MODEL.n_rounds)
        pipe = ByomPipeline(params).train(cluster.train, cluster.features_train)
        acc = pipe.model.top1_accuracy(cluster.test, cluster.features_test)
        res = pipe.deploy(
            cluster.test, cluster.features_test, quota, cluster.peak_ssd_usage
        )
        out[n] = {"tco_savings_pct": res.tco_savings_pct, "top1_accuracy": acc}
    return out
