"""Multi-seed robustness: do the headline comparisons survive reseeding?

Benchmarks evaluate on fixed seeds; this harness regenerates a cluster
under several seeds, reruns a set of methods at one quota, and
summarizes each method's savings across seeds.  It answers the referee
question a single-trace reproduction invites: "is the ordering luck?"
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ModelParams
from ..core.pipeline import prepare_cluster
from ..cost import CostRates, DEFAULT_RATES
from ..units import WEEK
from ..workloads.generator import ClusterSpec, generate_cluster_trace
from .experiments import EXPERIMENT_MODEL, MethodSuite
from .stats import summarize_across_seeds

__all__ = ["RobustnessReport", "multi_seed_comparison"]


@dataclass(frozen=True)
class RobustnessReport:
    """Per-method savings across seeds plus win statistics.

    Attributes
    ----------
    per_seed:
        ``{method: {seed: tco_savings_pct}}``.
    summary:
        ``{method: {mean, std, min, max, n}}``.
    win_fraction:
        Fraction of seeds where the focal method strictly beats every
        other method.
    focal_method:
        The method whose win rate is reported.
    """

    per_seed: dict[str, dict[int, float]]
    summary: dict[str, dict[str, float]]
    win_fraction: float
    focal_method: str


def multi_seed_comparison(
    base_spec: ClusterSpec,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    methods: tuple[str, ...] = (
        "Adaptive Ranking",
        "ML Baseline",
        "FirstFit",
        "Heuristic",
    ),
    quota: float = 0.01,
    focal_method: str = "Adaptive Ranking",
    model_params: ModelParams | None = None,
    rates: CostRates = DEFAULT_RATES,
) -> RobustnessReport:
    """Rerun a method comparison across reseeded traces.

    Each seed regenerates the cluster (same spec, different randomness),
    retrains all models, and evaluates every method at ``quota``.
    """
    if focal_method not in methods:
        raise ValueError("focal_method must be among methods")
    per_seed: dict[str, dict[int, float]] = {m: {} for m in methods}
    wins = 0
    for seed in seeds:
        trace = generate_cluster_trace(base_spec, duration=2 * WEEK, seed=seed)
        cluster = prepare_cluster(trace, rates)
        suite = MethodSuite(
            cluster, model_params=model_params or EXPERIMENT_MODEL, rates=rates
        )
        scores = {m: suite.run(m, quota).tco_savings_pct for m in methods}
        for m, v in scores.items():
            per_seed[m][seed] = v
        if all(
            scores[focal_method] > v
            for m, v in scores.items()
            if m != focal_method
        ):
            wins += 1
    summary = {m: summarize_across_seeds(vals) for m, vals in per_seed.items()}
    return RobustnessReport(
        per_seed=per_seed,
        summary=summary,
        win_fraction=wins / len(seeds),
        focal_method=focal_method,
    )
