"""Statistical helpers for experiment reporting.

Benchmarks report point estimates from one simulated trace; these
helpers quantify how stable those estimates are across random seeds
(bootstrap confidence intervals over per-job savings, and multi-seed
summaries).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import rng_from

__all__ = ["BootstrapCI", "bootstrap_savings_ci", "summarize_across_seeds"]


@dataclass(frozen=True)
class BootstrapCI:
    """A bootstrap confidence interval for a savings percentage."""

    point: float
    lower: float
    upper: float
    level: float

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def bootstrap_savings_ci(
    c_hdd: np.ndarray,
    realized: np.ndarray,
    n_boot: int = 1000,
    level: float = 0.95,
    seed: int | np.random.Generator | None = 0,
) -> BootstrapCI:
    """Percentile-bootstrap CI for TCO-savings percentage.

    Resamples jobs with replacement; each replicate recomputes
    ``100 * (sum(c_hdd) - sum(realized)) / sum(c_hdd)``.

    Parameters
    ----------
    c_hdd:
        Per-job all-HDD baseline cost.
    realized:
        Per-job realized cost under the evaluated placement.
    """
    c_hdd = np.asarray(c_hdd, dtype=float)
    realized = np.asarray(realized, dtype=float)
    if c_hdd.shape != realized.shape or c_hdd.ndim != 1:
        raise ValueError("c_hdd and realized must be aligned 1-D arrays")
    if c_hdd.size == 0:
        raise ValueError("need at least one job")
    if not 0.0 < level < 1.0:
        raise ValueError("level must be in (0, 1)")
    rng = rng_from(seed)
    n = c_hdd.size
    point = 100.0 * (c_hdd.sum() - realized.sum()) / c_hdd.sum()
    idx = rng.integers(0, n, size=(n_boot, n))
    base = c_hdd[idx].sum(axis=1)
    real = realized[idx].sum(axis=1)
    reps = 100.0 * (base - real) / np.maximum(base, 1e-300)
    alpha = (1.0 - level) / 2.0
    lo, hi = np.quantile(reps, [alpha, 1.0 - alpha])
    return BootstrapCI(point=float(point), lower=float(lo), upper=float(hi), level=level)


def summarize_across_seeds(values: dict[int, float]) -> dict[str, float]:
    """Mean / std / min / max of a metric measured over several seeds."""
    if not values:
        raise ValueError("no values")
    arr = np.array(list(values.values()), dtype=float)
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
        "n": float(arr.size),
    }
