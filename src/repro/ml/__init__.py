"""From-scratch ML substrate: histogram GBDT, binning, metrics, importance.

Substitutes the Yggdrasil Decision Forests dependency of the paper with
a pure-NumPy implementation of the same model family.
"""

from .encoding import QuantileBinner
from .gain_importance import model_split_importance, split_count_importance
from .gbdt import GBTClassifier, GBTRegressor
from .importance import GroupImportance, feature_group_importance
from .metrics import accuracy, confusion_matrix, roc_auc, top_k_accuracy
from .packed import PackedForest
from .tree import HistogramTree

__all__ = [
    "QuantileBinner",
    "HistogramTree",
    "PackedForest",
    "GBTClassifier",
    "GBTRegressor",
    "accuracy",
    "top_k_accuracy",
    "roc_auc",
    "confusion_matrix",
    "GroupImportance",
    "feature_group_importance",
    "split_count_importance",
    "model_split_importance",
]
