"""Histogram-based regression tree (the GBDT base learner).

One tree fits the second-order boosting objective on pre-binned
features: each leaf value is ``-G / (H + l2)`` for the leaf's gradient
and hessian sums.  Training is fully vectorized: per depth level, one
``np.bincount`` accumulates (gradient, hessian, count) histograms for
all active nodes x features x bins simultaneously, and split search
runs as cumulative sums over the histogram tensor.

Trees are stored as flat arrays with heap indexing (root 0, children of
``i`` at ``2i+1`` / ``2i+2``), which keeps prediction a tight per-level
gather loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HistogramTree"]

_EPS_GAIN = 1e-12


@dataclass
class HistogramTree:
    """A fitted regression tree over binned features.

    Attributes (all length ``2**(max_depth+1) - 1``, heap-indexed):

    - ``feature``: split feature per internal node (-1 for leaves)
    - ``split_bin``: go left iff ``X_binned[:, feature] <= split_bin``
    - ``value``: leaf value (Newton step) per node
    - ``is_leaf``: node type mask
    """

    feature: np.ndarray
    split_bin: np.ndarray
    value: np.ndarray
    is_leaf: np.ndarray
    max_depth: int

    @classmethod
    def fit(
        cls,
        X_binned: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        max_depth: int = 6,
        min_samples_leaf: int = 20,
        l2_reg: float = 1.0,
        n_bins: int = 64,
    ) -> "HistogramTree":
        """Grow a tree greedily, level by level.

        Parameters
        ----------
        X_binned:
            (n, p) uint8 bin codes (from :class:`QuantileBinner`).
        grad, hess:
            First/second-order loss derivatives at the current model.
        """
        n, p = X_binned.shape
        if grad.shape != (n,) or hess.shape != (n,):
            raise ValueError("grad/hess must be 1-D with one entry per row of X_binned")
        n_nodes = 2 ** (max_depth + 1) - 1
        feature = np.full(n_nodes, -1, dtype=np.int32)
        split_bin = np.zeros(n_nodes, dtype=np.int32)
        value = np.zeros(n_nodes, dtype=float)
        is_leaf = np.zeros(n_nodes, dtype=bool)

        node = np.zeros(n, dtype=np.int64)  # current node per sample
        active = ~np.zeros(n, dtype=bool)  # samples still being routed
        feat_idx = np.arange(p, dtype=np.int64)

        for depth in range(max_depth + 1):
            offset = 2**depth - 1
            n_level = 2**depth
            rows = np.flatnonzero(active)
            if rows.size == 0:
                break
            local = node[rows] - offset
            # Histogram accumulation: one bincount per statistic over the
            # flattened (node-local, feature, bin) index space.
            flat = (local[:, None] * p + feat_idx[None, :]) * n_bins + X_binned[rows]
            flat = flat.ravel()
            size = n_level * p * n_bins
            hist_g = np.bincount(flat, weights=np.repeat(grad[rows], p), minlength=size)
            hist_h = np.bincount(flat, weights=np.repeat(hess[rows], p), minlength=size)
            hist_c = np.bincount(flat, minlength=size)
            hist_g = hist_g.reshape(n_level, p, n_bins)
            hist_h = hist_h.reshape(n_level, p, n_bins)
            hist_c = hist_c.reshape(n_level, p, n_bins)

            # Totals per node (independent of feature; use feature 0).
            G = hist_g[:, 0, :].sum(axis=1)
            H = hist_h[:, 0, :].sum(axis=1)
            C = hist_c[:, 0, :].sum(axis=1)

            node_ids = offset + np.arange(n_level)
            leaf_val = -G / (H + l2_reg)

            if depth == max_depth:
                for k, nid in enumerate(node_ids):
                    if C[k] > 0:
                        is_leaf[nid] = True
                        value[nid] = leaf_val[k]
                break

            # Split search: cumulative left statistics over bins.
            GL = np.cumsum(hist_g, axis=2)
            HL = np.cumsum(hist_h, axis=2)
            CL = np.cumsum(hist_c, axis=2)
            GR = G[:, None, None] - GL
            HR = H[:, None, None] - HL
            CR = C[:, None, None] - CL
            parent_score = (G**2) / (H + l2_reg)
            gain = (
                GL**2 / (HL + l2_reg)
                + GR**2 / (HR + l2_reg)
                - parent_score[:, None, None]
            )
            valid = (CL >= min_samples_leaf) & (CR >= min_samples_leaf)
            gain = np.where(valid, gain, -np.inf)
            flat_gain = gain.reshape(n_level, -1)
            best = np.argmax(flat_gain, axis=1)
            best_gain = flat_gain[np.arange(n_level), best]
            best_feat = best // n_bins
            best_bin = best % n_bins

            made_split = np.zeros(n_level, dtype=bool)
            for k, nid in enumerate(node_ids):
                if C[k] == 0:
                    continue
                if best_gain[k] > _EPS_GAIN and np.isfinite(best_gain[k]):
                    feature[nid] = best_feat[k]
                    split_bin[nid] = best_bin[k]
                    made_split[k] = True
                else:
                    is_leaf[nid] = True
                    value[nid] = leaf_val[k]

            # Route samples of split nodes to children; freeze leaf samples.
            split_mask = made_split[local]
            stay = rows[~split_mask]
            active[stay] = False
            go_rows = rows[split_mask]
            if go_rows.size == 0:
                break
            nid = node[go_rows]
            f = feature[nid]
            goes_left = X_binned[go_rows, f] <= split_bin[nid]
            node[go_rows] = np.where(goes_left, 2 * nid + 1, 2 * nid + 2)

        return cls(
            feature=feature,
            split_bin=split_bin,
            value=value,
            is_leaf=is_leaf,
            max_depth=max_depth,
        )

    def predict(self, X_binned: np.ndarray) -> np.ndarray:
        """Leaf values for binned inputs (vectorized per-level routing)."""
        n = X_binned.shape[0]
        node = np.zeros(n, dtype=np.int64)
        for _ in range(self.max_depth):
            routable = ~self.is_leaf[node] & (self.feature[node] >= 0)
            if not routable.any():
                break
            idx = np.flatnonzero(routable)
            nid = node[idx]
            f = self.feature[nid]
            goes_left = X_binned[idx, f] <= self.split_bin[nid]
            node[idx] = np.where(goes_left, 2 * nid + 1, 2 * nid + 2)
        return self.value[node]

    @property
    def n_leaves(self) -> int:
        return int(self.is_leaf.sum())
