"""Classification metrics: accuracy, top-k accuracy, ROC AUC, confusion.

Self-contained NumPy implementations (no sklearn available offline);
``roc_auc`` uses the rank-statistic formulation with midrank tie
handling, matching the standard definition.
"""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "top_k_accuracy", "roc_auc", "confusion_matrix"]


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    if y_true.size == 0:
        return float("nan")
    return float((y_true == y_pred).mean())


def top_k_accuracy(y_true: np.ndarray, proba: np.ndarray, classes: np.ndarray, k: int = 1) -> float:
    """Fraction of rows whose true class is among the k highest-probability classes."""
    y_true = np.asarray(y_true)
    proba = np.asarray(proba)
    if proba.ndim != 2 or proba.shape[0] != y_true.shape[0]:
        raise ValueError("proba must be (n, n_classes)")
    k = min(k, proba.shape[1])
    top = np.argsort(-proba, axis=1)[:, :k]
    hits = np.zeros(len(y_true), dtype=bool)
    for j in range(k):
        hits |= classes[top[:, j]] == y_true
    return float(hits.mean()) if len(y_true) else float("nan")


def roc_auc(y_true: np.ndarray, score: np.ndarray) -> float:
    """Binary ROC AUC via the Mann-Whitney U statistic (midranks for ties).

    Returns NaN when only one class is present.
    """
    y_true = np.asarray(y_true).astype(bool)
    score = np.asarray(score, dtype=float)
    if y_true.shape != score.shape:
        raise ValueError("shape mismatch")
    n_pos = int(y_true.sum())
    n_neg = int((~y_true).sum())
    if n_pos == 0 or n_neg == 0:
        return float("nan")
    order = np.argsort(score, kind="mergesort")
    ranks = np.empty(len(score), dtype=float)
    sorted_scores = score[order]
    # Midranks: average rank within each tie group.
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    sum_pos_ranks = ranks[y_true].sum()
    u = sum_pos_ranks - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> np.ndarray:
    """(n_classes, n_classes) count matrix; rows = true, cols = predicted."""
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    if ((y_true < 0) | (y_true >= n_classes) | (y_pred < 0) | (y_pred >= n_classes)).any():
        raise ValueError("labels out of range")
    flat = y_true * n_classes + y_pred
    return np.bincount(flat, minlength=n_classes * n_classes).reshape(n_classes, n_classes)
