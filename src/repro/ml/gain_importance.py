"""Split-gain feature importance for fitted GBDT models.

Complements the AUC-decrease group importance (Figure 9c) with the
classic per-feature importance: total gain contributed by every split
on a feature, summed over all trees.  Useful for inspecting what an
individual category model learned — one of the interpretability
benefits the paper attributes to small per-workload models.
"""

from __future__ import annotations

import numpy as np

from .gbdt import GBTClassifier, GBTRegressor
from .tree import HistogramTree

__all__ = ["split_count_importance", "model_split_importance"]


def split_count_importance(tree: HistogramTree, n_features: int) -> np.ndarray:
    """Number of internal splits per feature in one tree."""
    counts = np.zeros(n_features)
    internal = (~tree.is_leaf) & (tree.feature >= 0)
    for f in tree.feature[internal]:
        counts[f] += 1.0
    return counts


def model_split_importance(
    model: GBTClassifier | GBTRegressor, normalize: bool = True
) -> np.ndarray:
    """Aggregate split counts over all trees of a fitted GBDT.

    Returns a length-``n_features`` vector; with ``normalize`` the
    entries sum to 1 (or all zeros if the model has no splits at all).
    """
    if isinstance(model, GBTClassifier):
        if model.binner_ is None:
            raise RuntimeError("model not fitted")
        trees = [t for round_trees in model.trees_ for t in round_trees]
    elif isinstance(model, GBTRegressor):
        if model.binner_ is None:
            raise RuntimeError("model not fitted")
        trees = list(model.trees_)
    else:
        raise TypeError(f"unsupported model type {type(model).__name__}")
    n_features = len(model.binner_.edges_)
    total = np.zeros(n_features)
    for tree in trees:
        total += split_count_importance(tree, n_features)
    if normalize and total.sum() > 0:
        total = total / total.sum()
    return total
