"""Feature-group importance via AUC decrease (Figure 9c methodology).

For each category the paper runs a *binary* prediction task ("does this
job belong to the category?") and measures, per feature (group), the
decrease in ROC AUC when the feature is excluded from the task.  Scores
are normalized for comparability within each category.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workloads.features import FEATURE_GROUPS, FeatureMatrix
from .gbdt import GBTClassifier
from .metrics import roc_auc

__all__ = ["GroupImportance", "feature_group_importance"]


@dataclass(frozen=True)
class GroupImportance:
    """AUC-decrease importance per (feature group, category).

    ``scores[g, c]`` is the normalized importance of group ``g`` for
    predicting membership in category ``c``; higher means the group
    matters more for that category.
    """

    groups: tuple[str, ...]
    categories: np.ndarray
    scores: np.ndarray  # (n_groups, n_categories), normalized per column
    raw_auc_full: np.ndarray  # (n_categories,)


def _binary_auc(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    **model_kw,
) -> float:
    model = GBTClassifier(**model_kw).fit(X_train, y_train.astype(int))
    if len(model.classes_) < 2:
        return float("nan")
    proba = model.predict_proba(X_test)
    pos_col = int(np.flatnonzero(model.classes_ == 1)[0])
    return roc_auc(y_test.astype(bool), proba[:, pos_col])


def feature_group_importance(
    features_train: FeatureMatrix,
    labels_train: np.ndarray,
    features_test: FeatureMatrix,
    labels_test: np.ndarray,
    categories: np.ndarray | None = None,
    groups: tuple[str, ...] = FEATURE_GROUPS,
    n_rounds: int = 8,
    max_depth: int = 4,
) -> GroupImportance:
    """Compute per-category AUC-decrease importance for feature groups.

    Parameters
    ----------
    features_train, features_test:
        Feature matrices with group labels (Table 2 groups A/B/C/T).
    labels_train, labels_test:
        Category labels per job.
    categories:
        Categories to analyse; defaults to all categories present in
        the training labels.
    """
    if categories is None:
        categories = np.unique(labels_train)
    model_kw = dict(n_rounds=n_rounds, max_depth=max_depth)

    auc_full = np.zeros(len(categories))
    decreases = np.zeros((len(groups), len(categories)))
    for ci, cat in enumerate(categories):
        y_tr = (labels_train == cat).astype(int)
        y_te = (labels_test == cat).astype(int)
        auc_full[ci] = _binary_auc(
            features_train.X, y_tr, features_test.X, y_te, **model_kw
        )
        for gi, group in enumerate(groups):
            cols = features_train.group_columns(group)
            if cols.size == 0:
                decreases[gi, ci] = 0.0
                continue
            ft = features_train.drop_columns(cols)
            fv = features_test.drop_columns(cols)
            auc_wo = _binary_auc(ft.X, y_tr, fv.X, y_te, **model_kw)
            if np.isnan(auc_full[ci]) or np.isnan(auc_wo):
                decreases[gi, ci] = 0.0
            else:
                decreases[gi, ci] = max(auc_full[ci] - auc_wo, 0.0)

    # Normalize within each category so groups are comparable (paper:
    # "these scores are normalized for comparability within each
    # category").
    col_sum = decreases.sum(axis=0, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        normalized = np.where(col_sum > 0, decreases / col_sum, 0.0)
    return GroupImportance(
        groups=tuple(groups),
        categories=np.asarray(categories),
        scores=normalized,
        raw_auc_full=auc_full,
    )
