"""Gradient boosted trees: multiclass classifier and regressor.

A from-scratch NumPy substitute for the Yggdrasil Decision Forests
models the paper trains (Section 4.2: gradient boosted trees, max depth
6).  Both estimators share the histogram pipeline: a
:class:`~repro.ml.encoding.QuantileBinner` quantizes features once, and
each boosting round fits :class:`~repro.ml.tree.HistogramTree` base
learners to second-order gradients.

- :class:`GBTClassifier` — softmax objective, one tree per class per
  round; used by the category model and the importance analysis.
- :class:`GBTRegressor` — squared-error objective; used by the
  lifetime-prediction ML baseline.
"""

from __future__ import annotations

import weakref
import zlib

import numpy as np

from .encoding import QuantileBinner
from .packed import PackedForest
from .tree import HistogramTree

__all__ = ["GBTClassifier", "GBTRegressor"]


def _softmax(raw: np.ndarray) -> np.ndarray:
    z = raw - raw.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class GBTClassifier:
    """Multiclass gradient-boosted trees with a softmax objective.

    Parameters
    ----------
    n_rounds:
        Boosting rounds; each round adds one tree per class.
    max_depth, min_samples_leaf, l2_reg, n_bins:
        Base-learner controls (see :class:`HistogramTree`).
    learning_rate:
        Shrinkage applied to every leaf value.
    """

    def __init__(
        self,
        n_rounds: int = 20,
        max_depth: int = 6,
        learning_rate: float = 0.3,
        min_samples_leaf: int = 20,
        l2_reg: float = 1.0,
        n_bins: int = 64,
    ):
        self.n_rounds = n_rounds
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.min_samples_leaf = min_samples_leaf
        self.l2_reg = l2_reg
        self.n_bins = n_bins
        self.binner_: QuantileBinner | None = None
        self.classes_: np.ndarray | None = None
        self.base_score_: np.ndarray | None = None
        self.trees_: list[list[HistogramTree]] = []
        self._packed: PackedForest | None = None
        self._raw_cache: tuple[weakref.ref, int, np.ndarray] | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GBTClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError("X must be (n, p) and y must be (n,)")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._packed = None
        self._raw_cache = None
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        k = len(self.classes_)
        self.binner_ = QuantileBinner(self.n_bins).fit(X)
        Xb = self.binner_.transform(X)
        n = X.shape[0]

        # Log-prior initialization keeps early rounds calibrated.
        priors = np.bincount(y_enc, minlength=k).astype(float) / n
        self.base_score_ = np.log(np.clip(priors, 1e-12, None))
        if k == 1:
            self.trees_ = []
            return self

        onehot = np.zeros((n, k))
        onehot[np.arange(n), y_enc] = 1.0
        raw = np.tile(self.base_score_, (n, 1))
        self.trees_ = []
        for _ in range(self.n_rounds):
            proba = _softmax(raw)
            round_trees: list[HistogramTree] = []
            for c in range(k):
                g = proba[:, c] - onehot[:, c]
                h = np.maximum(proba[:, c] * (1.0 - proba[:, c]), 1e-6)
                tree = HistogramTree.fit(
                    Xb,
                    g,
                    h,
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    l2_reg=self.l2_reg,
                    n_bins=self.n_bins,
                )
                round_trees.append(tree)
            # Per-round margin update through the packed forest: one
            # routing pass over all k class trees instead of k per-tree
            # Python walks.  Gradients only read `proba`, which is fixed
            # at round start, so deferring the update to round end is
            # bit-identical to updating inside the class loop.
            leaf = PackedForest.from_trees(round_trees).predict(Xb)
            raw += self.learning_rate * leaf
            self.trees_.append(round_trees)
        return self

    def _check_fitted(self) -> None:
        if self.binner_ is None or self.classes_ is None:
            raise RuntimeError("model not fitted")

    @property
    def packed_(self) -> PackedForest | None:
        """All base learners packed for single-pass inference (lazy)."""
        if self._packed is None and self.trees_:
            self._packed = PackedForest.from_trees(
                [t for round_trees in self.trees_ for t in round_trees]
            )
        return self._packed

    def _raw_scores(self, Xb: np.ndarray, n: int) -> np.ndarray:
        """Raw per-class scores from binned inputs via the packed forest.

        Accumulates per boosting round in fit order, so the result is
        bit-identical to the legacy per-tree loop.
        """
        packed = self.packed_
        if packed is None:
            return np.tile(self.base_score_, (n, 1))
        return packed.decision_scores(
            Xb, self.base_score_, self.learning_rate, len(self.classes_)
        )

    @staticmethod
    def _fingerprint(X: np.ndarray) -> int:
        """Order-sensitive content checksum of the cached input."""
        return zlib.crc32(X.tobytes())

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw per-class scores, shape (n, n_classes).

        Consecutive calls on the *same array object* (e.g. a
        ``predict_proba`` followed by ``predict``, or a quota sweep
        re-deploying over one feature matrix) reuse one binning and one
        forest pass via a weak-reference cache.  A CRC32 content
        fingerprint invalidates the cache on any in-place mutation of
        the array, including sum-preserving ones like row swaps.
        """
        self._check_fitted()
        if isinstance(X, np.ndarray) and self._raw_cache is not None:
            ref, checksum, raw = self._raw_cache
            if ref() is X and self._fingerprint(X) == checksum:
                return raw.copy()
        X_arr = np.asarray(X, dtype=float)
        Xb = self.binner_.transform(X_arr)
        raw = self._raw_scores(Xb, X_arr.shape[0])
        if isinstance(X, np.ndarray):
            try:
                self._raw_cache = (weakref.ref(X), self._fingerprint(X), raw.copy())
            except TypeError:
                self._raw_cache = None
        return raw

    def _decision_function_legacy(self, X: np.ndarray) -> np.ndarray:
        """Per-tree reference path (kept for equivalence tests/benchmarks)."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        Xb = self.binner_.transform(X)
        raw = np.tile(self.base_score_, (X.shape[0], 1))
        for round_trees in self.trees_:
            for c, tree in enumerate(round_trees):
                raw[:, c] += self.learning_rate * tree.predict(Xb)
        return raw

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        raw = self.decision_function(X)
        if raw.shape[1] == 1:
            return np.ones((raw.shape[0], 1))
        return _softmax(raw)

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    @property
    def n_trees(self) -> int:
        """Total base learners across rounds and classes."""
        return sum(len(r) for r in self.trees_)


class GBTRegressor:
    """Gradient-boosted trees for squared-error regression."""

    def __init__(
        self,
        n_rounds: int = 30,
        max_depth: int = 6,
        learning_rate: float = 0.3,
        min_samples_leaf: int = 20,
        l2_reg: float = 1.0,
        n_bins: int = 64,
    ):
        self.n_rounds = n_rounds
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.min_samples_leaf = min_samples_leaf
        self.l2_reg = l2_reg
        self.n_bins = n_bins
        self.binner_: QuantileBinner | None = None
        self.base_score_: float = 0.0
        self.trees_: list[HistogramTree] = []
        self._packed: PackedForest | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GBTRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError("X must be (n, p) and y must be (n,)")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._packed = None
        self.binner_ = QuantileBinner(self.n_bins).fit(X)
        Xb = self.binner_.transform(X)
        self.base_score_ = float(y.mean())
        pred = np.full(y.shape, self.base_score_)
        ones = np.ones_like(y)
        self.trees_ = []
        for _ in range(self.n_rounds):
            g = pred - y
            tree = HistogramTree.fit(
                Xb,
                g,
                ones,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                l2_reg=self.l2_reg,
                n_bins=self.n_bins,
            )
            pred += self.learning_rate * tree.predict(Xb)
            self.trees_.append(tree)
        return self

    @property
    def packed_(self) -> PackedForest | None:
        """The fitted forest packed for single-pass inference (lazy)."""
        if self._packed is None and self.trees_:
            self._packed = PackedForest.from_trees(self.trees_)
        return self._packed

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.binner_ is None:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=float)
        Xb = self.binner_.transform(X)
        packed = self.packed_
        if packed is None:
            return np.full(X.shape[0], self.base_score_)
        return packed.decision_scores(
            Xb, self.base_score_, self.learning_rate, n_classes=1
        )[:, 0]
