"""Feature binning for histogram-based tree learning.

Gradient-boosted trees here follow the standard histogram approach
(as in LightGBM/YDF): continuous features are quantized into a small
number of bins once, and split finding scans bin histograms instead of
sorted feature values.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuantileBinner"]


class QuantileBinner:
    """Per-feature quantile binning into uint8 codes.

    Bin edges are interior quantiles of the training distribution; a
    value ``v`` maps to ``searchsorted(edges, v, side="right")``, i.e.
    bin ``b`` holds values in ``(edges[b-1], edges[b]]``.  Features with
    few distinct values (e.g. binary hashed indicators) get one bin per
    value.
    """

    def __init__(self, n_bins: int = 64):
        if not 2 <= n_bins <= 256:
            raise ValueError("n_bins must be in [2, 256]")
        self.n_bins = n_bins
        self.edges_: list[np.ndarray] | None = None
        # Single-sample scratch (built lazily by transform_one).
        self._edge_pad: np.ndarray | None = None
        self._lt: np.ndarray | None = None
        self._cnt: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "QuantileBinner":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        edges: list[np.ndarray] = []
        qs = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        for c in range(X.shape[1]):
            col = X[:, c]
            col = col[np.isfinite(col)]
            if col.size == 0:
                edges.append(np.array([]))
                continue
            # inverted_cdf keeps edges on actual data values, so
            # discrete features (e.g. binary indicators) get exactly one
            # bin per observed value.
            e = np.unique(np.quantile(col, qs, method="inverted_cdf"))
            # Drop edges equal to the max so the last bin is non-empty.
            e = e[e < col.max()] if e.size else e
            edges.append(e)
        self.edges_ = edges
        return self

    def transform(self, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Quantize to uint8 bin codes; unseen values clip into end bins.

        ``out`` optionally receives the codes (uint8, same shape as
        ``X``), letting a serving loop reuse one code buffer per batch.
        """
        if self.edges_ is None:
            raise RuntimeError("binner not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != len(self.edges_):
            raise ValueError(
                f"X has {X.shape[1] if X.ndim == 2 else '?'} columns, "
                f"binner was fitted with {len(self.edges_)}"
            )
        if out is None:
            out = np.zeros(X.shape, dtype=np.uint8)
        else:
            if out.shape != X.shape or out.dtype != np.uint8:
                raise ValueError("out must be uint8 with X's shape")
            out[:] = 0
        for c, e in enumerate(self.edges_):
            if e.size == 0:
                continue
            out[:, c] = np.searchsorted(e, X[:, c], side="left").astype(np.uint8)
        return out

    def transform_one(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Quantize one sample into a preallocated uint8 code vector.

        The request-at-a-time path: one broadcast compare against a
        +inf-padded edge matrix and a row count, with no per-call
        allocations.  For finite inputs ``count(edges < v)`` equals
        ``searchsorted(edges, v, side="left")``, so codes are
        bit-identical to row 0 of :meth:`transform` on the sample (the
        extractor only produces finite features; a NaN would bin to the
        last bin there and bin 0 here).
        """
        if self.edges_ is None:
            raise RuntimeError("binner not fitted")
        p = len(self.edges_)
        if getattr(self, "_edge_pad", None) is None:
            width = max((e.size for e in self.edges_), default=0)
            pad = np.full((p, max(width, 1)), np.inf)
            for c, e in enumerate(self.edges_):
                pad[c, : e.size] = e
            self._edge_pad = pad
            self._lt = np.empty(pad.shape, dtype=bool)
            self._cnt = np.empty(p, dtype=np.intp)
        np.less(self._edge_pad, x[:, None], out=self._lt)
        self._lt.sum(axis=1, out=self._cnt)
        np.copyto(out, self._cnt, casting="unsafe")
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def max_bins_(self) -> int:
        """Largest bin code + 1 across features (after fitting)."""
        if self.edges_ is None:
            raise RuntimeError("binner not fitted")
        return max((e.size + 1 for e in self.edges_), default=1)
