"""Feature binning for histogram-based tree learning.

Gradient-boosted trees here follow the standard histogram approach
(as in LightGBM/YDF): continuous features are quantized into a small
number of bins once, and split finding scans bin histograms instead of
sorted feature values.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuantileBinner"]


class QuantileBinner:
    """Per-feature quantile binning into uint8 codes.

    Bin edges are interior quantiles of the training distribution; a
    value ``v`` maps to ``searchsorted(edges, v, side="right")``, i.e.
    bin ``b`` holds values in ``(edges[b-1], edges[b]]``.  Features with
    few distinct values (e.g. binary hashed indicators) get one bin per
    value.
    """

    def __init__(self, n_bins: int = 64):
        if not 2 <= n_bins <= 256:
            raise ValueError("n_bins must be in [2, 256]")
        self.n_bins = n_bins
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "QuantileBinner":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        edges: list[np.ndarray] = []
        qs = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        for c in range(X.shape[1]):
            col = X[:, c]
            col = col[np.isfinite(col)]
            if col.size == 0:
                edges.append(np.array([]))
                continue
            # inverted_cdf keeps edges on actual data values, so
            # discrete features (e.g. binary indicators) get exactly one
            # bin per observed value.
            e = np.unique(np.quantile(col, qs, method="inverted_cdf"))
            # Drop edges equal to the max so the last bin is non-empty.
            e = e[e < col.max()] if e.size else e
            edges.append(e)
        self.edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Quantize to uint8 bin codes; unseen values clip into end bins."""
        if self.edges_ is None:
            raise RuntimeError("binner not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != len(self.edges_):
            raise ValueError(
                f"X has {X.shape[1] if X.ndim == 2 else '?'} columns, "
                f"binner was fitted with {len(self.edges_)}"
            )
        out = np.zeros(X.shape, dtype=np.uint8)
        for c, e in enumerate(self.edges_):
            if e.size == 0:
                continue
            out[:, c] = np.searchsorted(e, X[:, c], side="left").astype(np.uint8)
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def max_bins_(self) -> int:
        """Largest bin code + 1 across features (after fitting)."""
        if self.edges_ is None:
            raise RuntimeError("binner not fitted")
        return max((e.size + 1 for e in self.edges_), default=1)
