"""Packed-forest inference: every tree of a GBDT evaluated in one pass.

:class:`~repro.ml.tree.HistogramTree` stores each tree as flat
heap-indexed arrays, so a fitted forest is really a ragged pile of
identically-shaped vectors.  :class:`PackedForest` concatenates them
into ``(n_trees, n_nodes)`` matrices and routes **all samples through
all trees per depth level** with a handful of flat gathers, instead of
the per-tree Python loop legacy ``decision_function``/``predict`` used.

Layout tricks that keep the hot loop tight:

- Leaves are *self-looping*: the packed child table sends a sample that
  has reached a leaf back to the same node, so every level is the same
  three gathers — no "still routable" masking or early-exit bookkeeping.
  (A leaf's packed split feature is 0 and its cut is a sentinel above
  any bin code, so the dummy comparison is well-defined.)
- Left/right children are interleaved in one table indexed by
  ``2 * node + goes_left``, replacing two gathers plus a select with a
  single gather.
- All node tables are flattened to 1-D and indexed by
  ``tree_offset + heap_index`` (int32), so each gather reads a small,
  cache-resident table.

Routing is bit-identical to :meth:`HistogramTree.predict`: a
(sample, tree) pair descends while its node is an internal split and
reads the same ``value`` cell a per-tree walk would.  Samples are
processed in row chunks so the working set stays at
``O(chunk x n_trees)`` regardless of batch size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .tree import HistogramTree

__all__ = ["PackedForest"]

#: Rows routed per chunk, sized so the per-chunk leaf-value matrix stays
#: cache-resident for forests of a few hundred trees.
_DEFAULT_CHUNK = 8_192


@dataclass
class PackedForest:
    """A forest of heap-indexed trees packed into contiguous matrices.

    Attributes
    ----------
    feature, split_bin, value:
        ``(n_trees, n_nodes)`` per-node arrays (see
        :class:`HistogramTree` for their meaning); ``feature`` is ``-1``
        at leaves and unreached nodes.
    max_depth:
        Common depth bound of all packed trees.
    """

    feature: np.ndarray
    split_bin: np.ndarray
    value: np.ndarray
    max_depth: int
    # Flattened routing tables (derived in __post_init__).
    _feat0: np.ndarray = field(init=False, repr=False)
    _cut: np.ndarray = field(init=False, repr=False)
    _child2: np.ndarray = field(init=False, repr=False)
    _value_flat: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n_trees, n_nodes = self.feature.shape
        if 2 * n_trees * n_nodes >= np.iinfo(np.int32).max:
            raise ValueError("packed forest too large for int32 node indexing")
        flat_feature = self.feature.ravel().astype(np.int32)
        internal = flat_feature >= 0
        # Dummy split (feature 0, cut above any uint8 bin code) at
        # leaves keeps the per-level comparison branch-free.
        self._feat0 = np.where(internal, flat_feature, 0).astype(np.int32)
        self._cut = np.where(
            internal, self.split_bin.ravel(), np.iinfo(np.int16).max
        ).astype(np.int16)
        idx = np.arange(n_trees * n_nodes, dtype=np.int32)
        local = idx % n_nodes
        base = idx - local
        # child2[2*i + goes_left]: interleaved children within the same
        # tree's flat block; leaves loop back to themselves so routing
        # is idempotent past each tree's actual depth.
        child2 = np.empty(2 * n_trees * n_nodes, dtype=np.int32)
        child2[0::2] = np.where(internal, base + 2 * local + 2, idx)
        child2[1::2] = np.where(internal, base + 2 * local + 1, idx)
        self._child2 = child2
        self._value_flat = np.ascontiguousarray(self.value.ravel(), dtype=float)

    @classmethod
    def from_trees(cls, trees: Sequence[HistogramTree]) -> "PackedForest":
        """Pack fitted trees (all grown with the same ``max_depth``)."""
        if not trees:
            raise ValueError("cannot pack an empty forest")
        depths = {t.max_depth for t in trees}
        if len(depths) != 1:
            raise ValueError(f"trees have mixed max_depth values: {sorted(depths)}")
        return cls(
            feature=np.ascontiguousarray([t.feature for t in trees], dtype=np.int32),
            split_bin=np.ascontiguousarray([t.split_bin for t in trees], dtype=np.int32),
            value=np.ascontiguousarray([t.value for t in trees], dtype=float),
            max_depth=depths.pop(),
        )

    @property
    def n_trees(self) -> int:
        return self.feature.shape[0]

    def _route_chunk(self, Xc: np.ndarray) -> np.ndarray:
        """Leaf values for one row chunk, shape ``(len(Xc), n_trees)``."""
        m, p = Xc.shape
        n_trees, n_nodes = self.feature.shape
        xflat = np.ascontiguousarray(Xc).reshape(-1)
        row_off = (np.arange(m, dtype=np.int32) * p)[:, None]
        roots = np.arange(n_trees, dtype=np.int32) * n_nodes
        node = np.broadcast_to(roots, (m, n_trees)).astype(np.int32)
        for _ in range(self.max_depth):
            f = self._feat0[node]
            xb = xflat[row_off + f]
            goes_left = xb <= self._cut[node]
            node = self._child2[(node << 1) + goes_left]
        return self._value_flat[node]

    def predict(
        self, X_binned: np.ndarray, chunk_size: int = _DEFAULT_CHUNK
    ) -> np.ndarray:
        """Leaf values of every tree for every sample, shape ``(n, n_trees)``.

        Column ``j`` equals ``trees[j].predict(X_binned)`` exactly.
        """
        n = X_binned.shape[0]
        out = np.empty((n, self.n_trees), dtype=float)
        for start in range(0, n, chunk_size):
            stop = min(start + chunk_size, n)
            out[start:stop] = self._route_chunk(X_binned[start:stop])
        return out

    def decision_scores(
        self,
        X_binned: np.ndarray,
        base_score: np.ndarray | float,
        learning_rate: float,
        n_classes: int = 1,
        chunk_size: int = _DEFAULT_CHUNK,
    ) -> np.ndarray:
        """Boosted raw scores ``base + lr * sum_r leaf_r``, shape ``(n, k)``.

        Trees must be packed round-major (``round0 class0..k-1, round1
        class0..k-1, ...``, the fit order of the GBT estimators).  The
        per-round accumulation runs inside the routing chunk, in fit
        order, so results are bit-identical to the legacy sequential
        per-tree loop while the leaf matrix is still cache-hot.
        """
        n = X_binned.shape[0]
        n_trees = self.n_trees
        if n_classes < 1 or n_trees % n_classes:
            raise ValueError(
                f"n_trees={n_trees} is not a multiple of n_classes={n_classes}"
            )
        n_rounds = n_trees // n_classes
        base = np.broadcast_to(np.asarray(base_score, dtype=float), (n_classes,))
        out = np.empty((n, n_classes), dtype=float)
        for start in range(0, n, chunk_size):
            stop = min(start + chunk_size, n)
            leaf = self._route_chunk(X_binned[start:stop])
            raw = np.tile(base, (stop - start, 1))
            for r in range(n_rounds):
                raw += learning_rate * leaf[:, r * n_classes : (r + 1) * n_classes]
            out[start:stop] = raw
        return out

    def decision_scores_one(
        self,
        x_binned: np.ndarray,
        base_score: np.ndarray | float,
        learning_rate: float,
        n_classes: int = 1,
    ) -> np.ndarray:
        """Boosted raw scores for a single sample, shape ``(n_classes,)``.

        The request-at-a-time serving path: skips the batch machinery
        (chunk loop, per-chunk tiling) while accumulating per round in
        fit order, so the scores are bit-identical to row ``i`` of
        :meth:`decision_scores` on a batch containing the sample.
        """
        n_trees = self.n_trees
        if n_classes < 1 or n_trees % n_classes:
            raise ValueError(
                f"n_trees={n_trees} is not a multiple of n_classes={n_classes}"
            )
        x = np.asarray(x_binned)
        if x.ndim != 1:
            raise ValueError("decision_scores_one routes exactly one sample")
        leaf = self._route_chunk(x.reshape(1, -1))[0]
        raw = np.array(
            np.broadcast_to(np.asarray(base_score, dtype=float), (n_classes,))
        )
        for r in range(n_trees // n_classes):
            raw += learning_rate * leaf[r * n_classes : (r + 1) * n_classes]
        return raw
