"""Packed-forest inference: every tree of a GBDT evaluated in one pass.

:class:`~repro.ml.tree.HistogramTree` stores each tree as flat
heap-indexed arrays, so a fitted forest is really a ragged pile of
identically-shaped vectors.  :class:`PackedForest` concatenates them
into ``(n_trees, n_nodes)`` matrices and routes **all samples through
all trees per depth level** with a handful of flat gathers, instead of
the per-tree Python loop legacy ``decision_function``/``predict`` used.

Layout tricks that keep the hot loop tight:

- Leaves are *self-looping*: the packed child table sends a sample that
  has reached a leaf back to the same node, so every level is the same
  three gathers — no "still routable" masking or early-exit bookkeeping.
  (A leaf's packed split feature is 0 and its cut is a sentinel above
  any bin code, so the dummy comparison is well-defined.)
- Left/right children are interleaved in one table indexed by
  ``2 * node + goes_left``, replacing two gathers plus a select with a
  single gather.
- All node tables are flattened to 1-D and indexed by
  ``tree_offset + heap_index`` (int32), so each gather reads a small,
  cache-resident table.

Routing is bit-identical to :meth:`HistogramTree.predict`: a
(sample, tree) pair descends while its node is an internal split and
reads the same ``value`` cell a per-tree walk would.  Samples are
processed in row chunks so the working set stays at
``O(chunk x n_trees)`` regardless of batch size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .tree import HistogramTree

__all__ = ["PackedForest"]

#: Rows routed per chunk, sized so the per-chunk leaf-value matrix stays
#: cache-resident for forests of a few hundred trees.
_DEFAULT_CHUNK = 8_192


@dataclass
class PackedForest:
    """A forest of heap-indexed trees packed into contiguous matrices.

    Attributes
    ----------
    feature, split_bin, value:
        ``(n_trees, n_nodes)`` per-node arrays (see
        :class:`HistogramTree` for their meaning); ``feature`` is ``-1``
        at leaves and unreached nodes.
    max_depth:
        Common depth bound of all packed trees.
    """

    feature: np.ndarray
    split_bin: np.ndarray
    value: np.ndarray
    max_depth: int
    # Flattened routing tables (derived in __post_init__).
    _feat0: np.ndarray = field(init=False, repr=False)
    _cut: np.ndarray = field(init=False, repr=False)
    _child2: np.ndarray = field(init=False, repr=False)
    _value_flat: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n_trees, n_nodes = self.feature.shape
        if 2 * n_trees * n_nodes >= np.iinfo(np.int32).max:
            raise ValueError("packed forest too large for int32 node indexing")
        flat_feature = self.feature.ravel().astype(np.int32)
        internal = flat_feature >= 0
        # Dummy split (feature 0, cut above any uint8 bin code) at
        # leaves keeps the per-level comparison branch-free.
        self._feat0 = np.where(internal, flat_feature, 0).astype(np.int32)
        self._cut = np.where(
            internal, self.split_bin.ravel(), np.iinfo(np.int16).max
        ).astype(np.int16)
        idx = np.arange(n_trees * n_nodes, dtype=np.int32)
        local = idx % n_nodes
        base = idx - local
        # child2[2*i + goes_left]: interleaved children within the same
        # tree's flat block; leaves loop back to themselves so routing
        # is idempotent past each tree's actual depth.
        child2 = np.empty(2 * n_trees * n_nodes, dtype=np.int32)
        child2[0::2] = np.where(internal, base + 2 * local + 2, idx)
        child2[1::2] = np.where(internal, base + 2 * local + 1, idx)
        self._child2 = child2
        self._value_flat = np.ascontiguousarray(self.value.ravel(), dtype=float)
        #: per-tree root offsets into the flat node tables
        self._roots = np.arange(n_trees, dtype=np.int32) * np.int32(n_nodes)
        # Routing scratch, reused across chunks/calls (keyed by chunk
        # shape); the hot loop then runs entirely in preallocated
        # buffers via gather-with-out and in-place ufuncs.
        self._bufs: dict = {}

    def _chunk_bufs(self, m: int, p: int, xdtype) -> dict:
        """Preallocated routing buffers for an ``(m, p)`` chunk."""
        key = (m, p, np.dtype(xdtype).char)
        bufs = self._bufs.get(key)
        if bufs is None:
            n_trees = self.feature.shape[0]
            shape = (m, n_trees) if m else (self.n_trees,)
            if len(self._bufs) > 6:
                self._bufs.clear()
            bufs = self._bufs[key] = {
                "node": np.empty(shape, dtype=np.int32),
                "f": np.empty(shape, dtype=np.int32),
                "xb": np.empty(shape, dtype=xdtype),
                "cut": np.empty(shape, dtype=np.int16),
                "goes": np.empty(shape, dtype=bool),
                "leaf": np.empty(shape, dtype=float),
                "row_off": (np.arange(m, dtype=np.int32) * np.int32(p))[:, None]
                if m
                else None,
            }
        return bufs

    @classmethod
    def from_trees(cls, trees: Sequence[HistogramTree]) -> "PackedForest":
        """Pack fitted trees (all grown with the same ``max_depth``)."""
        if not trees:
            raise ValueError("cannot pack an empty forest")
        depths = {t.max_depth for t in trees}
        if len(depths) != 1:
            raise ValueError(f"trees have mixed max_depth values: {sorted(depths)}")
        return cls(
            feature=np.ascontiguousarray([t.feature for t in trees], dtype=np.int32),
            split_bin=np.ascontiguousarray([t.split_bin for t in trees], dtype=np.int32),
            value=np.ascontiguousarray([t.value for t in trees], dtype=float),
            max_depth=depths.pop(),
        )

    @property
    def n_trees(self) -> int:
        return self.feature.shape[0]

    def _route_chunk(self, Xc: np.ndarray) -> np.ndarray:
        """Leaf values for one row chunk, shape ``(len(Xc), n_trees)``.

        Runs in this forest's reusable scratch buffers: the returned
        array is overwritten by the next routing call, so callers must
        consume (or copy) it before routing again.
        """
        m, p = Xc.shape
        xflat = np.ascontiguousarray(Xc).reshape(-1)
        bufs = self._chunk_bufs(m, p, xflat.dtype)
        node, f, xb = bufs["node"], bufs["f"], bufs["xb"]
        cut, goes, row_off = bufs["cut"], bufs["goes"], bufs["row_off"]
        node[:] = self._roots
        for _ in range(self.max_depth):
            np.take(self._feat0, node, out=f)
            f += row_off
            np.take(xflat, f, out=xb)
            np.take(self._cut, node, out=cut)
            np.less_equal(xb, cut, out=goes)
            np.left_shift(node, 1, out=node)
            np.add(node, goes, out=node)
            np.take(self._child2, node, out=node)
        leaf = bufs["leaf"]
        np.take(self._value_flat, node, out=leaf)
        return leaf

    def predict(
        self, X_binned: np.ndarray, chunk_size: int = _DEFAULT_CHUNK
    ) -> np.ndarray:
        """Leaf values of every tree for every sample, shape ``(n, n_trees)``.

        Column ``j`` equals ``trees[j].predict(X_binned)`` exactly.
        """
        n = X_binned.shape[0]
        out = np.empty((n, self.n_trees), dtype=float)
        for start in range(0, n, chunk_size):
            stop = min(start + chunk_size, n)
            out[start:stop] = self._route_chunk(X_binned[start:stop])
        return out

    def decision_scores(
        self,
        X_binned: np.ndarray,
        base_score: np.ndarray | float,
        learning_rate: float,
        n_classes: int = 1,
        chunk_size: int = _DEFAULT_CHUNK,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Boosted raw scores ``base + lr * sum_r leaf_r``, shape ``(n, k)``.

        Trees must be packed round-major (``round0 class0..k-1, round1
        class0..k-1, ...``, the fit order of the GBT estimators).  The
        per-round accumulation runs inside the routing chunk, in fit
        order, so results are bit-identical to the legacy sequential
        per-tree loop while the leaf matrix is still cache-hot.
        ``out`` optionally receives the scores (shape ``(n, k)``),
        letting a serving loop reuse one result buffer across calls.
        """
        n = X_binned.shape[0]
        n_trees = self.n_trees
        if n_classes < 1 or n_trees % n_classes:
            raise ValueError(
                f"n_trees={n_trees} is not a multiple of n_classes={n_classes}"
            )
        n_rounds = n_trees // n_classes
        base = np.broadcast_to(np.asarray(base_score, dtype=float), (n_classes,))
        if out is None:
            out = np.empty((n, n_classes), dtype=float)
        elif out.shape != (n, n_classes):
            raise ValueError(f"out has shape {out.shape}, expected {(n, n_classes)}")
        for start in range(0, n, chunk_size):
            stop = min(start + chunk_size, n)
            leaf = self._route_chunk(X_binned[start:stop])
            raw = out[start:stop]
            raw[:] = base
            for r in range(n_rounds):
                raw += learning_rate * leaf[:, r * n_classes : (r + 1) * n_classes]
        return out

    def decision_scores_one(
        self,
        x_binned: np.ndarray,
        base_score: np.ndarray | float,
        learning_rate: float,
        n_classes: int = 1,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Boosted raw scores for a single sample, shape ``(n_classes,)``.

        The request-at-a-time serving path: routes the sample through
        1-D scratch buffers (no per-call allocations beyond the result
        when ``out`` is omitted) while accumulating per round in fit
        order, so the scores are bit-identical to row ``i`` of
        :meth:`decision_scores` on a batch containing the sample.
        """
        n_trees = self.n_trees
        if n_classes < 1 or n_trees % n_classes:
            raise ValueError(
                f"n_trees={n_trees} is not a multiple of n_classes={n_classes}"
            )
        x = np.asarray(x_binned)
        if x.ndim != 1:
            raise ValueError("decision_scores_one routes exactly one sample")
        bufs = self._chunk_bufs(0, x.size, x.dtype)
        node, f, xb = bufs["node"], bufs["f"], bufs["xb"]
        cut, goes = bufs["cut"], bufs["goes"]
        feat0, cut_tab, child2 = self._feat0, self._cut, self._child2
        node[:] = self._roots
        for _ in range(self.max_depth):
            feat0.take(node, out=f)
            x.take(f, out=xb)
            cut_tab.take(node, out=cut)
            np.less_equal(xb, cut, out=goes)
            np.left_shift(node, 1, out=node)
            np.add(node, goes, out=node)
            child2.take(node, out=node)
        leaf = bufs["leaf"]
        self._value_flat.take(node, out=leaf)
        if out is None:
            out = np.empty(n_classes, dtype=float)
        # Accumulate in python floats (IEEE doubles): per class, the
        # addition sequence is exactly the vectorized per-round loop of
        # decision_scores, so the scores stay bit-identical without
        # n_rounds tiny ufunc dispatches.
        base = np.broadcast_to(
            np.asarray(base_score, dtype=float), (n_classes,)
        ).tolist()
        values = leaf.tolist()
        n_rounds = n_trees // n_classes
        for c in range(n_classes):
            acc = base[c]
            for r in range(n_rounds):
                acc += learning_rate * values[r * n_classes + c]
            out[c] = acc
        return out
