"""Baseline placement methods from Section 3 of the paper."""

from .firstfit import FirstFitPolicy
from .heuristic import CategoryAdmissionPolicy
from .imitation import ImitationModel, ImitationPolicy
from .ml_baseline import LifetimeModel, LifetimePolicy

__all__ = [
    "FirstFitPolicy",
    "CategoryAdmissionPolicy",
    "LifetimeModel",
    "LifetimePolicy",
    "ImitationModel",
    "ImitationPolicy",
]
