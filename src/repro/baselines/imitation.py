"""Imitation-learning baseline: learn the oracle's decisions directly.

Section 4 of the paper explains why this *doesn't* work in deployment:

    "A common approach to ML-driven systems is to train a model that
    learns to make decisions [...] e.g., via imitation learning.
    However, data centers are highly dynamic environments and the
    optimal decision depends on external factors such as the available
    amount of SSD at a given point in time."

We implement it anyway, as the paper's motivating negative result: a
GBT classifier is trained to imitate the clairvoyant oracle's SSD/HDD
decisions *at one training-time SSD capacity*.  When deployed at a
different capacity, its decision boundary is stale — it keeps admitting
the training-regime's job population regardless of the room actually
available.  The ablation benchmark quantifies exactly this failure mode
against the BYOM design, whose model output (a capacity-independent
ranking) dodges the problem by construction.
"""

from __future__ import annotations

import numpy as np

from ..cost import CostRates, DEFAULT_RATES
from ..ml.gbdt import GBTClassifier
from ..oracle.ilp import oracle_placement
from ..storage.policy import BatchDecision, Decision, PlacementContext, PlacementPolicy
from ..workloads.features import FeatureMatrix
from ..workloads.job import Trace

__all__ = ["ImitationModel", "ImitationPolicy"]


class ImitationModel:
    """GBT classifier imitating oracle decisions at a fixed capacity.

    Parameters
    ----------
    train_quota_fraction:
        SSD quota (fraction of the training trace's peak usage) at which
        the teacher oracle is solved.  The learned decision boundary is
        implicitly specialized to this regime.
    """

    def __init__(
        self,
        train_quota_fraction: float = 0.1,
        n_rounds: int = 15,
        max_depth: int = 6,
        rates: CostRates = DEFAULT_RATES,
    ):
        if not 0.0 < train_quota_fraction <= 1.0:
            raise ValueError("train_quota_fraction must be in (0, 1]")
        self.train_quota_fraction = train_quota_fraction
        self.rates = rates
        self.model = GBTClassifier(n_rounds=n_rounds, max_depth=max_depth)
        self._fitted = False

    def fit(self, trace: Trace, features: FeatureMatrix) -> "ImitationModel":
        """Solve the teacher oracle on ``trace`` and imitate its labels."""
        if len(trace) != len(features):
            raise ValueError("trace and features must align")
        capacity = self.train_quota_fraction * trace.peak_ssd_usage()
        teacher = oracle_placement(
            trace, capacity, "tco", self.rates, integrality=False
        )
        labels = (teacher.ssd_fraction() > 0.5).astype(int)
        if labels.sum() == 0 or labels.sum() == len(labels):
            # Degenerate teacher (all one class): the classifier handles
            # it, but record it for callers.
            pass
        self.model.fit(features.X, labels)
        self._fitted = True
        return self

    def predict(self, features: FeatureMatrix) -> np.ndarray:
        """Binary SSD/HDD decision per job."""
        if not self._fitted:
            raise RuntimeError("model not fitted")
        return self.model.predict(features.X).astype(bool)


class ImitationPolicy(PlacementPolicy):
    """Replays the imitation model's fixed decisions online.

    No capacity feedback: the model decided SSD/HDD offline, and the
    policy follows it regardless of the deployment environment — the
    brittleness the paper calls out.
    """

    name = "Imitation"

    def __init__(self, model: ImitationModel, features: FeatureMatrix):
        self._decisions = model.predict(features)

    def on_simulation_start(self, trace: Trace, capacity: float, rates: CostRates) -> None:
        if len(trace) != len(self._decisions):
            raise ValueError("features must cover the simulated trace")

    def decide(self, job_index: int, ctx: PlacementContext) -> Decision:
        return Decision(want_ssd=bool(self._decisions[job_index]))

    def decide_batch(self, first: int, ctx: PlacementContext) -> BatchDecision:
        """The whole remaining replay in one chunk.

        The model decided offline and ignores every feedback channel
        (the brittleness under study), so the mask never changes and the
        chunked engine can drive the entire trace in one batch.
        """
        mask = self._decisions[first:]
        return BatchDecision(count=len(mask), want_ssd=mask)
