"""Heuristic: practical adaptive placement (Section 3.3).

Emulates the state-of-the-art CacheSack-style approach (Yang et al.,
ATC'22) adapted for placement: storage requests carry a *category* (the
job's pipeline identity), and a per-category admission policy is built
from each category's measured dynamic behaviour.  Categories are ranked
by their historical TCO savings and added to the admission set until the
cumulative historical space usage reaches the SSD capacity; an arriving
job is placed on SSD iff its category is in the admission set.

The admission set is rebuilt periodically online from completed jobs, so
the heuristic adapts to workload drift (this is what makes it the
"closest practical approach to a learning-based baseline").
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..cost import CostRates, DEFAULT_RATES
from ..storage.policy import BatchDecision, Decision, PlacementContext, PlacementPolicy
from ..units import HOUR
from ..workloads.job import Trace

__all__ = ["CategoryAdmissionPolicy"]


def _admission_set(
    categories: list[str],
    savings: np.ndarray,
    avg_space: np.ndarray,
    capacity: float,
) -> set[str]:
    """Rank categories by savings; admit until space reaches capacity."""
    order = np.argsort(-savings)
    admitted: set[str] = set()
    used = 0.0
    for k in order:
        if savings[k] <= 0:
            break
        admitted.add(categories[k])
        used += avg_space[k]
        if used >= capacity:
            break
    return admitted


class CategoryAdmissionPolicy(PlacementPolicy):
    """Per-category admission with periodic online refresh.

    Parameters
    ----------
    train_trace:
        Historical trace used to seed the admission set (the paper
        constructs the policy "based on dynamic behavior" measured per
        category).
    refresh_interval:
        How often (seconds) the admission set is rebuilt from jobs
        completed so far in the evaluated trace.
    """

    name = "Heuristic"

    def __init__(
        self,
        train_trace: Trace | None = None,
        rates: CostRates = DEFAULT_RATES,
        refresh_interval: float = 6 * HOUR,
    ):
        self.train_trace = train_trace
        self.rates = rates
        self.refresh_interval = refresh_interval
        self._admitted: set[str] = set()
        self._trace: Trace | None = None
        self._capacity = 0.0
        self._next_refresh = 0.0
        # Online per-category accumulators over completed jobs.
        self._cat_savings: dict[str, float] = defaultdict(float)
        self._cat_space_seconds: dict[str, float] = defaultdict(float)
        self._observed_span = 1.0
        self._pending: list[int] = []  # indices sorted by end time
        self._savings_vec: np.ndarray | None = None

    def _seed_from_history(self, capacity: float) -> None:
        trace = self.train_trace
        if trace is None or len(trace) == 0:
            return
        savings = trace.costs(self.rates).savings
        span = max(float(trace.ends.max() - trace.arrivals.min()), 1.0)
        per_cat_savings: dict[str, float] = defaultdict(float)
        per_cat_space: dict[str, float] = defaultdict(float)
        for i, job in enumerate(trace):
            per_cat_savings[job.pipeline] += savings[i]
            per_cat_space[job.pipeline] += job.size * job.duration / span
        cats = sorted(per_cat_savings)
        self._admitted = _admission_set(
            cats,
            np.array([per_cat_savings[c] for c in cats]),
            np.array([per_cat_space[c] for c in cats]),
            capacity,
        )

    def on_simulation_start(self, trace: Trace, capacity: float, rates: CostRates) -> None:
        self._trace = trace
        self._capacity = capacity
        self.rates = rates
        self._savings_vec = trace.costs(rates).savings
        self._cat_savings.clear()
        self._cat_space_seconds.clear()
        self._pending = sorted(range(len(trace)), key=lambda i: trace.ends[i])
        self._pending_pos = 0
        self._pipelines = np.asarray(trace.pipelines, dtype=object)
        self._seed_from_history(capacity)
        start = float(trace.arrivals[0]) if len(trace) else 0.0
        self._epoch = start
        self._next_refresh = start + self.refresh_interval

    def _fold_completions(self, t: float) -> None:
        trace = self._trace
        ends = trace.ends
        while self._pending_pos < len(self._pending):
            i = self._pending[self._pending_pos]
            if ends[i] > t:
                break
            job = trace[i]
            self._cat_savings[job.pipeline] += self._savings_vec[i]
            self._cat_space_seconds[job.pipeline] += job.size * job.duration
            self._pending_pos += 1
        self._observed_span = max(t - self._epoch, 1.0)

    def _refresh(self, t: float) -> None:
        self._fold_completions(t)
        if not self._cat_savings:
            return
        cats = sorted(self._cat_savings)
        self._admitted = _admission_set(
            cats,
            np.array([self._cat_savings[c] for c in cats]),
            np.array([self._cat_space_seconds[c] / self._observed_span for c in cats]),
            self._capacity,
        )

    def decide(self, job_index: int, ctx: PlacementContext) -> Decision:
        if ctx.time >= self._next_refresh:
            self._refresh(ctx.time)
            self._next_refresh = ctx.time + self.refresh_interval
        pipeline = self._trace[job_index].pipeline
        return Decision(want_ssd=pipeline in self._admitted)

    def decide_batch(self, first: int, ctx: PlacementContext) -> BatchDecision:
        """Admission mask for every job up to the next refresh.

        Between refreshes the admission set is frozen, so membership is
        one vectorized lookup over the chunk's pipeline column.
        """
        if ctx.time >= self._next_refresh:
            self._refresh(ctx.time)
            self._next_refresh = ctx.time + self.refresh_interval
        arrivals = self._trace.arrivals
        stop = int(np.searchsorted(arrivals, self._next_refresh, side="left"))
        stop = min(max(stop, first + 1), len(arrivals))
        chunk = self._pipelines[first:stop]
        if self._admitted:
            mask = np.isin(chunk, np.asarray(sorted(self._admitted), dtype=object))
        else:
            mask = np.zeros(len(chunk), dtype=bool)
        return BatchDecision(count=stop - first, want_ssd=mask)
