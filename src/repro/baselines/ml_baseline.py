"""ML Baseline: lifetime prediction-based tiering (Section 3.4).

Follows the SSD/HDD tiering case study of Zhou & Maas (2021): a model
predicts the mean ``mu`` and standard deviation ``sigma`` of each file's
lifetime; files with predicted ``mu + sigma`` shorter than a specified
time-to-live (TTL) are admitted to SSD, and "to mitigate mispredictions,
we evict any file residing in the SSD for longer than mu + sigma".

Lifetimes are heavy-tailed, so both regressors work in log space: one
GBT predicts ``log1p(lifetime)`` and a second predicts the squared
residual, yielding a per-job sigma.
"""

from __future__ import annotations

import numpy as np

from ..ml.gbdt import GBTRegressor
from ..storage.policy import BatchDecision, Decision, PlacementContext, PlacementPolicy
from ..units import HOUR
from ..workloads.features import FeatureMatrix
from ..workloads.job import Trace

__all__ = ["LifetimeModel", "LifetimePolicy"]


class LifetimeModel:
    """Predicts per-job lifetime mean and standard deviation (seconds)."""

    def __init__(self, n_rounds: int = 20, max_depth: int = 5):
        self._mu_model = GBTRegressor(n_rounds=n_rounds, max_depth=max_depth)
        self._var_model = GBTRegressor(n_rounds=max(n_rounds // 2, 5), max_depth=max_depth)

    def fit(self, features: FeatureMatrix, lifetimes: np.ndarray) -> "LifetimeModel":
        lifetimes = np.asarray(lifetimes, dtype=float)
        y = np.log1p(np.clip(lifetimes, 0.0, None))
        self._mu_model.fit(features.X, y)
        resid = y - self._mu_model.predict(features.X)
        self._var_model.fit(features.X, resid**2)
        return self

    def predict(self, features: FeatureMatrix) -> tuple[np.ndarray, np.ndarray]:
        """Return (mu, sigma) in seconds.

        The log-space prediction interval ``log_mu + log_sigma`` maps
        back through ``expm1``; sigma is reported as the half-width of
        that interval so that ``mu + sigma`` is the admission bound.
        """
        log_mu = self._mu_model.predict(features.X)
        log_sigma = np.sqrt(np.clip(self._var_model.predict(features.X), 0.0, None))
        mu = np.expm1(log_mu)
        upper = np.expm1(log_mu + log_sigma)
        return np.clip(mu, 0.0, None), np.clip(upper - mu, 0.0, None)


class LifetimePolicy(PlacementPolicy):
    """Admit jobs with predicted ``mu + sigma < ttl``; evict at ``mu + sigma``."""

    name = "ML Baseline"

    def __init__(
        self,
        model: LifetimeModel,
        features: FeatureMatrix,
        ttl: float = 1 * HOUR,
    ):
        if ttl <= 0:
            raise ValueError("ttl must be > 0")
        self.model = model
        self.ttl = ttl
        mu, sigma = model.predict(features)
        self._bound = mu + sigma

    def on_simulation_start(self, trace: Trace, capacity: float, rates) -> None:
        if len(trace) != len(self._bound):
            raise ValueError(
                f"features cover {len(self._bound)} jobs but trace has {len(trace)}"
            )

    def decide(self, job_index: int, ctx: PlacementContext) -> Decision:
        bound = float(self._bound[job_index])
        if bound < self.ttl:
            return Decision(want_ssd=True, ssd_ttl=bound)
        return Decision(want_ssd=False)

    def decide_batch(self, first: int, ctx: PlacementContext) -> BatchDecision:
        """The full remaining trace: per-job bounds are precomputed and
        independent of simulator feedback."""
        bounds = self._bound[first:]
        return BatchDecision(
            count=len(bounds), want_ssd=bounds < self.ttl, ssd_ttl=bounds
        )
