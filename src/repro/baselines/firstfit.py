"""FirstFit: static placement (Section 3.2).

"We try to place jobs on SSD in the order of their start times, checking
jobs' peak space usage and only placing jobs on SSD that fit in the
available SSD capacity."  The representative production heuristic: great
when SSD is plentiful, indiscriminate when it is scarce.
"""

from __future__ import annotations

from ..storage.policy import BatchDecision, Decision, PlacementContext, PlacementPolicy

__all__ = ["FirstFitPolicy"]


class FirstFitPolicy(PlacementPolicy):
    """Admit any job whose full footprint fits in the free SSD space."""

    name = "FirstFit"

    def __init__(self) -> None:
        self._trace = None

    def on_simulation_start(self, trace, capacity, rates) -> None:
        self._trace = trace

    def decide(self, job_index: int, ctx: PlacementContext) -> Decision:
        size = self._trace.sizes[job_index]
        return Decision(want_ssd=bool(size <= ctx.free_ssd))

    def decide_batch(self, first: int, ctx: PlacementContext) -> BatchDecision:
        """One fit-check chunk covering the rest of the trace.

        The rule ("admit iff it fits right now") never changes, so the
        chunked engine evaluates it against evolving occupancy without
        any further policy round-trips.
        """
        return BatchDecision(
            count=len(self._trace) - first, want_ssd=None, fit_check=True
        )
