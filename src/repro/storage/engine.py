"""Unified shard-aware placement runtime: one engine for every scenario.

This module is the storage layer's single event-loop implementation.
Placement over one global SSD pool (:func:`repro.storage.simulate`) and
placement over ``n_shards`` caching servers
(:func:`repro.storage.simulate_sharded`) are the same computation:
shards are a routing vector over a **multi-lane capacity accountant**,
and the global pool is simply the ``n_shards=1`` special case.

Lane capacities are **heterogeneous**: ``capacity`` may be a scalar
(split evenly, the historical behaviour — bit-identical to the
pre-vector engine) or a length-``n_shards`` vector giving each caching
server its own slice, since real fleets rarely hand every server an
equal one.  Per-job ``decide`` calls observe the job's *own lane's*
capacity and free space in
:class:`~repro.storage.policy.PlacementContext`; ``decide_batch``
receives the chunk's *opening* context (the first job's lane — a chunk
spans many lanes), so shard-aware batch policies take the full per-job
routing and layout from
:meth:`~repro.storage.policy.PlacementPolicy.on_shard_topology`
instead.  The realized layout is recorded on
:attr:`SimResult.lane_capacities`.  Both configurations run through
the same two engines:

- ``legacy``: the reference per-job event loop (one ``decide`` /
  ``observe`` round-trip and heap push per job), now with a lane column
  in the release heap.
- ``chunked``: for policies implementing the batch protocol
  (:class:`~repro.storage.policy.BatchDecision`), the trace is driven
  in decision-interval chunks.  Admission is resolved **per lane**: a
  lane whose capacity trajectory never goes negative inside the chunk
  is admitted with one vectorized pass; a lane where capacity binds
  goes through a *re-entrant vectorized retry* — the clean prefix is
  accepted vectorized, a bounded window around the binding candidate is
  replayed through the exact scalar loop, and the remainder re-enters
  the vectorized check.  Binding chunks therefore no longer fall back
  wholesale to the per-candidate loop.
- ``compiled``: the chunked engine with its trajectory inner loops
  (gather + sequential cumsum, masked trajectory minimum) numba-jitted
  via :mod:`repro.storage.compiled` — bit-identical to ``chunked`` by
  construction, opt-in because numba is an optional dependency.

Peak-usage accounting stays global (the fleet-level metric) and is
sampled at admission events exactly as the legacy loop samples it.

The runtime is **source-agnostic**: ``run_placement`` (and therefore
``simulate``/``simulate_sharded``) accepts an in-memory ``Trace``, any
:class:`~repro.workloads.streaming.TraceSource` (blocks of
structure-of-arrays columns drained without materializing per-job
objects — see :mod:`repro.workloads.streaming`), or a ``.csv``/``.npz``
path.  A streamed run is bit-identical to the in-memory run of the
same jobs.

Both engines produce identical results up to floating-point summation
order (see ``tests/test_unified_runtime.py`` and
``tests/test_chunked_simulator.py``).

Incremental kernels
-------------------
Each engine's event-loop arithmetic lives in a stateful *kernel* —
:class:`ScalarKernel` (the per-job reference loop) and
:class:`ChunkKernel` (the vectorized decision-interval loop) — that
advances one job / one chunk at a time and does not need the whole
trace up front.  ``run_placement`` drives a kernel over a materialized
trace; the online :class:`~repro.serve.PlacementService` drives the
*same* kernel request-at-a-time (or micro-batch-at-a-time), which is
what makes an online replay of a trace bit-identical to the offline
run: they are the same arithmetic, not two implementations.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..cost import CostRates, DEFAULT_RATES
from ..workloads.job import TraceBase
from ..workloads.metadata import stable_hash
from ..workloads.streaming import TraceSource, materialize_trace
from .compiled import masked_min_seq, require_numba, traj_seq
from .policy import (
    BatchOutcomes,
    PlacementContext,
    PlacementOutcome,
    PlacementPolicy,
)

__all__ = [
    "SimResult",
    "assign_shards",
    "run_placement",
    "ScalarKernel",
    "ChunkKernel",
]

#: Initial number of candidates replayed through the exact scalar loop
#: around a binding point before the vectorized check re-enters.  Most
#: binding chunks bind at a single oversized candidate, so the window
#: starts small; it doubles whenever a retry round makes no vectorized
#: progress (the candidate right at the cursor bound again), so a chunk
#: that binds everywhere degenerates to the scalar loop with only
#: O(log) vectorized re-checks, not O(n) of them.
_SCALAR_WINDOW_INIT = 8

#: In multi-lane runs, a binding lane with at most this many candidates
#: in the chunk is cheaper to replay through one merged scalar loop
#: than to rebuild a per-lane event timeline for.  A single-lane run
#: never takes the merged loop: its chunk timeline already exists, so
#: the windowed retry keeps everything but the window vectorized.
_SCALAR_WINDOW_MIN = 64


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Savings percentages are relative to the all-HDD baseline, exactly as
    the paper reports them.  ``n_shards`` records the lane count of the
    run (1 = one global SSD pool) and ``lane_capacities`` the realized
    per-lane capacity layout (uniform when ``capacity`` was a scalar);
    ``scalar_fallback_jobs`` counts the candidates the chunked engine
    had to replay through the exact scalar loop inside capacity-binding
    chunks (0 when fully vectorized, and always 0 for the legacy
    engine, which has no vectorized path).

    ``ssd_fraction`` is the per-job effective SSD share (space fraction
    x time fraction) — or ``None`` in **aggregate-only** mode
    (``run_placement(..., aggregate_only=True)``), where the result
    keeps only the constant-size aggregates above and drops every
    per-job array, so holding many results (quota sweeps, long-running
    services) costs O(1) memory per result instead of O(n_jobs).

    A result may also describe a **partial** run — one worker's share
    of a fleet run, covering only a subset of the trace's jobs and
    lanes.  ``job_indices`` (global indices of the jobs this part
    decided, parallel to its ``ssd_fraction``) and ``lane_indices``
    (global ids of the lanes behind its ``lane_capacities``) mark such
    parts; :meth:`merge` folds a complete partition of parts back into
    one whole-trace result.
    """

    policy_name: str
    capacity: float
    n_jobs: int
    baseline_tco: float
    realized_tco: float
    baseline_tcio: float
    realized_hdd_tcio: float
    n_ssd_requested: int
    n_spilled: int
    peak_ssd_used: float
    ssd_fraction: np.ndarray | None = field(default=None, repr=False)
    n_shards: int = 1
    scalar_fallback_jobs: int = 0
    lane_capacities: np.ndarray | None = field(default=None, repr=False)
    job_indices: np.ndarray | None = field(default=None, repr=False)
    lane_indices: np.ndarray | None = field(default=None, repr=False)

    @property
    def aggregate_only(self) -> bool:
        """True when per-job arrays were dropped at finalize time."""
        return self.ssd_fraction is None

    @classmethod
    def merge(
        cls,
        parts: "list[SimResult]",
        *,
        trace: TraceBase | None = None,
        rates: CostRates = DEFAULT_RATES,
        policy_name: str | None = None,
        capacity: float | None = None,
        n_shards: int | None = None,
        lane_capacities: np.ndarray | None = None,
        peak_ssd_used: float | None = None,
        n_jobs: int | None = None,
        aggregate_only: bool = False,
    ) -> "SimResult":
        """Fold per-worker partial results into one whole-run result.

        Integer counters (``n_ssd_requested``, ``n_spilled``,
        ``scalar_fallback_jobs``) sum exactly; ``peak_ssd_used`` takes
        the max unless the caller supplies the globally-sampled value
        (per-part peaks are lane-local and under-estimate a global
        pool's peak, which is why the fleet router tracks it itself).

        When every part carries ``job_indices`` + ``ssd_fraction``
        (a complete, disjoint partition of ``[0, n_jobs)``) the per-job
        fraction array is reassembled by scatter — pure element copies
        — and, given ``trace``, the cost roll-up is recomputed over the
        full array with the exact arithmetic of a single-process run,
        so the merged aggregates are bit-identical to the unpartitioned
        result.  Without per-job arrays the cost fields fall back to
        per-part sums, which are subject to float summation order.
        """
        if not parts:
            raise ValueError("nothing to merge")
        n_requested = sum(p.n_ssd_requested for p in parts)
        n_spilled = sum(p.n_spilled for p in parts)
        n_scalar = sum(p.scalar_fallback_jobs for p in parts)
        if peak_ssd_used is None:
            peak_ssd_used = max(p.peak_ssd_used for p in parts)

        indexed = all(
            p.job_indices is not None and p.ssd_fraction is not None
            for p in parts
        )
        if n_jobs is None:
            if indexed:
                n_jobs = int(sum(p.job_indices.size for p in parts))
            else:
                n_jobs = sum(p.n_jobs for p in parts)

        laned = all(
            p.lane_indices is not None and p.lane_capacities is not None
            for p in parts
        )
        if n_shards is None:
            n_shards = (
                int(sum(p.lane_indices.size for p in parts))
                if laned else sum(p.n_shards for p in parts)
            )
        if lane_capacities is None and laned:
            lane_capacities = np.zeros(n_shards)
            seen_l = np.zeros(n_shards, dtype=bool)
            for p in parts:
                li = p.lane_indices
                if li.size and (li.min() < 0 or li.max() >= n_shards):
                    raise ValueError("part lane_indices out of range")
                if seen_l[li].any():
                    raise ValueError("parts overlap in lane_indices")
                seen_l[li] = True
                lane_capacities[li] = p.lane_capacities
        if capacity is None:
            capacity = (
                float(lane_capacities.sum()) if lane_capacities is not None
                else sum(p.capacity for p in parts)
            )

        fraction: np.ndarray | None = None
        if indexed:
            fraction = np.zeros(n_jobs)
            seen = np.zeros(n_jobs, dtype=bool)
            for p in parts:
                ji = p.job_indices
                if ji.size != p.ssd_fraction.size:
                    raise ValueError(
                        "part job_indices and ssd_fraction lengths differ"
                    )
                if ji.size and (ji.min() < 0 or ji.max() >= n_jobs):
                    raise ValueError("part job_indices out of range")
                if seen[ji].any():
                    raise ValueError("parts overlap in job_indices")
                seen[ji] = True
                fraction[ji] = p.ssd_fraction
            if not seen.all():
                raise ValueError(
                    f"parts cover {int(seen.sum())} of {n_jobs} jobs; "
                    "merge needs a complete partition"
                )

        if trace is not None:
            if fraction is None:
                raise ValueError(
                    "cost roll-up over a trace needs every part to carry "
                    "job_indices + ssd_fraction"
                )
            if len(trace) != n_jobs:
                raise ValueError(
                    f"trace has {len(trace)} jobs, parts cover {n_jobs}"
                )
            b_tco, r_tco, b_tcio, r_tcio = _cost_rollup(trace, rates, fraction)
        else:
            b_tco = sum(p.baseline_tco for p in parts)
            r_tco = sum(p.realized_tco for p in parts)
            b_tcio = sum(p.baseline_tcio for p in parts)
            r_tcio = sum(p.realized_hdd_tcio for p in parts)

        return cls(
            policy_name=(
                policy_name if policy_name is not None else parts[0].policy_name
            ),
            capacity=float(capacity),
            n_jobs=n_jobs,
            baseline_tco=b_tco,
            realized_tco=r_tco,
            baseline_tcio=b_tcio,
            realized_hdd_tcio=r_tcio,
            n_ssd_requested=n_requested,
            n_spilled=n_spilled,
            peak_ssd_used=peak_ssd_used,
            ssd_fraction=None if aggregate_only else fraction,
            n_shards=n_shards,
            scalar_fallback_jobs=n_scalar,
            lane_capacities=lane_capacities,
        )

    @property
    def tco_savings_pct(self) -> float:
        if self.baseline_tco <= 0:
            return 0.0
        return 100.0 * (self.baseline_tco - self.realized_tco) / self.baseline_tco

    @property
    def tcio_savings_pct(self) -> float:
        if self.baseline_tcio <= 0:
            return 0.0
        return 100.0 * (self.baseline_tcio - self.realized_hdd_tcio) / self.baseline_tcio


def assign_shards(trace: TraceBase, n_shards: int, seed: int = 0) -> np.ndarray:
    """Stable pipeline-to-shard routing.

    All jobs of one pipeline land on the same caching server, mirroring
    the locality of a pipeline's intermediate files.  Pipelines repeat
    heavily across a trace, so each unique pipeline is hashed once and
    broadcast back through the inverse index.
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    uniq, inverse = np.unique(
        np.asarray(trace.pipelines, dtype=object), return_inverse=True
    )
    lanes = np.array(
        [stable_hash(p, seed=seed) % n_shards for p in uniq], dtype=np.intp
    )
    return lanes[inverse]


def _normalize_capacity(
    capacity: float | np.ndarray, n_shards: int
) -> tuple[np.ndarray, float]:
    """Resolve the capacity layout to ``(lane_capacities, total)``.

    A scalar splits evenly (``total`` keeps the caller's exact float so
    the uniform path stays bit-identical to the pre-vector engine); a
    length-``n_shards`` vector gives each lane its own slice.
    """
    arr = np.asarray(capacity, dtype=float)
    if arr.ndim == 0:
        total = float(arr)
        if total < 0:
            raise ValueError("capacity must be >= 0")
        return np.full(n_shards, total / n_shards), total
    if arr.shape != (n_shards,):
        raise ValueError(
            f"capacity vector has {arr.size} entries for {n_shards} shards"
        )
    if (arr < 0).any():
        raise ValueError("capacity must be >= 0")
    return arr.astype(float), float(arr.sum())


def run_placement(
    trace: "TraceBase | TraceSource | str",
    policy: PlacementPolicy,
    capacity: float | np.ndarray,
    n_shards: int = 1,
    rates: CostRates = DEFAULT_RATES,
    engine: str = "auto",
    shard_seed: int = 0,
    aggregate_only: bool = False,
) -> SimResult:
    """Run ``policy`` over ``trace`` with ``capacity`` bytes of SSD
    across ``n_shards`` lanes.

    The single entry point behind :func:`repro.storage.simulate`
    (``n_shards=1``) and :func:`repro.storage.simulate_sharded`.

    Parameters
    ----------
    trace:
        What to simulate — any of:

        - an in-memory :class:`~repro.workloads.job.Trace`;
        - a :class:`~repro.workloads.streaming.TraceSource` (or an
          already-drained
          :class:`~repro.workloads.streaming.StreamedTrace`): the
          blocks are drained into structure-of-arrays columns without
          ever materializing per-job objects, and the run is
          bit-identical to the in-memory path over the same jobs;
        - a path string to a ``.csv`` trace or a ``.npz``/prefix saved
          by :func:`~repro.workloads.traces.save_trace`, opened via
          :func:`~repro.workloads.streaming.open_trace_source`.

        Example::

            run_placement(stream_csv_trace("week2.csv"), policy, cap)
    capacity:
        Either a scalar — split evenly across lanes, the historical
        behaviour — or a length-``n_shards`` vector handing each
        caching server its own (possibly zero) slice.  The realized
        layout is recorded on :attr:`SimResult.lane_capacities`.
    n_shards:
        Lane count; jobs route to lanes by a stable hash of their
        pipeline (:func:`assign_shards`).  1 = one global SSD pool.
    engine:
        Event-loop implementation: ``"auto"`` (chunked fast path when
        the policy implements ``decide_batch``, legacy otherwise),
        ``"chunked"``, ``"legacy"``, or ``"compiled"`` (the chunked
        engine with its trajectory inner loops numba-jitted —
        bit-identical to ``"chunked"``, requires the optional numba
        dependency).
    shard_seed:
        Seed of the pipeline-to-shard routing hash.
    aggregate_only:
        Drop the per-job arrays from the result and keep only the
        constant-size aggregates (:attr:`SimResult.ssd_fraction` is
        ``None``).  The run itself is unchanged — every aggregate is
        identical to the full-result run.
    """
    # Argument validation precedes the drain: a bad lane count or
    # engine name must not cost a full pass over an out-of-core source.
    if n_shards < 1:
        raise ValueError("need at least one shard")
    if engine not in ("auto", "chunked", "legacy", "compiled"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "compiled":
        require_numba()
    batched = callable(getattr(policy, "decide_batch", None))
    if engine in ("chunked", "compiled") and not batched:
        raise ValueError(f"policy {policy.name!r} does not implement decide_batch")
    lane_caps, total = _normalize_capacity(capacity, n_shards)
    trace = materialize_trace(trace)
    shards = assign_shards(trace, n_shards, seed=shard_seed) if n_shards > 1 else None
    policy.on_simulation_start(trace, total, rates)
    policy.on_shard_topology(shards, lane_caps.copy())
    if batched and engine != "legacy":
        return _run_chunked(
            trace, policy, lane_caps, total, rates, shards, n_shards,
            aggregate_only, compiled=(engine == "compiled"),
        )
    return _run_legacy(
        trace, policy, lane_caps, total, rates, shards, n_shards, aggregate_only
    )


def _cost_rollup(
    trace: TraceBase, rates: CostRates, ssd_fraction: np.ndarray
) -> tuple[float, float, float, float]:
    """The run-level cost aggregates over a realized fraction array.

    Returns ``(baseline_tco, realized_tco, baseline_tcio,
    realized_hdd_tcio)``.  Factored out of :func:`_finalize` so
    :meth:`SimResult.merge` reproduces the exact same float operation
    sequence over a reassembled fraction array.
    """
    costs = trace.costs(rates)
    tcio_integral = trace.tcio(rates) * np.maximum(trace.durations, 1.0)
    return (
        float(costs.c_hdd.sum()),
        float(
            (ssd_fraction * costs.c_ssd + (1.0 - ssd_fraction) * costs.c_hdd).sum()
        ),
        float(tcio_integral.sum()),
        float(((1.0 - ssd_fraction) * tcio_integral).sum()),
    )


def _finalize(
    trace: TraceBase,
    policy: PlacementPolicy,
    capacity: float,
    lane_caps: np.ndarray,
    n_shards: int,
    rates: CostRates,
    ssd_fraction: np.ndarray,
    n_ssd_requested: int,
    n_spilled: int,
    peak_used: float,
    scalar_fallback_jobs: int = 0,
    aggregate_only: bool = False,
) -> SimResult:
    """Common cost roll-up shared by both engines (and the service)."""
    b_tco, r_tco, b_tcio, r_tcio = _cost_rollup(trace, rates, ssd_fraction)
    return SimResult(
        policy_name=policy.name,
        capacity=capacity,
        n_jobs=len(trace),
        baseline_tco=b_tco,
        realized_tco=r_tco,
        baseline_tcio=b_tcio,
        realized_hdd_tcio=r_tcio,
        n_ssd_requested=n_ssd_requested,
        n_spilled=n_spilled,
        peak_ssd_used=peak_used,
        ssd_fraction=None if aggregate_only else ssd_fraction,
        n_shards=n_shards,
        scalar_fallback_jobs=scalar_fallback_jobs,
        lane_capacities=lane_caps,
    )


class ScalarKernel:
    """Incremental per-job admission core (the legacy engine's state).

    One instance holds everything the reference event loop carries
    between jobs: per-lane free space, the release heap, the peak
    sample and the admission/spill counters.  ``release_until`` then
    ``admit`` advance it by exactly one job; :func:`_run_legacy` drives
    it over a whole trace, and the online
    :class:`~repro.serve.PlacementService` drives it one ``submit`` at
    a time — the same arithmetic in the same order, which is what makes
    an online replay bit-identical to the offline run.

    ``cancel`` supports the service's early-completion events: it
    returns a job's outstanding allocation to its lane immediately and
    lazily skips the job's scheduled release when it later surfaces on
    the heap (no behaviour change when never called — the offline path
    never calls it).

    ``resize_lane`` / ``drop_lane`` support capacity shocks (lane loss,
    shrink, restore, quota changes): the lane's capacity moves and
    resident allocations that no longer fit are *evicted* —
    latest-scheduled-release first — with each eviction counted as a
    spill (the job's remaining I/O falls back to HDD).  The offline
    path never calls them either.

    A kernel may cover a **lane subset** of a larger fleet: ``lanes``
    records the global id of each local lane and ``lane_index`` maps
    global id back to local position (identity over the full lane set
    by default).  Lane arguments to every method are *local* indices.
    A subset kernel usually runs with ``track_peak=False``: the peak
    metric is global across the fleet, so a worker's local sample
    would both under-count the true peak and diverge from the
    single-process float sequence — the fleet router samples it
    instead.
    """

    __slots__ = (
        "capacity", "lane_capacity", "free", "peak_used", "heap",
        "n_ssd_requested", "n_spilled", "n_evicted", "evicted_bytes",
        "_cancelled", "lanes", "lane_index", "track_peak",
    )

    def __init__(
        self,
        lane_caps: np.ndarray,
        total: float,
        *,
        lanes: np.ndarray | None = None,
        track_peak: bool = True,
    ):
        self.capacity = total
        self.lane_capacity = lane_caps
        self.free = lane_caps.copy()
        self.peak_used = 0.0
        self.track_peak = track_peak
        if lanes is None:
            lanes = np.arange(len(lane_caps), dtype=np.intp)
        else:
            lanes = np.asarray(lanes, dtype=np.intp)
            if lanes.size != len(lane_caps):
                raise ValueError(
                    f"{lanes.size} global lane ids for {len(lane_caps)} lanes"
                )
        self.lanes = lanes
        self.lane_index = {int(g): k for k, g in enumerate(lanes)}
        #: (release_time, job_index, lane, bytes) min-heap.
        self.heap: list[tuple[float, int, int, float]] = []
        self.n_ssd_requested = 0
        self.n_spilled = 0
        self.n_evicted = 0
        self.evicted_bytes = 0.0
        self._cancelled: set[int] = set()

    def counters(self) -> dict:
        """The kernel's monotonic admission counters, uniformly keyed.

        The same schema :meth:`ChunkKernel.counters` returns (and the
        fleet facades aggregate), so the serving metrics layer reads
        one shape regardless of engine or fleet width.
        """
        return {
            "n_ssd_requested": int(self.n_ssd_requested),
            "n_spilled": int(self.n_spilled),
            "n_evicted": int(self.n_evicted),
            "evicted_bytes": float(self.evicted_bytes),
            "scalar_fallback_jobs": 0,
            "peak_used": float(self.peak_used),
        }

    def release_until(self, t: float) -> None:
        """Pop and apply every release due at or before ``t``."""
        heap = self.heap
        while heap and heap[0][0] <= t:
            _, idx, lane, freed = heapq.heappop(heap)
            if idx in self._cancelled:
                self._cancelled.discard(idx)
                continue
            self.free[lane] += freed

    def admit(
        self, i: int, t: float, size: float, duration: float, lane: int,
        want_ssd: bool, ssd_ttl: float | None,
    ) -> tuple[float, float, float | None, float, float]:
        """Apply one decision; returns ``(space_frac, ssd_frac,
        spill_time, alloc, release_time)``.

        The admission arithmetic — partial fit, spill marking, peak
        sampling at admission, TTL-bounded release — is the reference
        loop's, verbatim.
        """
        spill_time: float | None = None
        space_frac = 0.0
        if not want_ssd:
            return 0.0, 0.0, None, 0.0, t
        free = self.free
        self.n_ssd_requested += 1
        # Pure-Python float arithmetic on the hot serving path: item()
        # round-trips are exact, so every value below matches the numpy
        # scalar math bit for bit.
        f = free.item(lane)
        alloc = size if size < f else f
        if alloc < size:
            self.n_spilled += 1
            spill_time = t
        f -= alloc
        free[lane] = f
        if self.track_peak:
            used = self.capacity - (f if free.size == 1 else float(free.sum()))
            if used > self.peak_used:
                self.peak_used = used
        if ssd_ttl is not None and ssd_ttl < duration:
            release = t + max(ssd_ttl, 0.0)
            time_frac = (release - t) / duration if duration > 0 else 1.0
        else:
            release = t + duration
            time_frac = 1.0
        if alloc > 0:
            heapq.heappush(self.heap, (release, i, lane, alloc))
        space_frac = alloc / size if size > 0 else 1.0
        return space_frac, space_frac * time_frac, spill_time, alloc, release

    def cancel(self, i: int, lane: int, alloc: float) -> None:
        """Return job ``i``'s outstanding allocation to its lane now."""
        self.free[lane] += alloc
        self._cancelled.add(i)

    def resize_lane(
        self, lane: int, new_capacity: float
    ) -> list[tuple[float, int, float]]:
        """Set ``lane``'s capacity, evicting residents that no longer fit.

        Shrinking below the resident footprint evicts jobs
        latest-scheduled-release first (the ones that would hold the
        squeezed lane longest) until free space is non-negative again;
        each eviction counts as a spill and is returned as a
        ``(release_time, job_index, alloc)`` entry so the caller can
        retire its own per-job tracking.  Growth never evicts.  The
        total/free accounting moves by the same delta, so
        ``used == capacity - free.sum()`` is invariant across shocks.
        """
        if not 0 <= lane < len(self.lane_capacity):
            raise ValueError(f"lane {lane} out of range")
        if new_capacity < 0:
            raise ValueError("capacity must be >= 0")
        delta = float(new_capacity) - float(self.lane_capacity[lane])
        self.lane_capacity[lane] = new_capacity
        self.capacity += delta
        self.free[lane] += delta
        evicted: list[tuple[float, int, float]] = []
        if self.free[lane] < 0.0:
            resident = sorted(
                (
                    (r, i, a)
                    for (r, i, l, a) in self.heap
                    if l == lane and i not in self._cancelled
                ),
                reverse=True,
            )
            for r, i, a in resident:
                if self.free[lane] >= 0.0:
                    break
                self.free[lane] += a
                self._cancelled.add(i)
                evicted.append((r, i, a))
            if self.free[lane] < 0.0:
                # Float summation residue after evicting everything.
                self.free[lane] = 0.0
            self.n_spilled += len(evicted)
            self.n_evicted += len(evicted)
            self.evicted_bytes += sum(a for _, _, a in evicted)
        return evicted

    def drop_lane(self, lane: int) -> list[tuple[float, int, float]]:
        """Lane loss: capacity to zero, every resident evicted."""
        return self.resize_lane(lane, 0.0)


def _run_legacy(
    trace: TraceBase,
    policy: PlacementPolicy,
    lane_caps: np.ndarray,
    capacity: float,
    rates: CostRates,
    shards: np.ndarray | None,
    n_shards: int,
    aggregate_only: bool = False,
) -> SimResult:
    """Reference per-job event loop (one policy round-trip per job).

    The policy's :class:`PlacementContext` reports the job's lane-local
    free space and its *own lane's* capacity (lanes may be unequal) —
    what a caching server actually knows at admission time.  With
    ``n_shards=1`` this is the global counter.  The loop body is one
    :class:`ScalarKernel` step per job.
    """
    n = len(trace)
    arrivals = trace.arrivals
    durations = trace.durations
    sizes = trace.sizes

    kern = ScalarKernel(lane_caps, capacity)
    ssd_fraction = np.zeros(n)

    for i in range(n):
        t = arrivals[i]
        kern.release_until(t)
        s = int(shards[i]) if shards is not None else 0
        ctx = PlacementContext(
            time=t, free_ssd=float(kern.free[s]), capacity=float(lane_caps[s])
        )
        decision = policy.decide(i, ctx)
        space_frac, frac, spill_time, _, _ = kern.admit(
            i, t, sizes[i], durations[i], s, decision.want_ssd, decision.ssd_ttl
        )
        if decision.want_ssd:
            ssd_fraction[i] = frac

        policy.observe(
            PlacementOutcome(
                job_index=i,
                time=t,
                requested_ssd=decision.want_ssd,
                ssd_space_fraction=space_frac if decision.want_ssd else 0.0,
                spill_time=spill_time,
                shard=s,
            )
        )

    return _finalize(
        trace, policy, capacity, lane_caps, n_shards, rates,
        ssd_fraction, kern.n_ssd_requested, kern.n_spilled, kern.peak_used,
        aggregate_only=aggregate_only,
    )


class _LaneState:
    """Multi-lane capacity/release bookkeeping shared by chunk handlers.

    One lane per caching server; ``free`` is the per-lane free-space
    vector and ``lane_capacity`` the per-lane capacity vector (lanes
    may be unequal).  Pending releases live in time-sorted arrays with
    a lane column, consumed by a moving cursor; each chunk's freshly
    created releases are buffered and merged back with one vectorized
    stable sort, replacing the legacy per-job heap pushes.

    ``path_lanes`` is the lane count of the *run* this state is part
    of — equal to ``n_lanes`` for a whole-fleet kernel, larger for a
    worker covering a lane subset.  Every arithmetic-path choice that
    single- vs multi-lane runs make differently (batched release sums,
    the single-lane chunk fast path, the merged-small-lanes scalar
    loop) keys on ``path_lanes``, so a subset worker follows the exact
    float operation sequence of the full run it is a slice of.
    """

    __slots__ = (
        "capacity", "lane_capacity", "n_lanes", "free", "peak_used",
        "rel_t", "rel_a", "rel_l", "rel_pos", "new_t", "new_a", "new_l",
        "n_scalar", "path_lanes", "track_peak",
    )

    def __init__(
        self,
        lane_caps: np.ndarray,
        total: float,
        path_lanes: int | None = None,
        track_peak: bool = True,
    ):
        self.capacity = total
        self.n_lanes = len(lane_caps)
        self.path_lanes = self.n_lanes if path_lanes is None else int(path_lanes)
        self.track_peak = track_peak
        self.lane_capacity = lane_caps
        self.free = lane_caps.copy()
        self.peak_used = 0.0
        self.rel_t = np.empty(0, dtype=float)
        self.rel_a = np.empty(0, dtype=float)
        self.rel_l = np.empty(0, dtype=np.intp)
        self.rel_pos = 0
        self.new_t: list[float] = []
        self.new_a: list[float] = []
        self.new_l: list[int] = []
        self.n_scalar = 0

    def release_until(self, t: float) -> None:
        """Apply every pending release with time <= ``t`` to its lane."""
        j = self.rel_pos + int(
            np.searchsorted(self.rel_t[self.rel_pos :], t, side="right")
        )
        if j > self.rel_pos:
            if self.path_lanes == 1:
                self.free[0] += float(self.rel_a[self.rel_pos : j].sum())
            else:
                np.add.at(
                    self.free,
                    self.rel_l[self.rel_pos : j],
                    self.rel_a[self.rel_pos : j],
                )
            self.rel_pos = j

    def buffer_release(self, rel_time: float, amount: float, lane: int) -> None:
        """Queue a release for the merge at chunk end (skips zero allocs)."""
        if amount > 0.0:
            self.new_t.append(rel_time)
            self.new_a.append(amount)
            self.new_l.append(lane)

    def merge_new(self) -> None:
        """Fold this chunk's buffered releases into the sorted arrays."""
        if not self.new_t:
            return
        all_t = np.concatenate([self.rel_t[self.rel_pos :], np.asarray(self.new_t)])
        all_a = np.concatenate([self.rel_a[self.rel_pos :], np.asarray(self.new_a)])
        all_l = np.concatenate(
            [self.rel_l[self.rel_pos :], np.asarray(self.new_l, dtype=np.intp)]
        )
        order = np.argsort(all_t, kind="stable")
        self.rel_t = all_t[order]
        self.rel_a = all_a[order]
        self.rel_l = all_l[order]
        self.rel_pos = 0
        self.new_t.clear()
        self.new_a.clear()
        self.new_l.clear()

    def consume_window_clean(self, t_last: float) -> None:
        """Consume pending releases at or before ``t_last`` the way a
        candidate-less lane of :func:`_run_mask_chunk` would.

        A lane with in-window releases but no candidates is always
        *clean* (cancel pairs keep its trajectory non-negative), and
        the clean path assigns ``free[L] = float(free[L] + cumsum[-1])``
        — the release amounts sum *first*, then add to the lane's free
        space once.  That association differs from
        :meth:`release_until`'s element-at-a-time ``np.add.at``, so a
        fleet participant replaying a chunk window it had no candidates
        in (the router's ledger for unrouted lanes, a synced worker)
        must use this method, not ``release_until``, to land on the
        single-process float bit for bit.
        """
        j2 = self.rel_pos + int(
            np.searchsorted(self.rel_t[self.rel_pos :], t_last, side="right")
        )
        if j2 == self.rel_pos:
            return
        wa = self.rel_a[self.rel_pos : j2]
        wl = self.rel_l[self.rel_pos : j2]
        if self.n_lanes == 1:
            self.free[0] = float(self.free[0] + np.cumsum(wa)[-1])
        else:
            for L in np.unique(wl):
                m = wl == L
                self.free[L] = float(self.free[L] + np.cumsum(wa[m])[-1])
        self.rel_pos = j2


def _ttl_release_fracs(
    t: np.ndarray, dur: np.ndarray, ttl: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized TTL semantics of the legacy loop.

    Returns ``(release_time, time_fraction)`` per job: a TTL shorter
    than the lifetime releases at ``t + max(ttl, 0)`` and charges only
    the resident share of the duration.
    """
    if ttl is None:
        return t + dur, np.ones(len(t))
    ttl = np.asarray(ttl, dtype=float)
    bounded = ~np.isnan(ttl) & (ttl < dur)
    held = np.clip(ttl, 0.0, None)
    release = np.where(bounded, t + held, t + dur)
    safe_dur = np.where(dur > 0, dur, 1.0)
    time_frac = np.where(bounded & (dur > 0), held / safe_dur, 1.0)
    return release, time_frac


class ChunkKernel:
    """Incremental chunk-at-a-time core (the chunked engine's state).

    Holds the :class:`_LaneState` capacity accountant plus the
    admission/spill counters, and advances by one decision-interval
    chunk per :meth:`run_chunk` call.  :func:`_run_chunked` drives it
    over a whole trace; the online
    :class:`~repro.serve.PlacementService` drives it one queued chunk
    at a time, with chunk boundaries decided by the *policy* in both
    cases — which is what makes a micro-batched online replay
    bit-identical to the offline chunked run.

    The column arrays passed to :meth:`run_chunk` are indexed with
    global job indices; callers may pass views over a growing log as
    long as indices ``[first, stop)`` are populated.

    Like :class:`ScalarKernel`, a chunk kernel may cover a **lane
    subset** of a larger fleet (``lanes`` / ``lane_index`` give the
    global↔local mapping; lane arguments and the chunk's lane column
    are local).  ``path_lanes`` must then be the fleet's total lane
    count so every arithmetic-path choice matches the single-process
    run (see :class:`_LaneState`), and ``track_peak=False`` leaves the
    global peak metric to the fleet router.
    """

    __slots__ = (
        "st", "compiled", "n_ssd_requested", "n_spilled", "n_evicted",
        "evicted_bytes", "lanes", "lane_index",
    )

    def __init__(
        self,
        lane_caps: np.ndarray,
        total: float,
        compiled: bool = False,
        *,
        lanes: np.ndarray | None = None,
        path_lanes: int | None = None,
        track_peak: bool = True,
    ):
        if compiled:
            require_numba()
        self.st = _LaneState(
            lane_caps, total, path_lanes=path_lanes, track_peak=track_peak
        )
        if lanes is None:
            lanes = np.arange(len(lane_caps), dtype=np.intp)
        else:
            lanes = np.asarray(lanes, dtype=np.intp)
            if lanes.size != len(lane_caps):
                raise ValueError(
                    f"{lanes.size} global lane ids for {len(lane_caps)} lanes"
                )
        self.lanes = lanes
        self.lane_index = {int(g): k for k, g in enumerate(lanes)}
        self.compiled = compiled
        self.n_ssd_requested = 0
        self.n_spilled = 0
        self.n_evicted = 0
        self.evicted_bytes = 0.0

    @property
    def capacity(self) -> float:
        return self.st.capacity

    @property
    def lane_capacity(self) -> np.ndarray:
        return self.st.lane_capacity

    @property
    def peak_used(self) -> float:
        return self.st.peak_used

    @property
    def scalar_fallback_jobs(self) -> int:
        return self.st.n_scalar

    @property
    def free(self) -> np.ndarray:
        return self.st.free

    def counters(self) -> dict:
        """Monotonic admission counters (see :meth:`ScalarKernel.counters`)."""
        return {
            "n_ssd_requested": int(self.n_ssd_requested),
            "n_spilled": int(self.n_spilled),
            "n_evicted": int(self.n_evicted),
            "evicted_bytes": float(self.evicted_bytes),
            "scalar_fallback_jobs": int(self.st.n_scalar),
            "peak_used": float(self.st.peak_used),
        }

    def open_chunk(self, t0: float, lane: int) -> PlacementContext:
        """Advance releases to ``t0`` and snapshot the opening context.

        Idempotent at a fixed ``t0``: calling it again before the chunk
        runs re-applies no releases and returns the same context, so a
        service may open a chunk to consult the policy and run it only
        once enough jobs are queued.
        """
        st = self.st
        st.release_until(t0)
        return PlacementContext(
            time=t0, free_ssd=float(st.free[lane]),
            capacity=float(st.lane_capacity[lane]),
        )

    def run_chunk(
        self,
        bd,
        first: int,
        stop: int,
        arrivals: np.ndarray,
        durations: np.ndarray,
        sizes: np.ndarray,
        shards: np.ndarray | None,
        ssd_fraction: np.ndarray,
        alloc_out: np.ndarray | None = None,
        release_out: np.ndarray | None = None,
        t_last: float | None = None,
    ) -> BatchOutcomes:
        """Process jobs ``[first, stop)`` under one
        :class:`~repro.storage.policy.BatchDecision`.

        Returns the chunk's :class:`BatchOutcomes` (the caller feeds
        them to ``policy.observe_batch``).  ``alloc_out`` /
        ``release_out`` (length ``stop - first``) optionally receive
        each job's realized allocation and scheduled release time, for
        callers tracking live jobs (the service's ``complete`` events).

        ``t_last`` overrides the chunk-end boundary (default: the last
        arrival).  A lane-subset worker passes the *fleet-wide* chunk
        end here: the boundary decides which releases are consumed
        in-chunk versus buffered for later, and it must be the same
        instant on every worker for the fleet run to reproduce the
        single-process event order.
        """
        st = self.st
        count = stop - first
        chunk_t = arrivals[first:stop]
        if t_last is None:
            t_last = float(chunk_t[-1])
        chunk_lanes = shards[first:stop] if shards is not None else None
        space = np.zeros(count)
        spill_col = np.full(count, np.nan)

        if bd.fit_check:
            requested = _run_fit_check_chunk(
                st, first, stop, t_last, arrivals, durations, sizes, chunk_lanes,
                bd.ssd_ttl, space, spill_col, ssd_fraction,
                alloc_out, release_out,
            )
            self.n_ssd_requested += int(requested.sum())
            self.n_spilled += int(np.count_nonzero(~np.isnan(spill_col)))
        else:
            requested = np.asarray(bd.want_ssd, dtype=bool)[:count].copy()
            cand = np.flatnonzero(requested)
            if cand.size:
                spilled = _run_mask_chunk(
                    st, first, t_last, arrivals, durations, sizes, chunk_lanes,
                    bd.ssd_ttl, cand, space, spill_col, ssd_fraction,
                    alloc_out, release_out, compiled=self.compiled,
                )
                self.n_ssd_requested += cand.size
                self.n_spilled += spilled

        outcomes = BatchOutcomes(
            first=first,
            times=chunk_t,
            requested_ssd=requested,
            ssd_space_fraction=np.where(requested, space, 0.0),
            spill_time=spill_col,
            shards=chunk_lanes,
        )
        st.merge_new()
        return outcomes

    def cancel(self, lane: int, alloc: float, release_time: float) -> None:
        """Return an outstanding allocation to its lane now.

        The job's scheduled release is neutralized by a compensating
        negative entry at the same timestamp (both apply in one
        vectorized release pass, so the lane's free space is exact up
        to one float rounding of the pair).  The compensation is merged
        into the sorted release arrays immediately — left buffered, the
        next chunk's ``release_until`` could apply the original
        positive release without its offset and double-count the freed
        space for one chunk.
        """
        st = self.st
        st.free[lane] += alloc
        st.new_t.append(release_time)
        st.new_a.append(-alloc)
        st.new_l.append(lane)
        st.merge_new()

    def resize_lane(self, lane: int, new_capacity: float) -> list[tuple[float, float]]:
        """Set ``lane``'s capacity, evicting residents that no longer fit.

        The chunked counterpart of :meth:`ScalarKernel.resize_lane`:
        live allocations are the lane's pending *positive* release
        entries net of cancel pairs (a ``cancel`` leaves a matching
        negative entry at the same timestamp).  Eviction removes the
        latest-release entries outright — no compensating entry needed,
        the space comes back immediately — until free space is
        non-negative; each eviction counts as a spill.  Returns the
        evicted ``(release_time, alloc)`` entries.
        """
        st = self.st
        if not 0 <= lane < st.n_lanes:
            raise ValueError(f"lane {lane} out of range")
        if new_capacity < 0:
            raise ValueError("capacity must be >= 0")
        st.merge_new()
        delta = float(new_capacity) - float(st.lane_capacity[lane])
        st.lane_capacity[lane] = new_capacity
        st.capacity += delta
        st.free[lane] += delta
        evicted: list[tuple[float, float]] = []
        if st.free[lane] < 0.0:
            evicted = self._evict_lane(lane)
        return evicted

    def drop_lane(self, lane: int) -> list[tuple[float, float]]:
        """Lane loss: capacity to zero, every resident evicted."""
        return self.resize_lane(lane, 0.0)

    def _evict_lane(self, lane: int) -> list[tuple[float, float]]:
        """Evict the lane's live entries, latest release first, until
        free space is non-negative again."""
        st = self.st
        pend = range(st.rel_pos, st.rel_t.size)
        idxs = [k for k in pend if st.rel_l[k] == lane]
        # Net out cancel pairs: each negative entry neutralizes one
        # positive entry with the same (time, amount) on the lane.
        negs: dict[tuple[float, float], int] = {}
        for k in idxs:
            a = float(st.rel_a[k])
            if a < 0.0:
                key = (float(st.rel_t[k]), -a)
                negs[key] = negs.get(key, 0) + 1
        live: list[int] = []
        for k in idxs:
            a = float(st.rel_a[k])
            if a <= 0.0:
                continue
            key = (float(st.rel_t[k]), a)
            if negs.get(key, 0) > 0:
                negs[key] -= 1
                continue
            live.append(k)
        live.sort(key=lambda k: (float(st.rel_t[k]), k), reverse=True)
        evicted: list[tuple[float, float]] = []
        drop: list[int] = []
        for k in live:
            if st.free[lane] >= 0.0:
                break
            a = float(st.rel_a[k])
            st.free[lane] += a
            drop.append(k)
            evicted.append((float(st.rel_t[k]), a))
        if st.free[lane] < 0.0:
            # Float summation residue after evicting everything.
            st.free[lane] = 0.0
        if drop:
            keep = np.ones(st.rel_t.size, dtype=bool)
            keep[drop] = False
            # Dropped entries all sit at >= rel_pos, so the consumed
            # prefix (and the cursor) stay intact.
            st.rel_t = st.rel_t[keep]
            st.rel_a = st.rel_a[keep]
            st.rel_l = st.rel_l[keep]
        self.n_spilled += len(evicted)
        self.n_evicted += len(evicted)
        self.evicted_bytes += sum(a for _, a in evicted)
        return evicted


def _run_chunked(
    trace: TraceBase,
    policy: PlacementPolicy,
    lane_caps: np.ndarray,
    capacity: float,
    rates: CostRates,
    shards: np.ndarray | None,
    n_shards: int,
    aggregate_only: bool = False,
    compiled: bool = False,
) -> SimResult:
    """Chunked engine: one policy round-trip per decision interval.

    Equivalent to :func:`_run_legacy` up to floating-point summation
    order, for any lane count and capacity layout.  The loop body is
    one :class:`ChunkKernel` chunk per policy round-trip.
    """
    n = len(trace)
    arrivals = trace.arrivals
    durations = trace.durations
    sizes = trace.sizes

    kern = ChunkKernel(lane_caps, capacity, compiled=compiled)
    ssd_fraction = np.zeros(n)

    i = 0
    while i < n:
        t0 = float(arrivals[i])
        s0 = int(shards[i]) if shards is not None else 0
        ctx = kern.open_chunk(t0, s0)
        bd = policy.decide_batch(i, ctx)
        count = max(1, min(int(bd.count), n - i))
        outcomes = kern.run_chunk(
            bd, i, i + count, arrivals, durations, sizes, shards, ssd_fraction
        )
        policy.observe_batch(outcomes)
        i += count

    return _finalize(
        trace, policy, capacity, lane_caps, n_shards, rates,
        ssd_fraction, kern.n_ssd_requested, kern.n_spilled, kern.peak_used,
        scalar_fallback_jobs=kern.scalar_fallback_jobs,
        aggregate_only=aggregate_only,
    )


def _run_mask_chunk(
    st: _LaneState,
    first: int,
    t_last: float,
    arrivals: np.ndarray,
    durations: np.ndarray,
    sizes: np.ndarray,
    chunk_lanes: np.ndarray | None,
    ttl: np.ndarray | None,
    cand: np.ndarray,
    space: np.ndarray,
    spill_col: np.ndarray,
    ssd_fraction: np.ndarray,
    alloc_out: np.ndarray | None = None,
    release_out: np.ndarray | None = None,
    compiled: bool = False,
) -> int:
    """Process one mask-mode chunk; returns the number of spilled jobs.

    Builds the merged (release, arrival) event timeline assuming every
    candidate fits, then resolves admission **per lane**: a lane whose
    capacity trajectory never goes negative is accepted with one
    vectorized pass; a lane where capacity binds goes through
    :func:`_admit_lane_binding`'s re-entrant retry.  Peak usage is then
    sampled globally over the realized allocations.

    ``compiled`` swaps the trajectory inner loops (gather + sequential
    cumsum, masked trajectory minimum) for the numba kernels of
    :mod:`repro.storage.compiled` — bit-identical by construction.
    """
    idx = first + cand
    ct = arrivals[idx]
    cs = sizes[idx]
    cdur = durations[idx]
    ttl_vals = None if ttl is None else np.asarray(ttl, dtype=float)[cand]
    release, time_frac = _ttl_release_fracs(ct, cdur, ttl_vals)
    if chunk_lanes is None:
        lane = np.zeros(cand.size, dtype=np.intp)
    else:
        lane = chunk_lanes[cand]

    # Pending releases maturing inside this chunk.
    j2 = st.rel_pos + int(
        np.searchsorted(st.rel_t[st.rel_pos :], t_last, side="right")
    )
    old_t = st.rel_t[st.rel_pos : j2]
    old_a = st.rel_a[st.rel_pos : j2]
    old_l = st.rel_l[st.rel_pos : j2]
    inside = release <= t_last

    # Event timeline. The secondary key replicates heap order at equal
    # timestamps: releases from earlier chunks first (-1), then each
    # arrival (2k) ahead of the release it creates (2k+1), where k is
    # the candidate-order position (monotone in job index).
    pos = np.arange(cand.size)
    ev_t = np.concatenate([old_t, ct, release[inside]])
    ev_d = np.concatenate([old_a, -cs, cs[inside]])
    ev_k = np.concatenate(
        [np.full(old_t.size, -1), 2 * pos, 2 * pos[inside] + 1]
    )
    order = np.lexsort((ev_k, ev_t))
    total_free_start = float(st.free.sum())

    if st.path_lanes == 1:
        if compiled:
            traj = traj_seq(ev_d, order, float(st.free[0]))
        else:
            traj = st.free[0] + np.cumsum(ev_d[order])
        if traj.size and float(traj.min()) >= 0.0:
            # Capacity never binds: every candidate fits in full.
            if st.track_peak:
                ko = ev_k[order]
                arr_pos = (ko >= 0) & ((ko & 1) == 0)
                low = (
                    float(traj[arr_pos].min()) if arr_pos.any()
                    else float(st.free[0])
                )
                st.peak_used = max(st.peak_used, st.capacity - low)
            st.free[0] = float(traj[-1])
            st.rel_pos = j2
            outside = ~inside
            st.new_t.extend(release[outside].tolist())
            st.new_a.extend(cs[outside].tolist())
            st.new_l.extend([0] * int(outside.sum()))
            space[cand] = 1.0
            ssd_fraction[idx] = time_frac
            if alloc_out is not None:
                alloc_out[cand] = cs
                release_out[cand] = release
            return 0
        clean = np.zeros(1, dtype=bool)
        binding_lanes = [0]
    else:
        ev_l = np.concatenate([old_l, lane, lane[inside]])
        # Lane-major event order, derived from the (t, k) sort with one
        # stable integer argsort (equivalent to lexsort((k, t, lane))).
        lo = ev_l[order]
        sub = np.argsort(lo, kind="stable")
        order_l = order[sub]
        lo = lo[sub]
        bounds = np.flatnonzero(np.r_[True, lo[1:] != lo[:-1]])
        ends = np.r_[bounds[1:], lo.size]
        clean = np.zeros(st.n_lanes, dtype=bool)
        binding_lanes = []
        for a, b in zip(bounds, ends):
            seg = order_l[a:b]
            L = int(lo[a])
            if compiled:
                traj_L = traj_seq(ev_d, seg, float(st.free[L]))
            else:
                traj_L = st.free[L] + np.cumsum(ev_d[seg])
            if float(traj_L.min()) >= 0.0:
                clean[L] = True
                st.free[L] = float(traj_L[-1])
            else:
                binding_lanes.append(L)

    alloc_arr = np.zeros(cand.size)
    n_spilled = 0

    # Clean lanes: one fused vectorized accept across every clean lane
    # (their trajectories are exact — lanes are independent in capacity
    # space, so binding elsewhere cannot disturb them).
    lp = np.flatnonzero(clean[lane])
    if lp.size:
        space[cand[lp]] = 1.0
        ssd_fraction[idx[lp]] = time_frac[lp]
        alloc_arr[lp] = cs[lp]
        out = lp[release[lp] > t_last]
        st.new_t.extend(release[out].tolist())
        st.new_a.extend(cs[out].tolist())
        st.new_l.extend(lane[out].tolist())

    # Binding lanes.  The re-entrant vectorized retry replays only a
    # small window around each binding candidate; in multi-lane runs,
    # lanes with only a handful of candidates in this chunk (the common
    # case at high shard counts) are cheaper to replay together through
    # one merged scalar loop than to rebuild per-lane event timelines
    # for.  A single-lane run always takes the retry — its timeline is
    # already built, so the merged loop would only add scalar work.
    if binding_lanes:
        counts = np.bincount(lane, minlength=st.n_lanes)
        merge_small = st.path_lanes > 1
        small = [
            L for L in binding_lanes
            if merge_small and counts[L] <= _SCALAR_WINDOW_MIN
        ]
        for L in binding_lanes:
            if merge_small and counts[L] <= _SCALAR_WINDOW_MIN:
                continue
            lpos = np.flatnonzero(lane == L)
            if st.n_lanes == 1:
                pend_t, pend_a = old_t, old_a
            else:
                m = old_l == L
                pend_t, pend_a = old_t[m], old_a[m]
            n_spilled += _admit_lane_binding(
                st, L, lpos, pend_t, pend_a, t_last,
                ct, cs, release, time_frac, cand, idx,
                space, spill_col, ssd_fraction, alloc_arr,
                compiled=compiled,
            )
        if small:
            n_spilled += _admit_lanes_scalar(
                st, small, lane, old_t, old_a, old_l, t_last,
                ct, cs, release, time_frac, cand, idx,
                space, spill_col, ssd_fraction, alloc_arr,
            )

    st.rel_pos = j2
    if alloc_out is not None:
        alloc_out[cand] = alloc_arr
        release_out[cand] = release

    # Global peak over the realized allocations, sampled at admissions
    # exactly as the legacy loop samples it.
    if st.track_peak:
        ko = ev_k[order]
        arr_pos = (ko >= 0) & ((ko & 1) == 0)
        if arr_pos.any():
            ev_pd = np.concatenate([old_a, -alloc_arr, alloc_arr[inside]])
            if compiled:
                low = masked_min_seq(ev_pd, order, total_free_start, arr_pos)
            else:
                low = float(
                    (total_free_start + np.cumsum(ev_pd[order]))[arr_pos].min()
                )
            st.peak_used = max(st.peak_used, st.capacity - low)
    return n_spilled


def _admit_lanes_scalar(
    st: _LaneState,
    lanes: list[int],
    lane: np.ndarray,
    old_t: np.ndarray,
    old_a: np.ndarray,
    old_l: np.ndarray,
    t_last: float,
    ct: np.ndarray,
    cs: np.ndarray,
    release: np.ndarray,
    time_frac: np.ndarray,
    cand: np.ndarray,
    idx: np.ndarray,
    space: np.ndarray,
    spill_col: np.ndarray,
    ssd_fraction: np.ndarray,
    alloc_arr: np.ndarray,
) -> int:
    """Merged exact scalar replay for a set of small binding lanes.

    One pass in arrival order over the selected lanes' candidates with
    a lane-tagged release heap — the same admission arithmetic as the
    legacy loop, restricted to the lanes where capacity binds.  Lanes
    not in ``lanes`` are untouched (their events were consumed by the
    vectorized paths).
    """
    member = np.zeros(st.n_lanes, dtype=bool)
    member[lanes] = True
    sel = np.flatnonzero(member[lane])  # candidate positions, time order
    if st.n_lanes == 1:
        pend_t, pend_a, pend_l = old_t, old_a, old_l
    else:
        om = member[old_l]
        pend_t, pend_a, pend_l = old_t[om], old_a[om], old_l[om]
    pend_i = 0
    pend_n = pend_t.size
    heap: list[tuple[float, int, float]] = []  # (time, lane, amount)
    free = st.free
    n_spilled = 0
    for q in sel:
        t = float(ct[q])
        while pend_i < pend_n and pend_t[pend_i] <= t:
            free[pend_l[pend_i]] += pend_a[pend_i]
            pend_i += 1
        while heap and heap[0][0] <= t:
            _, hl, amt = heapq.heappop(heap)
            free[hl] += amt
        L = int(lane[q])
        size = float(cs[q])
        f = float(free[L])
        alloc = size if size <= f else f
        free[L] = f - alloc
        if alloc < size:
            n_spilled += 1
            spill_col[cand[q]] = t
        if alloc > 0.0:
            rt = float(release[q])
            if rt <= t_last:
                heapq.heappush(heap, (rt, L, alloc))
            else:
                st.buffer_release(rt, alloc, L)
        sf = alloc / size if size > 0 else 1.0
        space[cand[q]] = sf
        ssd_fraction[idx[q]] = sf * float(time_frac[q])
        alloc_arr[q] = alloc
    # Chunk epilogue: apply the remaining in-chunk releases now (the
    # next chunk starts at t >= t_last, so this is indistinguishable
    # from draining them at its first arrival).
    while pend_i < pend_n:
        free[pend_l[pend_i]] += pend_a[pend_i]
        pend_i += 1
    for _, hl, amt in heap:
        free[hl] += amt
    st.n_scalar += sel.size
    return n_spilled


def _admit_lane_binding(
    st: _LaneState,
    L: int,
    lpos: np.ndarray,
    pend_t: np.ndarray,
    pend_a: np.ndarray,
    t_last: float,
    ct: np.ndarray,
    cs: np.ndarray,
    release: np.ndarray,
    time_frac: np.ndarray,
    cand: np.ndarray,
    idx: np.ndarray,
    space: np.ndarray,
    spill_col: np.ndarray,
    ssd_fraction: np.ndarray,
    alloc_arr: np.ndarray,
    compiled: bool = False,
) -> int:
    """Re-entrant admission for one lane where capacity binds.

    Loop invariant: ``f`` is the lane's free space with every event
    strictly before the cursor applied; ``pend_t[pend_i:]`` and ``heap``
    hold the not-yet-applied releases.  Each round builds the assumed
    event timeline for the remaining candidates; if it stays
    non-negative the remainder is accepted vectorized, otherwise the
    clean prefix is accepted vectorized, a window of candidates
    starting at the binding one is replayed through the exact
    per-candidate loop (spill/partial-fit semantics identical to the
    legacy engine), and the check re-enters on what is left.  The
    window starts at ``_SCALAR_WINDOW_INIT`` and doubles whenever a
    round makes no vectorized progress, so the scalar tax stays small
    on chunks that bind once and the re-check count stays O(log) on
    chunks that bind everywhere.  Returns the spill count.
    """
    f = float(st.free[L])
    pend_i = 0
    heap: list[tuple[float, float]] = []  # in-chunk releases of admitted jobs
    p = 0
    n_lane = lpos.size
    n_spilled = 0
    w = _SCALAR_WINDOW_INIT

    while p < n_lane:
        rem = lpos[p:]
        rct = ct[rem]
        rcs = cs[rem]
        rrel = release[rem]
        rin = rrel <= t_last
        hp_t = np.array([h[0] for h in heap], dtype=float)
        hp_a = np.array([h[1] for h in heap], dtype=float)
        ev_t = np.concatenate([pend_t[pend_i:], hp_t, rct, rrel[rin]])
        ev_d = np.concatenate([pend_a[pend_i:], hp_a, -rcs, rcs[rin]])
        ev_k = np.concatenate(
            [
                np.full(pend_t.size - pend_i + hp_t.size, -1),
                2 * rem,
                2 * rem[rin] + 1,
            ]
        )
        order = np.lexsort((ev_k, ev_t))
        if compiled:
            traj = traj_seq(ev_d, order, f)
        else:
            traj = f + np.cumsum(ev_d[order])
        viol = np.flatnonzero(traj < 0.0)

        if viol.size == 0:
            # The remainder fits in full: accept it vectorized.
            if traj.size:
                f = float(traj[-1])
            space[cand[rem]] = 1.0
            ssd_fraction[idx[rem]] = time_frac[rem]
            alloc_arr[rem] = cs[rem]
            out = ~rin
            for rt, amt in zip(release[rem[out]], cs[rem[out]]):
                st.buffer_release(float(rt), float(amt), L)
            heap = []
            pend_i = pend_t.size
            p = n_lane
            break

        v = int(viol[0])
        ko = ev_k[order]
        to = ev_t[order]
        t_v = float(to[v])
        # Accept the clean prefix vectorized.  Only a (positive-size)
        # arrival can push the trajectory negative, so event v is the
        # arrival of the binding candidate; candidates arriving before
        # it in event order are admitted in full.
        pre_k = ko[:v]
        adm = pre_k[(pre_k >= 0) & ((pre_k & 1) == 0)] >> 1
        j = adm.size
        if v > 0:
            # The prefix value absorbs every event before v: prefix
            # admissions, and all pending/heap releases at times <= t_v
            # (their -1 key sorts them ahead of the binding arrival).
            f = float(traj[v - 1])
            heap = [h for h in heap if h[0] > t_v]
            heapq.heapify(heap)
            pend_i += int(np.searchsorted(pend_t[pend_i:], t_v, side="right"))
        if j:
            space[cand[adm]] = 1.0
            ssd_fraction[idx[adm]] = time_frac[adm]
            alloc_arr[adm] = cs[adm]
            # Prefix releases at times <= t_v are already absorbed in
            # the trajectory value; later ones stay pending.
            for a_pos in adm:
                rt = float(release[a_pos])
                amt = float(cs[a_pos])
                if rt > t_v and amt > 0.0:
                    if rt <= t_last:
                        heapq.heappush(heap, (rt, amt))
                    else:
                        st.buffer_release(rt, amt, L)

        # Exact scalar replay of a bounded window starting at the
        # binding candidate.  Pending releases apply one at a time, in
        # time order — the same float operation order as the legacy
        # loop's heap pops.
        window = rem[j : j + w]
        pend_n = pend_t.size
        for wq in window:
            t = float(ct[wq])
            while pend_i < pend_n and pend_t[pend_i] <= t:
                f += float(pend_a[pend_i])
                pend_i += 1
            while heap and heap[0][0] <= t:
                f += heapq.heappop(heap)[1]
            size = float(cs[wq])
            alloc = size if size <= f else f
            f -= alloc
            if alloc < size:
                n_spilled += 1
                spill_col[cand[wq]] = t
            if alloc > 0.0:
                rt = float(release[wq])
                if rt <= t_last:
                    heapq.heappush(heap, (rt, alloc))
                else:
                    st.buffer_release(rt, alloc, L)
            sf = alloc / size if size > 0 else 1.0
            space[cand[wq]] = sf
            ssd_fraction[idx[wq]] = sf * float(time_frac[wq])
            alloc_arr[wq] = alloc
        st.n_scalar += len(window)
        p += j + len(window)
        # No vectorized progress means the candidate right at the
        # cursor bound again; widen the next window.  Any prefix
        # progress resets it.
        w = w * 2 if j == 0 else _SCALAR_WINDOW_INIT

    # Chunk epilogue: every in-chunk release (<= t_last) is applied to
    # the lane now; the next chunk starts at t >= t_last, so this is
    # indistinguishable from draining them at the next arrival.
    for _, amt in heap:
        f += amt
    if pend_i < pend_t.size:
        f += float(pend_a[pend_i:].sum())
    st.free[L] = f
    return n_spilled


def _run_fit_check_chunk(
    st: _LaneState,
    first: int,
    stop: int,
    t_last: float,
    arrivals: np.ndarray,
    durations: np.ndarray,
    sizes: np.ndarray,
    chunk_lanes: np.ndarray | None,
    ttl: np.ndarray | None,
    space: np.ndarray,
    spill_col: np.ndarray,
    ssd_fraction: np.ndarray,
    alloc_out: np.ndarray | None = None,
    release_out: np.ndarray | None = None,
) -> np.ndarray:
    """FirstFit-style chunk: want SSD iff the full footprint fits in the
    job's own lane right now.

    Decisions depend on evolving occupancy, so this stays a per-job
    loop — but without per-job policy calls, decision objects, or heap
    churn for rejected jobs.  Returns the want-SSD mask.
    """
    count = stop - first
    requested = np.zeros(count, dtype=bool)
    chunk_t = arrivals[first:stop]
    chunk_dur = durations[first:stop]
    ttl_vals = None if ttl is None else np.asarray(ttl, dtype=float)
    release, time_frac = _ttl_release_fracs(chunk_t, chunk_dur, ttl_vals)
    local_heap: list[tuple[float, int, float]] = []  # (t, lane, amount)
    for k in range(count):
        gi = first + k
        t = float(arrivals[gi])
        st.release_until(t)
        while local_heap and local_heap[0][0] <= t:
            _, hl, amt = heapq.heappop(local_heap)
            st.free[hl] += amt
        L = int(chunk_lanes[k]) if chunk_lanes is not None else 0
        size = float(sizes[gi])
        if size > st.free[L]:
            continue
        requested[k] = True
        st.free[L] -= size
        if st.track_peak:
            used = st.capacity - float(st.free.sum())
            if used > st.peak_used:
                st.peak_used = used
        if size > 0:
            rt = float(release[k])
            if rt <= t_last:
                heapq.heappush(local_heap, (rt, L, size))
            else:
                st.buffer_release(rt, size, L)
        space[k] = 1.0
        ssd_fraction[gi] = float(time_frac[k])
        if alloc_out is not None:
            alloc_out[k] = size
            release_out[k] = float(release[k])
    for rt, hl, amt in local_heap:
        st.buffer_release(rt, amt, hl)
    return requested
