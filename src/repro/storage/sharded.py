"""Sharded caching-server simulation (Section 2.4 / Appendix A).

In the production architecture, "SSD tiering is handled by a service
running on a dedicated set of servers" — many caching servers, each
owning a slice of SSD capacity, with client traffic partitioned across
them.  The *aggregate* free capacity is therefore fragmented: a job can
spill on its own shard even while other shards have room.  This is
exactly why the paper's storage layer estimates utilization through job
behaviour (the spillover-TCIO signal) rather than by reading a global
free-space counter.

Since the unified runtime landed there is no second event loop here:
:func:`simulate_sharded` routes jobs to shards with
:func:`~repro.storage.engine.assign_shards` (a stable hash of their
pipeline — data locality: a pipeline's intermediate files live
together) and delegates to :func:`repro.storage.engine.run_placement`,
where shards are lanes of the multi-lane capacity accountant.  Both
engines apply: the ``legacy`` per-job loop and the ``chunked``
batch-protocol fast path, selected by ``engine=`` exactly as in
:func:`repro.storage.simulate`.

Capacity layouts are heterogeneous: ``capacity`` may be a scalar
(split evenly across the caching servers, the historical behaviour) or
a length-``n_shards`` vector handing each server its own slice — real
fleets rarely provision equal ones.  Policies observe their job's own
lane's capacity in the placement context, and the runtime reports the
layout on ``SimResult.lane_capacities``.

Policies see the *shard-local* context, so global-counter policies
degrade while behaviour-feedback policies (Adaptive Ranking) keep
working — quantified by ``benchmarks/bench_ablation_sharding.py``.
"""

from __future__ import annotations

import numpy as np

from ..cost import CostRates, DEFAULT_RATES
from ..workloads.job import Trace, TraceBase
from ..workloads.streaming import TraceSource
from .engine import SimResult, assign_shards, run_placement
from .policy import PlacementPolicy

__all__ = ["assign_shards", "simulate_sharded"]


def simulate_sharded(
    trace: "Trace | TraceBase | TraceSource | str",
    policy: PlacementPolicy,
    capacity: float | np.ndarray,
    n_shards: int,
    rates: CostRates = DEFAULT_RATES,
    shard_seed: int = 0,
    engine: str = "auto",
    aggregate_only: bool = False,
) -> SimResult:
    """Run ``policy`` over a trace with capacity split across shards.

    A scalar ``capacity`` is divided evenly among ``n_shards`` caching
    servers; a length-``n_shards`` vector gives each server its own
    slice (heterogeneous fleets).  Each job can only use its own
    shard's slice.  With ``n_shards=1`` this reduces exactly to
    :func:`repro.storage.simulate`.

    ``trace`` accepts everything :func:`repro.storage.simulate` does:
    an in-memory :class:`~repro.workloads.job.Trace`, a streaming
    :class:`~repro.workloads.streaming.TraceSource`, or a
    ``.csv``/``.npz`` path — streamed traces carry their pipeline
    identity column, so the pipeline-to-shard routing (and therefore
    the result) is bit-identical to the in-memory run::

        simulate_sharded(stream_csv_trace("week2.csv"), policy,
                         capacity, n_shards=16)

    The policy's :class:`~repro.storage.policy.PlacementContext` reports
    the job's shard-local free space and its own lane's capacity (what
    a caching server actually knows at admission time), and batch
    feedback carries the chunk's shard routing
    (:attr:`~repro.storage.policy.BatchOutcomes.shards`).

    ``engine`` selects the event loop exactly as in
    :func:`repro.storage.simulate`: ``"auto"`` runs the chunked fast
    path whenever the policy implements ``decide_batch``; and
    ``aggregate_only`` keeps only the constant-size aggregates on the
    result (``ssd_fraction`` is ``None``), as there.
    """
    return run_placement(
        trace,
        policy,
        capacity,
        n_shards=n_shards,
        rates=rates,
        engine=engine,
        shard_seed=shard_seed,
        aggregate_only=aggregate_only,
    )
