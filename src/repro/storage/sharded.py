"""Sharded caching-server simulation (Section 2.4 / Appendix A).

In the production architecture, "SSD tiering is handled by a service
running on a dedicated set of servers" — many caching servers, each
owning a slice of SSD capacity, with client traffic partitioned across
them.  The *aggregate* free capacity is therefore fragmented: a job can
spill on its own shard even while other shards have room.  This is
exactly why the paper's storage layer estimates utilization through job
behaviour (the spillover-TCIO signal) rather than by reading a global
free-space counter.

:func:`simulate_sharded` replays a trace against ``n_shards`` caching
servers.  Jobs are routed to shards by a stable hash of their pipeline
(data locality: a pipeline's intermediate files live together) and
consume capacity only on their shard.  Policies see the *shard-local*
context, so global-counter policies degrade while behaviour-feedback
policies (Adaptive Ranking) keep working — quantified by
``benchmarks/bench_ablation_sharding.py``.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..cost import CostRates, DEFAULT_RATES
from ..workloads.job import Trace
from ..workloads.metadata import stable_hash
from .policy import PlacementContext, PlacementOutcome, PlacementPolicy
from .simulator import SimResult

__all__ = ["assign_shards", "simulate_sharded"]


def assign_shards(trace: Trace, n_shards: int, seed: int = 0) -> np.ndarray:
    """Stable pipeline-to-shard routing.

    All jobs of one pipeline land on the same caching server, mirroring
    the locality of a pipeline's intermediate files.
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    return np.array(
        [stable_hash(p, seed=seed) % n_shards for p in trace.pipelines], dtype=int
    )


def simulate_sharded(
    trace: Trace,
    policy: PlacementPolicy,
    capacity: float,
    n_shards: int,
    rates: CostRates = DEFAULT_RATES,
    shard_seed: int = 0,
) -> SimResult:
    """Run ``policy`` over a trace with capacity split across shards.

    Total SSD capacity is divided evenly among ``n_shards`` caching
    servers; each job can only use its own shard's slice.  With
    ``n_shards=1`` this reduces exactly to :func:`repro.storage.simulate`.

    The policy's :class:`PlacementContext` reports the job's shard-local
    free space (what a caching server actually knows at admission time).
    """
    if capacity < 0:
        raise ValueError("capacity must be >= 0")
    n = len(trace)
    shards = assign_shards(trace, n_shards, seed=shard_seed)
    shard_capacity = capacity / n_shards

    arrivals = trace.arrivals
    durations = trace.durations
    sizes = trace.sizes
    costs = trace.costs(rates)
    tcio = trace.tcio(rates)

    policy.on_simulation_start(trace, capacity, rates)

    free = np.full(n_shards, shard_capacity)
    peak_used = 0.0
    ssd_fraction = np.zeros(n)
    n_ssd_requested = 0
    n_spilled = 0
    release_heap: list[tuple[float, int, int, float]] = []  # (t, idx, shard, bytes)

    for i in range(n):
        t = arrivals[i]
        while release_heap and release_heap[0][0] <= t:
            _, _, shard, freed = heapq.heappop(release_heap)
            free[shard] += freed

        s = int(shards[i])
        ctx = PlacementContext(time=t, free_ssd=float(free[s]), capacity=shard_capacity)
        decision = policy.decide(i, ctx)

        spill_time = None
        space_frac = 0.0
        if decision.want_ssd:
            n_ssd_requested += 1
            alloc = min(sizes[i], free[s])
            if alloc < sizes[i]:
                n_spilled += 1
                spill_time = t
            free[s] -= alloc
            used = capacity - float(free.sum())
            if used > peak_used:
                peak_used = used
            duration = durations[i]
            if decision.ssd_ttl is not None and decision.ssd_ttl < duration:
                release = t + max(decision.ssd_ttl, 0.0)
                time_frac = (release - t) / duration if duration > 0 else 1.0
            else:
                release = t + duration
                time_frac = 1.0
            if alloc > 0:
                heapq.heappush(release_heap, (release, i, s, alloc))
            space_frac = alloc / sizes[i] if sizes[i] > 0 else 1.0
            ssd_fraction[i] = space_frac * time_frac

        policy.observe(
            PlacementOutcome(
                job_index=i,
                time=t,
                requested_ssd=decision.want_ssd,
                ssd_space_fraction=space_frac if decision.want_ssd else 0.0,
                spill_time=spill_time,
            )
        )

    tcio_integral = tcio * np.maximum(durations, 1.0)
    return SimResult(
        policy_name=policy.name,
        capacity=capacity,
        n_jobs=n,
        baseline_tco=float(costs.c_hdd.sum()),
        realized_tco=float(
            (ssd_fraction * costs.c_ssd + (1.0 - ssd_fraction) * costs.c_hdd).sum()
        ),
        baseline_tcio=float(tcio_integral.sum()),
        realized_hdd_tcio=float(((1.0 - ssd_fraction) * tcio_integral).sum()),
        n_ssd_requested=n_ssd_requested,
        n_spilled=n_spilled,
        peak_ssd_used=peak_used,
        ssd_fraction=ssd_fraction,
    )
