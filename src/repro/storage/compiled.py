"""Opt-in compiled inner loops for the chunked engine (``engine="compiled"``).

The chunked engine's per-chunk cost is dominated by the capacity
trajectory: gather the event deltas into sorted order, running-sum them,
and scan for the minimum.  NumPy does this as three passes with one
temporary (``deltas[order]``, ``cumsum``, ``min``); the kernels here fuse
them into a single compiled loop with no temporaries.

Everything in this module is **bit-identity-critical**: a compiled
kernel may only replace NumPy arithmetic whose floating-point operation
*order* it replicates exactly.  ``np.cumsum`` is a strictly sequential
left-to-right accumulation, and NumPy evaluates ``f0 + np.cumsum(d)``
as the sequential partial sum *then* one add of ``f0`` per element —
so the loops below accumulate the deltas alone and add ``f0`` at store
time, never fold ``f0`` into the accumulator.  Reductions whose NumPy
implementation is *not* sequential (``ndarray.sum`` uses pairwise
blocking) are deliberately not compiled.

numba is optional: importing this module never fails, and
:data:`HAVE_NUMBA` gates the ``engine="compiled"`` switch.  When numba
is absent the ``*_seq`` names fall back to the NumPy expressions they
replace, so the module is importable (and testable) everywhere; the
engine refuses ``engine="compiled"`` up front rather than silently
running the fallback.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HAVE_NUMBA", "require_numba", "traj_seq", "masked_min_seq"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the NumPy-only environment
    njit = None
    HAVE_NUMBA = False


def require_numba() -> None:
    """Raise the canonical error when ``engine="compiled"`` lacks numba."""
    if not HAVE_NUMBA:
        raise RuntimeError(
            "engine='compiled' needs the optional numba dependency; "
            "install numba or use engine='chunked' (the default NumPy "
            "fast path, bit-identical to the compiled one)"
        )


def _traj_seq_py(deltas: np.ndarray, order: np.ndarray, f0: float) -> np.ndarray:
    """NumPy reference: ``f0 + np.cumsum(deltas[order])``."""
    return f0 + np.cumsum(deltas[order])


def _masked_min_seq_py(
    deltas: np.ndarray, order: np.ndarray, f0: float, mask: np.ndarray
) -> float:
    """NumPy reference: ``(f0 + np.cumsum(deltas[order]))[mask].min()``.

    ``mask`` selects positions of the *sorted* timeline; the caller
    guarantees it has at least one True entry.
    """
    return float((f0 + np.cumsum(deltas[order]))[mask].min())


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True)
    def traj_seq(deltas, order, f0):
        """Fused gather + sequential cumsum: ``f0 + cumsum(deltas[order])``.

        Bit-identical to the NumPy expression: the accumulator sums the
        ordered deltas sequentially and ``f0`` is added per element at
        store time, exactly as NumPy broadcasts it over the cumsum.
        """
        n = order.shape[0]
        out = np.empty(n, dtype=np.float64)
        acc = 0.0
        for i in range(n):
            acc += deltas[order[i]]
            out[i] = f0 + acc
        return out

    @njit(cache=True)
    def masked_min_seq(deltas, order, f0, mask):
        """Minimum of the trajectory over masked positions, no temporaries.

        Same accumulation as :func:`traj_seq`; ``min`` is
        order-independent over identical values, so skipping the
        materialized array cannot change the result.
        """
        n = order.shape[0]
        acc = 0.0
        low = np.inf
        for i in range(n):
            acc += deltas[order[i]]
            if mask[i]:
                v = f0 + acc
                if v < low:
                    low = v
        return low

else:
    traj_seq = _traj_seq_py
    masked_min_seq = _masked_min_seq_py
