"""Event-driven SSD/HDD placement simulator (single global pool).

Follows the paper's simulation methodology (Section 5.1): jobs arrive in
time order; a policy routes each to SSD or HDD; an SSD-routed job that
only partially fits spills the unfit remainder to HDD ("the remaining
portion of the job spills over to HDD after filling the available SSD
capacity").  Capacity is returned when jobs end (or are evicted early by
a policy-provided TTL).

Realized cost of a partially-SSD job interpolates between the pure-SSD
and pure-HDD TCO by the SSD-resident share (space fraction x time
fraction); its residual HDD TCIO scales the same way.

Since the unified runtime landed, :func:`simulate` is a thin wrapper
over :func:`repro.storage.engine.run_placement` with ``n_shards=1`` —
the one-global-pool special case of the shard-aware engine.  Both the
``legacy`` per-job loop and the ``chunked`` batch-protocol engine live
in :mod:`repro.storage.engine`; ``engine="auto"`` (the default) picks
``chunked`` whenever the policy supports it.
"""

from __future__ import annotations

import numpy as np

from ..cost import CostRates, DEFAULT_RATES
from ..workloads.job import Trace, TraceBase
from ..workloads.streaming import TraceSource
from .engine import SimResult, run_placement
from .policy import PlacementPolicy

__all__ = ["SimResult", "simulate", "analytic_result"]


def analytic_result(
    trace: Trace,
    ssd_fraction: np.ndarray,
    capacity: float,
    rates: CostRates = DEFAULT_RATES,
    name: str = "analytic",
) -> SimResult:
    """Build a :class:`SimResult` directly from per-job SSD fractions.

    Used for the clairvoyant oracle, whose placement already satisfies
    the capacity profile by construction — running the event loop would
    only re-derive the same fractions.
    """
    ssd_fraction = np.asarray(ssd_fraction, dtype=float)
    if ssd_fraction.shape != (len(trace),):
        raise ValueError("ssd_fraction must have one entry per job")
    if ((ssd_fraction < 0) | (ssd_fraction > 1)).any():
        raise ValueError("ssd_fraction entries must lie in [0, 1]")
    costs = trace.costs(rates)
    tcio_integral = trace.tcio(rates) * np.maximum(trace.durations, 1.0)
    realized_tco = float(
        (ssd_fraction * costs.c_ssd + (1.0 - ssd_fraction) * costs.c_hdd).sum()
    )
    return SimResult(
        policy_name=name,
        capacity=capacity,
        n_jobs=len(trace),
        baseline_tco=float(costs.c_hdd.sum()),
        realized_tco=realized_tco,
        baseline_tcio=float(tcio_integral.sum()),
        realized_hdd_tcio=float(((1.0 - ssd_fraction) * tcio_integral).sum()),
        n_ssd_requested=int((ssd_fraction > 0).sum()),
        n_spilled=0,
        peak_ssd_used=0.0,
        ssd_fraction=ssd_fraction,
    )


def simulate(
    trace: "Trace | TraceBase | TraceSource | str",
    policy: PlacementPolicy,
    capacity: float,
    rates: CostRates = DEFAULT_RATES,
    engine: str = "auto",
    aggregate_only: bool = False,
) -> SimResult:
    """Run ``policy`` over ``trace`` with ``capacity`` bytes of SSD.

    Returns realized TCO/TCIO along with per-job SSD fractions (the
    effective share of each job's cost charged at SSD rates).  This is
    the ``n_shards=1`` case of the unified shard-aware runtime
    (:func:`repro.storage.engine.run_placement`).

    Parameters
    ----------
    trace:
        An in-memory :class:`~repro.workloads.job.Trace`, a streaming
        :class:`~repro.workloads.streaming.TraceSource` (drained block
        by block — no per-job objects are materialized, and the result
        is bit-identical to the in-memory run of the same jobs), or a
        ``.csv``/``.npz`` path accepted by
        :func:`~repro.workloads.streaming.open_trace_source`::

            simulate(stream_csv_trace("week2.csv"), policy, capacity)
    capacity:
        SSD bytes available to the single global pool.
    engine:
        Event-loop implementation: ``"auto"`` (chunked fast path when
        the policy implements ``decide_batch``, legacy otherwise),
        ``"chunked"``, ``"legacy"``, or ``"compiled"`` (chunked with
        numba-jitted inner loops; requires the optional numba
        dependency, bit-identical to ``"chunked"``).
    aggregate_only:
        Constant-memory results: keep only the scalar aggregates and
        drop the per-job arrays (:attr:`SimResult.ssd_fraction` is
        ``None``).  Every aggregate equals the full-result run's.
    """
    return run_placement(
        trace, policy, capacity, n_shards=1, rates=rates, engine=engine,
        aggregate_only=aggregate_only,
    )
