"""Event-driven SSD/HDD placement simulator.

Follows the paper's simulation methodology (Section 5.1): jobs arrive in
time order; a policy routes each to SSD or HDD; an SSD-routed job that
only partially fits spills the unfit remainder to HDD ("the remaining
portion of the job spills over to HDD after filling the available SSD
capacity").  Capacity is returned when jobs end (or are evicted early by
a policy-provided TTL).

Realized cost of a partially-SSD job interpolates between the pure-SSD
and pure-HDD TCO by the SSD-resident share (space fraction x time
fraction); its residual HDD TCIO scales the same way.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..cost import CostRates, DEFAULT_RATES
from ..workloads.job import Trace
from .policy import PlacementContext, PlacementOutcome, PlacementPolicy

__all__ = ["SimResult", "simulate", "analytic_result"]


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Savings percentages are relative to the all-HDD baseline, exactly as
    the paper reports them.
    """

    policy_name: str
    capacity: float
    n_jobs: int
    baseline_tco: float
    realized_tco: float
    baseline_tcio: float
    realized_hdd_tcio: float
    n_ssd_requested: int
    n_spilled: int
    peak_ssd_used: float
    ssd_fraction: np.ndarray = field(repr=False)

    @property
    def tco_savings_pct(self) -> float:
        if self.baseline_tco <= 0:
            return 0.0
        return 100.0 * (self.baseline_tco - self.realized_tco) / self.baseline_tco

    @property
    def tcio_savings_pct(self) -> float:
        if self.baseline_tcio <= 0:
            return 0.0
        return 100.0 * (self.baseline_tcio - self.realized_hdd_tcio) / self.baseline_tcio


def analytic_result(
    trace: Trace,
    ssd_fraction: np.ndarray,
    capacity: float,
    rates: CostRates = DEFAULT_RATES,
    name: str = "analytic",
) -> SimResult:
    """Build a :class:`SimResult` directly from per-job SSD fractions.

    Used for the clairvoyant oracle, whose placement already satisfies
    the capacity profile by construction — running the event loop would
    only re-derive the same fractions.
    """
    ssd_fraction = np.asarray(ssd_fraction, dtype=float)
    if ssd_fraction.shape != (len(trace),):
        raise ValueError("ssd_fraction must have one entry per job")
    if ((ssd_fraction < 0) | (ssd_fraction > 1)).any():
        raise ValueError("ssd_fraction entries must lie in [0, 1]")
    costs = trace.costs(rates)
    tcio_integral = trace.tcio(rates) * np.maximum(trace.durations, 1.0)
    realized_tco = float(
        (ssd_fraction * costs.c_ssd + (1.0 - ssd_fraction) * costs.c_hdd).sum()
    )
    return SimResult(
        policy_name=name,
        capacity=capacity,
        n_jobs=len(trace),
        baseline_tco=float(costs.c_hdd.sum()),
        realized_tco=realized_tco,
        baseline_tcio=float(tcio_integral.sum()),
        realized_hdd_tcio=float(((1.0 - ssd_fraction) * tcio_integral).sum()),
        n_ssd_requested=int((ssd_fraction > 0).sum()),
        n_spilled=0,
        peak_ssd_used=0.0,
        ssd_fraction=ssd_fraction,
    )


def simulate(
    trace: Trace,
    policy: PlacementPolicy,
    capacity: float,
    rates: CostRates = DEFAULT_RATES,
) -> SimResult:
    """Run ``policy`` over ``trace`` with ``capacity`` bytes of SSD.

    Returns realized TCO/TCIO along with per-job SSD fractions (the
    effective share of each job's cost charged at SSD rates).
    """
    if capacity < 0:
        raise ValueError("capacity must be >= 0")
    n = len(trace)
    arrivals = trace.arrivals
    durations = trace.durations
    sizes = trace.sizes
    costs = trace.costs(rates)
    tcio = trace.tcio(rates)

    policy.on_simulation_start(trace, capacity, rates)

    free = float(capacity)
    peak_used = 0.0
    ssd_fraction = np.zeros(n)
    n_ssd_requested = 0
    n_spilled = 0
    release_heap: list[tuple[float, int, float]] = []  # (release_time, idx, bytes)

    for i in range(n):
        t = arrivals[i]
        while release_heap and release_heap[0][0] <= t:
            _, _, freed = heapq.heappop(release_heap)
            free += freed

        ctx = PlacementContext(time=t, free_ssd=free, capacity=capacity)
        decision = policy.decide(i, ctx)

        alloc = 0.0
        spill_time: float | None = None
        if decision.want_ssd:
            n_ssd_requested += 1
            alloc = min(sizes[i], free)
            if alloc < sizes[i]:
                n_spilled += 1
                spill_time = t
            free -= alloc
            used = capacity - free
            if used > peak_used:
                peak_used = used
            duration = durations[i]
            if decision.ssd_ttl is not None and decision.ssd_ttl < duration:
                release = t + max(decision.ssd_ttl, 0.0)
                time_frac = (release - t) / duration if duration > 0 else 1.0
            else:
                release = t + duration
                time_frac = 1.0
            if alloc > 0:
                heapq.heappush(release_heap, (release, i, alloc))
            space_frac = alloc / sizes[i] if sizes[i] > 0 else 1.0
            ssd_fraction[i] = space_frac * time_frac
        else:
            space_frac = 0.0

        policy.observe(
            PlacementOutcome(
                job_index=i,
                time=t,
                requested_ssd=decision.want_ssd,
                ssd_space_fraction=space_frac if decision.want_ssd else 0.0,
                spill_time=spill_time,
            )
        )

    baseline_tco = float(costs.c_hdd.sum())
    realized_tco = float(
        (ssd_fraction * costs.c_ssd + (1.0 - ssd_fraction) * costs.c_hdd).sum()
    )
    tcio_integral = tcio * np.maximum(durations, 1.0)
    baseline_tcio = float(tcio_integral.sum())
    realized_hdd_tcio = float(((1.0 - ssd_fraction) * tcio_integral).sum())

    return SimResult(
        policy_name=policy.name,
        capacity=capacity,
        n_jobs=n,
        baseline_tco=baseline_tco,
        realized_tco=realized_tco,
        baseline_tcio=baseline_tcio,
        realized_hdd_tcio=realized_hdd_tcio,
        n_ssd_requested=n_ssd_requested,
        n_spilled=n_spilled,
        peak_ssd_used=peak_used,
        ssd_fraction=ssd_fraction,
    )
