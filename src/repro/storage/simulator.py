"""Event-driven SSD/HDD placement simulator.

Follows the paper's simulation methodology (Section 5.1): jobs arrive in
time order; a policy routes each to SSD or HDD; an SSD-routed job that
only partially fits spills the unfit remainder to HDD ("the remaining
portion of the job spills over to HDD after filling the available SSD
capacity").  Capacity is returned when jobs end (or are evicted early by
a policy-provided TTL).

Realized cost of a partially-SSD job interpolates between the pure-SSD
and pure-HDD TCO by the SSD-resident share (space fraction x time
fraction); its residual HDD TCIO scales the same way.

Engines
-------
Two interchangeable engines produce identical results (up to
floating-point summation order):

- ``legacy``: the reference per-job event loop (one ``decide`` /
  ``observe`` round-trip and heap push per job).
- ``chunked``: for policies implementing the batch protocol
  (:class:`~repro.storage.policy.BatchDecision`), the trace is driven
  in decision-interval chunks — vectorized admission masks, release
  events merged via sorted arrays, and a fully vectorized capacity
  check that falls back to a tight per-candidate loop only inside
  chunks where SSD capacity actually binds.

``engine="auto"`` (the default) picks ``chunked`` whenever the policy
supports it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..cost import CostRates, DEFAULT_RATES
from ..workloads.job import Trace
from .policy import (
    BatchOutcomes,
    PlacementContext,
    PlacementOutcome,
    PlacementPolicy,
)

__all__ = ["SimResult", "simulate", "analytic_result"]


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Savings percentages are relative to the all-HDD baseline, exactly as
    the paper reports them.
    """

    policy_name: str
    capacity: float
    n_jobs: int
    baseline_tco: float
    realized_tco: float
    baseline_tcio: float
    realized_hdd_tcio: float
    n_ssd_requested: int
    n_spilled: int
    peak_ssd_used: float
    ssd_fraction: np.ndarray = field(repr=False)

    @property
    def tco_savings_pct(self) -> float:
        if self.baseline_tco <= 0:
            return 0.0
        return 100.0 * (self.baseline_tco - self.realized_tco) / self.baseline_tco

    @property
    def tcio_savings_pct(self) -> float:
        if self.baseline_tcio <= 0:
            return 0.0
        return 100.0 * (self.baseline_tcio - self.realized_hdd_tcio) / self.baseline_tcio


def analytic_result(
    trace: Trace,
    ssd_fraction: np.ndarray,
    capacity: float,
    rates: CostRates = DEFAULT_RATES,
    name: str = "analytic",
) -> SimResult:
    """Build a :class:`SimResult` directly from per-job SSD fractions.

    Used for the clairvoyant oracle, whose placement already satisfies
    the capacity profile by construction — running the event loop would
    only re-derive the same fractions.
    """
    ssd_fraction = np.asarray(ssd_fraction, dtype=float)
    if ssd_fraction.shape != (len(trace),):
        raise ValueError("ssd_fraction must have one entry per job")
    if ((ssd_fraction < 0) | (ssd_fraction > 1)).any():
        raise ValueError("ssd_fraction entries must lie in [0, 1]")
    costs = trace.costs(rates)
    tcio_integral = trace.tcio(rates) * np.maximum(trace.durations, 1.0)
    realized_tco = float(
        (ssd_fraction * costs.c_ssd + (1.0 - ssd_fraction) * costs.c_hdd).sum()
    )
    return SimResult(
        policy_name=name,
        capacity=capacity,
        n_jobs=len(trace),
        baseline_tco=float(costs.c_hdd.sum()),
        realized_tco=realized_tco,
        baseline_tcio=float(tcio_integral.sum()),
        realized_hdd_tcio=float(((1.0 - ssd_fraction) * tcio_integral).sum()),
        n_ssd_requested=int((ssd_fraction > 0).sum()),
        n_spilled=0,
        peak_ssd_used=0.0,
        ssd_fraction=ssd_fraction,
    )


def simulate(
    trace: Trace,
    policy: PlacementPolicy,
    capacity: float,
    rates: CostRates = DEFAULT_RATES,
    engine: str = "auto",
) -> SimResult:
    """Run ``policy`` over ``trace`` with ``capacity`` bytes of SSD.

    Returns realized TCO/TCIO along with per-job SSD fractions (the
    effective share of each job's cost charged at SSD rates).

    ``engine`` selects the event-loop implementation: ``"auto"``
    (chunked fast path when the policy implements ``decide_batch``,
    legacy otherwise), ``"chunked"``, or ``"legacy"``.
    """
    if capacity < 0:
        raise ValueError("capacity must be >= 0")
    if engine not in ("auto", "chunked", "legacy"):
        raise ValueError(f"unknown engine {engine!r}")
    batched = callable(getattr(policy, "decide_batch", None))
    if engine == "chunked" and not batched:
        raise ValueError(f"policy {policy.name!r} does not implement decide_batch")
    if batched and engine != "legacy":
        return _simulate_chunked(trace, policy, capacity, rates)
    return _simulate_legacy(trace, policy, capacity, rates)


def _simulate_legacy(
    trace: Trace,
    policy: PlacementPolicy,
    capacity: float,
    rates: CostRates,
) -> SimResult:
    """Reference per-job event loop (one policy round-trip per job)."""
    n = len(trace)
    arrivals = trace.arrivals
    durations = trace.durations
    sizes = trace.sizes
    costs = trace.costs(rates)
    tcio = trace.tcio(rates)

    policy.on_simulation_start(trace, capacity, rates)

    free = float(capacity)
    peak_used = 0.0
    ssd_fraction = np.zeros(n)
    n_ssd_requested = 0
    n_spilled = 0
    release_heap: list[tuple[float, int, float]] = []  # (release_time, idx, bytes)

    for i in range(n):
        t = arrivals[i]
        while release_heap and release_heap[0][0] <= t:
            _, _, freed = heapq.heappop(release_heap)
            free += freed

        ctx = PlacementContext(time=t, free_ssd=free, capacity=capacity)
        decision = policy.decide(i, ctx)

        alloc = 0.0
        spill_time: float | None = None
        if decision.want_ssd:
            n_ssd_requested += 1
            alloc = min(sizes[i], free)
            if alloc < sizes[i]:
                n_spilled += 1
                spill_time = t
            free -= alloc
            used = capacity - free
            if used > peak_used:
                peak_used = used
            duration = durations[i]
            if decision.ssd_ttl is not None and decision.ssd_ttl < duration:
                release = t + max(decision.ssd_ttl, 0.0)
                time_frac = (release - t) / duration if duration > 0 else 1.0
            else:
                release = t + duration
                time_frac = 1.0
            if alloc > 0:
                heapq.heappush(release_heap, (release, i, alloc))
            space_frac = alloc / sizes[i] if sizes[i] > 0 else 1.0
            ssd_fraction[i] = space_frac * time_frac
        else:
            space_frac = 0.0

        policy.observe(
            PlacementOutcome(
                job_index=i,
                time=t,
                requested_ssd=decision.want_ssd,
                ssd_space_fraction=space_frac if decision.want_ssd else 0.0,
                spill_time=spill_time,
            )
        )

    baseline_tco = float(costs.c_hdd.sum())
    realized_tco = float(
        (ssd_fraction * costs.c_ssd + (1.0 - ssd_fraction) * costs.c_hdd).sum()
    )
    tcio_integral = tcio * np.maximum(durations, 1.0)
    baseline_tcio = float(tcio_integral.sum())
    realized_hdd_tcio = float(((1.0 - ssd_fraction) * tcio_integral).sum())

    return SimResult(
        policy_name=policy.name,
        capacity=capacity,
        n_jobs=n,
        baseline_tco=baseline_tco,
        realized_tco=realized_tco,
        baseline_tcio=baseline_tcio,
        realized_hdd_tcio=realized_hdd_tcio,
        n_ssd_requested=n_ssd_requested,
        n_spilled=n_spilled,
        peak_ssd_used=peak_used,
        ssd_fraction=ssd_fraction,
    )


class _ChunkedState:
    """Mutable capacity/release bookkeeping shared by the chunk handlers.

    Pending releases live in time-sorted arrays consumed by a moving
    cursor; each chunk's freshly created releases are buffered and
    merged back with one vectorized sort, replacing the legacy per-job
    heap pushes.
    """

    __slots__ = (
        "capacity", "free", "peak_used", "rel_t", "rel_a", "rel_pos",
        "new_t", "new_a",
    )

    def __init__(self, capacity: float):
        self.capacity = capacity
        self.free = float(capacity)
        self.peak_used = 0.0
        self.rel_t = np.empty(0, dtype=float)
        self.rel_a = np.empty(0, dtype=float)
        self.rel_pos = 0
        self.new_t: list[float] = []
        self.new_a: list[float] = []

    def release_until(self, t: float) -> None:
        """Apply every pending release with time <= ``t``."""
        j = self.rel_pos + int(
            np.searchsorted(self.rel_t[self.rel_pos :], t, side="right")
        )
        if j > self.rel_pos:
            self.free += float(self.rel_a[self.rel_pos : j].sum())
            self.rel_pos = j

    def drain_until(self, local_heap: list[tuple[float, float]], t: float) -> None:
        """Apply pending + intra-chunk releases due at time ``t``."""
        self.release_until(t)
        while local_heap and local_heap[0][0] <= t:
            self.free += heapq.heappop(local_heap)[1]

    def schedule_release(
        self,
        local_heap: list[tuple[float, float]],
        rel_time: float,
        amount: float,
        t_last: float,
    ) -> None:
        """Queue a new release: heap if it matures inside this chunk,
        otherwise the merge buffer (legacy pushes only when amount > 0)."""
        if amount <= 0.0:
            return
        if rel_time <= t_last:
            heapq.heappush(local_heap, (rel_time, amount))
        else:
            self.new_t.append(rel_time)
            self.new_a.append(amount)

    def flush_heap(self, local_heap: list[tuple[float, float]]) -> None:
        """Move unmatured intra-chunk releases into the merge buffer."""
        for rel_time, amount in local_heap:
            self.new_t.append(rel_time)
            self.new_a.append(amount)

    def admit(self, size: float) -> float:
        """Allocate up to ``size``; returns the allocation and tracks peak."""
        alloc = size if size <= self.free else self.free
        self.free -= alloc
        used = self.capacity - self.free
        if used > self.peak_used:
            self.peak_used = used
        return alloc

    def merge_new(self) -> None:
        """Fold this chunk's buffered releases into the sorted arrays."""
        if not self.new_t:
            return
        rem_t = self.rel_t[self.rel_pos :]
        rem_a = self.rel_a[self.rel_pos :]
        all_t = np.concatenate([rem_t, np.asarray(self.new_t)])
        all_a = np.concatenate([rem_a, np.asarray(self.new_a)])
        order = np.argsort(all_t, kind="stable")
        self.rel_t = all_t[order]
        self.rel_a = all_a[order]
        self.rel_pos = 0
        self.new_t.clear()
        self.new_a.clear()


def _ttl_release_fracs(
    t: np.ndarray, dur: np.ndarray, ttl: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized TTL semantics of the legacy loop.

    Returns ``(release_time, time_fraction)`` per job: a TTL shorter
    than the lifetime releases at ``t + max(ttl, 0)`` and charges only
    the resident share of the duration.
    """
    if ttl is None:
        return t + dur, np.ones(len(t))
    ttl = np.asarray(ttl, dtype=float)
    bounded = ~np.isnan(ttl) & (ttl < dur)
    held = np.clip(ttl, 0.0, None)
    release = np.where(bounded, t + held, t + dur)
    safe_dur = np.where(dur > 0, dur, 1.0)
    time_frac = np.where(bounded & (dur > 0), held / safe_dur, 1.0)
    return release, time_frac


def _simulate_chunked(
    trace: Trace,
    policy: PlacementPolicy,
    capacity: float,
    rates: CostRates,
) -> SimResult:
    """Chunked engine: one policy round-trip per decision interval.

    Equivalent to :func:`_simulate_legacy` up to floating-point
    summation order (see tests/test_chunked_simulator.py).
    """
    n = len(trace)
    arrivals = trace.arrivals
    durations = trace.durations
    sizes = trace.sizes
    costs = trace.costs(rates)
    tcio = trace.tcio(rates)

    policy.on_simulation_start(trace, capacity, rates)

    st = _ChunkedState(capacity)
    ssd_fraction = np.zeros(n)
    n_ssd_requested = 0
    n_spilled = 0

    i = 0
    while i < n:
        t0 = float(arrivals[i])
        st.release_until(t0)
        ctx = PlacementContext(time=t0, free_ssd=st.free, capacity=capacity)
        bd = policy.decide_batch(i, ctx)
        count = max(1, min(int(bd.count), n - i))
        stop = i + count
        chunk_t = arrivals[i:stop]
        t_last = float(chunk_t[-1])
        space = np.zeros(count)
        spill_col = np.full(count, np.nan)

        if bd.fit_check:
            requested = _run_fit_check_chunk(
                st, i, stop, t_last, arrivals, durations, sizes,
                bd.ssd_ttl, space, spill_col, ssd_fraction,
            )
            n_ssd_requested += int(requested.sum())
            n_spilled += int(np.count_nonzero(~np.isnan(spill_col)))
        else:
            requested = np.asarray(bd.want_ssd, dtype=bool)[:count].copy()
            cand = np.flatnonzero(requested)
            if cand.size:
                spilled = _run_mask_chunk(
                    st, i, t_last, arrivals, durations, sizes,
                    bd.ssd_ttl, cand, space, spill_col, ssd_fraction,
                )
                n_ssd_requested += cand.size
                n_spilled += spilled

        policy.observe_batch(
            BatchOutcomes(
                first=i,
                times=chunk_t,
                requested_ssd=requested,
                ssd_space_fraction=np.where(requested, space, 0.0),
                spill_time=spill_col,
            )
        )
        st.merge_new()
        i = stop

    baseline_tco = float(costs.c_hdd.sum())
    realized_tco = float(
        (ssd_fraction * costs.c_ssd + (1.0 - ssd_fraction) * costs.c_hdd).sum()
    )
    tcio_integral = tcio * np.maximum(durations, 1.0)
    baseline_tcio = float(tcio_integral.sum())
    realized_hdd_tcio = float(((1.0 - ssd_fraction) * tcio_integral).sum())

    return SimResult(
        policy_name=policy.name,
        capacity=capacity,
        n_jobs=n,
        baseline_tco=baseline_tco,
        realized_tco=realized_tco,
        baseline_tcio=baseline_tcio,
        realized_hdd_tcio=realized_hdd_tcio,
        n_ssd_requested=n_ssd_requested,
        n_spilled=n_spilled,
        peak_ssd_used=st.peak_used,
        ssd_fraction=ssd_fraction,
    )


def _run_mask_chunk(
    st: _ChunkedState,
    first: int,
    t_last: float,
    arrivals: np.ndarray,
    durations: np.ndarray,
    sizes: np.ndarray,
    ttl: np.ndarray | None,
    cand: np.ndarray,
    space: np.ndarray,
    spill_col: np.ndarray,
    ssd_fraction: np.ndarray,
) -> int:
    """Process one mask-mode chunk; returns the number of spilled jobs.

    First attempts the fully vectorized path: build the merged
    (release, arrival) event timeline assuming every candidate fits,
    and accept it when the capacity trajectory never goes negative —
    exactly the condition under which the legacy loop would have
    admitted every candidate in full.  Only chunks where capacity binds
    fall back to a per-candidate loop (which still skips every
    HDD-routed job).
    """
    idx = first + cand
    ct = arrivals[idx]
    cs = sizes[idx]
    cdur = durations[idx]
    ttl_vals = None if ttl is None else np.asarray(ttl, dtype=float)[cand]
    release, time_frac = _ttl_release_fracs(ct, cdur, ttl_vals)

    # Pending releases maturing inside this chunk.
    j2 = st.rel_pos + int(
        np.searchsorted(st.rel_t[st.rel_pos :], t_last, side="right")
    )
    old_t = st.rel_t[st.rel_pos : j2]
    old_a = st.rel_a[st.rel_pos : j2]
    inside = release <= t_last

    # Event timeline. The secondary key replicates heap order at equal
    # timestamps: releases from earlier chunks first (-1), then each
    # arrival (2k) ahead of the release it creates (2k+1).
    ev_t = np.concatenate([old_t, ct, release[inside]])
    ev_d = np.concatenate([old_a, -cs, cs[inside]])
    ev_k = np.concatenate(
        [np.full(old_t.size, -1), 2 * cand, 2 * cand[inside] + 1]
    )
    order = np.lexsort((ev_k, ev_t))
    traj = st.free + np.cumsum(ev_d[order])

    if traj.size and float(traj.min()) >= 0.0:
        # Capacity never binds: every candidate fits in full.
        arr_pos = ev_k[order] >= 0
        arr_pos &= (ev_k[order] & 1) == 0
        low = float(traj[arr_pos].min()) if arr_pos.any() else st.free
        st.peak_used = max(st.peak_used, st.capacity - low)
        st.free = float(traj[-1])
        st.rel_pos = j2
        outside = ~inside
        st.new_t.extend(release[outside].tolist())
        st.new_a.extend(cs[outside].tolist())
        space[cand] = 1.0
        ssd_fraction[idx] = time_frac
        return 0

    # Capacity binds somewhere in this chunk: tight per-candidate loop.
    n_spilled = 0
    local_heap: list[tuple[float, float]] = []
    for pos, lk in enumerate(cand):
        gi = first + lk
        t = float(arrivals[gi])
        st.drain_until(local_heap, t)
        size = float(sizes[gi])
        alloc = st.admit(size)
        if alloc < size:
            n_spilled += 1
            spill_col[lk] = t
        st.schedule_release(local_heap, float(release[pos]), alloc, t_last)
        sf = alloc / size if size > 0 else 1.0
        space[lk] = sf
        ssd_fraction[gi] = sf * float(time_frac[pos])
    st.flush_heap(local_heap)
    return n_spilled


def _run_fit_check_chunk(
    st: _ChunkedState,
    first: int,
    stop: int,
    t_last: float,
    arrivals: np.ndarray,
    durations: np.ndarray,
    sizes: np.ndarray,
    ttl: np.ndarray | None,
    space: np.ndarray,
    spill_col: np.ndarray,
    ssd_fraction: np.ndarray,
) -> np.ndarray:
    """FirstFit-style chunk: want SSD iff the full footprint fits now.

    Decisions depend on evolving occupancy, so this stays a per-job
    loop — but without per-job policy calls, decision objects, or heap
    churn for rejected jobs.  Returns the want-SSD mask.
    """
    count = stop - first
    requested = np.zeros(count, dtype=bool)
    chunk_t = arrivals[first:stop]
    chunk_dur = durations[first:stop]
    ttl_vals = None if ttl is None else np.asarray(ttl, dtype=float)
    release, time_frac = _ttl_release_fracs(chunk_t, chunk_dur, ttl_vals)
    local_heap: list[tuple[float, float]] = []
    for k in range(count):
        gi = first + k
        t = float(arrivals[gi])
        st.drain_until(local_heap, t)
        size = float(sizes[gi])
        if size > st.free:
            continue
        requested[k] = True
        st.admit(size)  # fits in full by construction
        st.schedule_release(local_heap, float(release[k]), size, t_last)
        space[k] = 1.0
        ssd_fraction[gi] = float(time_frac[k])
    st.flush_heap(local_heap)
    return requested
