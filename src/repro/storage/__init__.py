"""Storage-layer substrate: one shard-aware placement runtime.

A single engine (:mod:`repro.storage.engine`) drives every placement
scenario: :func:`simulate` is the one-global-pool (``n_shards=1``) case
and :func:`simulate_sharded` splits the same capacity across caching
servers, modelled as lanes of a multi-lane capacity accountant.  Both
run either the reference per-job ``legacy`` loop or the vectorized
``chunked`` engine behind the ``decide_batch``/``observe_batch`` batch
protocol (:mod:`repro.storage.policy`).
"""

from .policy import (
    BatchDecision,
    BatchOutcomes,
    Decision,
    FixedPolicy,
    PlacementContext,
    PlacementOutcome,
    PlacementPolicy,
)
from .devices import HddFleet, SsdFleet, SsdSpec, wearout_rate_from_spec
from .engine import run_placement
from .sharded import assign_shards, simulate_sharded
from .simulator import SimResult, analytic_result, simulate

__all__ = [
    "PlacementContext",
    "Decision",
    "PlacementOutcome",
    "PlacementPolicy",
    "BatchDecision",
    "BatchOutcomes",
    "FixedPolicy",
    "SimResult",
    "simulate",
    "analytic_result",
    "run_placement",
    "SsdSpec",
    "SsdFleet",
    "HddFleet",
    "wearout_rate_from_spec",
    "assign_shards",
    "simulate_sharded",
]
