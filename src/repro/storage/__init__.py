"""Storage-layer substrate: placement simulator and policy interface."""

from .policy import (
    BatchDecision,
    BatchOutcomes,
    Decision,
    FixedPolicy,
    PlacementContext,
    PlacementOutcome,
    PlacementPolicy,
)
from .devices import HddFleet, SsdFleet, SsdSpec, wearout_rate_from_spec
from .sharded import assign_shards, simulate_sharded
from .simulator import SimResult, analytic_result, simulate

__all__ = [
    "PlacementContext",
    "Decision",
    "PlacementOutcome",
    "PlacementPolicy",
    "BatchDecision",
    "BatchOutcomes",
    "FixedPolicy",
    "SimResult",
    "simulate",
    "analytic_result",
    "SsdSpec",
    "SsdFleet",
    "HddFleet",
    "wearout_rate_from_spec",
    "assign_shards",
    "simulate_sharded",
]
