"""Placement policy interface for the storage simulator.

A policy sees each job at its arrival (with current SSD occupancy) and
answers SSD-or-HDD; after the simulator applies the decision the policy
receives the outcome (how much actually fit), which is the real-time
feedback channel the paper's adaptive algorithm consumes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..cost import CostRates
from ..workloads.job import Trace

__all__ = ["PlacementContext", "Decision", "PlacementOutcome", "PlacementPolicy", "FixedPolicy"]


@dataclass(frozen=True)
class PlacementContext:
    """What a policy may observe at decision time."""

    time: float
    free_ssd: float
    capacity: float


@dataclass(frozen=True)
class Decision:
    """Policy verdict for one job.

    ``ssd_ttl`` optionally bounds the job's SSD residency: the space is
    released (and remaining I/O falls back to HDD) after this many
    seconds, implementing the ML baseline's mu+sigma eviction.
    """

    want_ssd: bool
    ssd_ttl: float | None = None


@dataclass(frozen=True)
class PlacementOutcome:
    """Feedback after the simulator applies a decision.

    Attributes
    ----------
    job_index:
        Index into the simulated trace.
    time:
        Arrival time at which the decision was applied.
    requested_ssd:
        Whether the policy asked for SSD (``x.DEV`` in the paper).
    ssd_space_fraction:
        Fraction of the job's footprint that fit on SSD (1.0 = fully
        placed, 0.0 = fully spilled or HDD-placed).
    spill_time:
        Time at which spillover began (arrival time in this simulator's
        admit-at-arrival model), or ``None`` if nothing spilled.
    """

    job_index: int
    time: float
    requested_ssd: bool
    ssd_space_fraction: float
    spill_time: float | None


class PlacementPolicy(ABC):
    """Base class for all placement methods (baselines and BYOM)."""

    #: Human-readable method name used in reports.
    name: str = "policy"

    def on_simulation_start(
        self, trace: Trace, capacity: float, rates: CostRates
    ) -> None:
        """Called once before the event loop; default is stateless."""

    @abstractmethod
    def decide(self, job_index: int, ctx: PlacementContext) -> Decision:
        """Place job ``job_index`` arriving under context ``ctx``."""

    def observe(self, outcome: PlacementOutcome) -> None:
        """Receive the applied outcome (default: ignore feedback)."""


class FixedPolicy(PlacementPolicy):
    """Replays a precomputed 0/1 placement vector (oracle output)."""

    name = "fixed"

    def __init__(self, decisions: np.ndarray, name: str = "fixed"):
        self.decisions = np.asarray(decisions).astype(bool)
        self.name = name

    def decide(self, job_index: int, ctx: PlacementContext) -> Decision:
        return Decision(want_ssd=bool(self.decisions[job_index]))
