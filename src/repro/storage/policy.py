"""Placement policy interface for the storage simulator.

A policy sees each job at its arrival (with current SSD occupancy) and
answers SSD-or-HDD; after the simulator applies the decision the policy
receives the outcome (how much actually fit), which is the real-time
feedback channel the paper's adaptive algorithm consumes.

Batch protocol (the simulator's fast path)
------------------------------------------
Policies whose decision *rule* only changes at discrete instants (the
adaptive policies between ACT updates, the heuristic between admission
refreshes, replayed/static baselines for the whole trace) may
additionally implement::

    def decide_batch(self, first: int, ctx: PlacementContext) -> BatchDecision

returning decisions for a whole run of upcoming jobs at once.  The
chunked simulator engine drives such policies in decision-interval
chunks with vectorized capacity accounting, calling
:meth:`PlacementPolicy.observe_batch` with structure-of-arrays feedback
after each chunk.  Policies without ``decide_batch`` run through the
legacy per-job event loop unchanged.

Two drivers speak this protocol: the offline engine
(:func:`repro.storage.engine.run_placement`) and the online
:class:`~repro.serve.PlacementService`.  Both call ``decide_batch``
exactly once per chunk with the chunk-opening context; the service may
*defer running* the chunk until the declared run of jobs has been
submitted (its admission queue), so a ``count`` reaching past the jobs
a policy can currently see is fine — the driver clamps it to the
available horizon exactly as the engine clamps at trace end.  Online
policies without a full trace (e.g.
:class:`~repro.serve.OnlineAdaptivePolicy`) simply declare chunks up to
the jobs observed so far.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..cost import CostRates
from ..workloads.job import Trace

__all__ = [
    "PlacementContext",
    "Decision",
    "PlacementOutcome",
    "BatchDecision",
    "BatchOutcomes",
    "PlacementPolicy",
    "FixedPolicy",
]


@dataclass(frozen=True)
class PlacementContext:
    """What a policy may observe at decision time.

    ``free_ssd`` and ``capacity`` are *lane-local*: in sharded runs they
    describe the job's own caching server (whose slice may differ from
    its peers' under a heterogeneous capacity layout), and with one
    global pool they are the global counters.  A ``decide_batch``
    context is the chunk's opening snapshot — the *first* job's lane —
    since one chunk spans many lanes; batch policies needing per-job
    lane data use the routing vector from
    :meth:`PlacementPolicy.on_shard_topology`.
    """

    time: float
    free_ssd: float
    capacity: float


@dataclass(frozen=True)
class Decision:
    """Policy verdict for one job.

    ``ssd_ttl`` optionally bounds the job's SSD residency: the space is
    released (and remaining I/O falls back to HDD) after this many
    seconds, implementing the ML baseline's mu+sigma eviction.
    """

    want_ssd: bool
    ssd_ttl: float | None = None


@dataclass(frozen=True)
class PlacementOutcome:
    """Feedback after the simulator applies a decision.

    Attributes
    ----------
    job_index:
        Index into the simulated trace.
    time:
        Arrival time at which the decision was applied.
    requested_ssd:
        Whether the policy asked for SSD (``x.DEV`` in the paper).
    ssd_space_fraction:
        Fraction of the job's footprint that fit on SSD (1.0 = fully
        placed, 0.0 = fully spilled or HDD-placed).
    spill_time:
        Time at which spillover began (arrival time in this simulator's
        admit-at-arrival model), or ``None`` if nothing spilled.
    shard:
        Caching server the job was routed to (0 in unsharded runs).
    """

    job_index: int
    time: float
    requested_ssd: bool
    ssd_space_fraction: float
    spill_time: float | None
    shard: int = 0


@dataclass(frozen=True)
class BatchDecision:
    """Decisions for ``count`` consecutive jobs starting at some index.

    Attributes
    ----------
    count:
        How many upcoming jobs this decision covers (>= 1).  The policy
        guarantees its decision rule is constant over the run — the
        simulator will not call back before job ``first + count``.
    want_ssd:
        Boolean mask of length ``count``, or ``None`` with
        ``fit_check=True``.
    ssd_ttl:
        Optional per-job SSD residency bound (length ``count``); NaN or
        ``None`` entries mean "resident until job end".
    fit_check:
        FirstFit semantics: a job wants SSD iff its full footprint fits
        in the free capacity observed at its own arrival.  The decision
        depends on evolving occupancy, so no mask can be precomputed,
        but the simulator can still drive the run without per-job
        policy calls.
    """

    count: int
    want_ssd: np.ndarray | None
    ssd_ttl: np.ndarray | None = None
    fit_check: bool = False


@dataclass(frozen=True)
class BatchOutcomes:
    """Structure-of-arrays feedback for one simulated chunk.

    Mirrors :class:`PlacementOutcome` field-for-field; ``spill_time``
    is NaN-encoded (NaN = nothing spilled).  ``shards`` carries the
    per-job caching-server routing of the chunk, or ``None`` in
    unsharded runs (one global pool).
    """

    first: int
    times: np.ndarray
    requested_ssd: np.ndarray
    ssd_space_fraction: np.ndarray
    spill_time: np.ndarray
    shards: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[PlacementOutcome]:
        for k in range(len(self.times)):
            st = self.spill_time[k]
            yield PlacementOutcome(
                job_index=self.first + k,
                time=float(self.times[k]),
                requested_ssd=bool(self.requested_ssd[k]),
                ssd_space_fraction=float(self.ssd_space_fraction[k]),
                spill_time=None if np.isnan(st) else float(st),
                shard=0 if self.shards is None else int(self.shards[k]),
            )


class PlacementPolicy(ABC):
    """Base class for all placement methods (baselines and BYOM)."""

    #: Human-readable method name used in reports.
    name: str = "policy"

    def on_simulation_start(
        self, trace: Trace, capacity: float, rates: CostRates
    ) -> None:
        """Called once before the event loop; default is stateless.

        ``capacity`` is the run's *total* SSD capacity across all lanes;
        the per-lane layout follows in :meth:`on_shard_topology`.
        """

    def on_shard_topology(
        self, shards: np.ndarray | None, lane_capacities: np.ndarray
    ) -> None:
        """Called once per run, after :meth:`on_simulation_start`.

        ``shards`` is the per-job caching-server routing vector of the
        trace (``None`` with one global pool) and ``lane_capacities``
        the per-lane capacity layout — unequal under a heterogeneous
        split.  Shard-aware policies (e.g. per-shard adaptive
        thresholds) hook in here; the default ignores the topology.
        """

    @abstractmethod
    def decide(self, job_index: int, ctx: PlacementContext) -> Decision:
        """Place job ``job_index`` arriving under context ``ctx``."""

    def observe(self, outcome: PlacementOutcome) -> None:
        """Receive the applied outcome (default: ignore feedback)."""

    def decide_one(
        self, job_index: int, time: float, free_ssd: float, capacity: float
    ) -> tuple[bool, float | None]:
        """Allocation-free single-job decision (the serving fast path).

        Semantically :meth:`decide` with the context unpacked into
        scalars; returns ``(want_ssd, ssd_ttl)``.  The default wraps
        ``decide``, so a policy overriding ``decide`` alone stays
        correct; hot policies override this to skip the per-request
        context and decision objects.
        """
        d = self.decide(
            job_index,
            PlacementContext(time=time, free_ssd=free_ssd, capacity=capacity),
        )
        return d.want_ssd, d.ssd_ttl

    def observe_one(
        self,
        job_index: int,
        time: float,
        requested_ssd: bool,
        ssd_space_fraction: float,
        spill_time: float | None,
        shard: int = 0,
    ) -> None:
        """Allocation-free single-outcome feedback (the serving fast path).

        Semantically :meth:`observe` with the outcome unpacked into
        scalars.  The default wraps ``observe`` (and, like
        ``observe_batch``, is a no-op when ``observe`` was never
        overridden), so a policy overriding ``observe`` alone stays
        correct.
        """
        if type(self).observe is PlacementPolicy.observe:
            return
        self.observe(
            PlacementOutcome(
                job_index=job_index,
                time=time,
                requested_ssd=requested_ssd,
                ssd_space_fraction=ssd_space_fraction,
                spill_time=spill_time,
                shard=shard,
            )
        )

    def observe_batch(self, outcomes: BatchOutcomes) -> None:
        """Receive one chunk of outcomes from the chunked engine.

        The default fans out to :meth:`observe` (skipped entirely when
        the policy never overrode it); feedback-driven policies should
        override this with a vectorized ingest.
        """
        if type(self).observe is PlacementPolicy.observe:
            return
        for outcome in outcomes:
            self.observe(outcome)


class FixedPolicy(PlacementPolicy):
    """Replays a precomputed 0/1 placement vector (oracle output)."""

    name = "fixed"

    def __init__(self, decisions: np.ndarray, name: str = "fixed"):
        self.decisions = np.asarray(decisions).astype(bool)
        self.name = name

    def decide(self, job_index: int, ctx: PlacementContext) -> Decision:
        return Decision(want_ssd=bool(self.decisions[job_index]))

    def decide_batch(self, first: int, ctx: PlacementContext) -> BatchDecision:
        """The whole remaining replay in one chunk (rule never changes)."""
        mask = self.decisions[first:]
        return BatchDecision(count=len(mask), want_ssd=mask)
