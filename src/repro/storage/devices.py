"""Device models: SSD endurance and HDD I/O capability accounting.

The TCO formulas (Section 3) price SSD wearout per byte written, derived
from "the specific SSD drive model's total bytes written rating".  This
module makes that concrete: a :class:`SsdFleet` tracks cumulative writes
against a TBW (terabytes-written) endurance budget, and an
:class:`HddFleet` converts TCIO into a drive count.  They are accounting
layers over simulation outcomes — useful for capacity planning reports
and for validating that the wearout cost rate is consistent with a
device's endurance spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cost import CostRates, DEFAULT_RATES
from ..units import TIB

__all__ = ["SsdSpec", "SsdFleet", "HddFleet", "wearout_rate_from_spec"]


@dataclass(frozen=True)
class SsdSpec:
    """Endurance-relevant specification of one SSD model.

    Attributes
    ----------
    capacity:
        Usable bytes per drive.
    tbw:
        Total-bytes-written endurance rating (bytes) — the write volume
        the drive is warranted for.
    unit_cost:
        Acquisition cost of one drive (cost units).
    """

    capacity: float = 2 * TIB
    tbw: float = 1200 * TIB
    unit_cost: float = 200.0

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.tbw <= 0 or self.unit_cost < 0:
            raise ValueError("capacity and tbw must be > 0, unit_cost >= 0")


def wearout_rate_from_spec(spec: SsdSpec) -> float:
    """Wearout cost per byte written implied by a drive spec.

    Each byte written consumes ``1 / tbw`` of a drive's endurance, hence
    ``unit_cost / tbw`` of monetary value — the paper's
    ``wearout_cost_rate_SSD``.
    """
    return spec.unit_cost / spec.tbw


@dataclass
class SsdFleet:
    """Tracks endurance consumption of an SSD tier.

    ``record_writes`` accumulates bytes written; properties report the
    endurance consumed and the implied amortized cost.
    """

    spec: SsdSpec = field(default_factory=SsdSpec)
    provisioned_bytes: float = 2 * TIB
    bytes_written: float = 0.0

    def __post_init__(self) -> None:
        if self.provisioned_bytes < 0:
            raise ValueError("provisioned_bytes must be >= 0")

    @property
    def n_drives(self) -> int:
        """Drives needed to provision the capacity."""
        return int(np.ceil(self.provisioned_bytes / self.spec.capacity)) if self.provisioned_bytes else 0

    def record_writes(self, n_bytes: float) -> None:
        if n_bytes < 0:
            raise ValueError("cannot write negative bytes")
        self.bytes_written += n_bytes

    @property
    def endurance_consumed_fraction(self) -> float:
        """Fleet endurance used, as a fraction of total TBW budget."""
        budget = self.n_drives * self.spec.tbw
        if budget <= 0:
            return 0.0
        return self.bytes_written / budget

    @property
    def wearout_cost(self) -> float:
        """Monetary endurance consumed so far."""
        return wearout_rate_from_spec(self.spec) * self.bytes_written

    def drive_replacements_over(self, horizon_writes: float) -> float:
        """Replacement budget (drive-lifetimes) to sustain ``horizon_writes``.

        Counts the drive-lifetimes consumed by the end of the horizon,
        including the endurance the currently installed drives have
        *already* burned: the writes recorded so far have worn each
        (wear-leveled) drive by ``bytes_written / n_drives``, so the
        in-service drives fail after only their remaining endurance — a
        mid-life fleet budgets more replacements over the same horizon
        than a fresh one (the previous implementation ignored wear
        entirely).  Wear already past a full TBW belongs to drives
        replaced before the horizon and is not re-counted.  A fresh
        fleet reduces to ``horizon_writes / tbw``.

        Because the current drives' sunk wear is billed to the horizon
        (a zero-byte horizon reports exactly that worn fraction), the
        projection is a *provisioning* number: query one horizon at a
        time rather than summing consecutive calls, which would bill
        the worn fraction repeatedly.
        """
        if horizon_writes < 0:
            raise ValueError("horizon_writes must be >= 0")
        if self.spec.tbw <= 0:
            return 0.0
        drives = max(self.n_drives, 1)
        worn = (self.bytes_written / drives) % self.spec.tbw
        return (drives * worn + horizon_writes) / self.spec.tbw


@dataclass(frozen=True)
class HddFleet:
    """Converts sustained TCIO into an HDD drive count.

    TCIO is defined in units of one standard HDD's sustainable op rate,
    so a sustained TCIO of ``x`` needs ``ceil(x)`` drives for I/O alone;
    capacity may require more.
    """

    rates: CostRates = DEFAULT_RATES
    drive_capacity: float = 16 * TIB

    def drives_for(self, sustained_tcio: float, stored_bytes: float) -> int:
        """Drives needed to serve an I/O load plus a capacity footprint."""
        if sustained_tcio < 0 or stored_bytes < 0:
            raise ValueError("loads must be >= 0")
        io_drives = int(np.ceil(sustained_tcio))
        cap_drives = int(np.ceil(stored_bytes / self.drive_capacity))
        return max(io_drives, cap_drives)
