"""Density-greedy approximation of the oracle for large instances.

Interval knapsack: admit jobs in decreasing order of objective value per
byte-second of SSD occupancy, subject to the capacity profile staying
under the limit for the job's whole lifetime.  Occupancy is tracked on
the grid of candidate arrival times (occupancy only rises at arrivals,
so checking grid points inside the job's interval is exact).
"""

from __future__ import annotations

import numpy as np

__all__ = ["greedy_placement"]


def greedy_placement(
    arrivals: np.ndarray,
    ends: np.ndarray,
    sizes: np.ndarray,
    values: np.ndarray,
    capacity: float,
) -> tuple[np.ndarray, float]:
    """Greedy interval-packing by value density.

    Parameters
    ----------
    arrivals, ends, sizes, values:
        Candidate job attributes (values must be > 0).
    capacity:
        SSD byte limit.

    Returns
    -------
    (picked, total_value):
        ``picked`` — indices (into the candidate arrays) admitted to
        SSD; ``total_value`` — sum of their values.
    """
    m = len(arrivals)
    if m == 0:
        return np.array([], dtype=int), 0.0
    arrivals = np.asarray(arrivals, dtype=float)
    ends = np.asarray(ends, dtype=float)
    sizes = np.asarray(sizes, dtype=float)
    values = np.asarray(values, dtype=float)

    grid = np.unique(arrivals)
    usage = np.zeros(len(grid))

    # Occupancy cost of a job ~ size * duration; density = value per
    # byte-second, with a floor to avoid division blowups on instant jobs.
    occupancy = sizes * np.maximum(ends - arrivals, 1.0)
    density = values / np.maximum(occupancy, 1e-9)
    order = np.argsort(-density, kind="stable")

    picked: list[int] = []
    total = 0.0
    for i in order:
        if sizes[i] > capacity:
            continue
        lo = np.searchsorted(grid, arrivals[i], side="left")
        hi = np.searchsorted(grid, ends[i], side="left")
        window = usage[lo:hi]
        if window.size == 0:
            # No other arrival inside the interval: only the job's own
            # start point matters and it is included for every candidate
            # (grid is built from candidate arrivals), so this cannot
            # happen for in-range jobs; guard anyway.
            continue
        if window.max() + sizes[i] <= capacity:
            usage[lo:hi] += sizes[i]
            picked.append(i)
            total += values[i]
    return np.asarray(picked, dtype=int), float(total)
