"""Clairvoyant oracle placement via Integer Linear Programming.

The paper's headroom analysis (Section 3.1) formulates placement as::

    max   sum_i x_i * (c_HDD_i - c_SSD_i)
    s.t.  x_i in {0, 1}
          sum_{i active at t} x_i * s_i <= M   for all t

The oracle knows the future (arrival/end/cost of every job) and a fixed
SSD capacity, making it an upper bound that is impossible to implement.

Capacity constraints only need to be imposed at job *arrival* epochs:
occupancy of a union of right-open intervals is piecewise constant and
only increases at arrivals, so its peak over any window is attained at
an arrival.  This keeps the ILP row count at one per candidate job.

Solved with ``scipy.optimize.milp`` (HiGHS).  For instances beyond
``max_milp_jobs`` candidates the density-greedy approximation from
:mod:`repro.oracle.greedy` is used instead (see DESIGN.md).
"""

from __future__ import annotations

import contextlib
import heapq
import os
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..cost import CostRates, DEFAULT_RATES
from ..workloads.job import Trace
from .greedy import greedy_placement


@contextlib.contextmanager
def _silence_stdout():
    """Suppress HiGHS's C-level debug prints during milp solves."""
    fd = os.dup(1)
    devnull = os.open(os.devnull, os.O_WRONLY)
    try:
        os.dup2(devnull, 1)
        yield
    finally:
        os.dup2(fd, 1)
        os.close(fd)
        os.close(devnull)

__all__ = ["OracleResult", "oracle_objective", "oracle_placement"]


@dataclass(frozen=True)
class OracleResult:
    """Oracle decision vector plus solver bookkeeping.

    ``fractions`` holds the per-job SSD share in [0, 1]: exactly 0/1 for
    the binary ILP, possibly fractional for the LP relaxation.
    ``decisions`` is the boolean "any SSD share" view.
    """

    decisions: np.ndarray  # bool per job
    objective_value: float
    method: str  # "milp" | "lp" | "greedy" | "trivial"
    n_candidates: int
    fractions: np.ndarray | None = None

    def ssd_fraction(self) -> np.ndarray:
        """Per-job SSD share (falls back to 0/1 decisions)."""
        if self.fractions is not None:
            return self.fractions
        return self.decisions.astype(float)


def oracle_objective(trace: Trace, objective: str, rates: CostRates) -> np.ndarray:
    """Per-job objective coefficient: what placing job i on SSD gains.

    ``"tco"`` uses TCO savings (can be negative); ``"tcio"`` uses the
    job's total TCIO relief (always non-negative).
    """
    if objective == "tco":
        return trace.costs(rates).savings
    if objective == "tcio":
        return trace.tcio(rates) * np.maximum(trace.durations, 1.0)
    raise ValueError(f"objective must be 'tco' or 'tcio', got {objective!r}")


def _active_matrix(
    arrivals: np.ndarray, ends: np.ndarray, sizes: np.ndarray
) -> sparse.csr_matrix:
    """Sparse (n_constraints, n_jobs) matrix: row k has s_i for every job
    i active at job k's arrival (a_i <= a_k < e_i)."""
    n = len(arrivals)
    order = np.argsort(arrivals, kind="stable")
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    # Sweep line over arrivals; maintain active set as (end, job) heap.
    active: list[tuple[float, int]] = []
    for k_pos, k in enumerate(order):
        t = arrivals[k]
        while active and active[0][0] <= t:
            heapq.heappop(active)
        heapq.heappush(active, (ends[k], k))
        for _, i in active:
            rows.append(k_pos)
            cols.append(i)
            vals.append(sizes[i])
    return sparse.csr_matrix(
        (vals, (rows, cols)), shape=(n, n), dtype=float
    )


def oracle_placement(
    trace: Trace,
    capacity: float,
    objective: str = "tco",
    rates: CostRates = DEFAULT_RATES,
    integrality: bool = True,
    max_milp_jobs: int = 4000,
    time_limit: float = 120.0,
    mip_rel_gap: float = 0.005,
) -> OracleResult:
    """Optimal (or near-optimal) clairvoyant placement.

    Jobs with non-positive objective coefficients are pre-fixed to HDD —
    the optimal solution never admits them since they consume capacity
    without gain.

    ``integrality=True`` is the paper's binary ILP.  ``integrality=False``
    solves the LP relaxation: jobs may be placed fractionally, which
    matches the simulator's partial-fit (spillover) semantics and makes
    the oracle a true upper bound on *every* simulated policy, including
    ones that split jobs across tiers.  The relaxation is also much
    faster, so it has no candidate-count limit.
    """
    if capacity < 0:
        raise ValueError("capacity must be >= 0")
    n = len(trace)
    coef = np.asarray(oracle_objective(trace, objective, rates), dtype=float)
    decisions = np.zeros(n, dtype=bool)
    empty = OracleResult(decisions, 0.0, "trivial", 0, fractions=np.zeros(n))
    candidates = np.flatnonzero(coef > 0)
    if candidates.size == 0 or capacity == 0:
        return empty

    arrivals = trace.arrivals[candidates]
    ends = trace.ends[candidates]
    sizes = trace.sizes[candidates]
    c = coef[candidates]

    if integrality:
        # Jobs that individually exceed capacity can never fully fit;
        # the 0/1 model forbids partial admission, so drop them.
        feasible = sizes <= capacity
        arrivals, ends = arrivals[feasible], ends[feasible]
        sizes, c = sizes[feasible], c[feasible]
        candidates = candidates[feasible]
    m = candidates.size
    if m == 0:
        return empty

    if integrality and m > max_milp_jobs:
        picked, value = greedy_placement(arrivals, ends, sizes, c, capacity)
        decisions[candidates[picked]] = True
        fractions = np.zeros(n)
        fractions[candidates[picked]] = 1.0
        return OracleResult(decisions, float(value), "greedy", m, fractions=fractions)

    A = _active_matrix(arrivals, ends, sizes)
    constraint = LinearConstraint(A, -np.inf, capacity)
    with _silence_stdout():
        res = milp(
            c=-c,  # milp minimizes
            constraints=[constraint],
            integrality=np.ones(m) if integrality else np.zeros(m),
            bounds=Bounds(0, 1),
            options={"time_limit": time_limit, "mip_rel_gap": mip_rel_gap},
        )
    if res.x is None:
        picked, value = greedy_placement(arrivals, ends, sizes, c, capacity)
        decisions[candidates[picked]] = True
        fractions = np.zeros(n)
        fractions[candidates[picked]] = 1.0
        return OracleResult(decisions, float(value), "greedy", m, fractions=fractions)
    fractions = np.zeros(n)
    if integrality:
        x = res.x > 0.5
        fractions[candidates] = x.astype(float)
        decisions[candidates[x]] = True
        return OracleResult(
            decisions, float(c[x].sum()), "milp", m, fractions=fractions
        )
    x = np.clip(res.x, 0.0, 1.0)
    fractions[candidates] = x
    decisions[candidates] = x > 1e-9
    return OracleResult(
        decisions, float(c @ x), "lp", m, fractions=fractions
    )
