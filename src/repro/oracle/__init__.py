"""Clairvoyant oracle: ILP-optimal placement and headroom analysis."""

from .greedy import greedy_placement
from .headroom import HeadroomResult, headroom_analysis
from .ilp import OracleResult, oracle_objective, oracle_placement

__all__ = [
    "OracleResult",
    "oracle_objective",
    "oracle_placement",
    "greedy_placement",
    "HeadroomResult",
    "headroom_analysis",
]
