"""Headroom analysis: oracle vs the practical heuristic (Section 3.1).

"We find that these optimal decisions can achieve 5.06x the cost savings
of a state-of-the-art heuristic approach (but require clairvoyant
knowledge)."  This module reproduces that comparison on a trace: run the
oracle and the heuristic at the same SSD capacity and report the ratio
of their TCO savings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.heuristic import CategoryAdmissionPolicy
from ..cost import CostRates, DEFAULT_RATES
from ..storage.simulator import SimResult, analytic_result, simulate
from ..workloads.job import Trace
from .ilp import oracle_placement

__all__ = ["HeadroomResult", "headroom_analysis"]


@dataclass(frozen=True)
class HeadroomResult:
    """Oracle-vs-heuristic savings at one capacity."""

    oracle: SimResult
    heuristic: SimResult
    capacity: float

    @property
    def savings_ratio(self) -> float:
        """Oracle TCO savings over heuristic TCO savings."""
        h = self.heuristic.tco_savings_pct
        if h <= 0:
            return float("inf") if self.oracle.tco_savings_pct > 0 else 1.0
        return self.oracle.tco_savings_pct / h


def headroom_analysis(
    train_trace: Trace,
    test_trace: Trace,
    quota_fraction: float = 0.01,
    rates: CostRates = DEFAULT_RATES,
    objective: str = "tco",
    **oracle_kw,
) -> HeadroomResult:
    """Compare clairvoyant-oracle and heuristic savings on a test trace.

    The heuristic seeds its per-category admission set from the training
    trace (its "historical" data); the oracle sees the test trace's
    future outright.
    """
    capacity = quota_fraction * test_trace.peak_ssd_usage()
    oracle = oracle_placement(
        test_trace,
        capacity,
        objective=objective,
        rates=rates,
        integrality=False,
        **oracle_kw,
    )
    oracle_sim = analytic_result(
        test_trace,
        oracle.ssd_fraction(),
        capacity,
        rates,
        name=f"Oracle {objective.upper()}",
    )
    heuristic_sim = simulate(
        test_trace, CategoryAdmissionPolicy(train_trace, rates), capacity, rates
    )
    return HeadroomResult(oracle=oracle_sim, heuristic=heuristic_sim, capacity=capacity)
