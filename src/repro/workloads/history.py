"""Historical system metrics (Table 2, feature group A).

For every job the paper includes "properties of previously completed
jobs from the same user's pipelines, including the past TCIO, job
lifetime, and size" (Section 4.1).  This module computes, per job, the
running averages over *strictly earlier* completed jobs of the same
pipeline — a job never sees its own outcome, nor the outcome of a job
that has not finished by its arrival.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..cost import CostRates, DEFAULT_RATES
from .job import Trace

__all__ = ["HISTORY_FEATURES", "HistoricalMetrics", "compute_history"]

#: Order of the group-A feature columns.
HISTORY_FEATURES = (
    "average_tcio",
    "average_size",
    "average_lifetime",
    "average_io_density",
)


@dataclass(frozen=True)
class HistoricalMetrics:
    """Per-job historical averages, aligned with the trace's job order.

    ``observed`` marks jobs whose pipeline had at least one completed
    prior execution; for unobserved jobs the averages fall back to 0 (a
    distinguishable sentinel for the trees, as the smallest possible
    value of each metric).
    """

    average_tcio: np.ndarray
    average_size: np.ndarray
    average_lifetime: np.ndarray
    average_io_density: np.ndarray
    observed: np.ndarray

    def as_matrix(self) -> np.ndarray:
        """(n_jobs, 4) matrix in :data:`HISTORY_FEATURES` order."""
        return np.column_stack(
            [self.average_tcio, self.average_size, self.average_lifetime, self.average_io_density]
        )


def compute_history(
    trace: Trace, rates: CostRates = DEFAULT_RATES
) -> HistoricalMetrics:
    """Running per-pipeline averages over previously *completed* jobs.

    The computation is causally correct: job ``i``'s history includes
    job ``j`` of the same pipeline iff ``j.end <= i.arrival``.
    """
    n = len(trace)
    tcio = trace.tcio(rates)
    density = trace.io_density(rates)
    sizes = trace.sizes
    durations = trace.durations
    arrivals = trace.arrivals
    ends = trace.ends

    out_tcio = np.zeros(n)
    out_size = np.zeros(n)
    out_life = np.zeros(n)
    out_density = np.zeros(n)
    observed = np.zeros(n, dtype=bool)

    # Per pipeline: pending completions sorted by end time, folded into
    # running sums as arrivals pass them.  Trace is arrival-sorted.
    pending: dict[str, list[tuple[float, int]]] = defaultdict(list)
    sums: dict[str, np.ndarray] = {}
    counts: dict[str, int] = defaultdict(int)

    pipelines = trace.pipelines
    for pipeline in set(pipelines):
        sums[pipeline] = np.zeros(4)

    # Pre-sort each pipeline's jobs by end time once.
    by_pipeline: dict[str, list[int]] = defaultdict(list)
    for i, p in enumerate(pipelines):
        by_pipeline[p].append(i)
    cursor: dict[str, int] = defaultdict(int)
    ends_sorted: dict[str, list[int]] = {
        p: sorted(idxs, key=lambda i: ends[i]) for p, idxs in by_pipeline.items()
    }

    for i in range(n):
        p = pipelines[i]
        t = arrivals[i]
        order = ends_sorted[p]
        c = cursor[p]
        while c < len(order) and ends[order[c]] <= t:
            j = order[c]
            sums[p] += np.array([tcio[j], sizes[j], durations[j], density[j]])
            counts[p] += 1
            c += 1
        cursor[p] = c
        if counts[p] > 0:
            avg = sums[p] / counts[p]
            out_tcio[i], out_size[i], out_life[i], out_density[i] = avg
            observed[i] = True

    return HistoricalMetrics(
        average_tcio=out_tcio,
        average_size=out_size,
        average_lifetime=out_life,
        average_io_density=out_density,
        observed=observed,
    )
