"""Three-phase shuffle-job I/O structure (Section 4.1 / Appendix B).

"Each shuffle job has three main steps: data writing, sorting, and data
retrieval.  Workers first write raw intermediate files, which are then
organized into sorted intermediate files by sorters.  Finally, workers
retrieve the required data [...] These steps can overlap in time."

This module decomposes a job's byte volumes into the three phases and
exposes a time-resolved I/O profile.  The base cost model assumes
uniform I/O over the lifetime; the phase model refines that for
analyses that care about *when* a job exerts its pressure (e.g. the
spillover estimate's accuracy, or bursty-arrival studies).
"""

from __future__ import annotations

from dataclasses import dataclass

from .job import ShuffleJob

__all__ = ["Phase", "PhaseProfile", "decompose_phases"]


@dataclass(frozen=True)
class Phase:
    """One phase of a shuffle job, relative to the job's arrival.

    Attributes
    ----------
    name:
        ``"write"``, ``"sort"`` or ``"retrieve"``.
    start_frac, end_frac:
        Phase span as fractions of the job lifetime (phases overlap).
    read_bytes, write_bytes, read_ops:
        I/O attributed to the phase.
    """

    name: str
    start_frac: float
    end_frac: float
    read_bytes: float
    write_bytes: float
    read_ops: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_frac < self.end_frac <= 1.0:
            raise ValueError(f"invalid phase span [{self.start_frac}, {self.end_frac}]")

    @property
    def duration_frac(self) -> float:
        return self.end_frac - self.start_frac


@dataclass(frozen=True)
class PhaseProfile:
    """The three-phase decomposition of one job."""

    phases: tuple[Phase, Phase, Phase]

    @property
    def write(self) -> Phase:
        return self.phases[0]

    @property
    def sort(self) -> Phase:
        return self.phases[1]

    @property
    def retrieve(self) -> Phase:
        return self.phases[2]

    def io_rate_at(self, frac: float) -> float:
        """Instantaneous I/O rate (bytes per lifetime-fraction) at a
        point in the job's normalized lifetime."""
        if not 0.0 <= frac <= 1.0:
            raise ValueError("frac must be in [0, 1]")
        total = 0.0
        for p in self.phases:
            if p.start_frac <= frac < p.end_frac:
                total += (p.read_bytes + p.write_bytes) / p.duration_frac
        return total

    def cumulative_bytes(self, frac: float) -> float:
        """Bytes moved by normalized lifetime-fraction ``frac``."""
        if not 0.0 <= frac <= 1.0:
            raise ValueError("frac must be in [0, 1]")
        total = 0.0
        for p in self.phases:
            if frac <= p.start_frac:
                continue
            covered = min(frac, p.end_frac) - p.start_frac
            total += (p.read_bytes + p.write_bytes) * covered / p.duration_frac
        return total


def decompose_phases(job: ShuffleJob, overlap: float = 0.2) -> PhaseProfile:
    """Split a job's I/O into write/sort/retrieve phases.

    - **write**: workers write raw intermediate files — all original
      bytes are written here (the footprint's worth of writes).
    - **sort**: sorters read the raw files and write sorted ones — this
      phase carries the write *amplification* beyond the footprint plus
      an equal read volume.
    - **retrieve**: workers read the sorted data back — the remaining
      read bytes and the bulk of the (random) read operations.

    ``overlap`` is the fraction of lifetime adjacent phases share
    ("these steps can be executed concurrently, resulting in temporal
    overlap").
    """
    if not 0.0 <= overlap < 0.5:
        raise ValueError("overlap must be in [0, 0.5)")
    size = job.size
    raw_write = min(size, job.write_bytes)
    sort_write = max(job.write_bytes - raw_write, 0.0)
    sort_read = min(sort_write, job.read_bytes)
    retrieve_read = max(job.read_bytes - sort_read, 0.0)
    # Ops: sorting is sequential (few ops); retrieval does random reads.
    sort_ops = job.read_ops * 0.15
    retrieve_ops = job.read_ops * 0.85

    third = 1.0 / 3.0
    o = overlap * third
    write = Phase(
        name="write",
        start_frac=0.0,
        end_frac=third + o,
        read_bytes=0.0,
        write_bytes=raw_write,
        read_ops=0.0,
    )
    sort = Phase(
        name="sort",
        start_frac=third - o,
        end_frac=2 * third + o,
        read_bytes=sort_read,
        write_bytes=sort_write,
        read_ops=sort_ops,
    )
    retrieve = Phase(
        name="retrieve",
        start_frac=2 * third - o,
        end_frac=1.0,
        read_bytes=retrieve_read,
        write_bytes=0.0,
        read_ops=retrieve_ops,
    )
    return PhaseProfile(phases=(write, sort, retrieve))
