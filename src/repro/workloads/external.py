"""External trace ingestion: replay any workload from CSV.

The BYOM design is not tied to our synthetic generator — any system that
can log per-job ``(arrival, duration, size, read/write volumes)`` plus
optional identity/metadata columns can be replayed through the
simulator and, with features, through the full pipeline.  This loader
accepts a documented CSV schema so public traces (or a user's own
production logs) can stand in for the generator.

CSV schema (header required; ``*`` columns mandatory)::

    job_id*, arrival*, duration*, size*, read_bytes*, write_bytes*,
    read_ops*, pipeline, user, cluster, archetype,
    meta.<field>...,   resource.<name>...

``meta.`` columns feed the execution-metadata features (group B);
``resource.`` columns feed the allocated-resource features (group C).
Missing optional columns fall back to sensible defaults.

Two consumption modes share one line-buffered reader
(:class:`CsvTraceSource`):

- :func:`stream_csv_trace` / :class:`CsvTraceSource` — the streaming
  path: rows are parsed directly into
  :class:`~repro.workloads.streaming.TraceBlock` columns, block by
  block, and can feed ``simulate``/``simulate_sharded`` without ever
  materializing per-job objects (see
  :mod:`repro.workloads.streaming`).  Requires the CSV to be
  arrival-ordered (an out-of-core reader cannot re-sort).
- :func:`load_csv_trace` — the materializing path: builds a full
  :class:`~repro.workloads.job.Trace` of :class:`ShuffleJob` objects
  (with metadata/resources, so features can be extracted), consuming
  the same reader row by row instead of buffering the file.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator

import numpy as np

from .job import ShuffleJob, Trace
from .streaming import DEFAULT_BLOCK_SIZE, TraceBlock, TraceSource

__all__ = [
    "REQUIRED_COLUMNS",
    "CsvTraceSource",
    "stream_csv_trace",
    "load_csv_trace",
    "save_csv_trace",
]

REQUIRED_COLUMNS = (
    "job_id",
    "arrival",
    "duration",
    "size",
    "read_bytes",
    "write_bytes",
    "read_ops",
)

_NUMERIC_COLUMNS = tuple(c for c in REQUIRED_COLUMNS if c != "job_id")

_OPTIONAL_DEFAULTS = {
    "pipeline": "pipeline0",
    "user": "user0",
    "cluster": "external",
    "archetype": "external",
}


class CsvTraceSource(TraceSource):
    """Line-buffered block reader over the documented CSV schema.

    Each :meth:`blocks` iteration re-opens the file and yields
    arrival-ordered :class:`TraceBlock`s of at most ``block_size``
    rows; only one block of parsed columns (plus the ``csv`` module's
    single-row buffer) is resident at a time.  Malformed numeric
    fields, missing required columns, and out-of-order arrivals raise
    ``ValueError`` naming the offending row.

    :meth:`rows` is the underlying row iterator; with
    ``want_payload=True`` rows additionally carry ``meta.``/
    ``resource.`` dictionaries — the path :func:`load_csv_trace` uses
    to build full :class:`ShuffleJob` objects from the same reader,
    and which :meth:`blocks` skips (blocks never read the payload).
    """

    def __init__(
        self,
        path: str | Path,
        block_size: int = DEFAULT_BLOCK_SIZE,
        name: str | None = None,
    ):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.path = Path(path)
        self.block_size = block_size
        self.name = name or self.path.stem

    def rows(self, want_payload: bool = True) -> Iterator[dict]:
        """Yield one parsed row dict at a time (line-buffered).

        Each row carries the required numeric fields (parsed) and the
        identity defaults; with ``want_payload=True`` it additionally
        carries the ``metadata``/``resources`` dicts (skipped by the
        streaming block path, which never reads them).  Identity
        strings are deduplicated through a per-iteration pool —
        pipelines and users repeat heavily across a trace, so each
        unique value is kept once instead of one fresh ``str`` per
        row.  This is the single CSV parser in the codebase;
        :meth:`blocks` and :func:`load_csv_trace` both consume it.
        """
        path = self.path
        pool: dict[str, str] = {}
        with path.open(newline="") as fh:
            reader = csv.DictReader(fh)
            if reader.fieldnames is None:
                raise ValueError(f"{path}: empty file")
            missing = [c for c in REQUIRED_COLUMNS if c not in reader.fieldnames]
            if missing:
                raise ValueError(f"{path}: missing required columns {missing}")
            meta_cols = [c for c in reader.fieldnames if c.startswith("meta.")]
            resource_cols = [c for c in reader.fieldnames if c.startswith("resource.")]
            for row_idx, row in enumerate(reader):
                try:
                    numeric = {c: float(row[c]) for c in _NUMERIC_COLUMNS}
                    job_id = int(float(row["job_id"]))
                except (TypeError, ValueError) as exc:
                    raise ValueError(
                        f"{path}: bad numeric value in row {row_idx}: {exc}"
                    ) from exc
                parsed = {}
                for key, default in _OPTIONAL_DEFAULTS.items():
                    value = row.get(key) or default
                    parsed[key] = pool.setdefault(value, value)
                parsed.update(numeric)
                parsed["job_id"] = job_id
                if want_payload:
                    parsed["metadata"] = {
                        c[len("meta."):]: row[c] for c in meta_cols if row.get(c)
                    }
                    resources = {}
                    for c in resource_cols:
                        if row.get(c):
                            try:
                                resources[c[len("resource."):]] = float(row[c])
                            except ValueError as exc:
                                raise ValueError(
                                    f"{path}: bad resource value in row {row_idx}: "
                                    f"{exc}"
                                ) from exc
                    parsed["resources"] = resources
                yield parsed

    def blocks(self) -> Iterator[TraceBlock]:
        buf: list[dict] = []
        last_arrival = -np.inf
        row_base = 0
        for row in self.rows(want_payload=False):
            if row["arrival"] < last_arrival:
                raise ValueError(
                    f"{self.path}: row {row_base + len(buf)} arrives at "
                    f"t={row['arrival']:g}, before its predecessor "
                    f"(t={last_arrival:g}); streaming requires an "
                    "arrival-ordered CSV — sort it, or use load_csv_trace"
                )
            last_arrival = row["arrival"]
            buf.append(row)
            if len(buf) >= self.block_size:
                yield self._flush(buf)
                row_base += len(buf)
                buf = []
        if buf:
            yield self._flush(buf)

    @staticmethod
    def _flush(buf: list[dict]) -> TraceBlock:
        return TraceBlock(
            arrivals=np.array([r["arrival"] for r in buf], dtype=float),
            durations=np.array([r["duration"] for r in buf], dtype=float),
            sizes=np.array([r["size"] for r in buf], dtype=float),
            read_bytes=np.array([r["read_bytes"] for r in buf], dtype=float),
            write_bytes=np.array([r["write_bytes"] for r in buf], dtype=float),
            read_ops=np.array([r["read_ops"] for r in buf], dtype=float),
            pipelines=tuple(r["pipeline"] for r in buf),
            users=tuple(r["user"] for r in buf),
            job_ids=np.array([r["job_id"] for r in buf], dtype=np.int64),
        )


def stream_csv_trace(
    path: str | Path,
    block_size: int = DEFAULT_BLOCK_SIZE,
    name: str | None = None,
) -> CsvTraceSource:
    """Open a CSV trace as a streaming block source.

    The returned source plugs directly into
    :func:`repro.storage.simulate` /
    :func:`repro.storage.simulate_sharded` (and
    :func:`~repro.storage.engine.run_placement`), which drain it
    without building per-job objects::

        res = simulate(stream_csv_trace("trace.csv"), policy, capacity)

    Requires the CSV to be arrival-ordered; see :class:`CsvTraceSource`
    for the full contract.
    """
    return CsvTraceSource(path, block_size=block_size, name=name)


def load_csv_trace(path: str | Path, name: str | None = None) -> Trace:
    """Load a trace from the documented CSV schema.

    Streams the file row by row through the shared line-buffered reader
    (:meth:`CsvTraceSource.rows`) — jobs are built as rows arrive, the
    raw text is never buffered.  Raises ``ValueError`` with the
    offending row index on malformed numeric fields or missing required
    columns.  Unlike the streaming path this materializes full
    :class:`ShuffleJob` objects (metadata and resources included) and
    re-sorts on construction, so unordered CSVs are accepted.
    """
    path = Path(path)
    source = CsvTraceSource(path, name=name)
    jobs = [
        ShuffleJob(
            job_id=row["job_id"],
            cluster=row["cluster"],
            user=row["user"],
            pipeline=row["pipeline"],
            archetype=row["archetype"],
            arrival=row["arrival"],
            duration=row["duration"],
            size=row["size"],
            read_bytes=row["read_bytes"],
            write_bytes=row["write_bytes"],
            read_ops=row["read_ops"],
            metadata=row["metadata"],
            resources=row["resources"],
        )
        for row in source.rows()
    ]
    return Trace(jobs, name=name or path.stem)


def save_csv_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace in the same CSV schema ``load_csv_trace`` reads."""
    path = Path(path)
    meta_fields = sorted({k for j in trace for k in j.metadata})
    resource_fields = sorted({k for j in trace for k in j.resources})
    header = (
        list(REQUIRED_COLUMNS)
        + ["pipeline", "user", "cluster", "archetype"]
        + [f"meta.{k}" for k in meta_fields]
        + [f"resource.{k}" for k in resource_fields]
    )
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for j in trace:
            writer.writerow(
                [
                    j.job_id,
                    j.arrival,
                    j.duration,
                    j.size,
                    j.read_bytes,
                    j.write_bytes,
                    j.read_ops,
                    j.pipeline,
                    j.user,
                    j.cluster,
                    j.archetype,
                ]
                + [j.metadata.get(k, "") for k in meta_fields]
                + [j.resources.get(k, "") for k in resource_fields]
            )
