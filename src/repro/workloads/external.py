"""External trace ingestion: replay any workload from CSV.

The BYOM design is not tied to our synthetic generator — any system that
can log per-job ``(arrival, duration, size, read/write volumes)`` plus
optional identity/metadata columns can be replayed through the
simulator and, with features, through the full pipeline.  This loader
accepts a documented CSV schema so public traces (or a user's own
production logs) can stand in for the generator.

CSV schema (header required; ``*`` columns mandatory)::

    job_id*, arrival*, duration*, size*, read_bytes*, write_bytes*,
    read_ops*, pipeline, user, cluster, archetype,
    meta.<field>...,   resource.<name>...

``meta.`` columns feed the execution-metadata features (group B);
``resource.`` columns feed the allocated-resource features (group C).
Missing optional columns fall back to sensible defaults.
"""

from __future__ import annotations

import csv
from pathlib import Path

from .job import ShuffleJob, Trace

__all__ = ["REQUIRED_COLUMNS", "load_csv_trace", "save_csv_trace"]

REQUIRED_COLUMNS = (
    "job_id",
    "arrival",
    "duration",
    "size",
    "read_bytes",
    "write_bytes",
    "read_ops",
)

_OPTIONAL_DEFAULTS = {
    "pipeline": "pipeline0",
    "user": "user0",
    "cluster": "external",
    "archetype": "external",
}


def load_csv_trace(path: str | Path, name: str | None = None) -> Trace:
    """Load a trace from the documented CSV schema.

    Raises ``ValueError`` with the offending row index on malformed
    numeric fields or missing required columns.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise ValueError(f"{path}: empty file")
        missing = [c for c in REQUIRED_COLUMNS if c not in reader.fieldnames]
        if missing:
            raise ValueError(f"{path}: missing required columns {missing}")
        meta_cols = [c for c in reader.fieldnames if c.startswith("meta.")]
        resource_cols = [c for c in reader.fieldnames if c.startswith("resource.")]

        jobs: list[ShuffleJob] = []
        for row_idx, row in enumerate(reader):
            try:
                numeric = {c: float(row[c]) for c in REQUIRED_COLUMNS if c != "job_id"}
                job_id = int(float(row["job_id"]))
            except (TypeError, ValueError) as exc:
                raise ValueError(f"{path}: bad numeric value in row {row_idx}: {exc}") from exc
            optional = {
                key: (row.get(key) or default)
                for key, default in _OPTIONAL_DEFAULTS.items()
            }
            metadata = {c[len("meta."):]: row[c] for c in meta_cols if row.get(c)}
            resources = {}
            for c in resource_cols:
                if row.get(c):
                    try:
                        resources[c[len("resource."):]] = float(row[c])
                    except ValueError as exc:
                        raise ValueError(
                            f"{path}: bad resource value in row {row_idx}: {exc}"
                        ) from exc
            jobs.append(
                ShuffleJob(
                    job_id=job_id,
                    cluster=optional["cluster"],
                    user=optional["user"],
                    pipeline=optional["pipeline"],
                    archetype=optional["archetype"],
                    arrival=numeric["arrival"],
                    duration=numeric["duration"],
                    size=numeric["size"],
                    read_bytes=numeric["read_bytes"],
                    write_bytes=numeric["write_bytes"],
                    read_ops=numeric["read_ops"],
                    metadata=metadata,
                    resources=resources,
                )
            )
    return Trace(jobs, name=name or path.stem)


def save_csv_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace in the same CSV schema ``load_csv_trace`` reads."""
    path = Path(path)
    meta_fields = sorted({k for j in trace for k in j.metadata})
    resource_fields = sorted({k for j in trace for k in j.resources})
    header = (
        list(REQUIRED_COLUMNS)
        + ["pipeline", "user", "cluster", "archetype"]
        + [f"meta.{k}" for k in meta_fields]
        + [f"resource.{k}" for k in resource_fields]
    )
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for j in trace:
            writer.writerow(
                [
                    j.job_id,
                    j.arrival,
                    j.duration,
                    j.size,
                    j.read_bytes,
                    j.write_bytes,
                    j.read_ops,
                    j.pipeline,
                    j.user,
                    j.cluster,
                    j.archetype,
                ]
                + [j.metadata.get(k, "") for k in meta_fields]
                + [j.resources.get(k, "") for k in resource_fields]
            )
