"""The shuffle-job data model and trace container.

The paper's basic data placement unit is a *shuffle job* produced by a
distributed data processing framework (Section 3): a job tracks
``(start time, lifetime, job size, cost)`` plus the application-level
features of Table 2.  :class:`Trace` stores a job sequence and exposes
structure-of-arrays views so that cost computation, labelling and the
oracle all run vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, Sequence

import numpy as np

from ..cost import CostRates, DEFAULT_RATES, JobCostVector, hdd_cost, ssd_cost, tcio_rate
from ..units import GIB

__all__ = ["ShuffleJob", "Trace", "TraceBase"]


@dataclass(frozen=True)
class ShuffleJob:
    """One shuffle job: the unit of data placement.

    Attributes
    ----------
    job_id:
        Unique index within the trace.
    cluster, user, pipeline:
        Identity of the workload hierarchy the job belongs to.
    archetype:
        Name of the workload archetype that generated the job (generator
        bookkeeping; never exposed to models as a feature).
    arrival, duration:
        Start time (seconds since trace epoch) and lifetime.
    size:
        Peak intermediate-file footprint in bytes.
    read_bytes, write_bytes:
        Total bytes read / written over the job's lifetime.
    read_ops:
        Raw application read-operation count (pre DRAM-cache filtering).
    metadata:
        Execution-metadata strings (Table 2 group B): build target,
        execution name, pipeline name, step name, user name.
    resources:
        Allocated-resource features (Table 2 group C), known before the
        job starts: bucket/shard/worker counts and records written.
    """

    job_id: int
    cluster: str
    user: str
    pipeline: str
    archetype: str
    arrival: float
    duration: float
    size: float
    read_bytes: float
    write_bytes: float
    read_ops: float
    metadata: dict[str, str] = field(default_factory=dict)
    resources: dict[str, float] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.arrival + self.duration

    @property
    def total_bytes(self) -> float:
        return self.read_bytes + self.write_bytes

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"job {self.job_id}: negative duration {self.duration}")
        if self.size < 0 or self.read_bytes < 0 or self.write_bytes < 0 or self.read_ops < 0:
            raise ValueError(f"job {self.job_id}: negative size or I/O volume")


class TraceBase:
    """Column-backed view of an arrival-ordered job sequence.

    Concrete subclasses provide the structure-of-arrays columns
    (:attr:`arrivals`, :attr:`durations`, :attr:`sizes`,
    :attr:`read_bytes`, :attr:`write_bytes`, :attr:`read_ops`, plus the
    :attr:`pipelines` identity list), ``__len__``, and a :attr:`name`;
    this base derives everything the placement runtime and the cost
    model consume from those columns alone.  Two implementations exist:

    - :class:`Trace` — backed by a tuple of :class:`ShuffleJob`
      objects, the fully-materialized representation.
    - :class:`~repro.workloads.streaming.StreamedTrace` — backed only
      by the numeric columns, produced by draining a
      :class:`~repro.workloads.streaming.TraceSource` block by block
      (no per-job Python objects are ever built).

    Because both run the same derived-quantity code over identical
    arrays, a simulation over a streamed trace is bit-identical to the
    in-memory one (see ``tests/test_streaming.py``).
    """

    name: str
    arrivals: np.ndarray
    durations: np.ndarray
    sizes: np.ndarray
    read_bytes: np.ndarray
    write_bytes: np.ndarray
    read_ops: np.ndarray
    pipelines: list[str]

    def __len__(self) -> int:
        raise NotImplementedError

    @cached_property
    def ends(self) -> np.ndarray:
        return self.arrivals + self.durations

    @cached_property
    def total_bytes(self) -> np.ndarray:
        return self.read_bytes + self.write_bytes

    # -- derived quantities --------------------------------------------

    def tcio(self, rates: CostRates = DEFAULT_RATES) -> np.ndarray:
        """Per-job TCIO rate if placed on HDD (HDD-equivalents)."""
        return np.asarray(tcio_rate(self.read_ops, self.write_bytes, self.durations, rates))

    def io_density(self, rates: CostRates = DEFAULT_RATES) -> np.ndarray:
        """Total I/O over the lifetime divided by the peak footprint.

        Measured as effective disk operations per GiB of footprint; this
        is the quantity the paper clusters jobs by when designing
        importance categories (Section 4.2 / Figure 4).
        """
        total_ops = (
            self.tcio(rates) * np.maximum(self.durations, 1.0) * rates.hdd_ops_per_second
        )
        return total_ops / np.maximum(self.sizes / GIB, 1e-9)

    def costs(self, rates: CostRates = DEFAULT_RATES) -> JobCostVector:
        """HDD and SSD TCO for every job."""
        tcio = self.tcio(rates)
        c_hdd = hdd_cost(self.sizes, self.durations, self.total_bytes, tcio, rates)
        c_ssd = ssd_cost(self.sizes, self.durations, self.total_bytes, self.write_bytes, rates)
        return JobCostVector(c_hdd=np.asarray(c_hdd), c_ssd=np.asarray(c_ssd))

    def peak_ssd_usage(self) -> float:
        """Peak concurrent footprint if every job were placed on SSD.

        Experiments express SSD quotas as fractions of this value
        (Section 5.1: capacity is measured under infinite SSD first).
        """
        n = len(self)
        if n == 0:
            return 0.0
        events = np.concatenate([self.arrivals, self.ends])
        deltas = np.concatenate([self.sizes, -self.sizes])
        # Ends sort before arrivals at equal timestamps (right-open
        # intervals): release space before allocating.
        tie = np.concatenate([np.ones(n), np.zeros(n)])
        idx = np.lexsort((tie, events))
        usage = np.cumsum(deltas[idx])
        return float(usage.max(initial=0.0))


class Trace(TraceBase):
    """An immutable, arrival-ordered sequence of shuffle jobs.

    Array views (:attr:`arrivals`, :attr:`sizes`, ...) are cached on
    first access; the job list must not be mutated after construction.
    """

    def __init__(self, jobs: Sequence[ShuffleJob], name: str = "trace"):
        self.jobs: tuple[ShuffleJob, ...] = tuple(
            sorted(jobs, key=lambda j: (j.arrival, j.job_id))
        )
        self.name = name

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[ShuffleJob]:
        return iter(self.jobs)

    def __getitem__(self, i: int) -> ShuffleJob:
        return self.jobs[i]

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, {len(self.jobs)} jobs)"

    # -- structure-of-arrays views ------------------------------------

    @cached_property
    def arrivals(self) -> np.ndarray:
        return np.array([j.arrival for j in self.jobs], dtype=float)

    @cached_property
    def durations(self) -> np.ndarray:
        return np.array([j.duration for j in self.jobs], dtype=float)

    @cached_property
    def sizes(self) -> np.ndarray:
        return np.array([j.size for j in self.jobs], dtype=float)

    @cached_property
    def read_bytes(self) -> np.ndarray:
        return np.array([j.read_bytes for j in self.jobs], dtype=float)

    @cached_property
    def write_bytes(self) -> np.ndarray:
        return np.array([j.write_bytes for j in self.jobs], dtype=float)

    @cached_property
    def read_ops(self) -> np.ndarray:
        return np.array([j.read_ops for j in self.jobs], dtype=float)

    @cached_property
    def pipelines(self) -> list[str]:
        return [j.pipeline for j in self.jobs]

    @cached_property
    def users(self) -> list[str]:
        return [j.user for j in self.jobs]

    # -- job-backed operations -----------------------------------------

    def split_at(self, t: float, names: tuple[str, str] | None = None) -> tuple["Trace", "Trace"]:
        """Split into (jobs arriving before ``t``, jobs arriving at/after).

        Used for train/test week splits (Section 5.1).
        """
        before = [j for j in self.jobs if j.arrival < t]
        after = [j for j in self.jobs if j.arrival >= t]
        n1, n2 = names or (f"{self.name}/train", f"{self.name}/test")
        return Trace(before, n1), Trace(after, n2)

    def subset(self, mask: np.ndarray, name: str | None = None) -> "Trace":
        """Select jobs by boolean mask (order preserved)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self.jobs),):
            raise ValueError(f"mask shape {mask.shape} != ({len(self.jobs)},)")
        picked = [j for j, m in zip(self.jobs, mask) if m]
        return Trace(picked, name or f"{self.name}/subset")
