"""Cluster trace generation: clusters -> users -> pipelines -> jobs.

Substitutes for Google's production traces (see DESIGN.md).  A cluster
is a weighted mix of workload archetypes; each user owns a few
pipelines; each pipeline executes periodically or via a (diurnally
modulated) Poisson process, and each execution emits one shuffle job per
step.  The paper's evaluation picks clusters with uneven application
distributions (Section 5.3) and one outlier cluster that "only runs
certain workloads that are rare in other clusters" (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import rng_from
from ..units import DAY, GIB, HOUR, KIB, WEEK
from .archetypes import ARCHETYPES, Archetype
from .job import ShuffleJob, Trace
from .metadata import MetadataSynthesizer

__all__ = ["ClusterSpec", "generate_cluster_trace", "default_cluster_specs"]


@dataclass(frozen=True)
class ClusterSpec:
    """Specification of one synthetic cluster.

    Attributes
    ----------
    name:
        Cluster identifier (e.g. ``"C0"``).
    archetype_weights:
        Sampling weights over archetype names for pipeline assignment.
        Uneven weights across clusters model the paper's observation
        that "the distribution of applications is uneven among clusters".
    n_pipelines:
        Total pipelines in the cluster.
    n_users:
        Number of distinct users; pipelines are assigned to users with a
        Zipf-like skew so that a few users dominate TCO (Section 5.4
        holds out the second-largest user).
    seed:
        Base RNG seed for the cluster.
    """

    name: str
    archetype_weights: dict[str, float]
    n_pipelines: int = 20
    n_users: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_pipelines < 1 or self.n_users < 1:
            raise ValueError("need at least one pipeline and one user")
        if not self.archetype_weights:
            raise ValueError("archetype_weights must be non-empty")
        unknown = set(self.archetype_weights) - set(ARCHETYPES)
        if unknown:
            raise ValueError(f"unknown archetypes: {sorted(unknown)}")
        if any(w < 0 for w in self.archetype_weights.values()):
            raise ValueError("archetype weights must be >= 0")
        if sum(self.archetype_weights.values()) <= 0:
            raise ValueError("archetype weights must sum to > 0")


@dataclass
class _PipelineState:
    """Latent per-pipeline parameters drawn once per pipeline."""

    idx: int
    user: str
    archetype: Archetype
    scale: dict[str, float]
    meta: MetadataSynthesizer
    phase: float
    weekend_factor: float
    active_start: float = 0.0
    active_end: float = float("inf")
    n_steps: int = field(default=1)
    # Slow multiplicative drift of the pipeline's I/O intensity: data
    # access patterns are "highly dynamic" (Section 1), so a pipeline's
    # density regime changes over days.  Recent-history features track
    # the current regime; static identity features cannot.
    drift_amplitude: float = 0.0
    drift_period: float = 4 * DAY
    drift_phase: float = 0.0


def _diurnal_factor(t: float, amplitude: float, weekend_factor: float) -> float:
    """Activity modulation by hour-of-day and weekday."""
    hour_angle = 2.0 * np.pi * ((t % DAY) / DAY)
    f = 1.0 + amplitude * np.sin(hour_angle - np.pi / 2.0)
    weekday = int(t // DAY) % 7
    if weekday >= 5:
        f *= weekend_factor
    return max(f, 0.05)


def _execution_times(
    pipe: _PipelineState, duration: float, rng: np.random.Generator
) -> np.ndarray:
    """Arrival times of a pipeline's executions over [0, duration)."""
    arch = pipe.archetype
    lo = max(pipe.active_start, 0.0)
    hi = min(pipe.active_end, duration)
    if hi <= lo:
        return np.array([])
    if arch.period is not None:
        ticks = np.arange(lo + pipe.phase % arch.period, hi, arch.period)
        if ticks.size == 0:
            return np.array([])
        jitter = rng.normal(0.0, 0.03 * arch.period, size=ticks.shape)
        times = np.clip(ticks + jitter, lo, hi - 1.0)
        # Diurnal thinning: skip some off-peak executions.
        keep = np.array(
            [
                rng.random()
                < _diurnal_factor(t, arch.diurnal_amplitude, pipe.weekend_factor) / 1.5
                for t in times
            ]
        )
        if not keep.any():  # always keep at least one execution
            keep[0] = True
        return np.sort(times[keep])
    # Poisson process with diurnal thinning at max rate.
    rate_per_sec = arch.arrival_rate / HOUR
    max_factor = (1.0 + arch.diurnal_amplitude) * 1.0
    n_expected = rate_per_sec * max_factor * (hi - lo)
    n = rng.poisson(n_expected)
    if n == 0:
        return np.array([])
    candidates = np.sort(rng.uniform(lo, hi, size=n))
    accept = np.array(
        [
            rng.random()
            < _diurnal_factor(t, arch.diurnal_amplitude, pipe.weekend_factor) / (1.0 + arch.diurnal_amplitude)
            for t in candidates
        ],
        dtype=bool,
    )
    return candidates[accept]


def _make_job(
    job_id: int,
    cluster: str,
    pipe: _PipelineState,
    step_idx: int,
    t: float,
    rng: np.random.Generator,
) -> ShuffleJob:
    arch = pipe.archetype
    scale = pipe.scale
    size = scale["size_median"] * rng.lognormal(0.0, 0.5 * arch.size_sigma)
    size = max(size, 1 * KIB)
    lifetime = scale["lifetime_median"] * rng.lognormal(0.0, 0.5 * arch.lifetime_sigma)
    lifetime = max(lifetime, 1.0)
    gib = size / GIB
    workers = max(1, int(round(scale["workers_median"] * rng.lognormal(0.0, 0.2))))
    threads = int(rng.integers(1, 9))
    initial_buckets = max(1, int(workers * rng.uniform(2.0, 8.0)))
    # I/O intensity varies per job in ways the model can learn: more
    # buckets per worker means more parallel small reads, and later
    # shuffle steps of an execution are read-heavier (the step name
    # exposes the step index to the model as a metadata token).
    bucket_factor = (initial_buckets / (workers * 5.0)) ** 0.6
    step_factor = 0.6 + 0.35 * step_idx
    drift = np.exp(
        pipe.drift_amplitude
        * np.sin(2.0 * np.pi * t / pipe.drift_period + pipe.drift_phase)
    )
    read_ops = max(
        1.0,
        scale["read_ops_per_gib"] * gib * bucket_factor * step_factor * drift
        * rng.lognormal(0.0, 0.3),
    )
    write_bytes = size * arch.write_amplification * rng.lognormal(0.0, 0.15)
    read_bytes = size * arch.read_amplification * rng.lognormal(0.0, 0.15)
    buckets = max(1, int(initial_buckets * rng.uniform(0.7, 1.3)))
    requested_shards = max(1, int(buckets * rng.uniform(0.5, 2.0)))
    shards = max(1, int(requested_shards * rng.uniform(0.8, 1.2)))
    stripes = int(rng.integers(1, 17))
    records = max(1.0, write_bytes / (1.0 * KIB) * rng.uniform(0.5, 2.0))

    return ShuffleJob(
        job_id=job_id,
        cluster=cluster,
        user=pipe.user,
        pipeline=pipe.meta.pipeline_name,
        archetype=arch.name,
        arrival=float(t),
        duration=float(lifetime),
        size=float(size),
        read_bytes=float(read_bytes),
        write_bytes=float(write_bytes),
        read_ops=float(read_ops),
        metadata=pipe.meta.for_step(step_idx),
        resources={
            "bucket_sizing_initial_num_stripes": float(stripes),
            "bucket_sizing_num_shards": float(shards),
            "bucket_sizing_num_worker_threads": float(threads),
            "bucket_sizing_num_workers": float(workers),
            "initial_num_buckets": float(initial_buckets),
            "num_buckets": float(buckets),
            "records_written": float(records),
            "requested_num_shards": float(requested_shards),
        },
    )


def generate_cluster_trace(
    spec: ClusterSpec,
    duration: float = 2 * WEEK,
    seed: int | np.random.Generator | None = None,
) -> Trace:
    """Generate the full shuffle-job trace of one cluster.

    Parameters
    ----------
    spec:
        Cluster definition (archetype mix, pipeline/user counts).
    duration:
        Trace span in seconds.  The paper uses a contiguous two-week
        span split into train/test weeks.
    seed:
        Overrides ``spec.seed`` when given.
    """
    rng = rng_from(spec.seed if seed is None else seed)
    names = sorted(spec.archetype_weights)
    weights = np.array([spec.archetype_weights[n] for n in names], dtype=float)
    weights = weights / weights.sum()

    # Zipf-skewed user sizes: user u gets weight ~ 1/(u+1).
    user_weights = 1.0 / np.arange(1, spec.n_users + 1)
    user_weights /= user_weights.sum()

    pipelines: list[_PipelineState] = []
    for p in range(spec.n_pipelines):
        arch = ARCHETYPES[names[int(rng.choice(len(names), p=weights))]]
        user = f"{spec.name}-user{int(rng.choice(spec.n_users, p=user_weights))}"
        meta_rng = rng_from(int(rng.integers(2**31)))
        # Workload churn: some pipelines appear mid-trace (new workloads
        # the training week never saw) and some retire early — "workloads
        # arrive and evolve at a high rate" (Section 1).
        roll = rng.random()
        active_start, active_end = 0.0, float("inf")
        if roll < 0.30:
            active_start = float(rng.uniform(0.1, 0.7) * duration)
        elif roll < 0.50:
            active_end = float(rng.uniform(0.3, 0.9) * duration)
        pipe = _PipelineState(
            idx=p,
            user=user,
            archetype=arch,
            scale=arch.sample_pipeline_scale(rng),
            meta=MetadataSynthesizer(spec.name, user, p, arch.name, meta_rng),
            phase=float(rng.uniform(0.0, arch.period if arch.period else HOUR)),
            weekend_factor=float(rng.uniform(0.5, 1.0)),
            active_start=active_start,
            active_end=active_end,
            drift_amplitude=float(rng.uniform(0.3, 1.0)),
            drift_period=float(rng.uniform(2.0, 6.0) * DAY),
            drift_phase=float(rng.uniform(0.0, 2.0 * np.pi)),
        )
        lo, hi = arch.steps_range
        pipe.n_steps = int(rng.integers(lo, hi + 1))
        pipelines.append(pipe)

    jobs: list[ShuffleJob] = []
    job_id = 0
    for pipe in pipelines:
        for t in _execution_times(pipe, duration, rng):
            for step in range(pipe.n_steps):
                # Steps within an execution start staggered: each step
                # begins partway through the previous one (Section 2.1:
                # write/sort/read phases can overlap in time).
                stagger = step * 0.3 * pipe.scale["lifetime_median"]
                jobs.append(
                    _make_job(job_id, spec.name, pipe, step, t + stagger, rng)
                )
                job_id += 1
    return Trace(jobs, name=spec.name)


def default_cluster_specs(n: int = 10, base_seed: int = 7) -> list[ClusterSpec]:
    """The 10-cluster suite used by the overall-savings experiments.

    Clusters differ in archetype mix (uneven application distribution).
    Cluster index 3 ("C3") is the Section-5.4 outlier: it only runs
    workloads that are rare elsewhere (checkpointing + compress/upload).
    """
    mixes: list[dict[str, float]] = [
        {"logproc": 3, "dbquery": 3, "streaming": 2, "mltrain": 2, "staging": 2, "reporting": 1},
        {"video": 3, "logproc": 2, "dbquery": 2, "streaming": 1, "staging": 2},
        {"dbquery": 4, "streaming": 2, "simulation": 2, "logproc": 1, "staging": 2, "reporting": 1},
        {"mlcheckpoint": 3, "compressupload": 3},  # outlier cluster C3
        {"mltrain": 3, "simulation": 2, "dbquery": 2, "logproc": 2, "staging": 2, "reporting": 1},
        {"logproc": 4, "video": 2, "streaming": 2, "dbquery": 1, "staging": 2},
        {"streaming": 3, "dbquery": 2, "simulation": 1, "mltrain": 2, "staging": 2, "reporting": 1},
        {"simulation": 3, "video": 2, "logproc": 2, "streaming": 1, "staging": 2},
        {"dbquery": 3, "mltrain": 2, "video": 1, "streaming": 1, "logproc": 1, "staging": 2, "reporting": 1},
        {"logproc": 2, "dbquery": 2, "streaming": 2, "simulation": 2, "video": 1, "staging": 2},
    ]
    specs = []
    for i in range(n):
        mix = mixes[i % len(mixes)]
        specs.append(
            ClusterSpec(
                name=f"C{i}",
                archetype_weights=dict(mix),
                n_pipelines=20,
                n_users=8,
                seed=base_seed + 1000 * i,
            )
        )
    return specs
