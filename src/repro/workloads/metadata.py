"""Execution-metadata string synthesis and tokenization.

The paper's group-B features are strings "formatted as ... execution-
related names, paths and targets.  Key elements are separated by
non-alphanumeric characters" and are treated as sequences of substring
tokens (Section 4.1, Tables 2-3).  This module synthesizes realistic
metadata for generated jobs and tokenizes any metadata string the same
way the paper describes.
"""

from __future__ import annotations

import re
import zlib

import numpy as np

__all__ = [
    "METADATA_FIELDS",
    "tokenize",
    "stable_hash",
    "MetadataSynthesizer",
]

#: The five execution-metadata fields of Table 2 (group B).
METADATA_FIELDS = (
    "build_target_name",
    "execution_name",
    "pipeline_name",
    "step_name",
    "user_name",
)

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")

_TEAMS = ("storage", "ads", "search", "maps", "photos", "logs", "research", "payments")
_COMPONENTS = ("importer", "exporter", "aggregator", "joiner", "indexer", "ranker", "reducer")
_OPS = ("GroupByKey", "CoGroupByKey", "Combine", "Flatten", "Partition", "Distinct")


def tokenize(value: str) -> list[str]:
    """Split a metadata string into its alphanumeric key elements.

    ``//storage/logs/buildmanager:importer`` ->
    ``['storage', 'logs', 'buildmanager', 'importer']``.
    """
    return _TOKEN_RE.findall(value)


def stable_hash(token: str, seed: int = 0) -> int:
    """Deterministic 32-bit hash of a token (stable across processes)."""
    return zlib.crc32(f"{seed}:{token}".encode("utf-8")) & 0xFFFFFFFF


class MetadataSynthesizer:
    """Generates consistent metadata strings for a pipeline's jobs.

    A pipeline keeps fixed build-target / execution / pipeline names,
    while step and user names vary per shuffle step, mirroring the
    examples in Table 3 of the paper.
    """

    def __init__(self, cluster: str, user: str, pipeline_idx: int, archetype: str,
                 rng: np.random.Generator):
        team = _TEAMS[int(rng.integers(len(_TEAMS)))]
        component = _COMPONENTS[int(rng.integers(len(_COMPONENTS)))]
        self.build_target_name = f"//{team}/{archetype}/buildmanager:{component}"
        self.execution_name = f"com.{team}.{archetype}.{component}.launcher.Main"
        self.pipeline_name = f"org_{team}.{archetype}-dims-prod.{component}{pipeline_idx}"
        self._ops = _OPS
        self._rng = rng

    def for_step(self, step_idx: int) -> dict[str, str]:
        """Metadata dict for one shuffle step of an execution."""
        op = self._ops[step_idx % len(self._ops)]
        return {
            "build_target_name": self.build_target_name,
            "execution_name": self.execution_name,
            "pipeline_name": self.pipeline_name,
            "step_name": f"s{step_idx}-open-shuffle{step_idx}",
            "user_name": f"{op}-{step_idx}",
        }
