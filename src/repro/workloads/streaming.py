"""Streaming trace ingestion: drive the placement runtime out-of-core.

The ~1M-job profile in ``benchmarks/bench_perf_hotpaths.py`` showed the
chunked engine is trace-bound, not engine-bound: the dominant memory
cost of a large run is materializing one :class:`ShuffleJob` Python
object (plus its metadata/resource dicts) per job — several hundred
bytes each — before the simulator reads a single arrival.  This module
replaces that with a **block-iterator protocol**:

- :class:`TraceBlock` — one chunk of jobs as structure-of-arrays
  columns (arrival-sorted, validated), the unit of ingestion.
- :class:`TraceSource` — anything that yields ``TraceBlock``s in
  arrival order: an in-memory :class:`~repro.workloads.job.Trace`
  (:class:`InMemoryTraceSource`), a ``.npz`` pair saved by
  :func:`~repro.workloads.traces.save_trace`
  (:class:`~repro.workloads.traces.NpzTraceSource`), or a CSV streamed
  line-buffered (:class:`~repro.workloads.external.CsvTraceSource`).
- :class:`StreamedTrace` — the drained form the placement runtime
  consumes: the six numeric columns plus the pipeline identity list,
  and *nothing else*.  No per-job objects are ever built.

Memory model
------------
Draining a source keeps ~56 bytes/job of numeric columns resident
(six float64 columns plus one pointer per identity column into a
deduplicated string pool — the adapters keep one ``str`` per *unique*
pipeline/user, not one per job) — the same arrays an in-memory run
caches on its ``Trace`` — so
peak RSS is set by the columns, not by the trace representation: about
an order of magnitude below the job-object path, and flat with respect
to the on-disk format (the CSV text is never held).  The residue is
irreducible as long as results stay exact: ``SimResult.ssd_fraction``
is defined over the full job index space, and feedback policies (the
adaptive window, per-shard counters) consume per-job arrivals/TCIO.

Bit-identity contract
---------------------
A streamed run is **bit-identical** to the in-memory run of the same
jobs: :class:`StreamedTrace` reproduces exactly the arrays a ``Trace``
would cache, and both run the same engine code
(``tests/test_streaming.py`` asserts ``SimResult`` equality across
engines and shard counts).  The one behavioural difference: sources
must already be arrival-ordered (``Trace`` silently re-sorts; an
out-of-core reader cannot), so out-of-order blocks raise ``ValueError``
instead.

Entry points
------------
:func:`open_trace_source` dispatches a trace/path/source to the right
adapter; :func:`repro.workloads.external.stream_csv_trace` is the CSV
shorthand.  ``simulate``/``simulate_sharded``/``run_placement`` accept
any of them directly::

    from repro.storage import simulate
    from repro.workloads import stream_csv_trace

    res = simulate(stream_csv_trace("week2.csv"), policy, capacity)
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from .job import ShuffleJob, TraceBase

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "TraceBlock",
    "TraceSource",
    "InMemoryTraceSource",
    "StreamedTrace",
    "open_trace_source",
    "materialize_trace",
    "rechunk_blocks",
]

#: Default jobs per block: large enough to amortize per-block numpy
#: overhead, small enough that a block of CSV text plus its parsed
#: columns stays a few MiB.
DEFAULT_BLOCK_SIZE = 65536

#: The numeric columns every block carries, in canonical order.
BLOCK_COLUMNS = (
    "arrivals",
    "durations",
    "sizes",
    "read_bytes",
    "write_bytes",
    "read_ops",
)

_DEFAULT_PIPELINE = "pipeline0"
_DEFAULT_USER = "user0"


@dataclass(frozen=True)
class TraceBlock:
    """One arrival-ordered chunk of jobs as structure-of-arrays columns.

    The six numeric columns are mandatory, 1-D, equal-length float64;
    ``pipelines``/``users`` (identity strings, used for shard routing
    and hash categories) and ``job_ids`` are optional and default to
    the loader conventions (``"pipeline0"``/``"user0"``/positional
    index) when absent.  Validation mirrors :class:`ShuffleJob`'s
    constructor: arrivals must be non-decreasing, durations, sizes and
    I/O volumes non-negative.
    """

    arrivals: np.ndarray
    durations: np.ndarray
    sizes: np.ndarray
    read_bytes: np.ndarray
    write_bytes: np.ndarray
    read_ops: np.ndarray
    pipelines: tuple[str, ...] | None = None
    users: tuple[str, ...] | None = None
    job_ids: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = None
        for col in BLOCK_COLUMNS:
            arr = np.ascontiguousarray(getattr(self, col), dtype=float)
            object.__setattr__(self, col, arr)
            if arr.ndim != 1:
                raise ValueError(f"block column {col!r} must be 1-D")
            if n is None:
                n = arr.size
            elif arr.size != n:
                raise ValueError(
                    f"block column {col!r} has {arr.size} entries, expected {n}"
                )
        if self.arrivals.size > 1 and (np.diff(self.arrivals) < 0).any():
            raise ValueError("block arrivals must be non-decreasing")
        for col in ("durations", "sizes", "read_bytes", "write_bytes", "read_ops"):
            if (getattr(self, col) < 0).any():
                raise ValueError(f"block column {col!r} has negative entries")
        for attr in ("pipelines", "users"):
            ident = getattr(self, attr)
            if ident is not None and len(ident) != n:
                raise ValueError(
                    f"block {attr} has {len(ident)} entries, expected {n}"
                )
        if self.job_ids is not None:
            ids = np.ascontiguousarray(self.job_ids, dtype=np.int64)
            object.__setattr__(self, "job_ids", ids)
            if ids.size != n:
                raise ValueError(f"block job_ids has {ids.size} entries, expected {n}")

    def __len__(self) -> int:
        return self.arrivals.size


class TraceSource:
    """Iterator protocol over :class:`TraceBlock`s in arrival order.

    Subclasses implement :meth:`blocks`; iteration delegates to it, so
    ``for block in source`` and the materializing consumers
    (:meth:`StreamedTrace.from_source`, the placement runtime) all
    share one code path.  A source may be single-shot (a pipe) or
    re-iterable (a file); the adapters shipped here re-open their
    backing store on every :meth:`blocks` call and are re-iterable.
    """

    #: Report label carried onto the drained trace.
    name: str = "stream"

    def blocks(self) -> Iterator[TraceBlock]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[TraceBlock]:
        return self.blocks()


class InMemoryTraceSource(TraceSource):
    """Adapter: slice an already-materialized trace into blocks.

    Mostly useful for tests and as the degenerate case of the protocol
    (everything already in memory); the streamed result is bit-identical
    to simulating ``trace`` directly.
    """

    def __init__(self, trace: TraceBase, block_size: int = DEFAULT_BLOCK_SIZE):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.trace = trace
        self.block_size = block_size
        self.name = trace.name

    def blocks(self) -> Iterator[TraceBlock]:
        trace = self.trace
        n = len(trace)
        pipelines = trace.pipelines
        users = getattr(trace, "users", None)
        for lo in range(0, n, self.block_size):
            hi = min(lo + self.block_size, n)
            yield TraceBlock(
                arrivals=trace.arrivals[lo:hi],
                durations=trace.durations[lo:hi],
                sizes=trace.sizes[lo:hi],
                read_bytes=trace.read_bytes[lo:hi],
                write_bytes=trace.write_bytes[lo:hi],
                read_ops=trace.read_ops[lo:hi],
                pipelines=tuple(pipelines[lo:hi]),
                users=None if users is None else tuple(users[lo:hi]),
            )


class StreamedTrace(TraceBase):
    """A trace materialized as columns only — no per-job objects.

    Produced by :meth:`from_source`; consumed everywhere a
    :class:`~repro.workloads.job.Trace` is (the placement runtime, cost
    accounting, ``peak_ssd_usage``, hash categories, shard routing).
    Individual jobs can still be inspected — ``trace[i]`` synthesizes a
    transient :class:`ShuffleJob` from the columns (empty
    metadata/resources) — but nothing in the runtime does, so memory
    stays at the column residue.
    """

    def __init__(
        self,
        arrivals: np.ndarray,
        durations: np.ndarray,
        sizes: np.ndarray,
        read_bytes: np.ndarray,
        write_bytes: np.ndarray,
        read_ops: np.ndarray,
        pipelines: list[str] | None = None,
        users: list[str] | None = None,
        job_ids: np.ndarray | None = None,
        name: str = "stream",
    ):
        self.arrivals = np.ascontiguousarray(arrivals, dtype=float)
        self.durations = np.ascontiguousarray(durations, dtype=float)
        self.sizes = np.ascontiguousarray(sizes, dtype=float)
        self.read_bytes = np.ascontiguousarray(read_bytes, dtype=float)
        self.write_bytes = np.ascontiguousarray(write_bytes, dtype=float)
        self.read_ops = np.ascontiguousarray(read_ops, dtype=float)
        self._pipelines = pipelines
        self._users = users
        self._job_ids = job_ids
        self.name = name

    def __len__(self) -> int:
        return self.arrivals.size

    def __repr__(self) -> str:
        return f"StreamedTrace({self.name!r}, {len(self)} jobs)"

    @cached_property
    def pipelines(self) -> list[str]:
        if self._pipelines is not None:
            return self._pipelines
        return [_DEFAULT_PIPELINE] * len(self)

    @cached_property
    def users(self) -> list[str]:
        if self._users is not None:
            return self._users
        return [_DEFAULT_USER] * len(self)

    @cached_property
    def job_ids(self) -> np.ndarray:
        if self._job_ids is not None:
            return self._job_ids
        return np.arange(len(self), dtype=np.int64)

    def __getitem__(self, i: int) -> ShuffleJob:
        return ShuffleJob(
            job_id=int(self.job_ids[i]),
            cluster="stream",
            user=self.users[i],
            pipeline=self.pipelines[i],
            archetype="stream",
            arrival=float(self.arrivals[i]),
            duration=float(self.durations[i]),
            size=float(self.sizes[i]),
            read_bytes=float(self.read_bytes[i]),
            write_bytes=float(self.write_bytes[i]),
            read_ops=float(self.read_ops[i]),
        )

    def __iter__(self) -> Iterator[ShuffleJob]:
        return (self[i] for i in range(len(self)))

    @classmethod
    def from_source(cls, source: TraceSource | Iterable[TraceBlock]) -> "StreamedTrace":
        """Drain ``source`` block by block into one columnar trace.

        Cross-block arrival order is enforced (within-block order is the
        block's own invariant); identity columns missing from some
        blocks are filled with the loader defaults.  An exhausted or
        empty source yields a valid zero-job trace.
        """
        cols: dict[str, list[np.ndarray]] = {c: [] for c in BLOCK_COLUMNS}
        pipelines: list[str] = []
        users: list[str] = []
        job_ids: list[np.ndarray] = []
        any_pipelines = any_users = any_ids = False
        last_arrival = -np.inf
        n_blocks = 0
        n_jobs = 0
        for block in source:
            n_blocks += 1
            if len(block) == 0:
                continue
            if float(block.arrivals[0]) < last_arrival:
                raise ValueError(
                    f"block {n_blocks - 1} starts at t={float(block.arrivals[0]):g}, "
                    f"before the previous block's last arrival t={last_arrival:g}; "
                    "trace sources must be arrival-ordered"
                )
            last_arrival = float(block.arrivals[-1])
            for c in BLOCK_COLUMNS:
                cols[c].append(getattr(block, c))
            if block.pipelines is not None:
                any_pipelines = True
                pipelines.extend(block.pipelines)
            else:
                pipelines.extend([_DEFAULT_PIPELINE] * len(block))
            if block.users is not None:
                any_users = True
                users.extend(block.users)
            else:
                users.extend([_DEFAULT_USER] * len(block))
            if block.job_ids is not None:
                any_ids = True
                job_ids.append(block.job_ids)
            else:
                job_ids.append(np.arange(n_jobs, n_jobs + len(block), dtype=np.int64))
            n_jobs += len(block)
        empty = np.empty(0, dtype=float)
        return cls(
            *(np.concatenate(cols[c]) if cols[c] else empty for c in BLOCK_COLUMNS),
            pipelines=pipelines if any_pipelines else None,
            users=users if any_users else None,
            job_ids=np.concatenate(job_ids) if any_ids else None,
            name=getattr(source, "name", "stream"),
        )


def open_trace_source(
    obj: "TraceSource | TraceBase | str | Path",
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> TraceSource:
    """Dispatch a trace, source, or path to the right block adapter.

    - a :class:`TraceSource` passes through unchanged;
    - a :class:`~repro.workloads.job.Trace` (or any column-backed
      trace) wraps in :class:`InMemoryTraceSource`;
    - a ``*.csv`` path opens line-buffered via
      :class:`~repro.workloads.external.CsvTraceSource`;
    - a ``*.npz`` path — or a prefix with an ``.npz`` next to it, the
      :func:`~repro.workloads.traces.save_trace` convention — opens via
      :class:`~repro.workloads.traces.NpzTraceSource`.
    """
    if isinstance(obj, TraceSource):
        return obj
    if isinstance(obj, TraceBase):
        return InMemoryTraceSource(obj, block_size=block_size)
    path = Path(obj)
    suffix = path.suffix.lower()
    if suffix == ".csv":
        from .external import CsvTraceSource

        return CsvTraceSource(path, block_size=block_size)
    if suffix == ".npz" or path.with_suffix(".npz").exists():
        from .traces import NpzTraceSource

        return NpzTraceSource(path, block_size=block_size)
    raise ValueError(
        f"cannot infer a trace source from {str(path)!r}: expected a .csv file, "
        "a .npz trace (save_trace output), a Trace, or a TraceSource"
    )


def rechunk_blocks(
    source: "TraceSource | Iterable[TraceBlock]", batch_jobs: int
) -> Iterator[TraceBlock]:
    """Re-slice a block stream into blocks of exactly ``batch_jobs`` jobs.

    A source's natural block size is an ingestion detail (file-reader
    buffering); consumers that need a *submission* granularity — the
    online load generator's micro-batches, a service driving fixed-size
    admission windows — re-chunk through this adapter.  Oversized
    blocks are split, undersized runs are merged across block
    boundaries, and the final partial batch is emitted as-is.  Identity
    columns missing from some blocks are filled with the loader
    defaults, exactly as :meth:`StreamedTrace.from_source` fills them.
    """
    if batch_jobs < 1:
        raise ValueError("batch_jobs must be >= 1")
    cols: dict[str, list[np.ndarray]] = {c: [] for c in BLOCK_COLUMNS}
    pipelines: list[str] = []
    users: list[str] = []
    any_pipelines = any_users = False
    held = 0

    def _emit(take: int) -> TraceBlock:
        nonlocal held, any_pipelines, any_users
        joined = {c: np.concatenate(cols[c]) for c in BLOCK_COLUMNS}
        block = TraceBlock(
            **{c: joined[c][:take] for c in BLOCK_COLUMNS},
            pipelines=tuple(pipelines[:take]) if any_pipelines else None,
            users=tuple(users[:take]) if any_users else None,
        )
        for c in BLOCK_COLUMNS:
            rest = joined[c][take:]
            cols[c].clear()
            if rest.size:
                cols[c].append(rest)
        del pipelines[:take]
        del users[:take]
        held -= take
        if held == 0:
            any_pipelines = any_users = False
        return block

    for block in source:
        if len(block) == 0:
            continue
        for c in BLOCK_COLUMNS:
            cols[c].append(getattr(block, c))
        if block.pipelines is not None:
            any_pipelines = True
            pipelines.extend(block.pipelines)
        else:
            pipelines.extend([_DEFAULT_PIPELINE] * len(block))
        if block.users is not None:
            any_users = True
            users.extend(block.users)
        else:
            users.extend([_DEFAULT_USER] * len(block))
        held += len(block)
        while held >= batch_jobs:
            yield _emit(batch_jobs)
    if held:
        yield _emit(held)


def materialize_trace(
    obj: "TraceSource | TraceBase | str | Path",
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> TraceBase:
    """Resolve any trace-like input to a column-backed trace.

    Already-materialized traces (:class:`~repro.workloads.job.Trace`,
    :class:`StreamedTrace`) pass through untouched; sources and paths
    are drained block by block into a :class:`StreamedTrace`.  This is
    the normalization the placement runtime applies to its ``trace``
    argument.
    """
    if isinstance(obj, TraceBase):
        return obj
    return StreamedTrace.from_source(open_trace_source(obj, block_size=block_size))
