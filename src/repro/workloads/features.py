"""Feature extraction: Table 2 of the paper.

Turns a :class:`~repro.workloads.job.Trace` into a numeric feature
matrix for the gradient-boosted-trees models.  Features span four
groups, mirroring Figure 9c's analysis:

- **A — historical system metrics** (4 columns): per-pipeline running
  averages of TCIO / size / lifetime / I/O density over previously
  completed executions.
- **B — execution metadata** (hashed token indicators): the five string
  fields are tokenized on non-alphanumeric separators and feature-hashed
  into a fixed number of binary columns per field.
- **C — allocated resources** (8 columns): bucket/shard/worker counts
  and records written, known before execution.
- **T — job timestamp** (3 columns): hour-of-day, second-of-day,
  weekday of the job's start time.

Hashing keeps the encoder stateless: a model trained on one cluster can
score jobs of another cluster (Figure 8) and unseen users/pipelines
(Figure 10) without vocabulary alignment.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from ..cost import CostRates, DEFAULT_RATES, tcio_rate, tcio_rate_scalar
from ..units import DAY, GIB, HOUR
from .history import HISTORY_FEATURES, compute_history
from .job import Trace
from .metadata import METADATA_FIELDS, stable_hash, tokenize

__all__ = [
    "FEATURE_GROUPS",
    "RESOURCE_FEATURES",
    "TIME_FEATURES",
    "FeatureMatrix",
    "extract_features",
    "OnlineFeatureExtractor",
]

#: Allocated-resource columns (group C), Table 2 order.
RESOURCE_FEATURES = (
    "bucket_sizing_initial_num_stripes",
    "bucket_sizing_num_shards",
    "bucket_sizing_num_worker_threads",
    "bucket_sizing_num_workers",
    "initial_num_buckets",
    "num_buckets",
    "records_written",
    "requested_num_shards",
)

#: Timestamp columns (group T).
TIME_FEATURES = ("open_time_day_hour", "open_time_seconds", "open_time_weekday")

#: Feature-group codes as used in Figure 9c.
FEATURE_GROUPS = ("A", "B", "C", "T")

#: Hash buckets per metadata field (group B width = 5 * this).
DEFAULT_HASH_BUCKETS = 16


@dataclass(frozen=True)
class FeatureMatrix:
    """A dense feature matrix with column names and group labels.

    Attributes
    ----------
    X:
        (n_jobs, n_features) float64 matrix.
    names:
        Column names, length n_features.
    groups:
        Group code per column ("A", "B", "C" or "T").
    """

    X: np.ndarray
    names: tuple[str, ...]
    groups: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.X.ndim != 2:
            raise ValueError("X must be 2-D")
        if self.X.shape[1] != len(self.names) or len(self.names) != len(self.groups):
            raise ValueError("names/groups must match X's column count")

    def __len__(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    def take(self, idx: np.ndarray) -> "FeatureMatrix":
        """Row subset (e.g. train/test split aligned with a trace split)."""
        return FeatureMatrix(X=self.X[idx], names=self.names, groups=self.groups)

    def group_columns(self, group: str) -> np.ndarray:
        """Column indices belonging to a feature group."""
        return np.array([i for i, g in enumerate(self.groups) if g == group], dtype=int)

    def drop_columns(self, cols: np.ndarray) -> "FeatureMatrix":
        """Return a copy with the given columns removed (for importance)."""
        keep = np.setdiff1d(np.arange(self.n_features), cols)
        return FeatureMatrix(
            X=self.X[:, keep],
            names=tuple(self.names[i] for i in keep),
            groups=tuple(self.groups[i] for i in keep),
        )


def _hash_metadata(trace: Trace, n_buckets: int) -> tuple[np.ndarray, list[str]]:
    """Feature-hash the five metadata string fields into binary columns."""
    n = len(trace)
    X = np.zeros((n, len(METADATA_FIELDS) * n_buckets))
    names: list[str] = []
    for f_idx, field in enumerate(METADATA_FIELDS):
        names.extend(f"{field}_h{b}" for b in range(n_buckets))
    for i, job in enumerate(trace):
        for f_idx, field in enumerate(METADATA_FIELDS):
            value = job.metadata.get(field, "")
            base = f_idx * n_buckets
            for token in tokenize(value):
                X[i, base + stable_hash(token, seed=f_idx) % n_buckets] = 1.0
    return X, names


class OnlineFeatureExtractor:
    """Incremental Table-2 feature extraction for arriving jobs.

    The offline :func:`extract_features` needs the whole trace up front
    (group A is a causal scan over completed same-pipeline jobs); a
    live placement service sees one arrival at a time.  This extractor
    carries the causal state — per-pipeline pending completions and
    running metric sums — across calls, and :meth:`push` produces, for
    each newly arrived job, exactly the feature row the offline
    extractor would have produced at the same position: fold
    same-pipeline completions with ``end <= arrival``, emit the running
    averages, then schedule the job's own completion.  Rows are
    bit-identical to the offline matrix
    (``tests/test_serve_online.py``).

    :meth:`warm_start` seeds the state from an already-observed trace
    (e.g. the training week) without emitting rows, so a deployment
    week served online sees the same history a combined-trace offline
    extraction would give it.
    """

    def __init__(
        self,
        rates: CostRates = DEFAULT_RATES,
        n_hash_buckets: int = DEFAULT_HASH_BUCKETS,
    ):
        self.rates = rates
        self.n_hash_buckets = n_hash_buckets
        #: per-pipeline min-heap of (end, global_index, metrics[4])
        self._pending: dict[str, list[tuple[float, int, np.ndarray]]] = {}
        self._sums: dict[str, np.ndarray] = {}
        self._counts: dict[str, int] = {}
        self._index = 0
        # Row scratch reused across push_block calls (grown on demand).
        self._rows: np.ndarray | None = None

    @property
    def n_features(self) -> int:
        return (
            len(HISTORY_FEATURES)
            + len(METADATA_FIELDS) * self.n_hash_buckets
            + len(RESOURCE_FEATURES)
            + len(TIME_FEATURES)
        )

    def _metrics(self, job) -> np.ndarray:
        """The group-A metric vector one completed execution contributes.

        Matches :func:`~repro.workloads.history.compute_history`'s
        per-job fold — ``[tcio, size, lifetime, io_density]`` with the
        same elementwise arithmetic, so incremental sums stay
        bit-identical to the offline scan.
        """
        tcio = tcio_rate(job.read_ops, job.write_bytes, job.duration, self.rates)
        total_ops = (
            tcio * np.maximum(job.duration, 1.0) * self.rates.hdd_ops_per_second
        )
        density = total_ops / np.maximum(job.size / GIB, 1e-9)
        return np.array([tcio, job.size, job.duration, density])

    def _schedule(self, job) -> None:
        entry = (job.arrival + job.duration, self._index, self._metrics(job))
        heapq.heappush(self._pending.setdefault(job.pipeline, []), entry)
        self._index += 1

    def _fold(self, pipeline: str, t: float) -> None:
        """Fold same-pipeline completions with ``end <= t`` into the sums."""
        heap = self._pending.get(pipeline)
        if not heap:
            return
        sums = self._sums.get(pipeline)
        if sums is None:
            sums = self._sums[pipeline] = np.zeros(4)
            self._counts[pipeline] = 0
        while heap and heap[0][0] <= t:
            _, _, metrics = heapq.heappop(heap)
            sums += metrics
            self._counts[pipeline] += 1

    def warm_start(self, trace: Trace) -> "OnlineFeatureExtractor":
        """Seed the causal state from already-observed jobs (no rows)."""
        for job in trace:
            self._schedule(job)
        return self

    def push(self, jobs) -> np.ndarray:
        """Feature rows for newly arrived jobs, shape ``(len(jobs), p)``.

        Jobs must arrive in non-decreasing arrival order across all
        ``push`` calls (the service's submission order).  Accepts any
        sequence of :class:`~repro.workloads.job.ShuffleJob`-shaped
        objects; jobs synthesized from streamed columns (empty
        metadata/resources) produce zero group-B/C columns, exactly as
        the offline extractor would for the same materialized trace.
        """
        n_b = self.n_hash_buckets
        rows = np.zeros((len(jobs), self.n_features))
        meta_base = len(HISTORY_FEATURES)
        res_base = meta_base + len(METADATA_FIELDS) * n_b
        time_base = res_base + len(RESOURCE_FEATURES)
        for r, job in enumerate(jobs):
            # Group A: running same-pipeline averages, causally folded.
            self._fold(job.pipeline, job.arrival)
            count = self._counts.get(job.pipeline, 0)
            if count > 0:
                rows[r, :meta_base] = self._sums[job.pipeline] / count
            # Group B: feature-hashed metadata tokens.
            for f_idx, fld in enumerate(METADATA_FIELDS):
                value = job.metadata.get(fld, "") if job.metadata else ""
                base = meta_base + f_idx * n_b
                for token in tokenize(value):
                    rows[r, base + stable_hash(token, seed=f_idx) % n_b] = 1.0
            # Group C: allocated resources.
            if job.resources:
                for c, key in enumerate(RESOURCE_FEATURES):
                    rows[r, res_base + c] = job.resources.get(key, 0.0)
            # Group T: timestamp features.
            seconds_of_day = job.arrival % DAY
            rows[r, time_base] = np.floor(seconds_of_day / HOUR)
            rows[r, time_base + 1] = seconds_of_day
            rows[r, time_base + 2] = np.floor(job.arrival / DAY) % 7
            self._schedule(job)
        return rows

    def push_block(
        self,
        arrivals: np.ndarray,
        durations: np.ndarray,
        sizes: np.ndarray,
        read_bytes: np.ndarray,
        write_bytes: np.ndarray,
        read_ops: np.ndarray,
        pipelines,
    ) -> np.ndarray:
        """Feature rows for a micro-batch of column-submitted jobs.

        The fused-admission path: equivalent to materializing each
        column row as a job and calling :meth:`push`, but the group-A
        metric fold is computed vectorized over the block and the rows
        land in one scratch matrix reused across calls (the returned
        view is overwritten by the next ``push_block``).  Column
        submissions carry no metadata or resource maps, so the group-B
        and group-C columns are exactly zero — the same rows
        :meth:`push` produces for jobs synthesized from the columns.
        """
        k = len(arrivals)
        n_feat = self.n_features
        rows = self._rows
        if rows is None or rows.shape[0] < k or rows.shape[1] != n_feat:
            rows = self._rows = np.zeros((max(k, 256), n_feat))
        rows = rows[:k]
        meta_base = len(HISTORY_FEATURES)
        time_base = n_feat - len(TIME_FEATURES)
        if k == 1:
            # Request-at-a-time: all arithmetic in python floats (IEEE
            # doubles, identical to the elementwise block path below).
            arrival = float(arrivals[0])
            duration = float(durations[0])
            size = float(sizes[0])
            tcio = tcio_rate_scalar(
                float(read_ops[0]), float(write_bytes[0]), duration, self.rates
            )
            total_ops = (
                tcio
                * (duration if duration > 1.0 else 1.0)
                * self.rates.hdd_ops_per_second
            )
            size_gib = size / GIB
            density = total_ops / (size_gib if size_gib > 1e-9 else 1e-9)
            pipeline = pipelines[0]
            self._fold(pipeline, arrival)
            count = self._counts.get(pipeline, 0)
            if count > 0:
                np.divide(self._sums[pipeline], count, out=rows[0, :meta_base])
            else:
                rows[0, :meta_base] = 0.0
            heapq.heappush(
                self._pending.setdefault(pipeline, []),
                (
                    arrival + duration,
                    self._index,
                    np.array([tcio, size, duration, density]),
                ),
            )
            self._index += 1
            sod = arrival % DAY
            rows[0, time_base] = math.floor(sod / HOUR)
            rows[0, time_base + 1] = sod
            rows[0, time_base + 2] = math.floor(arrival / DAY) % 7
            return rows
        # Group-A contribution of each job once it completes, computed
        # elementwise over the block (bit-identical to _metrics per job).
        tcio = tcio_rate(read_ops, write_bytes, durations, self.rates)
        total_ops = (
            tcio * np.maximum(durations, 1.0) * self.rates.hdd_ops_per_second
        )
        metrics = np.empty((k, 4))
        metrics[:, 0] = tcio
        metrics[:, 1] = sizes
        metrics[:, 2] = durations
        metrics[:, 3] = total_ops / np.maximum(sizes / GIB, 1e-9)
        ends = arrivals + durations
        rows[:, :meta_base] = 0.0
        for r in range(k):
            pipeline = pipelines[r]
            self._fold(pipeline, arrivals[r])
            count = self._counts.get(pipeline, 0)
            if count > 0:
                np.divide(
                    self._sums[pipeline], count, out=rows[r, :meta_base]
                )
            heapq.heappush(
                self._pending.setdefault(pipeline, []),
                (ends[r], self._index, metrics[r]),
            )
            self._index += 1
        # Group T, vectorized in place (elementwise-identical to push).
        sod = rows[:, time_base + 1]
        np.mod(arrivals, DAY, out=sod)
        hour = rows[:, time_base]
        np.divide(sod, HOUR, out=hour)
        np.floor(hour, out=hour)
        wday = rows[:, time_base + 2]
        np.divide(arrivals, DAY, out=wday)
        np.floor(wday, out=wday)
        np.mod(wday, 7, out=wday)
        return rows


def extract_features(
    trace: Trace,
    rates: CostRates = DEFAULT_RATES,
    n_hash_buckets: int = DEFAULT_HASH_BUCKETS,
) -> FeatureMatrix:
    """Build the Table-2 feature matrix for a trace.

    History (group A) is computed causally within ``trace``; to let test
    jobs see training-week history, extract features on the combined
    trace and :meth:`FeatureMatrix.take` the split indices.
    """
    n = len(trace)
    history = compute_history(trace, rates).as_matrix()  # group A

    resources = np.zeros((n, len(RESOURCE_FEATURES)))  # group C
    for i, job in enumerate(trace):
        for c, key in enumerate(RESOURCE_FEATURES):
            resources[i, c] = job.resources.get(key, 0.0)

    arrivals = trace.arrivals  # group T
    seconds_of_day = arrivals % DAY
    times = np.column_stack(
        [
            np.floor(seconds_of_day / HOUR),
            seconds_of_day,
            np.floor(arrivals / DAY) % 7,
        ]
    )

    meta_X, meta_names = _hash_metadata(trace, n_hash_buckets)  # group B

    X = np.hstack([history, meta_X, resources, times])
    names = (
        list(HISTORY_FEATURES)
        + meta_names
        + list(RESOURCE_FEATURES)
        + list(TIME_FEATURES)
    )
    groups = (
        ["A"] * len(HISTORY_FEATURES)
        + ["B"] * len(meta_names)
        + ["C"] * len(RESOURCE_FEATURES)
        + ["T"] * len(TIME_FEATURES)
    )
    return FeatureMatrix(X=X, names=tuple(names), groups=tuple(groups))
