"""Feature extraction: Table 2 of the paper.

Turns a :class:`~repro.workloads.job.Trace` into a numeric feature
matrix for the gradient-boosted-trees models.  Features span four
groups, mirroring Figure 9c's analysis:

- **A — historical system metrics** (4 columns): per-pipeline running
  averages of TCIO / size / lifetime / I/O density over previously
  completed executions.
- **B — execution metadata** (hashed token indicators): the five string
  fields are tokenized on non-alphanumeric separators and feature-hashed
  into a fixed number of binary columns per field.
- **C — allocated resources** (8 columns): bucket/shard/worker counts
  and records written, known before execution.
- **T — job timestamp** (3 columns): hour-of-day, second-of-day,
  weekday of the job's start time.

Hashing keeps the encoder stateless: a model trained on one cluster can
score jobs of another cluster (Figure 8) and unseen users/pipelines
(Figure 10) without vocabulary alignment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cost import CostRates, DEFAULT_RATES
from ..units import DAY, HOUR
from .history import HISTORY_FEATURES, compute_history
from .job import Trace
from .metadata import METADATA_FIELDS, stable_hash, tokenize

__all__ = [
    "FEATURE_GROUPS",
    "RESOURCE_FEATURES",
    "TIME_FEATURES",
    "FeatureMatrix",
    "extract_features",
]

#: Allocated-resource columns (group C), Table 2 order.
RESOURCE_FEATURES = (
    "bucket_sizing_initial_num_stripes",
    "bucket_sizing_num_shards",
    "bucket_sizing_num_worker_threads",
    "bucket_sizing_num_workers",
    "initial_num_buckets",
    "num_buckets",
    "records_written",
    "requested_num_shards",
)

#: Timestamp columns (group T).
TIME_FEATURES = ("open_time_day_hour", "open_time_seconds", "open_time_weekday")

#: Feature-group codes as used in Figure 9c.
FEATURE_GROUPS = ("A", "B", "C", "T")

#: Hash buckets per metadata field (group B width = 5 * this).
DEFAULT_HASH_BUCKETS = 16


@dataclass(frozen=True)
class FeatureMatrix:
    """A dense feature matrix with column names and group labels.

    Attributes
    ----------
    X:
        (n_jobs, n_features) float64 matrix.
    names:
        Column names, length n_features.
    groups:
        Group code per column ("A", "B", "C" or "T").
    """

    X: np.ndarray
    names: tuple[str, ...]
    groups: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.X.ndim != 2:
            raise ValueError("X must be 2-D")
        if self.X.shape[1] != len(self.names) or len(self.names) != len(self.groups):
            raise ValueError("names/groups must match X's column count")

    def __len__(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    def take(self, idx: np.ndarray) -> "FeatureMatrix":
        """Row subset (e.g. train/test split aligned with a trace split)."""
        return FeatureMatrix(X=self.X[idx], names=self.names, groups=self.groups)

    def group_columns(self, group: str) -> np.ndarray:
        """Column indices belonging to a feature group."""
        return np.array([i for i, g in enumerate(self.groups) if g == group], dtype=int)

    def drop_columns(self, cols: np.ndarray) -> "FeatureMatrix":
        """Return a copy with the given columns removed (for importance)."""
        keep = np.setdiff1d(np.arange(self.n_features), cols)
        return FeatureMatrix(
            X=self.X[:, keep],
            names=tuple(self.names[i] for i in keep),
            groups=tuple(self.groups[i] for i in keep),
        )


def _hash_metadata(trace: Trace, n_buckets: int) -> tuple[np.ndarray, list[str]]:
    """Feature-hash the five metadata string fields into binary columns."""
    n = len(trace)
    X = np.zeros((n, len(METADATA_FIELDS) * n_buckets))
    names: list[str] = []
    for f_idx, field in enumerate(METADATA_FIELDS):
        names.extend(f"{field}_h{b}" for b in range(n_buckets))
    for i, job in enumerate(trace):
        for f_idx, field in enumerate(METADATA_FIELDS):
            value = job.metadata.get(field, "")
            base = f_idx * n_buckets
            for token in tokenize(value):
                X[i, base + stable_hash(token, seed=f_idx) % n_buckets] = 1.0
    return X, names


def extract_features(
    trace: Trace,
    rates: CostRates = DEFAULT_RATES,
    n_hash_buckets: int = DEFAULT_HASH_BUCKETS,
) -> FeatureMatrix:
    """Build the Table-2 feature matrix for a trace.

    History (group A) is computed causally within ``trace``; to let test
    jobs see training-week history, extract features on the combined
    trace and :meth:`FeatureMatrix.take` the split indices.
    """
    n = len(trace)
    history = compute_history(trace, rates).as_matrix()  # group A

    resources = np.zeros((n, len(RESOURCE_FEATURES)))  # group C
    for i, job in enumerate(trace):
        for c, key in enumerate(RESOURCE_FEATURES):
            resources[i, c] = job.resources.get(key, 0.0)

    arrivals = trace.arrivals  # group T
    seconds_of_day = arrivals % DAY
    times = np.column_stack(
        [
            np.floor(seconds_of_day / HOUR),
            seconds_of_day,
            np.floor(arrivals / DAY) % 7,
        ]
    )

    meta_X, meta_names = _hash_metadata(trace, n_hash_buckets)  # group B

    X = np.hstack([history, meta_X, resources, times])
    names = (
        list(HISTORY_FEATURES)
        + meta_names
        + list(RESOURCE_FEATURES)
        + list(TIME_FEATURES)
    )
    groups = (
        ["A"] * len(HISTORY_FEATURES)
        + ["B"] * len(meta_names)
        + ["C"] * len(RESOURCE_FEATURES)
        + ["T"] * len(TIME_FEATURES)
    )
    return FeatureMatrix(X=X, names=tuple(names), groups=tuple(groups))
