"""Workload substrate: shuffle jobs, archetypes, trace generation, features.

Substitutes Google's production traces with a parameterized synthetic
generator reproducing the statistical structure the paper's method
depends on (see DESIGN.md, "Substitutions").
"""

from .archetypes import ARCHETYPES, FRAMEWORK_ARCHETYPES, NON_FRAMEWORK_ARCHETYPES, Archetype
from .features import (
    FEATURE_GROUPS,
    RESOURCE_FEATURES,
    TIME_FEATURES,
    FeatureMatrix,
    extract_features,
)
from .generator import ClusterSpec, default_cluster_specs, generate_cluster_trace
from .history import HISTORY_FEATURES, HistoricalMetrics, compute_history
from .job import ShuffleJob, Trace, TraceBase
from .metadata import METADATA_FIELDS, MetadataSynthesizer, stable_hash, tokenize
from .phases import Phase, PhaseProfile, decompose_phases
from .external import (
    REQUIRED_COLUMNS,
    CsvTraceSource,
    load_csv_trace,
    save_csv_trace,
    stream_csv_trace,
)
from .streaming import (
    DEFAULT_BLOCK_SIZE,
    InMemoryTraceSource,
    StreamedTrace,
    TraceBlock,
    TraceSource,
    materialize_trace,
    open_trace_source,
)
from .traces import NpzTraceSource, load_trace, save_trace, week_split
from .validation import TraceStatistics, trace_statistics, validate_trace

__all__ = [
    "Archetype",
    "ARCHETYPES",
    "FRAMEWORK_ARCHETYPES",
    "NON_FRAMEWORK_ARCHETYPES",
    "ShuffleJob",
    "Trace",
    "TraceBase",
    "TraceBlock",
    "TraceSource",
    "InMemoryTraceSource",
    "CsvTraceSource",
    "NpzTraceSource",
    "StreamedTrace",
    "DEFAULT_BLOCK_SIZE",
    "open_trace_source",
    "materialize_trace",
    "stream_csv_trace",
    "ClusterSpec",
    "generate_cluster_trace",
    "default_cluster_specs",
    "MetadataSynthesizer",
    "METADATA_FIELDS",
    "tokenize",
    "stable_hash",
    "HistoricalMetrics",
    "HISTORY_FEATURES",
    "compute_history",
    "FeatureMatrix",
    "extract_features",
    "FEATURE_GROUPS",
    "RESOURCE_FEATURES",
    "TIME_FEATURES",
    "save_trace",
    "load_trace",
    "week_split",
    "TraceStatistics",
    "trace_statistics",
    "validate_trace",
    "REQUIRED_COLUMNS",
    "load_csv_trace",
    "save_csv_trace",
    "Phase",
    "PhaseProfile",
    "decompose_phases",
]
