"""Workload archetype library.

Data centers "run a wide range of workloads with vastly different
characteristics" (Figure 1 of the paper shows five-orders-of-magnitude
differences in space usage and lifetime).  Each archetype here is a
parameterized statistical family describing one class of pipelines the
paper's introduction motivates: log processing, simulations, streaming,
ML workloads, database query shuffles, and video processing, plus the
non-framework workloads of Appendix C (ML checkpointing and
compress-and-upload flows).

Archetypes are the *generating* truth of the synthetic traces.  The
placement algorithms never see archetype identity directly — only the
Table-2 features derived from the jobs — so any learnability is earned
through feature structure, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import GIB, HOUR, MIB, MINUTE

__all__ = ["Archetype", "ARCHETYPES", "FRAMEWORK_ARCHETYPES", "NON_FRAMEWORK_ARCHETYPES"]


@dataclass(frozen=True)
class Archetype:
    """Statistical family for one workload class.

    Log-normal parameters are given as ``(median, sigma_of_log)``
    pairs; per-pipeline medians are themselves drawn log-normally around
    the archetype median so that pipelines within an archetype differ.

    Attributes
    ----------
    name:
        Archetype identifier (used in metadata synthesis only).
    size_median, size_sigma:
        Per-job peak footprint distribution (bytes).
    lifetime_median, lifetime_sigma:
        Per-job lifetime distribution (seconds).
    read_ops_per_gib:
        Read operations issued per GiB of footprint — the main driver of
        I/O density.  High values (random small reads) make jobs
        SSD-suited; low values (long sequential scans) make them
        HDD-suited.
    write_amplification:
        Bytes written per byte of footprint (sort steps rewrite data).
    read_amplification:
        Bytes read per byte of footprint.
    period:
        Inter-execution period of a periodic pipeline (seconds), or
        ``None`` for Poisson arrivals.
    arrival_rate:
        Mean executions/hour for Poisson pipelines (ignored if periodic).
    steps_range:
        Min/max shuffle steps per execution.
    workers_median:
        Median worker count (drives the allocated-resource features).
    diurnal_amplitude:
        0..1 modulation of activity by hour-of-day.
    ssd_suited:
        Ground-truth orientation used only by the prototype experiments
        that need an HDD-suited vs SSD-suited pipeline mix (Fig. 5/13).
    """

    name: str
    size_median: float
    size_sigma: float
    lifetime_median: float
    lifetime_sigma: float
    read_ops_per_gib: float
    write_amplification: float
    read_amplification: float
    period: float | None
    arrival_rate: float
    steps_range: tuple[int, int]
    workers_median: float
    diurnal_amplitude: float
    ssd_suited: bool

    def sample_pipeline_scale(self, rng: np.random.Generator) -> dict[str, float]:
        """Draw per-pipeline latent medians around the archetype medians."""
        return {
            "size_median": self.size_median * rng.lognormal(0.0, 0.9),
            "lifetime_median": self.lifetime_median * rng.lognormal(0.0, 0.5),
            "read_ops_per_gib": self.read_ops_per_gib * rng.lognormal(0.0, 0.5),
            "workers_median": max(1.0, self.workers_median * rng.lognormal(0.0, 0.4)),
        }


ARCHETYPES: dict[str, Archetype] = {
    "logproc": Archetype(
        name="logproc",
        size_median=60 * GIB, size_sigma=1.2,
        lifetime_median=1.5 * HOUR, lifetime_sigma=0.7,
        read_ops_per_gib=40.0,  # long sequential scans
        write_amplification=1.3, read_amplification=1.1,
        period=1 * HOUR, arrival_rate=0.0,
        steps_range=(1, 4), workers_median=200,
        diurnal_amplitude=0.3, ssd_suited=False,
    ),
    "mltrain": Archetype(
        name="mltrain",
        size_median=15 * GIB, size_sigma=1.0,
        lifetime_median=6 * HOUR, lifetime_sigma=0.8,
        read_ops_per_gib=25.0,  # checkpoints: written once, rarely read
        write_amplification=1.1, read_amplification=0.3,
        period=2 * HOUR, arrival_rate=0.0,
        steps_range=(1, 3), workers_median=64,
        diurnal_amplitude=0.1, ssd_suited=False,
    ),
    "video": Archetype(
        name="video",
        size_median=120 * GIB, size_sigma=1.1,
        lifetime_median=3 * HOUR, lifetime_sigma=0.6,
        read_ops_per_gib=120.0,
        write_amplification=1.5, read_amplification=1.4,
        period=None, arrival_rate=0.3,
        steps_range=(2, 5), workers_median=400,
        diurnal_amplitude=0.2, ssd_suited=False,
    ),
    "dbquery": Archetype(
        name="dbquery",
        size_median=8 * GIB, size_sigma=1.4,
        lifetime_median=25 * MINUTE, lifetime_sigma=0.9,
        read_ops_per_gib=30000.0,  # random point reads from sorted runs
        write_amplification=2.0, read_amplification=2.5,
        period=None, arrival_rate=1.5,
        steps_range=(1, 6), workers_median=80,
        diurnal_amplitude=0.6, ssd_suited=True,
    ),
    "streaming": Archetype(
        name="streaming",
        size_median=800 * MIB, size_sigma=1.2,
        lifetime_median=3 * MINUTE, lifetime_sigma=0.8,
        read_ops_per_gib=80000.0,
        write_amplification=1.8, read_amplification=2.0,
        period=30 * MINUTE, arrival_rate=0.0,
        steps_range=(1, 3), workers_median=32,
        diurnal_amplitude=0.5, ssd_suited=True,
    ),
    "simulation": Archetype(
        name="simulation",
        size_median=10 * GIB, size_sigma=1.3,
        lifetime_median=45 * MINUTE, lifetime_sigma=0.9,
        read_ops_per_gib=2500.0,
        write_amplification=1.4, read_amplification=1.2,
        period=None, arrival_rate=0.6,
        steps_range=(2, 4), workers_median=128,
        diurnal_amplitude=0.15, ssd_suited=True,
    ),
    "staging": Archetype(
        # Short-lived but *cold* staging files: written once, read once
        # sequentially, gone in minutes.  Breaks lifetime-only admission
        # (ML Baseline admits them; wearout makes them money-losers).
        name="staging",
        size_median=15 * GIB, size_sigma=0.9,
        lifetime_median=10 * MINUTE, lifetime_sigma=0.6,
        read_ops_per_gib=15.0,
        write_amplification=1.2, read_amplification=1.0,
        period=None, arrival_rate=1.2,
        steps_range=(1, 2), workers_median=48,
        diurnal_amplitude=0.3, ssd_suited=False,
    ),
    "reporting": Archetype(
        # Long-lived interactive reporting runs: hours of random point
        # reads over a modest footprint.  High value on SSD despite a
        # long lifetime (lifetime-TTL baselines reject them).
        name="reporting",
        size_median=6 * GIB, size_sigma=1.0,
        lifetime_median=4 * HOUR, lifetime_sigma=0.5,
        read_ops_per_gib=60000.0,
        write_amplification=1.3, read_amplification=3.0,
        period=None, arrival_rate=0.5,
        steps_range=(1, 3), workers_median=64,
        diurnal_amplitude=0.5, ssd_suited=True,
    ),
    # Non-framework archetypes (Appendix C.1): arbitrary workloads on the
    # same distributed storage system, not shuffle-structured.
    "mlcheckpoint": Archetype(
        name="mlcheckpoint",
        size_median=40 * GIB, size_sigma=0.8,
        lifetime_median=10 * HOUR, lifetime_sigma=0.5,
        read_ops_per_gib=8.0,  # kept for hours, almost never read back
        write_amplification=1.0, read_amplification=0.05,
        period=2 * HOUR, arrival_rate=0.0,
        steps_range=(1, 1), workers_median=16,
        diurnal_amplitude=0.0, ssd_suited=False,
    ),
    "compressupload": Archetype(
        name="compressupload",
        size_median=2 * GIB, size_sigma=1.0,
        lifetime_median=5 * MINUTE, lifetime_sigma=0.6,
        read_ops_per_gib=50000.0,  # hot, short-lived temporaries
        write_amplification=2.2, read_amplification=2.2,
        period=None, arrival_rate=2.5,
        steps_range=(1, 2), workers_median=8,
        diurnal_amplitude=0.4, ssd_suited=True,
    ),
}

#: Archetypes representing the shared data processing framework.
FRAMEWORK_ARCHETYPES = (
    "logproc", "mltrain", "video", "dbquery", "streaming", "simulation",
    "staging", "reporting",
)

#: Appendix-C non-framework workloads.
NON_FRAMEWORK_ARCHETYPES = ("mlcheckpoint", "compressupload")
