"""Trace statistics and validation.

Generated traces substitute for production data, so we validate that
they actually exhibit the structural properties the paper's method
depends on (Figure 1 diversity, Figure 4 density/savings structure,
workload churn).  ``trace_statistics`` computes the report;
``validate_trace`` raises when a trace is degenerate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cost import CostRates, DEFAULT_RATES
from .job import Trace

__all__ = ["TraceStatistics", "trace_statistics", "validate_trace"]


@dataclass(frozen=True)
class TraceStatistics:
    """Structural summary of a trace.

    Attributes
    ----------
    n_jobs, n_pipelines, n_users:
        Population counts.
    span:
        Time from first arrival to last end.
    size_p50, size_p99, lifetime_p50, lifetime_p99:
        Footprint / lifetime distribution markers.
    positive_savings_fraction:
        Share of jobs that save TCO on SSD.
    density_dynamic_range:
        log10 of the 99th/1st percentile I/O-density ratio — the
        "orders of magnitude" diversity of Figure 1.
    churn_fraction:
        Share of pipelines whose first job arrives after 25% of the
        span or whose last job arrives before 75% (workload churn).
    peak_ssd_usage:
        Infinite-capacity peak footprint (quota denominator).
    """

    n_jobs: int
    n_pipelines: int
    n_users: int
    span: float
    size_p50: float
    size_p99: float
    lifetime_p50: float
    lifetime_p99: float
    positive_savings_fraction: float
    density_dynamic_range: float
    churn_fraction: float
    peak_ssd_usage: float


def trace_statistics(trace: Trace, rates: CostRates = DEFAULT_RATES) -> TraceStatistics:
    """Compute the structural summary of a trace."""
    if len(trace) == 0:
        raise ValueError("empty trace")
    sizes = trace.sizes
    durations = trace.durations
    savings = trace.costs(rates).savings
    density = trace.io_density(rates)
    arrivals = trace.arrivals
    span = float(trace.ends.max() - arrivals.min())

    first: dict[str, float] = {}
    last: dict[str, float] = {}
    for a, p in zip(arrivals, trace.pipelines):
        first.setdefault(p, a)
        last[p] = a
    t0 = arrivals.min()
    churned = sum(
        1
        for p in first
        if (first[p] - t0) > 0.25 * span or (last[p] - t0) < 0.75 * span
    )

    pos_density = density[density > 0]
    if pos_density.size >= 2:
        p1, p99 = np.percentile(pos_density, [1, 99])
        dynamic_range = float(np.log10(max(p99, 1e-12) / max(p1, 1e-12)))
    else:
        dynamic_range = 0.0

    return TraceStatistics(
        n_jobs=len(trace),
        n_pipelines=len(first),
        n_users=len(set(trace.users)),
        span=span,
        size_p50=float(np.percentile(sizes, 50)),
        size_p99=float(np.percentile(sizes, 99)),
        lifetime_p50=float(np.percentile(durations, 50)),
        lifetime_p99=float(np.percentile(durations, 99)),
        positive_savings_fraction=float((savings > 0).mean()),
        density_dynamic_range=dynamic_range,
        churn_fraction=churned / max(len(first), 1),
        peak_ssd_usage=trace.peak_ssd_usage(),
    )


def validate_trace(
    trace: Trace,
    rates: CostRates = DEFAULT_RATES,
    min_positive_fraction: float = 0.05,
    max_positive_fraction: float = 0.95,
    min_density_range: float = 1.0,
) -> TraceStatistics:
    """Raise ``ValueError`` if a trace lacks the structure experiments need.

    A valid trace must have a non-degenerate mix of SSD-worthy and
    HDD-worthy jobs and a meaningful I/O-density spread; otherwise every
    placement method collapses to the same trivial behaviour and the
    experiments say nothing.
    """
    stats = trace_statistics(trace, rates)
    if not min_positive_fraction <= stats.positive_savings_fraction <= max_positive_fraction:
        raise ValueError(
            f"degenerate savings mix: {stats.positive_savings_fraction:.1%} of "
            f"jobs have positive savings (want {min_positive_fraction:.0%}.."
            f"{max_positive_fraction:.0%})"
        )
    if stats.density_dynamic_range < min_density_range:
        raise ValueError(
            f"I/O density spans only {stats.density_dynamic_range:.2f} orders "
            f"of magnitude (want >= {min_density_range})"
        )
    return stats
