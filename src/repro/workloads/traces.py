"""Trace persistence and train/test splitting utilities.

Traces serialize to a compact ``.npz`` (arrays) + JSON sidecar (strings)
pair so that large generated traces can be cached between benchmark
runs without regeneration.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..units import WEEK
from .job import ShuffleJob, Trace

__all__ = ["save_trace", "load_trace", "week_split"]

_RESOURCE_KEYS_ATTR = "resource_keys"


def save_trace(trace: Trace, path: str | Path) -> None:
    """Serialize a trace to ``<path>.npz`` and ``<path>.json``."""
    path = Path(path)
    n = len(trace)
    resource_keys = sorted({k for j in trace for k in j.resources})
    resources = np.zeros((n, len(resource_keys)))
    for i, job in enumerate(trace):
        for c, k in enumerate(resource_keys):
            resources[i, c] = job.resources.get(k, 0.0)
    np.savez_compressed(
        path.with_suffix(".npz"),
        arrivals=trace.arrivals,
        durations=trace.durations,
        sizes=trace.sizes,
        read_bytes=trace.read_bytes,
        write_bytes=trace.write_bytes,
        read_ops=trace.read_ops,
        resources=resources,
    )
    sidecar = {
        "name": trace.name,
        _RESOURCE_KEYS_ATTR: resource_keys,
        "jobs": [
            {
                "job_id": j.job_id,
                "cluster": j.cluster,
                "user": j.user,
                "pipeline": j.pipeline,
                "archetype": j.archetype,
                "metadata": j.metadata,
            }
            for j in trace
        ],
    }
    path.with_suffix(".json").write_text(json.dumps(sidecar))


def load_trace(path: str | Path) -> Trace:
    """Load a trace saved by :func:`save_trace`."""
    path = Path(path)
    arrays = np.load(path.with_suffix(".npz"))
    sidecar = json.loads(path.with_suffix(".json").read_text())
    resource_keys = sidecar[_RESOURCE_KEYS_ATTR]
    jobs = []
    for i, meta in enumerate(sidecar["jobs"]):
        jobs.append(
            ShuffleJob(
                job_id=meta["job_id"],
                cluster=meta["cluster"],
                user=meta["user"],
                pipeline=meta["pipeline"],
                archetype=meta["archetype"],
                arrival=float(arrays["arrivals"][i]),
                duration=float(arrays["durations"][i]),
                size=float(arrays["sizes"][i]),
                read_bytes=float(arrays["read_bytes"][i]),
                write_bytes=float(arrays["write_bytes"][i]),
                read_ops=float(arrays["read_ops"][i]),
                metadata=dict(meta["metadata"]),
                resources={
                    k: float(arrays["resources"][i, c]) for c, k in enumerate(resource_keys)
                },
            )
        )
    return Trace(jobs, name=sidecar["name"])


def week_split(trace: Trace) -> tuple[Trace, np.ndarray, Trace, np.ndarray]:
    """Split a two-week trace into train/test weeks.

    Returns ``(train_trace, train_idx, test_trace, test_idx)`` where the
    index arrays map back into the original trace's job order (so that
    features extracted on the full trace can be sliced consistently).
    """
    arrivals = trace.arrivals
    train_mask = arrivals < WEEK
    train_idx = np.flatnonzero(train_mask)
    test_idx = np.flatnonzero(~train_mask)
    train = trace.subset(train_mask, name=f"{trace.name}/train")
    test = trace.subset(~train_mask, name=f"{trace.name}/test")
    return train, train_idx, test, test_idx
