"""Trace persistence and train/test splitting utilities.

Traces serialize to a compact ``.npz`` (arrays) + JSON sidecar (strings)
pair so that large generated traces can be cached between benchmark
runs without regeneration.  The ``.npz`` member carries every column
the placement runtime needs — numeric columns plus the
pipeline/user/job-id identity arrays — so :class:`NpzTraceSource` can
stream a saved trace into the simulator without parsing the JSON
sidecar or building per-job objects; the sidecar remains the home of
metadata/resources for the materializing :func:`load_trace` path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

import numpy as np

from ..units import WEEK
from .job import ShuffleJob, Trace
from .streaming import DEFAULT_BLOCK_SIZE, TraceBlock, TraceSource

__all__ = ["save_trace", "load_trace", "week_split", "NpzTraceSource"]

_RESOURCE_KEYS_ATTR = "resource_keys"


def save_trace(trace: Trace, path: str | Path) -> None:
    """Serialize a trace to ``<path>.npz`` and ``<path>.json``."""
    path = Path(path)
    n = len(trace)
    resource_keys = sorted({k for j in trace for k in j.resources})
    resources = np.zeros((n, len(resource_keys)))
    for i, job in enumerate(trace):
        for c, k in enumerate(resource_keys):
            resources[i, c] = job.resources.get(k, 0.0)
    np.savez_compressed(
        path.with_suffix(".npz"),
        arrivals=trace.arrivals,
        durations=trace.durations,
        sizes=trace.sizes,
        read_bytes=trace.read_bytes,
        write_bytes=trace.write_bytes,
        read_ops=trace.read_ops,
        resources=resources,
        pipelines=np.asarray(trace.pipelines, dtype=np.str_),
        users=np.asarray(trace.users, dtype=np.str_),
        job_ids=np.array([j.job_id for j in trace], dtype=np.int64),
    )
    sidecar = {
        "name": trace.name,
        _RESOURCE_KEYS_ATTR: resource_keys,
        "jobs": [
            {
                "job_id": j.job_id,
                "cluster": j.cluster,
                "user": j.user,
                "pipeline": j.pipeline,
                "archetype": j.archetype,
                "metadata": j.metadata,
            }
            for j in trace
        ],
    }
    path.with_suffix(".json").write_text(json.dumps(sidecar))


def load_trace(path: str | Path) -> Trace:
    """Load a trace saved by :func:`save_trace`."""
    path = Path(path)
    arrays = np.load(path.with_suffix(".npz"))
    sidecar = json.loads(path.with_suffix(".json").read_text())
    resource_keys = sidecar[_RESOURCE_KEYS_ATTR]
    jobs = []
    for i, meta in enumerate(sidecar["jobs"]):
        jobs.append(
            ShuffleJob(
                job_id=meta["job_id"],
                cluster=meta["cluster"],
                user=meta["user"],
                pipeline=meta["pipeline"],
                archetype=meta["archetype"],
                arrival=float(arrays["arrivals"][i]),
                duration=float(arrays["durations"][i]),
                size=float(arrays["sizes"][i]),
                read_bytes=float(arrays["read_bytes"][i]),
                write_bytes=float(arrays["write_bytes"][i]),
                read_ops=float(arrays["read_ops"][i]),
                metadata=dict(meta["metadata"]),
                resources={
                    k: float(arrays["resources"][i, c]) for c, k in enumerate(resource_keys)
                },
            )
        )
    return Trace(jobs, name=sidecar["name"])


class NpzTraceSource(TraceSource):
    """Stream a saved trace's columns straight from its ``.npz`` member.

    Reads only the arrays the placement runtime consumes — the six
    numeric columns plus the pipeline/user/job-id identity arrays when
    present (traces saved before identity columns were embedded fall
    back to the JSON sidecar for pipelines) — and yields them in
    ``block_size`` slices.  The metadata/resource payload of the
    sidecar is never parsed, so draining a saved trace costs the column
    residue instead of the full job-object materialization of
    :func:`load_trace`.
    """

    def __init__(
        self,
        path: str | Path,
        block_size: int = DEFAULT_BLOCK_SIZE,
        name: str | None = None,
    ):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.path = Path(path)
        self.block_size = block_size
        self.name = name or self.path.stem

    def _identity(self, arrays) -> tuple[list[str] | None, list[str] | None, np.ndarray | None]:
        """Pipelines/users/job_ids from the npz, or the sidecar fallback.

        Identity strings are deduplicated through a pool (pipelines and
        users repeat heavily), so the drained trace holds one ``str``
        per unique value rather than one per job.
        """
        if "pipelines" in arrays.files:
            pool: dict[str, str] = {}

            def dedup(column) -> list[str]:
                return [pool.setdefault(s, s) for s in map(str, column)]

            pipelines = dedup(arrays["pipelines"])
            users = dedup(arrays["users"]) if "users" in arrays.files else None
            job_ids = (
                arrays["job_ids"].astype(np.int64)
                if "job_ids" in arrays.files
                else None
            )
            return pipelines, users, job_ids
        sidecar_path = self.path.with_suffix(".json")
        if not sidecar_path.exists():
            return None, None, None
        sidecar = json.loads(sidecar_path.read_text())
        jobs = sidecar.get("jobs", [])
        pipelines = [m["pipeline"] for m in jobs]
        users = [m["user"] for m in jobs]
        job_ids = np.array([m["job_id"] for m in jobs], dtype=np.int64)
        return pipelines, users, job_ids

    def blocks(self) -> Iterator[TraceBlock]:
        with np.load(self.path.with_suffix(".npz")) as arrays:
            arrivals = arrays["arrivals"]
            durations = arrays["durations"]
            sizes = arrays["sizes"]
            read_bytes = arrays["read_bytes"]
            write_bytes = arrays["write_bytes"]
            read_ops = arrays["read_ops"]
            pipelines, users, job_ids = self._identity(arrays)
        n = arrivals.size
        for lo in range(0, n, self.block_size):
            hi = min(lo + self.block_size, n)
            yield TraceBlock(
                arrivals=arrivals[lo:hi],
                durations=durations[lo:hi],
                sizes=sizes[lo:hi],
                read_bytes=read_bytes[lo:hi],
                write_bytes=write_bytes[lo:hi],
                read_ops=read_ops[lo:hi],
                pipelines=None if pipelines is None else tuple(pipelines[lo:hi]),
                users=None if users is None else tuple(users[lo:hi]),
                job_ids=None if job_ids is None else job_ids[lo:hi],
            )


def week_split(trace: Trace) -> tuple[Trace, np.ndarray, Trace, np.ndarray]:
    """Split a two-week trace into train/test weeks.

    Returns ``(train_trace, train_idx, test_trace, test_idx)`` where the
    index arrays map back into the original trace's job order (so that
    features extracted on the full trace can be sliced consistently).
    """
    arrivals = trace.arrivals
    train_mask = arrivals < WEEK
    train_idx = np.flatnonzero(train_mask)
    test_idx = np.flatnonzero(~train_mask)
    train = trace.subset(train_mask, name=f"{trace.name}/train")
    test = trace.subset(~train_mask, name=f"{trace.name}/test")
    return train, train_idx, test, test_idx
