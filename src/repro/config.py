"""Configuration dataclasses and RNG helpers.

Every stochastic component of the library takes either an explicit
:class:`numpy.random.Generator` or an integer seed, so all experiments
are reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def rng_from(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator from a seed, an existing generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass(frozen=True)
class AdaptiveParams:
    """Hyper-parameters of the Adaptive Category Selection algorithm.

    Defaults follow the middle point of the sensitivity grid in
    Appendix C.2 of the paper.

    Attributes
    ----------
    spillover_low:
        Lower bound ``T_l`` of the spillover tolerance range.  If the
        observed spillover-TCIO percentage falls below it, the admission
        category threshold is lowered (more categories admitted).
    spillover_high:
        Upper bound ``T_u``; exceeding it raises the threshold.
    lookback_window:
        ``t_w`` — length (seconds) of the observation window; only jobs
        *starting* inside the window count (Section 4.3).
    decision_interval:
        ``t_l`` — minimum time between threshold updates (seconds).
    initial_act:
        Starting admission category threshold.
    """

    spillover_low: float = 0.01
    spillover_high: float = 0.15
    lookback_window: float = 900.0
    decision_interval: float = 900.0
    initial_act: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.spillover_low <= self.spillover_high:
            raise ValueError(
                f"require 0 <= spillover_low <= spillover_high, got "
                f"[{self.spillover_low}, {self.spillover_high}]"
            )
        if self.lookback_window <= 0 or self.decision_interval < 0:
            raise ValueError("lookback_window must be > 0 and decision_interval >= 0")
        if self.initial_act < 1:
            raise ValueError("initial_act must be >= 1 (category 0 is never admitted)")


@dataclass(frozen=True)
class ModelParams:
    """Gradient-boosted-trees hyper-parameters for the category model.

    The paper uses 15 classes, <=300 trees, max depth 6.  Our from-scratch
    GBDT is pure NumPy, so the default tree budget is smaller; experiments
    show the end-to-end savings are insensitive to it (Figure 11's point:
    accuracy beyond a threshold does not buy savings).
    """

    n_categories: int = 15
    n_rounds: int = 20
    max_depth: int = 6
    learning_rate: float = 0.3
    min_samples_leaf: int = 20
    n_bins: int = 64
    l2_reg: float = 1.0

    def __post_init__(self) -> None:
        if self.n_categories < 2:
            raise ValueError("need at least 2 categories (one is the negative-savings class)")
        if self.n_rounds < 1 or self.max_depth < 1:
            raise ValueError("n_rounds and max_depth must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")


@dataclass(frozen=True)
class SimConfig:
    """Top-level simulation configuration.

    ``ssd_quota_fraction`` expresses the SSD capacity as a fraction of the
    trace's peak SSD usage measured under infinite capacity, matching the
    paper's experimental setup (Section 5.1).
    """

    ssd_quota_fraction: float = 0.01
    adaptive: AdaptiveParams = field(default_factory=AdaptiveParams)

    def __post_init__(self) -> None:
        if self.ssd_quota_fraction < 0:
            raise ValueError("ssd_quota_fraction must be >= 0")
