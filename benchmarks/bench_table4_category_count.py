"""Table 4: TCO savings under different category numbers N.

Paper claim: small N gives high accuracy but coarse ranking (lower
savings); large N gives fine ranking but low accuracy (also lower
savings); N = 15 is the sweet spot, and accuracy decreases
monotonically with N.
"""

import pytest

from repro.analysis import render_table, table4_category_count

from bench_utils import emit

COUNTS = (2, 5, 15, 25, 35)


@pytest.mark.benchmark(group="table4")
def test_table4_category_count(benchmark):
    results = benchmark.pedantic(
        table4_category_count,
        # The paper uses a 0.1 quota; in our synthetic cost regime the
        # capacity pressure that makes ranking granularity matter
        # appears at tighter quotas, so we evaluate at 1%.
        kwargs={"category_counts": COUNTS, "quota": 0.01},
        rounds=1,
        iterations=1,
    )

    rows = [
        [f"N = {n}", results[n]["tco_savings_pct"], results[n]["top1_accuracy"]]
        for n in COUNTS
    ]
    emit(
        "table4_category_count",
        render_table(
            ["categories", "TCO savings %", "top-1 accuracy"],
            rows,
            title="Table 4: savings and accuracy vs category count (quota 0.01)",
        ),
    )

    acc = [results[n]["top1_accuracy"] for n in COUNTS]
    savings = [results[n]["tco_savings_pct"] for n in COUNTS]
    # Accuracy decreases as N grows (more classes = harder problem).
    assert all(a >= b - 0.03 for a, b in zip(acc, acc[1:]))
    # Mid-range N is not dominated by the coarsest model: the best
    # savings must come from N >= 5 (ranking granularity matters).
    best_n = COUNTS[savings.index(max(savings))]
    assert best_n >= 5
