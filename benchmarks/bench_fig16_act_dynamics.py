"""Figure 16 / Appendix C.3: adaptive category selection dynamics.

Paper claim: the algorithm holds the admission threshold in a higher
range when SSD quota is scarce and allows more category admissions when
space is plentiful.
"""

import numpy as np
import pytest

from repro.analysis import fig16_act_dynamics, render_table

from bench_utils import emit

QUOTAS = (0.0001, 0.01, 0.1, 0.5)


@pytest.mark.benchmark(group="fig16")
def test_fig16_act_dynamics(benchmark):
    result = benchmark.pedantic(
        fig16_act_dynamics, kwargs={"quotas": QUOTAS}, rounds=1, iterations=1
    )

    rows = []
    mean_act = {}
    for q in QUOTAS:
        traj = result[q]
        acts = np.array([e.act for e in traj])
        spill = np.array([e.spillover for e in traj])
        mean_act[q] = acts.mean() if len(acts) else float("nan")
        rows.append([
            f"{q:.2%}",
            len(traj),
            mean_act[q],
            int(acts.max(initial=0)),
            float(spill.mean()) if len(spill) else 0.0,
        ])
    emit(
        "fig16_act_dynamics",
        render_table(
            ["quota", "updates", "mean ACT", "max ACT", "mean spillover"],
            rows,
            title="Figure 16: admission-threshold dynamics over the test week",
        ),
    )

    # Scarce SSD holds the threshold strictly higher than plentiful SSD.
    assert mean_act[QUOTAS[0]] > mean_act[QUOTAS[-1]]
    # With huge quota the threshold should sit at/near its floor.
    assert mean_act[QUOTAS[-1]] < 3.0
