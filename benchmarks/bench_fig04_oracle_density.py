"""Figure 4: oracle placement vs I/O density and TCO savings.

Paper claims: the oracle never selects negative-TCO-savings jobs; as the
SSD quota grows, jobs with lower I/O density are admitted.
"""

import numpy as np
import pytest

from repro.analysis import fig4_oracle_density, render_table

from bench_utils import emit


@pytest.mark.benchmark(group="fig04")
def test_fig04_oracle_density(benchmark):
    quotas = (0.01, 0.05, 0.2)
    result = benchmark.pedantic(
        fig4_oracle_density, kwargs={"quotas": quotas}, rounds=1, iterations=1
    )

    density = result["io_density"]
    savings = result["tco_savings"]
    rows = []
    for q in quotas:
        mask = result["admitted"][q]
        n = int(mask.sum())
        med_density = float(np.median(density[mask])) if n else float("nan")
        rows.append([f"{q:.0%}", n, med_density, float(savings[mask].min()) if n else 0.0])
    emit(
        "fig04_oracle_density",
        render_table(
            ["quota", "admitted jobs", "median density of admitted", "min savings of admitted"],
            rows,
            title="Figure 4: oracle admission vs I/O density",
        ),
    )

    # Negative-savings jobs are never admitted at any quota.
    for q in quotas:
        assert not result["admitted"][q][savings < 0].any()
    # Larger quota admits at least as many jobs...
    counts = [result["admitted"][q].sum() for q in quotas]
    assert counts[0] <= counts[1] <= counts[2]
    # ...and reaches into lower densities.
    med = [
        np.median(density[result["admitted"][q]])
        for q in quotas
        if result["admitted"][q].any()
    ]
    if len(med) == 3:
        assert med[2] <= med[0]
