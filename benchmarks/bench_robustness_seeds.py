"""Robustness (extension): does the method ordering survive reseeding?

Regenerates cluster C0's spec under several seeds, retrains everything,
and compares methods at a 1% quota.  Single-trace results can be luck;
this shows the Adaptive Ranking advantage is a property of the method,
not of one sampled trace.
"""

import pytest

from repro.analysis import multi_seed_comparison, render_table
from repro.workloads import default_cluster_specs

from bench_utils import emit

SEEDS = (0, 1, 2)
METHODS = ("Adaptive Ranking", "ML Baseline", "FirstFit", "Heuristic")


@pytest.mark.benchmark(group="robustness")
def test_robustness_across_seeds(benchmark):
    def run():
        spec = default_cluster_specs(10)[0]
        return multi_seed_comparison(
            spec, seeds=SEEDS, methods=METHODS, quota=0.01
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            m,
            report.summary[m]["mean"],
            report.summary[m]["std"],
            report.summary[m]["min"],
            report.summary[m]["max"],
        ]
        for m in METHODS
    ]
    rows.append(["(ours wins all methods)", report.win_fraction, "", "", ""])
    emit(
        "robustness_seeds",
        render_table(
            ["method", "mean TCO %", "std", "min", "max"],
            rows,
            title=f"Robustness: {len(SEEDS)} reseeded traces @ 1% quota",
        ),
    )

    means = {m: report.summary[m]["mean"] for m in METHODS}
    # Ours has the best mean savings across seeds.
    assert means["Adaptive Ranking"] == max(means.values())
    # And wins outright on most seeds.
    assert report.win_fraction >= 0.5
