"""Figure 13: mixed framework / non-framework workload savings.

Paper claim: significant TCO and TCIO savings over FirstFit for both
framework and non-framework workloads — the approach is not limited to
the data processing framework.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import prepare_cluster
from repro.prototype import build_mixed_workload, run_prototype

from bench_utils import emit


@pytest.mark.benchmark(group="fig13")
def test_fig13_mixed_workloads(benchmark):
    def run():
        workload = build_mixed_workload()
        results = {q: run_prototype(workload, q) for q in (0.01, 0.20)}
        return workload, results

    workload, results = benchmark.pedantic(run, rounds=1, iterations=1)

    cluster = prepare_cluster(workload.trace)
    is_fw_test = np.array([j.cluster == "mixed-fw" for j in cluster.test])
    costs = cluster.test.costs()

    rows = []
    for q, r in results.items():
        for kind, mask in (("framework", is_fw_test), ("non-framework", ~is_fw_test)):
            for res, label in ((r.adaptive, "Adaptive Ranking"), (r.firstfit, "FirstFit")):
                hdd = costs.c_hdd[mask].sum()
                realized = (
                    res.ssd_fraction[mask] * costs.c_ssd[mask]
                    + (1 - res.ssd_fraction[mask]) * costs.c_hdd[mask]
                ).sum()
                pct = 100 * (hdd - realized) / hdd if hdd > 0 else 0.0
                rows.append([f"{q:.0%}", kind, label, pct])
    emit(
        "fig13_mixed",
        render_table(
            ["quota", "workload kind", "method", "TCO savings %"],
            rows,
            title="Figure 13: mixed-workload savings by kind",
        ),
    )

    # Overall: ours beats FirstFit at both quotas.
    for q, r in results.items():
        assert r.adaptive.tco_savings_pct > r.firstfit.tco_savings_pct, q
    # Both workload kinds see positive savings from ours at 20% quota.
    by_key = {(r[0], r[1], r[2]): r[3] for r in rows}
    assert by_key[("20%", "framework", "Adaptive Ranking")] > 0
    assert by_key[("20%", "non-framework", "Adaptive Ranking")] > 0
