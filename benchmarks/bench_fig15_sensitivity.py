"""Figure 15 / Appendix C.2: adaptive-algorithm parameter sensitivity.

Paper claim: across 27 combinations of tolerance range x look-back
window x decision interval, the TCO-savings band stays narrow — the
solution is not sensitive to adaptive-algorithm hyper-parameters.
"""

import numpy as np
import pytest

from repro.analysis import fig15_sensitivity, render_table

from bench_utils import emit


@pytest.mark.benchmark(group="fig15")
def test_fig15_sensitivity(benchmark):
    result = benchmark.pedantic(fig15_sensitivity, rounds=1, iterations=1)

    quotas = result["quotas"]
    rows = [
        [f"{q:.0%}", lo, hi, hi - lo]
        for q, lo, hi in zip(quotas, result["lower"], result["upper"])
    ]
    emit(
        "fig15_sensitivity",
        render_table(
            ["quota", "min savings %", "max savings %", "band width"],
            rows,
            title=f"Figure 15: sensitivity band over {len(result['combos'])} parameter combos",
        ),
    )

    assert len(result["combos"]) == 27
    # The band is narrow relative to the savings level at non-trivial quotas.
    for i, q in enumerate(quotas):
        if q >= 0.1:
            width = result["upper"][i] - result["lower"][i]
            assert width <= max(0.5 * result["upper"][i], 2.0)
    # Every combination still produces positive savings at moderate quota.
    assert (result["curves"][:, 1:] > 0).all()
