"""Hot-path benchmark: packed-forest inference + chunked simulator.

Times the train-predict-simulate path on a ~200k-job synthetic trace
the way the experiment runners actually use it (one offline training,
then a quota sweep of online deployments, as in Figure 7):

- **legacy**: the seed implementation — per-tree Python loop in
  ``decision_function`` (re-run per deployment), the per-job simulator
  event loop, and the list-of-dataclass observation history.
- **fast**: the packed forest (with the shared decision-pass cache
  across deployments), the chunked simulator engine, and the
  ring-buffer spillover window.

Both paths must produce identical placements; the equivalence is
asserted before any timing is reported.  Run the full-size benchmark
with ``python -m pytest benchmarks/bench_perf_hotpaths.py -s``; the
pytest invocation in CI uses a reduced trace via
``BENCH_HOTPATH_JOBS``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.config import AdaptiveParams
from repro.core import AdaptiveCategoryPolicy, ObservedJob, spillover_percentage
from repro.ml import GBTClassifier
from repro.storage import simulate
from repro.units import GIB
from repro.workloads import ShuffleJob, Trace

from bench_utils import emit

N_JOBS = int(os.environ.get("BENCH_HOTPATH_JOBS", "200000"))
N_TRAIN = 8_000
N_CATEGORIES = 8
N_FEATURES = 16
QUOTAS = (0.01, 0.05, 0.2, 0.5)
SPAN = 14 * 86_400.0


class LegacyAdaptiveCategoryPolicy(AdaptiveCategoryPolicy):
    """The seed's adaptive policy: Python-list history, no batch path."""

    #: hide the batch protocol so ``engine="auto"`` picks the legacy loop
    decide_batch = None

    def on_simulation_start(self, trace, capacity, rates):
        super().on_simulation_start(trace, capacity, rates)
        self._list_history: list[ObservedJob] = []

    def _update_threshold(self, t):
        p = self.params
        ws = t - p.lookback_window
        self._list_history = [j for j in self._list_history if j.arrival > ws]
        h = spillover_percentage(self._list_history, t)
        if h < p.spillover_low:
            self.act = max(1, self.act - 1)
        elif h > p.spillover_high:
            self.act = min(self.n_categories - 1, self.act + 1)
        self._td = t
        from repro.core.adaptive import ThresholdEvent

        self.trajectory.append(ThresholdEvent(time=t, act=self.act, spillover=h))

    def observe(self, outcome):
        i = outcome.job_index
        self._list_history.append(
            ObservedJob(
                arrival=float(self._trace.arrivals[i]),
                end=float(self._trace.ends[i]),
                tcio_rate=float(self._tcio[i]),
                scheduled_ssd=outcome.requested_ssd,
                spill_time=outcome.spill_time,
                spilled_fraction=1.0 - outcome.ssd_space_fraction
                if outcome.requested_ssd
                else 0.0,
            )
        )


def build_workload(seed: int = 0):
    """Synthetic trace + aligned feature matrix with learnable labels."""
    rng = np.random.default_rng(seed)
    n = N_JOBS
    arrivals = np.sort(rng.uniform(0.0, SPAN, n))
    durations = rng.lognormal(mean=7.0, sigma=1.2, size=n)
    sizes = rng.lognormal(mean=21.0, sigma=1.5, size=n)
    X = rng.normal(size=(n, N_FEATURES))
    # Labels follow a noisy linear score so the GBT has signal to learn.
    w = rng.normal(size=N_FEATURES)
    score = X @ w + rng.normal(scale=0.5, size=n)
    edges = np.quantile(score, np.linspace(0.0, 1.0, N_CATEGORIES + 1)[1:-1])
    y = np.searchsorted(edges, score).astype(int)
    jobs = [
        ShuffleJob(
            job_id=i,
            cluster="bench",
            user=f"u{i % 50}",
            pipeline=f"p{i % 200}",
            archetype="synthetic",
            arrival=float(arrivals[i]),
            duration=float(durations[i]),
            size=float(sizes[i]),
            read_bytes=float(sizes[i] * 2.0),
            write_bytes=float(sizes[i]),
            read_ops=float(rng.uniform(1e3, 1e6)),
        )
        for i in range(n)
    ]
    trace = Trace(jobs, name="bench-hotpath")
    # Materialize the cached columns outside every timed region.
    trace.arrivals, trace.durations, trace.sizes
    return trace, X, y


def run_path(trace, X, y, fast: bool):
    """Train once, then deploy at each quota; returns (timings, results)."""
    params = AdaptiveParams()
    peak = trace.peak_ssd_usage()
    capacities = [quota * peak for quota in QUOTAS]
    timings = {}
    t0 = time.perf_counter()
    model = GBTClassifier(n_rounds=10, max_depth=6).fit(X[:N_TRAIN], y[:N_TRAIN])
    timings["train"] = time.perf_counter() - t0

    results = []
    t_predict = 0.0
    t_simulate = 0.0
    for capacity in capacities:
        t0 = time.perf_counter()
        if fast:
            raw = model.decision_function(X)  # cache hit after first quota
        else:
            raw = model._decision_function_legacy(X)
        cats = model.classes_[np.argmax(raw, axis=1)].astype(int)
        t_predict += time.perf_counter() - t0

        if fast:
            policy = AdaptiveCategoryPolicy(cats, N_CATEGORIES, params)
        else:
            policy = LegacyAdaptiveCategoryPolicy(cats, N_CATEGORIES, params)
        t0 = time.perf_counter()
        res = simulate(trace, policy, capacity)
        t_simulate += time.perf_counter() - t0
        results.append(res)
    timings["predict"] = t_predict
    timings["simulate"] = t_simulate
    timings["total"] = sum(timings.values())
    return timings, results


def check_equivalence(res_legacy, res_fast):
    for a, b in zip(res_legacy, res_fast):
        np.testing.assert_allclose(a.ssd_fraction, b.ssd_fraction, atol=1e-9)
        assert a.n_ssd_requested == b.n_ssd_requested
        assert a.n_spilled == b.n_spilled
        np.testing.assert_allclose(a.realized_tco, b.realized_tco, rtol=1e-9)


REPEATS = int(os.environ.get("BENCH_HOTPATH_REPEATS", "2"))


def _best_of(trace, X, y, fast: bool):
    """Per-stage minimum over repeats, suppressing transient system load."""
    best, results = None, None
    for _ in range(max(REPEATS, 1)):
        timings, results = run_path(trace, X, y, fast=fast)
        if best is None:
            best = timings
        else:
            best = {k: min(best[k], v) for k, v in timings.items()}
    best["total"] = sum(best[k] for k in ("train", "predict", "simulate"))
    return best, results


def test_perf_hotpaths():
    trace, X, y = build_workload()
    legacy_t, legacy_res = _best_of(trace, X, y, fast=False)
    fast_t, fast_res = _best_of(trace, X, y, fast=True)
    check_equivalence(legacy_res, fast_res)

    lines = [
        f"Hot-path benchmark: {len(trace):,} jobs, {len(QUOTAS)} quota deployments",
        f"{'stage':<10} {'legacy (s)':>12} {'fast (s)':>12} {'speedup':>9}",
    ]
    for stage in ("train", "predict", "simulate", "total"):
        sp = legacy_t[stage] / fast_t[stage] if fast_t[stage] > 0 else float("inf")
        lines.append(
            f"{stage:<10} {legacy_t[stage]:>12.2f} {fast_t[stage]:>12.2f} {sp:>8.1f}x"
        )
    emit("perf_hotpaths", "\n".join(lines))

    # The end-to-end bar (>= 3x) is asserted only at full benchmark
    # size; reduced CI runs check equivalence and report timings.
    if N_JOBS >= 200_000:
        assert legacy_t["total"] / fast_t["total"] >= 3.0


if __name__ == "__main__":
    test_perf_hotpaths()
