"""Hot-path benchmark: packed forest + unified shard-aware runtime.

Times the train-predict-simulate path on a ~200k-job synthetic trace
the way the experiment runners actually use it (one offline training,
then a quota sweep of online deployments, as in Figure 7), plus a
sharded deployment stage (the Section-2.4 caching-server regime):

- **legacy**: the seed implementation — per-tree Python loop in
  ``decision_function`` (re-run per deployment), the per-job simulator
  event loop (global and sharded), and the list-of-dataclass
  observation history.
- **fast**: the packed forest (with the shared decision-pass cache
  across deployments), the chunked engine of the unified runtime for
  both ``simulate`` and ``simulate_sharded``, and the ring-buffer
  spillover window.

Both paths must produce identical placements; the equivalence is
asserted before any timing is reported.  Run the full-size benchmark
with ``python -m pytest benchmarks/bench_perf_hotpaths.py -s``; the
pytest invocation in CI uses a reduced trace via
``BENCH_HOTPATH_JOBS``.

``test_perf_million_trace`` additionally drives the chunked engine over
a ~1M-job trace (``BENCH_MILLION_JOBS`` overrides the size) and reports
throughput plus peak RSS — the memory profile of the chunked engine.

``test_perf_skewed_capacity`` is the heterogeneous-capacity smoke: the
same sharded deployment over a skewed 2x/1x/.../0.5x lane layout (with
per-shard ACT enabled), chunked vs legacy, equivalence asserted before
timing (``BENCH_SKEWED_JOBS`` overrides the size, as in CI).

``test_perf_serve_latency`` is the online-service smoke: the same
200k-job trace replayed through ``PlacementService`` in micro-batch
mode (p50/p99 per-batch decision latency + sustained decisions/sec,
equivalence to the offline chunked engine asserted before timing) and
through request-at-a-time scalar mode on a subsample (per-request
latency percentiles).  A fully instrumented row — the standard alert
rules, a spill-rate burn SLO evaluated every batch, and a sampling
tracer — must land within 2% of the plain chunked rate (the
observability-overhead bar).  ``BENCH_SERVE_JOBS`` overrides the size,
as in CI; at full size the micro-batch path must sustain >= 50k
decisions/sec.

``test_perf_streaming_rss`` is the out-of-core ingestion smoke: the
same CSV trace is simulated twice per size — materialized through
``load_csv_trace`` (per-job objects) and streamed through
``stream_csv_trace`` (columns only) — in subprocess isolation so each
run gets a clean ``ru_maxrss``.  Streamed results must be bit-identical
to the in-memory ones, and streamed peak RSS must stay near-flat as the
trace grows 4x while the in-memory footprint grows with the job count
(``BENCH_STREAMING_JOBS`` overrides the size, as in CI).
"""

from __future__ import annotations

import csv
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import AdaptiveParams
from repro.core import AdaptiveCategoryPolicy, ObservedJob, spillover_percentage
from repro.ml import GBTClassifier
from repro.storage import simulate, simulate_sharded
from repro.units import GIB
from repro.workloads import ShuffleJob, Trace

from bench_utils import emit

N_JOBS = int(os.environ.get("BENCH_HOTPATH_JOBS", "200000"))
N_TRAIN = 8_000
N_CATEGORIES = 8
N_FEATURES = 16
QUOTAS = (0.01, 0.05, 0.2, 0.5)
#: Sharded stage: quota subset x caching-server count (fragmentation).
SHARDED_QUOTAS = (0.05, 0.5)
N_SHARDS = 16
SPAN = 14 * 86_400.0


class LegacyAdaptiveCategoryPolicy(AdaptiveCategoryPolicy):
    """The seed's adaptive policy: Python-list history, no batch path."""

    #: hide the batch protocol so ``engine="auto"`` picks the legacy loop
    decide_batch = None

    def on_simulation_start(self, trace, capacity, rates):
        super().on_simulation_start(trace, capacity, rates)
        self._list_history: list[ObservedJob] = []

    def _update_threshold(self, t):
        p = self.params
        ws = t - p.lookback_window
        self._list_history = [j for j in self._list_history if j.arrival > ws]
        h = spillover_percentage(self._list_history, t)
        if h < p.spillover_low:
            self.act = max(1, self.act - 1)
        elif h > p.spillover_high:
            self.act = min(self.n_categories - 1, self.act + 1)
        self._td = t
        from repro.core.adaptive import ThresholdEvent

        self.trajectory.append(ThresholdEvent(time=t, act=self.act, spillover=h))

    def observe(self, outcome):
        i = outcome.job_index
        self._list_history.append(
            ObservedJob(
                arrival=float(self._trace.arrivals[i]),
                end=float(self._trace.ends[i]),
                tcio_rate=float(self._tcio[i]),
                scheduled_ssd=outcome.requested_ssd,
                spill_time=outcome.spill_time,
                spilled_fraction=1.0 - outcome.ssd_space_fraction
                if outcome.requested_ssd
                else 0.0,
            )
        )


def build_workload(seed: int = 0):
    """Synthetic trace + aligned feature matrix with learnable labels."""
    rng = np.random.default_rng(seed)
    n = N_JOBS
    arrivals = np.sort(rng.uniform(0.0, SPAN, n))
    durations = rng.lognormal(mean=7.0, sigma=1.2, size=n)
    sizes = rng.lognormal(mean=21.0, sigma=1.5, size=n)
    X = rng.normal(size=(n, N_FEATURES))
    # Labels follow a noisy linear score so the GBT has signal to learn.
    w = rng.normal(size=N_FEATURES)
    score = X @ w + rng.normal(scale=0.5, size=n)
    edges = np.quantile(score, np.linspace(0.0, 1.0, N_CATEGORIES + 1)[1:-1])
    y = np.searchsorted(edges, score).astype(int)
    jobs = [
        ShuffleJob(
            job_id=i,
            cluster="bench",
            user=f"u{i % 50}",
            pipeline=f"p{i % 200}",
            archetype="synthetic",
            arrival=float(arrivals[i]),
            duration=float(durations[i]),
            size=float(sizes[i]),
            read_bytes=float(sizes[i] * 2.0),
            write_bytes=float(sizes[i]),
            read_ops=float(rng.uniform(1e3, 1e6)),
        )
        for i in range(n)
    ]
    trace = Trace(jobs, name="bench-hotpath")
    # Materialize the cached columns outside every timed region.
    trace.arrivals, trace.durations, trace.sizes
    return trace, X, y


def run_path(trace, X, y, fast: bool):
    """Train once, then deploy at each quota; returns (timings, results)."""
    params = AdaptiveParams()
    peak = trace.peak_ssd_usage()
    capacities = [quota * peak for quota in QUOTAS]
    timings = {}
    t0 = time.perf_counter()
    model = GBTClassifier(n_rounds=10, max_depth=6).fit(X[:N_TRAIN], y[:N_TRAIN])
    timings["train"] = time.perf_counter() - t0

    results = []
    t_predict = 0.0
    t_simulate = 0.0
    t_sharded = 0.0
    cats = None
    for capacity in capacities:
        t0 = time.perf_counter()
        if fast:
            raw = model.decision_function(X)  # cache hit after first quota
        else:
            raw = model._decision_function_legacy(X)
        cats = model.classes_[np.argmax(raw, axis=1)].astype(int)
        t_predict += time.perf_counter() - t0

        if fast:
            policy = AdaptiveCategoryPolicy(cats, N_CATEGORIES, params)
        else:
            policy = LegacyAdaptiveCategoryPolicy(cats, N_CATEGORIES, params)
        t0 = time.perf_counter()
        res = simulate(trace, policy, capacity)
        t_simulate += time.perf_counter() - t0
        results.append(res)

    # Sharded deployments through the unified runtime.  The legacy path
    # forces the per-job lane loop; the fast path rides the multi-lane
    # chunked engine.
    for quota in SHARDED_QUOTAS:
        if fast:
            policy = AdaptiveCategoryPolicy(cats, N_CATEGORIES, params)
        else:
            policy = LegacyAdaptiveCategoryPolicy(cats, N_CATEGORIES, params)
        t0 = time.perf_counter()
        res = simulate_sharded(
            trace, policy, quota * peak, N_SHARDS,
            engine="auto" if fast else "legacy",
        )
        t_sharded += time.perf_counter() - t0
        results.append(res)

    timings["predict"] = t_predict
    timings["simulate"] = t_simulate
    timings["sharded"] = t_sharded
    timings["total"] = sum(timings.values())
    return timings, results


def check_equivalence(res_legacy, res_fast):
    for a, b in zip(res_legacy, res_fast):
        np.testing.assert_allclose(a.ssd_fraction, b.ssd_fraction, atol=1e-9)
        assert a.n_ssd_requested == b.n_ssd_requested
        assert a.n_spilled == b.n_spilled
        np.testing.assert_allclose(a.realized_tco, b.realized_tco, rtol=1e-9)


REPEATS = int(os.environ.get("BENCH_HOTPATH_REPEATS", "2"))


def _best_of(trace, X, y, fast: bool):
    """Per-stage minimum over repeats, suppressing transient system load."""
    best, results = None, None
    for _ in range(max(REPEATS, 1)):
        timings, results = run_path(trace, X, y, fast=fast)
        if best is None:
            best = timings
        else:
            best = {k: min(best[k], v) for k, v in timings.items()}
    best["total"] = sum(best[k] for k in ("train", "predict", "simulate", "sharded"))
    return best, results


def test_perf_hotpaths():
    trace, X, y = build_workload()
    legacy_t, legacy_res = _best_of(trace, X, y, fast=False)
    fast_t, fast_res = _best_of(trace, X, y, fast=True)
    check_equivalence(legacy_res, fast_res)

    lines = [
        f"Hot-path benchmark: {len(trace):,} jobs, {len(QUOTAS)} quota deployments"
        f" + {len(SHARDED_QUOTAS)} sharded ({N_SHARDS} caching servers)",
        f"{'stage':<10} {'legacy (s)':>12} {'fast (s)':>12} {'speedup':>9}",
    ]
    for stage in ("train", "predict", "simulate", "sharded", "total"):
        sp = legacy_t[stage] / fast_t[stage] if fast_t[stage] > 0 else float("inf")
        lines.append(
            f"{stage:<10} {legacy_t[stage]:>12.2f} {fast_t[stage]:>12.2f} {sp:>8.1f}x"
        )
    emit("perf_hotpaths", "\n".join(lines))

    # The end-to-end (>= 3x) and sharded-simulate (>= 2x) bars are
    # asserted only at full benchmark size; reduced CI runs check
    # equivalence and report timings.
    if N_JOBS >= 200_000:
        assert legacy_t["total"] / fast_t["total"] >= 3.0
        assert legacy_t["sharded"] / fast_t["sharded"] >= 2.0


def _peak_rss_mib() -> float:
    """Lifetime peak RSS of this process (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def test_perf_million_trace():
    """Chunked-engine throughput + memory profile on a ~1M-job trace.

    The legacy loop is deliberately not timed here (it is the 200k-scale
    benchmark's job); this stage answers "does the chunked engine hold
    up, in time and peak RSS, at production trace sizes?".  CI runs it
    reduced via ``BENCH_MILLION_JOBS``.
    """
    global N_JOBS
    n = int(os.environ.get("BENCH_MILLION_JOBS", "1000000"))
    saved = N_JOBS
    N_JOBS = n
    try:
        rss_start = _peak_rss_mib()
        trace, X, y = build_workload(seed=1)
        model = GBTClassifier(n_rounds=10, max_depth=6).fit(X[:N_TRAIN], y[:N_TRAIN])
        cats = model.classes_[np.argmax(model.decision_function(X), axis=1)].astype(int)
        peak = trace.peak_ssd_usage()
        params = AdaptiveParams()
        rows = []
        for label, runner in (
            ("global", lambda p: simulate(trace, p, 0.05 * peak)),
            ("sharded", lambda p: simulate_sharded(trace, p, 0.05 * peak, N_SHARDS)),
        ):
            policy = AdaptiveCategoryPolicy(cats, N_CATEGORIES, params)
            rss_pre = _peak_rss_mib()
            t0 = time.perf_counter()
            res = runner(policy)
            dt = time.perf_counter() - t0
            rows.append((label, dt, len(trace) / dt, _peak_rss_mib() - rss_pre))
            assert res.n_jobs == len(trace)
        # ru_maxrss is the process-lifetime peak and cannot be reset, so
        # each row reports the *new* peak the stage established over the
        # peak already reached before it (0 = the stage stayed under the
        # prior high-water mark).  For standalone per-stage numbers run
        # this test in its own pytest process.
        rss_end = _peak_rss_mib()
        lines = [
            f"Million-trace profile: {len(trace):,} jobs, chunked engine "
            f"(peak RSS: {rss_start:,.0f} MiB at test start, "
            f"{rss_end:,.0f} MiB after; build+predict dominate)",
            f"{'stage':<10} {'time (s)':>10} {'jobs/s':>12} "
            f"{'new peak RSS in stage (MiB)':>28}",
        ]
        for label, dt, rate, rss in rows:
            lines.append(f"{label:<10} {dt:>10.2f} {rate:>12,.0f} {rss:>28,.0f}")
        emit("perf_million_trace", "\n".join(lines))
    finally:
        N_JOBS = saved


def test_perf_skewed_capacity():
    """Heterogeneous-lane smoke: skewed capacities through both engines.

    One sharded deployment over a 2x/1x/.../0.5x capacity layout with
    per-shard ACT enabled — the production shape where caching servers
    own unequal slices and adapt their own thresholds.  Placements must
    match between the chunked and legacy engines before any timing is
    reported; the emitted table is the perf baseline for the
    heterogeneous path.
    """
    global N_JOBS
    n = int(os.environ.get("BENCH_SKEWED_JOBS", "200000"))
    saved = N_JOBS
    N_JOBS = n
    try:
        trace, X, y = build_workload(seed=2)
        model = GBTClassifier(n_rounds=10, max_depth=6).fit(X[:N_TRAIN], y[:N_TRAIN])
        cats = model.classes_[np.argmax(model.decision_function(X), axis=1)].astype(int)
        peak = trace.peak_ssd_usage()
        weights = np.array([2.0] + [1.0] * (N_SHARDS - 2) + [0.5])
        caps = 0.05 * peak * weights / weights.sum()
        params = AdaptiveParams()

        timings = {}
        results = {}
        for engine in ("legacy", "chunked"):
            policy = AdaptiveCategoryPolicy(
                cats, N_CATEGORIES, params, per_shard_act=True
            )
            t0 = time.perf_counter()
            results[engine] = simulate_sharded(
                trace, policy, caps, N_SHARDS, engine=engine
            )
            timings[engine] = time.perf_counter() - t0
        check_equivalence([results["legacy"]], [results["chunked"]])
        assert results["chunked"].lane_capacities is not None
        np.testing.assert_allclose(results["chunked"].lane_capacities, caps)

        speedup = (
            timings["legacy"] / timings["chunked"]
            if timings["chunked"] > 0
            else float("inf")
        )
        lines = [
            f"Skewed-capacity smoke: {len(trace):,} jobs, {N_SHARDS} caching "
            "servers, 2x/1x/.../0.5x layout, per-shard ACT",
            f"{'engine':<10} {'time (s)':>10} {'jobs/s':>12}",
        ]
        for engine in ("legacy", "chunked"):
            lines.append(
                f"{engine:<10} {timings[engine]:>10.2f} "
                f"{len(trace) / timings[engine]:>12,.0f}"
            )
        lines.append(f"chunked speedup: {speedup:.1f}x")
        emit("perf_skewed_capacity", "\n".join(lines))
        if n >= 200_000:
            assert speedup >= 2.0
    finally:
        N_JOBS = saved


def test_perf_serve_latency():
    """Online-service latency/throughput on the hot-path trace.

    Drives the 200k-job workload through ``PlacementService`` twice:

    - **micro-batch mode** (the production submission path): batches of
      ``SERVE_BATCH`` jobs, per-batch decision latency and sustained
      decisions/sec over the whole stream;
    - **scalar mode** (request-at-a-time): per-request latency
      percentiles over a subsample (the per-job Python loop is the
      latency floor, not the throughput path);
    - **instrumented micro-batch**: the same chunked replay with the
      standard chaos alert rules + a spill-rate burn SLO evaluated
      after every batch and a 1/256-sampling tracer attached — the
      time spent in alert evaluation + trace sampling, timed directly
      on the hot path, must stay under 2% of the replay at full size.

    The micro-batch replay must be bit-identical to the offline chunked
    engine before any timing is reported, and at full size must sustain
    >= 50k decisions/sec.  Every batch-mode row is the best of
    ``BENCH_SERVE_REPEATS`` interleaved replays (minimum over repeats,
    as in ``_best_of``) so the rows are not hostage to GC pauses or
    slowly-varying system load; the overhead bar is asserted on the
    in-run measurement rather than an A/B rate delta, which at the 2%
    scale is indistinguishable from that load noise.
    """
    from repro.serve import (
        AlertManager,
        PlacementService,
        SloSpec,
        Tracer,
        default_alert_rules,
    )

    global N_JOBS
    n = int(os.environ.get("BENCH_SERVE_JOBS", "200000"))
    batch_jobs = 1024
    saved = N_JOBS
    N_JOBS = n
    try:
        trace, X, y = build_workload(seed=5)
        peak = trace.peak_ssd_usage()
        capacity = 0.05 * peak
        rng = np.random.default_rng(9)
        cats = rng.integers(1, N_CATEGORIES, n)
        params = AdaptiveParams()

        # Offline reference for the equivalence gate.
        offline = simulate(
            trace, AdaptiveCategoryPolicy(cats, N_CATEGORIES, params), capacity
        )

        # Micro-batch mode: the sustained-throughput path, one row per
        # engine tier (chunked always; compiled where numba exists —
        # every tier must be bit-identical to the offline reference),
        # plus a fully instrumented chunked row for the observability
        # overhead bar.
        from repro.storage.compiled import HAVE_NUMBA

        pipelines = trace.pipelines
        configs = [("batch/chunked", "chunked", False)]
        if HAVE_NUMBA:
            configs.append(("batch/compiled", "compiled", False))
        configs.append(("batch/instrumented", "chunked", True))
        # Each row is the best of ``BENCH_SERVE_REPEATS`` full replays
        # (same minimum-over-repeats convention as ``_best_of``), and
        # the repeats are *interleaved* across configs: a single replay
        # is hostage to GC pauses, and sequential per-config repeats are
        # hostage to slowly-varying system load, either of which can
        # dwarf the <2% overhead bar being measured.  Interleaving lets
        # every config sample the same load phases, so the per-config
        # minima are comparable.
        import gc

        # The overhead column is measured *directly*: the instrumented
        # replay times every entry into the observability code on the
        # hot path (the per-batch ``evaluate_alerts`` tick plus the
        # tracer's scan/record hooks inside ``submit_batch``) and
        # reports that time as a share of the replay.  An A/B rate
        # delta against the plain row cannot resolve a 2% bar on
        # shared hardware — run-to-run phase noise between two 0.5s
        # replays is itself several percent — so the A/B delta is
        # reported for reference and guarded only loosely.
        def _timed(method, acc):
            def wrapper(self, *args):
                t0 = time.perf_counter()
                method(self, *args)
                acc[0] += time.perf_counter() - t0
            return wrapper

        def _patch_trace_timers(acc):
            saved = (
                PlacementService._trace_scan, PlacementService._trace_pump
            )
            PlacementService._trace_scan = _timed(saved[0], acc)
            PlacementService._trace_pump = _timed(saved[1], acc)

            def unpatch():
                PlacementService._trace_scan = saved[0]
                PlacementService._trace_pump = saved[1]

            return unpatch

        serve_reps = max(int(os.environ.get("BENCH_SERVE_REPEATS", "5")), 1)
        best = {}
        hook_share = None
        for rep in range(serve_reps):
            for label, engine, instrumented in configs:
                alerts = tracer = None
                if instrumented:
                    alerts = AlertManager(
                        default_alert_rules(),
                        [SloSpec(
                            "spill-rate", "serve_spilled_total",
                            denominator="serve_decided_total", budget=0.25,
                            fast_window=SPAN / 8, slow_window=SPAN / 2,
                        )],
                    )
                    tracer = Tracer(sample=1.0 / 256)
                service = PlacementService(
                    AdaptiveCategoryPolicy(cats, N_CATEGORIES, params), capacity,
                    mode="batch", engine=engine, alerts=alerts, tracer=tracer,
                )
                service.open(trace)
                lat = np.empty(-(-n // batch_jobs))
                hooks = 0.0
                if instrumented:
                    acc = [0.0]
                    unpatch = _patch_trace_timers(acc)
                gc.collect()
                t_start = time.perf_counter()
                for b, lo in enumerate(range(0, n, batch_jobs)):
                    hi = min(lo + batch_jobs, n)
                    t0 = time.perf_counter()
                    service.submit_batch(
                        trace.arrivals[lo:hi], trace.durations[lo:hi],
                        trace.sizes[lo:hi], trace.read_bytes[lo:hi],
                        trace.write_bytes[lo:hi], trace.read_ops[lo:hi],
                        pipelines=pipelines[lo:hi],
                    )
                    if instrumented:
                        t_eval = time.perf_counter()
                        service.evaluate_alerts()
                        hooks += time.perf_counter() - t_eval
                    lat[b] = time.perf_counter() - t0
                elapsed = time.perf_counter() - t_start
                if instrumented:
                    unpatch()
                    # Per-rep hot-path share; minimum over reps, like
                    # the row times (a stall inside a hook only ever
                    # inflates the share).
                    share = (hooks + acc[0]) / elapsed
                    if hook_share is None or share < hook_share:
                        hook_share = share
                res = service.result()
                if rep == 0:
                    np.testing.assert_array_equal(
                        res.ssd_fraction, offline.ssd_fraction
                    )
                    assert res.realized_tco == offline.realized_tco
                if label not in best or elapsed < best[label][0]:
                    best[label] = (elapsed, lat)
        batch_rows = []
        rates = {}
        for label, _, _ in configs:
            elapsed, lat = best[label]
            rates[label] = n / elapsed
            p50b, p99b = np.percentile(lat, [50, 99])
            batch_rows.append((label, p50b, p99b, rates[label]))
        rate = rates["batch/chunked"]

        # Scalar mode: request-at-a-time latency floor on a subsample.
        n_scalar = min(n, 20_000)
        service_s = PlacementService(
            AdaptiveCategoryPolicy(cats[:n_scalar], N_CATEGORIES, params),
            capacity, mode="scalar",
        )
        sub = trace.subset(np.arange(n) < n_scalar, name="scalar-sub")
        service_s.open(sub)
        lat_s = np.empty(n_scalar)
        for i in range(n_scalar):
            t0 = time.perf_counter()
            service_s.submit(
                arrival=sub.arrivals[i], duration=sub.durations[i],
                size=sub.sizes[i], read_bytes=sub.read_bytes[i],
                write_bytes=sub.write_bytes[i], read_ops=sub.read_ops[i],
                pipeline=pipelines[i],
            )
            lat_s[i] = time.perf_counter() - t0
        p50s, p99s = np.percentile(lat_s, [50, 99])
        rate_s = n_scalar / lat_s.sum()

        overhead_pct = 100.0 * hook_share
        delta_pct = 100.0 * (
            1.0 - rates["batch/instrumented"] / rates["batch/chunked"]
        )
        lines = [
            f"Online-service latency smoke: {n:,} jobs micro-batched "
            f"({batch_jobs}/batch), {n_scalar:,} request-at-a-time "
            "(adaptive policy; every engine tier bit-identical to the "
            "offline reference; instrumented = alert rules + spill-rate "
            "SLO per batch + 1/256 tracer)",
            f"{'mode':<18} {'p50':>12} {'p99':>12} {'decisions/s':>13}",
        ]
        for label, p50b, p99b, r in batch_rows:
            lines.append(
                f"{label:<18} {p50b * 1e3:>9.2f} ms {p99b * 1e3:>9.2f} ms "
                f"{r:>13,.0f}"
            )
        lines += [
            f"{'per-request':<18} {p50s * 1e6:>9.1f} us {p99s * 1e6:>9.1f} us "
            f"{rate_s:>13,.0f}",
            f"chunks: {service.stats.n_chunks}, peak queue: "
            f"{service.stats.max_pending_seen} jobs",
            f"observability overhead: {overhead_pct:.2f}% of the serving "
            "hot path spent in alert evaluation + trace sampling "
            f"(measured in-run, best of {serve_reps} reps; "
            f"instrumented vs plain rate delta {delta_pct:+.1f}%)",
        ]
        if not HAVE_NUMBA:
            lines.append("batch/compiled: skipped (numba not installed)")
        emit("perf_serve_latency", "\n".join(lines))

        # The sustained-throughput and observability-overhead bars are
        # asserted only at full size.  The 2% bar is on the directly
        # measured hot-path share; the A/B rate comparison sits inside
        # this host's replay-to-replay noise, so it only guards against
        # gross regressions.
        if n >= 200_000:
            assert rate >= 50_000, f"sustained {rate:,.0f} decisions/s < 50k"
            assert hook_share < 0.02, (
                f"observability overhead {overhead_pct:.2f}% of the "
                "serving hot path > 2%"
            )
            assert rates["batch/instrumented"] >= 0.90 * rate, (
                f"instrumented rate delta {delta_pct:+.1f}% vs plain "
                "chunked > 10%"
            )
    finally:
        N_JOBS = saved


def _write_synthetic_csv(path: Path, n: int, seed: int) -> None:
    """Write an arrival-ordered CSV trace straight from columns.

    Deliberately bypasses ``save_csv_trace`` so the writer never builds
    job objects either — the benchmark measures the two *readers*.
    """
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, SPAN, n))
    durations = rng.lognormal(mean=7.0, sigma=1.2, size=n)
    sizes = rng.lognormal(mean=21.0, sigma=1.5, size=n)
    read_ops = rng.uniform(1e3, 1e6, size=n)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["job_id", "arrival", "duration", "size", "read_bytes",
             "write_bytes", "read_ops", "pipeline", "user"]
        )
        for i in range(n):
            writer.writerow(
                [i, arrivals[i], durations[i], sizes[i], sizes[i] * 2.0,
                 sizes[i], read_ops[i], f"p{i % 200}", f"u{i % 50}"]
            )


#: Child process of the streaming-RSS smoke: one (mode, csv, block_size)
#: measurement.  Reports two peaks — the allocator-level ``tracemalloc``
#: peak (deterministic at any trace size, used for the CI assertion)
#: and the OS-level ``ru_maxrss`` delta over the post-import mark (the
#: honest number at full size, but quantized away when the working set
#: stays under the interpreter's import-time high-water mark).  Prints
#: ``traced_peak_mib rss_delta_mib repr(realized_tco) n_spilled
#: n_ssd_requested``.
_STREAMING_CHILD = r"""
import resource, sys, tracemalloc
mode, path, block = sys.argv[1], sys.argv[2], int(sys.argv[3])
from repro.core import AdaptiveCategoryPolicy, hash_categories
from repro.storage import simulate
rss0 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
tracemalloc.start()
if mode == "stream":
    from repro.workloads import materialize_trace, stream_csv_trace
    trace = materialize_trace(stream_csv_trace(path, block_size=block))
else:
    from repro.workloads import load_csv_trace
    trace = load_csv_trace(path)
capacity = 0.05 * trace.peak_ssd_usage()
policy = AdaptiveCategoryPolicy(hash_categories(trace, 8), 8)
res = simulate(trace, policy, capacity)
traced = tracemalloc.get_traced_memory()[1]
rss1 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(traced / 2**20, (rss1 - rss0) / 1024.0, repr(res.realized_tco),
      res.n_spilled, res.n_ssd_requested)
"""


def _measure_child(mode: str, path: Path, block_size: int):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _STREAMING_CHILD, mode, str(path), str(block_size)],
        capture_output=True, text=True, env=env, check=True,
    ).stdout.split()
    return float(out[0]), float(out[1]), tuple(out[2:])


def test_perf_streaming_rss(tmp_path):
    """Out-of-core smoke: streamed peak RSS stays flat, in-memory grows.

    The trace is >= 4x the streaming block size at the small size and
    >= 16x at the large one; results must be bit-identical between the
    two readers at both sizes.
    """
    n_large = int(os.environ.get("BENCH_STREAMING_JOBS", "200000"))
    n_small = max(n_large // 4, 1000)
    block_size = max(n_small // 4, 256)

    traced = {}
    rss = {}
    checks = {}
    for label, n, seed in (("small", n_small, 3), ("large", n_large, 4)):
        path = tmp_path / f"stream_{label}.csv"
        _write_synthetic_csv(path, n, seed)
        for mode in ("inmem", "stream"):
            traced[mode, label], rss[mode, label], checks[mode, label] = (
                _measure_child(mode, path, block_size)
            )
        # Bit-identical across readers (realized TCO repr + counters).
        assert checks["inmem", label] == checks["stream", label]

    grow_inmem = traced["inmem", "large"] - traced["inmem", "small"]
    grow_stream = traced["stream", "large"] - traced["stream", "small"]

    lines = [
        f"Streaming-ingestion RSS smoke: {n_small:,} -> {n_large:,} jobs "
        f"(CSV, blocks of {block_size:,}; adaptive-hash policy, "
        "subprocess-isolated peaks)",
        f"{'reader':<18} {'heap @small (MiB)':>18} {'heap @large (MiB)':>18} "
        f"{'growth (MiB)':>13} {'RSS delta @large (MiB)':>23}",
    ]
    for mode, name in (("inmem", "load_csv_trace"), ("stream", "stream_csv_trace")):
        lines.append(
            f"{name:<18} {traced[mode, 'small']:>18,.0f} "
            f"{traced[mode, 'large']:>18,.0f} "
            f"{traced[mode, 'large'] - traced[mode, 'small']:>13,.0f} "
            f"{rss[mode, 'large']:>23,.0f}"
        )
    if grow_stream > 0:
        lines.append(f"in-memory heap grows {grow_inmem / grow_stream:.1f}x faster")
    emit("perf_streaming_rss", "\n".join(lines))

    # The in-memory reader's footprint grows with the job-object
    # materialization; the streamed reader keeps only the numeric
    # columns, so its heap growth over the same 4x size step must stay
    # well below half of the in-memory growth.  (Asserted on the
    # allocator-level peak, which is deterministic at reduced CI sizes;
    # ru_maxrss quantizes to 0 when the working set stays under the
    # interpreter's import-time high-water mark.)
    assert grow_stream < 0.5 * grow_inmem
    # And the streamed path must beat the in-memory one outright at the
    # large size, not just grow slower.
    assert traced["stream", "large"] < traced["inmem", "large"]
    # At full benchmark size the OS-level peak tells the same story.
    if n_large >= 200_000 and rss["stream", "large"] > 0:
        assert rss["stream", "large"] < rss["inmem", "large"]


if __name__ == "__main__":
    import tempfile

    test_perf_hotpaths()
    test_perf_million_trace()
    test_perf_skewed_capacity()
    test_perf_serve_latency()
    with tempfile.TemporaryDirectory() as _tmp:
        test_perf_streaming_rss(Path(_tmp))
