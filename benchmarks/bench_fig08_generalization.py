"""Figure 8: workload generalization across clusters.

Paper claim: a category model trained on another cluster still works on
C0 (except the outlier cluster C3, which only runs workloads rare
elsewhere), and beats the best baseline.
"""

import pytest

from repro.analysis import DEFAULT_QUOTAS, fig8_generalization, render_series

from bench_utils import emit


@pytest.mark.benchmark(group="fig08")
def test_fig08_generalization(benchmark):
    results = benchmark.pedantic(fig8_generalization, rounds=1, iterations=1)

    quotas = list(DEFAULT_QUOTAS)
    series = {name: [vals[q] for q in quotas] for name, vals in results.items()}
    emit(
        "fig08_generalization",
        render_series(
            [f"{q:.0%}" for q in quotas],
            series,
            x_name="quota",
            title="Figure 8: cross-cluster generalization (TCO savings % on C0)",
        ),
    )

    native = series["Train C0, test C0"]
    # Non-outlier foreign models land in the same ballpark as the native
    # model at moderate quotas (within a factor of ~2 at the 10% point).
    for src in ("Train C1, test C0", "Train C2, test C0"):
        assert series[src][2] > 0.3 * native[2], src
    # The outlier cluster's model transfers worst among the foreign models.
    foreign_final = {
        src: series[src][2] for src in results if src.startswith("Train C") and src != "Train C0, test C0"
    }
    assert foreign_final["Train C3, test C0"] == min(foreign_final.values())
