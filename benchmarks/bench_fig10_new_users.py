"""Figure 10: generalization to new users and new pipelines.

Paper claim: training with vs without a high-TCO user (or pipeline)
yields similar online TCO savings — the model generalizes to unseen
users/pipelines through shared feature structure.
"""

import pytest

from repro.analysis import fig10_holdout_generalization, render_table

from bench_utils import emit

QUOTAS = (0.01, 0.1, 0.5, 1.0)


def _check_and_render(results, label):
    rows = []
    for cname, series in results.items():
        for q in QUOTAS:
            rows.append([cname, f"{q:.0%}", series["with"][q], series["without"][q]])
    table = render_table(
        ["cluster", "quota", f"train with {label}", f"train without {label}"],
        rows,
        title=f"Figure 10: hold-out generalization ({label})",
    )
    # "Similar savings": the without-curve tracks the with-curve.  Allow
    # slack at the tightest quota where absolute numbers are small.
    close = 0
    total = 0
    for series in results.values():
        for q in QUOTAS[1:]:
            total += 1
            w, wo = series["with"][q], series["without"][q]
            if abs(w - wo) <= max(0.5 * abs(w), 2.0):
                close += 1
    return table, close / max(total, 1)


@pytest.mark.benchmark(group="fig10")
def test_fig10_new_users(benchmark):
    results = benchmark.pedantic(
        fig10_holdout_generalization,
        kwargs={"kind": "user", "quotas": QUOTAS, "cluster_indices": (0, 1, 2, 4, 5)},
        rounds=1,
        iterations=1,
    )
    table, frac_close = _check_and_render(results, "user")
    emit("fig10_users", table)
    assert frac_close >= 0.7


@pytest.mark.benchmark(group="fig10")
def test_fig10_new_pipelines(benchmark):
    results = benchmark.pedantic(
        fig10_holdout_generalization,
        kwargs={"kind": "pipeline", "quotas": QUOTAS, "cluster_indices": (0, 1, 2, 4, 5)},
        rounds=1,
        iterations=1,
    )
    table, frac_close = _check_and_render(results, "pipeline")
    emit("fig10_pipelines", table)
    assert frac_close >= 0.7
