"""Figure 1: workloads show vastly different storage patterns.

Paper claim: space usage and lifetime of different workloads differ by
orders of magnitude, motivating per-workload models.
"""

import numpy as np
import pytest

from repro.analysis import fig1_workload_diversity, render_table

from bench_utils import emit


@pytest.mark.benchmark(group="fig01")
def test_fig01_workload_diversity(benchmark):
    result = benchmark.pedantic(fig1_workload_diversity, rounds=1, iterations=1)

    rows = []
    for name, series in result.items():
        rows.append(
            [
                name,
                float(series["space_bytes"].max()),
                float(series["space_bytes"].mean()),
                float(series["mean_lifetime_s"].max()),
            ]
        )
    emit(
        "fig01_workload_diversity",
        render_table(
            ["workload", "peak space (B)", "mean space (B)", "max lifetime (s)"],
            rows,
            title="Figure 1: workload diversity",
        ),
    )

    w0 = result["Workload 0"]
    w1 = result["Workload 1"]
    # Paper shape: orders-of-magnitude gap between workloads.
    space_ratio = w0["space_bytes"].max() / max(w1["space_bytes"].max(), 1.0)
    life_ratio = (
        w0["mean_lifetime_s"].max() / max(w1["mean_lifetime_s"].max(), 1.0)
    )
    assert space_ratio > 10 or space_ratio < 0.1
    assert life_ratio > 10 or life_ratio < 0.1
