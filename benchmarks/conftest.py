"""Benchmark-directory conftest.

Intentionally empty of helpers: shared code lives in
:mod:`bench_utils` so the module name cannot collide with
``tests/conftest.py`` when both directories are collected in one
pytest run.
"""
