"""Figure 6: TCO/TCIO savings across 10 clusters at a fixed 1% quota.

Paper claim: Adaptive Ranking saves up to 3.47x (2.59x on average) over
the best baseline per cluster.
"""

import numpy as np
import pytest

from repro.analysis import (
    FIG6_METHODS,
    compare_methods_fleetwide,
    fig6_cluster_savings,
    render_table,
)

from bench_utils import emit


@pytest.mark.benchmark(group="fig06")
def test_fig06_cluster_savings(benchmark):
    results = benchmark.pedantic(
        fig6_cluster_savings, kwargs={"n_clusters": 10, "quota": 0.01},
        rounds=1, iterations=1,
    )

    headers = ["cluster"] + [m for m in FIG6_METHODS] + ["ours/best-baseline"]
    tco_rows, tcio_rows, ratios = [], [], []
    for cname, per_method in results.items():
        tco = {m: per_method[m].tco_savings_pct for m in FIG6_METHODS}
        baselines = [v for m, v in tco.items() if m != "Adaptive Ranking"]
        best = max(baselines)
        ratio = tco["Adaptive Ranking"] / best if best > 0 else float("inf")
        ratios.append(ratio)
        tco_rows.append([cname] + [tco[m] for m in FIG6_METHODS] + [ratio])
        tcio_rows.append(
            [cname]
            + [per_method[m].tcio_savings_pct for m in FIG6_METHODS]
            + [float("nan")]
        )
    emit(
        "fig06_tco",
        render_table(headers, tco_rows,
                     title="Figure 6 (top): TCO savings % per cluster @ 1% quota"),
    )
    emit(
        "fig06_tcio",
        render_table(headers, tcio_rows,
                     title="Figure 6 (bottom): TCIO savings % per cluster @ 1% quota"),
    )

    fleet = compare_methods_fleetwide(results)
    emit(
        "fig06_fleet",
        render_table(
            ["method", "fleet TCO savings %", "fleet TCIO savings %"],
            [[m, f.tco_savings_pct, f.tcio_savings_pct] for m, f in fleet.items()],
            title="Fleet-level aggregation over the 10 clusters @ 1% quota",
        ),
    )

    finite = [r for r in ratios if np.isfinite(r)]
    # Paper shape: ours wins on most clusters and the best cluster
    # shows a clear advantage.  (The paper's 3.47x max reflects weaker
    # production baselines; our synthetic baselines are closer, see
    # EXPERIMENTS.md.)
    assert np.mean([r > 1.0 for r in finite]) >= 0.6
    assert max(finite) > 1.25
    assert np.mean(finite) > 1.0
    # Fleet-wide, ours is the best non-oracle method.
    best_fleet = max(fleet, key=lambda m: fleet[m].tco_savings_pct)
    assert best_fleet == "Adaptive Ranking"
