"""Figure 5: prototype results — Adaptive Ranking vs FirstFit.

Paper claim: in the 16-pipeline / ~1024-job test deployment, Adaptive
Ranking achieves 4.38x (1% quota) and 1.77x (20% quota) the TCO savings
of FirstFit; TCIO improvements are 3.90x and 1.69x.
"""

import pytest

from repro.analysis import render_table
from repro.prototype import build_prototype_workload, run_prototype

from bench_utils import emit


@pytest.mark.benchmark(group="fig05")
def test_fig05_prototype(benchmark):
    def run():
        workload = build_prototype_workload()
        return {q: run_prototype(workload, q) for q in (0.01, 0.20)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for q, r in results.items():
        rows.append(
            [
                f"{q:.0%}",
                r.adaptive.tco_savings_pct,
                r.firstfit.tco_savings_pct,
                r.tco_improvement,
                r.adaptive.tcio_savings_pct,
                r.firstfit.tcio_savings_pct,
                r.tcio_improvement,
            ]
        )
    emit(
        "fig05_prototype",
        render_table(
            ["quota", "AR TCO %", "FF TCO %", "TCO ratio", "AR TCIO %", "FF TCIO %", "TCIO ratio"],
            rows,
            title="Figure 5: prototype savings (paper TCO ratios: 4.38x @1%, 1.77x @20%)",
        ),
    )

    # Paper shape: ours beats FirstFit clearly at both quotas.  (The
    # paper's ratios are 4.38x @1% vs 1.77x @20%; with synthetic traces
    # which quota shows the larger ratio varies, so we assert the
    # advantage itself, not its ordering across quotas.)
    assert results[0.01].tco_improvement > 1.3
    assert results[0.20].tco_improvement > 1.3
