"""Ablation (the paper's motivating negative result): imitation learning.

Section 4: learning the oracle's *decisions* directly bakes the
training-time environment (SSD capacity) into the model, so it cannot
adapt when deployed under different capacity.  BYOM predicts a
capacity-independent ranking instead and lets the storage layer adapt.

This benchmark trains the imitation model at a 10% quota and deploys
both methods across a quota sweep: imitation stays competitive near its
training regime and degrades away from it, while Adaptive Ranking
adapts.
"""

import pytest

from repro.analysis import render_series, standard_suite
from repro.baselines import ImitationModel, ImitationPolicy
from repro.storage import simulate

from bench_utils import emit

QUOTAS = (0.002, 0.01, 0.1, 0.5)
TRAIN_QUOTA = 0.1


@pytest.mark.benchmark(group="ablation")
def test_ablation_imitation_learning(benchmark):
    def run():
        suite = standard_suite(0)
        cluster = suite.cluster
        imitation = ImitationModel(
            train_quota_fraction=TRAIN_QUOTA, n_rounds=10
        ).fit(cluster.train, cluster.features_train)
        out = {"Adaptive Ranking": [], "Imitation": []}
        for q in QUOTAS:
            cap = q * cluster.peak_ssd_usage
            out["Adaptive Ranking"].append(
                suite.run("Adaptive Ranking", q).tco_savings_pct
            )
            policy = ImitationPolicy(imitation, cluster.features_test)
            out["Imitation"].append(
                simulate(cluster.test, policy, cap, suite.rates).tco_savings_pct
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "ablation_imitation",
        render_series(
            [f"{q:.1%}" for q in QUOTAS],
            results,
            x_name="quota",
            title=f"Ablation: imitation learning (teacher trained @ {TRAIN_QUOTA:.0%})",
        ),
    )

    ours = results["Adaptive Ranking"]
    imit = results["Imitation"]
    # Far below the training quota, the imitation policy keeps admitting
    # its training-regime population and loses badly to the adaptive one.
    assert ours[0] > imit[0]
    # Near the training regime imitation is allowed to be competitive.
    assert imit[2] > 0
