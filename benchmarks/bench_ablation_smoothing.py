"""Ablation (beyond the paper): the two ACT smoothing mechanisms.

Section 4.3 introduces a tolerance band and a minimum decision interval
to stop the admission threshold from thrashing.  This ablation disables
each mechanism and measures both the savings impact and the threshold
churn (number of ACT changes).
"""

import numpy as np
import pytest

from repro.analysis import render_table, standard_suite
from repro.config import AdaptiveParams
from repro.core import AdaptiveCategoryPolicy
from repro.storage import simulate

from bench_utils import emit

QUOTA = 0.01

VARIANTS = {
    "full smoothing (default)": AdaptiveParams(),
    "no tolerance band": AdaptiveParams(spillover_low=0.049999, spillover_high=0.05),
    "no decision interval": AdaptiveParams(decision_interval=0.0),
    "neither": AdaptiveParams(
        spillover_low=0.049999, spillover_high=0.05, decision_interval=0.0
    ),
}


@pytest.mark.benchmark(group="ablation")
def test_ablation_smoothing_mechanisms(benchmark):
    def run():
        suite = standard_suite(0)
        cluster = suite.cluster
        categories = suite.pipeline.model.predict(cluster.features_test)
        out = {}
        for name, params in VARIANTS.items():
            policy = AdaptiveCategoryPolicy(
                categories, suite.model_params.n_categories, params
            )
            res = simulate(
                cluster.test, policy, QUOTA * cluster.peak_ssd_usage, suite.rates
            )
            acts = np.array([e.act for e in policy.trajectory])
            churn = int(np.abs(np.diff(acts)).sum()) if len(acts) > 1 else 0
            out[name] = (res.tco_savings_pct, len(policy.trajectory), churn)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[k, v[0], v[1], v[2]] for k, v in results.items()]
    emit(
        "ablation_smoothing",
        render_table(
            ["variant", "TCO savings %", "threshold updates", "ACT churn"],
            rows,
            title=f"Ablation: ACT smoothing mechanisms @ {QUOTA:.0%} quota",
        ),
    )

    # Removing the decision interval must increase update frequency.
    assert results["no decision interval"][1] > results["full smoothing (default)"][1]
    # Smoothing keeps savings competitive: default within 30% of the best.
    best = max(v[0] for v in results.values())
    assert results["full smoothing (default)"][0] >= best - max(0.3 * best, 1.0)
