"""Ablation (extension): rolling retraining at workload velocity.

Section 2.3's deployment argument: BYOM models can retrain on the
workload's own schedule.  This benchmark compares a static model
(trained once on week 1) against a rolling-retrained model over the
test week, under the drifting I/O-density regimes of the generator.
"""

import pytest

from repro.analysis import EXPERIMENT_MODEL, render_table, standard_suite
from repro.core import RetrainingPolicy, RollingTrainer
from repro.storage import simulate
from repro.units import DAY
from repro.workloads import extract_features

from bench_utils import emit

QUOTA = 0.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_rolling_retraining(benchmark):
    def run():
        suite = standard_suite(0)
        cluster = suite.cluster
        cap = QUOTA * cluster.peak_ssd_usage

        static = suite.run("Adaptive Ranking", QUOTA)

        # Rolling: the policy sees the full two-week trace; the trainer
        # only ever fits on jobs already completed by decision time.
        full = cluster.full
        features = extract_features(full, suite.rates)
        trainer = RollingTrainer(
            EXPERIMENT_MODEL, window=7 * DAY, interval=2 * DAY, min_jobs=300,
            rates=suite.rates,
        )
        policy = RetrainingPolicy(trainer, features, suite.adaptive_params)
        rolling_full = simulate(full, policy, cap, suite.rates)
        return static, rolling_full, trainer

    static, rolling, trainer = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "ablation_retraining",
        render_table(
            ["variant", "TCO savings %", "model refits"],
            [
                ["static (week-1 model)", static.tco_savings_pct, 0],
                ["rolling retraining", rolling.tco_savings_pct, len(trainer.events)],
            ],
            title=f"Ablation: rolling retraining @ {QUOTA:.0%} quota",
        ),
    )

    # The trainer must actually have retrained during the run.
    assert len(trainer.events) >= 2
    # Rolling retraining must produce positive savings; exact ordering
    # vs the static model depends on drift strength, so assert sanity.
    assert rolling.tco_savings_pct > 0
