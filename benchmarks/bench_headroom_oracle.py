"""Headroom analysis (Sections 1 & 3.1): oracle vs practical heuristic.

Paper claim: the clairvoyant ILP oracle achieves ~5.06x the cost savings
of the state-of-the-art heuristic at tight SSD capacity.
"""

import pytest

from repro.analysis import render_table, standard_cluster
from repro.oracle import headroom_analysis

from bench_utils import emit


@pytest.mark.benchmark(group="headroom")
def test_headroom_oracle_vs_heuristic(benchmark):
    def run():
        cluster = standard_cluster(0)
        return headroom_analysis(
            cluster.train, cluster.test, quota_fraction=0.01
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "headroom_oracle",
        render_table(
            ["method", "TCO savings %", "TCIO savings %"],
            [
                [
                    result.oracle.policy_name,
                    result.oracle.tco_savings_pct,
                    result.oracle.tcio_savings_pct,
                ],
                [
                    "Heuristic",
                    result.heuristic.tco_savings_pct,
                    result.heuristic.tcio_savings_pct,
                ],
                ["ratio (paper: 5.06x)", result.savings_ratio, float("nan")],
            ],
            title="Headroom: clairvoyant oracle vs heuristic @ 1% quota",
        ),
    )

    # Paper shape: a multiple, not a margin.
    assert result.savings_ratio > 1.5
