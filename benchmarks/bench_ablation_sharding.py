"""Ablation (extension): capacity fragmentation across caching servers.

Section 2.4 / Appendix A: SSD tiering runs on a set of caching servers,
so aggregate free space is fragmented and a global free-space counter
is not what any one admission point observes.  This ablation splits the
same total capacity across 1/4/16 shards and compares FirstFit (which
*reads the local free-space counter*) against Adaptive Ranking (which
senses utilization behaviourally via spillover).

Both methods run through the unified shard-aware runtime
(``MethodSuite.run(..., n_shards=...)``), riding the chunked engine —
the same fast path the unsharded experiments use.
"""

import pytest

from repro.analysis import render_table, standard_suite

from bench_utils import emit

QUOTA = 0.02
SHARDS = (1, 4, 16)


@pytest.mark.benchmark(group="ablation")
def test_ablation_capacity_sharding(benchmark):
    def run():
        suite = standard_suite(0)
        out = {}
        for n_shards in SHARDS:
            r_ours = suite.run("Adaptive Ranking", QUOTA, n_shards=n_shards)
            r_ff = suite.run("FirstFit", QUOTA, n_shards=n_shards)
            out[n_shards] = (r_ours.tco_savings_pct, r_ff.tco_savings_pct)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [n, ours, ff, ours / ff if ff > 0 else float("inf")]
        for n, (ours, ff) in results.items()
    ]
    emit(
        "ablation_sharding",
        render_table(
            ["caching servers", "Adaptive Ranking TCO %", "FirstFit TCO %", "ratio"],
            rows,
            title=f"Ablation: capacity fragmentation @ {QUOTA:.0%} total quota",
        ),
    )

    # Ours stays ahead of FirstFit at every fragmentation level.
    for n, (ours, ff) in results.items():
        assert ours > ff, f"{n} shards"
    # Fragmentation costs real savings (pipelines are pinned to 1/16 of
    # the capacity), but ours keeps a meaningful share of the unsharded
    # savings and its advantage over FirstFit at every level.
    assert results[16][0] > 0.3 * results[1][0]
