"""Ablation (extension): capacity fragmentation across caching servers.

Section 2.4 / Appendix A: SSD tiering runs on a set of caching servers,
so aggregate free space is fragmented and a global free-space counter
is not what any one admission point observes.  This ablation splits the
same total capacity across 1/4/16 shards and compares FirstFit (which
*reads the local free-space counter*) against Adaptive Ranking (which
senses utilization behaviourally via spillover).

A second stage ablates **per-shard ACT** against the global threshold
on heterogeneous capacity layouts (real fleets rarely hand every
caching server an equal slice): the same quota is split uniformly and
skewed 2x/1x/1x/0.5x across four servers, with Adaptive Ranking run
once with the fleet-wide threshold and once with one threshold per
caching server (``per_shard_act=True``, Algorithm 1 applied lane-wise).

Both stages run through the unified shard-aware runtime
(``MethodSuite.run(..., n_shards=..., shard_weights=...)``), riding the
chunked engine — the same fast path the unsharded experiments use.
"""

import pytest

from repro.analysis import render_table, standard_suite

from bench_utils import emit

QUOTA = 0.02
SHARDS = (1, 4, 16)

#: Per-shard-ACT stage: capacity layouts over 4 caching servers.
SKEW_LAYOUTS = (
    ("uniform 1/1/1/1", None),
    ("skewed 2/1/1/0.5", (2.0, 1.0, 1.0, 0.5)),
)


@pytest.mark.benchmark(group="ablation")
def test_ablation_capacity_sharding(benchmark):
    def run():
        suite = standard_suite(0)
        out = {}
        for n_shards in SHARDS:
            r_ours = suite.run("Adaptive Ranking", QUOTA, n_shards=n_shards)
            r_ff = suite.run("FirstFit", QUOTA, n_shards=n_shards)
            out[n_shards] = (r_ours.tco_savings_pct, r_ff.tco_savings_pct)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [n, ours, ff, ours / ff if ff > 0 else float("inf")]
        for n, (ours, ff) in results.items()
    ]
    emit(
        "ablation_sharding",
        render_table(
            ["caching servers", "Adaptive Ranking TCO %", "FirstFit TCO %", "ratio"],
            rows,
            title=f"Ablation: capacity fragmentation @ {QUOTA:.0%} total quota",
        ),
    )

    # Ours stays ahead of FirstFit at every fragmentation level.
    for n, (ours, ff) in results.items():
        assert ours > ff, f"{n} shards"
    # Fragmentation costs real savings (pipelines are pinned to 1/16 of
    # the capacity), but ours keeps a meaningful share of the unsharded
    # savings and its advantage over FirstFit at every level.
    assert results[16][0] > 0.3 * results[1][0]


@pytest.mark.benchmark(group="ablation")
def test_ablation_per_shard_act(benchmark):
    """Global vs per-shard ACT across capacity layouts (4 servers)."""

    def run():
        suite = standard_suite(0)
        out = {}
        for label, weights in SKEW_LAYOUTS:
            kw = dict(n_shards=4, shard_weights=weights)
            r_global = suite.run("Adaptive Ranking", QUOTA, **kw)
            r_lane = suite.run("Adaptive Ranking", QUOTA, per_shard_act=True, **kw)
            r_ff = suite.run("FirstFit", QUOTA, **kw)
            out[label] = (
                r_global.tco_savings_pct,
                r_lane.tco_savings_pct,
                r_ff.tco_savings_pct,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [label, glob, lane, ff, lane - glob]
        for label, (glob, lane, ff) in results.items()
    ]
    emit(
        "ablation_per_shard_act",
        render_table(
            [
                "capacity layout",
                "global ACT TCO %",
                "per-shard ACT TCO %",
                "FirstFit TCO %",
                "per-shard - global",
            ],
            rows,
            title=f"Ablation: per-shard ACT @ {QUOTA:.0%} total quota, 4 caching servers",
        ),
    )

    for label, (glob, lane, ff) in results.items():
        # Both threshold modes beat the local-counter baseline.
        assert glob > ff, label
        assert lane > ff, label
        # Lane-wise adaptation stays in the same savings regime as the
        # fleet-wide threshold on every layout (it trades a noisier
        # per-lane signal for locality, not a collapse).
        assert lane > 0.5 * glob, label
