"""Fleet-scaling bench: FleetRouter throughput vs worker count.

Drives the same micro-batched stream through a single-process
``PlacementService`` and through ``FleetRouter`` fleets of 1/2/4/8
workers (in-process transport), recording sustained decisions/sec and
per-batch decision latency percentiles for each width.  Before any
timing is reported, every fleet roll-up must be bit-identical to the
single-process one — the scatter-gather split is a pure refactor of
the arithmetic, so worker count may change speed but never a decision.

The table records ``os.cpu_count()`` because the scaling story is
honest only relative to it: on a single-CPU host the in-process fleet
is pure dispatch overhead (there is no second core for a second
worker), so the expected shape there is flat-to-declining throughput
as workers grow.  No speedup is asserted; bit-identity and completion
are.

``BENCH_FLEET_JOBS`` overrides the trace size, as in CI.  The
committed baseline table lives in
``benchmarks/results/fleet_scaling.txt``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import AdaptiveCategoryPolicy, hash_categories
from repro.units import WEEK
from repro.workloads import Trace, default_cluster_specs, generate_cluster_trace

from bench_utils import emit

N_JOBS = int(os.environ.get("BENCH_FLEET_JOBS", "30000"))
WORKER_COUNTS = (1, 2, 4, 8)
N_SHARDS = 8  # >= max worker count, so every worker owns at least one lane
BATCH_JOBS = 512
QUOTA = 0.05
SEED = 0


def _trace() -> Trace:
    spec = default_cluster_specs(10)[0]
    full = generate_cluster_trace(spec, duration=2 * WEEK, seed=SEED)
    if len(full) < N_JOBS:
        return full
    return Trace(full.jobs[:N_JOBS], name=f"{full.name}[:{N_JOBS}]")


def _policy(trace: Trace) -> AdaptiveCategoryPolicy:
    return AdaptiveCategoryPolicy(
        hash_categories(trace, 15), 15, name="Adaptive Hash"
    )


def _drive(svc, trace) -> tuple:
    """Stream the trace in micro-batches; returns (result, elapsed, lat)."""
    n = len(trace)
    lat = []
    t_start = time.perf_counter()
    for lo in range(0, n, BATCH_JOBS):
        hi = min(lo + BATCH_JOBS, n)
        t0 = time.perf_counter()
        svc.submit_batch(
            trace.arrivals[lo:hi], trace.durations[lo:hi],
            trace.sizes[lo:hi], trace.read_bytes[lo:hi],
            trace.write_bytes[lo:hi], trace.read_ops[lo:hi],
            pipelines=trace.pipelines[lo:hi],
        )
        lat.append(time.perf_counter() - t0)
    res = svc.result()  # drains the queue
    elapsed = time.perf_counter() - t_start
    return res, elapsed, np.asarray(lat)


def _assert_identical(base, got, label: str) -> None:
    for f in ("n_ssd_requested", "n_spilled", "realized_tco",
              "realized_hdd_tcio", "peak_ssd_used", "baseline_tco"):
        a, b = getattr(base, f), getattr(got, f)
        assert a == b, f"{label}: {f} {a!r} != {b!r}"
    assert np.array_equal(base.ssd_fraction, got.ssd_fraction), label


@pytest.mark.benchmark(group="fleet")
def test_fleet_scaling(benchmark):
    from repro.serve import FleetRouter, PlacementService

    trace = _trace()
    capacity = QUOTA * trace.peak_ssd_usage()

    def run():
        rows = []
        svc = PlacementService(_policy(trace), capacity, N_SHARDS, mode="batch")
        svc.open(trace)
        base, elapsed, lat = _drive(svc, trace)
        rows.append(("single", base, elapsed, lat))
        for w in WORKER_COUNTS:
            svc = FleetRouter(
                _policy(trace), capacity, N_SHARDS, mode="batch",
                n_workers=w, transport="inprocess",
            )
            svc.open(trace)
            res, elapsed, lat = _drive(svc, trace)
            svc.close()
            rows.append((f"fleet-{w}", res, elapsed, lat))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    base = rows[0][1]
    for label, res, _, _ in rows[1:]:
        _assert_identical(base, res, label)
        assert res.n_jobs == len(trace), label

    head = (f"{'config':<10} {'workers':>8} {'decisions/s':>12} "
            f"{'p50_us':>9} {'p99_us':>9}")
    lines = [
        f"Fleet scaling: {len(trace)} jobs, quota {QUOTA:.0%}, "
        f"{N_SHARDS} caching servers, batches of {BATCH_JOBS}, "
        f"in-process transport, host cpu_count={os.cpu_count()}",
        "(every fleet roll-up asserted bit-identical to single-process; "
        "no speedup asserted — scaling is honest only vs cpu_count)",
        "",
        head,
        "-" * len(head),
    ]
    for label, res, elapsed, lat in rows:
        w = 1 if label == "single" else int(label.split("-")[1])
        p50, p99 = np.percentile(lat, [50, 99])
        lines.append(
            f"{label:<10} {w:>8} {res.n_jobs / elapsed:>12,.0f} "
            f"{p50 * 1e6:>9,.0f} {p99 * 1e6:>9,.0f}"
        )
    emit("fleet_scaling", "\n".join(lines))
