"""Figure 11: predicted vs ground-truth categories.

Paper claim: replacing model predictions with 100%-accurate categories
yields only modestly better end-to-end savings — model accuracy has
diminishing returns; category design and the adaptive algorithm matter
more.
"""

import pytest

from repro.analysis import DEFAULT_QUOTAS, fig11_true_category, render_series

from bench_utils import emit


@pytest.mark.benchmark(group="fig11")
def test_fig11_true_category(benchmark):
    results = benchmark.pedantic(fig11_true_category, rounds=1, iterations=1)

    quotas = list(DEFAULT_QUOTAS)
    series = {name: [vals[q] for q in quotas] for name, vals in results.items()}
    emit(
        "fig11_true_category",
        render_series(
            [f"{q:.0%}" for q in quotas],
            series,
            x_name="quota",
            title="Figure 11: predicted vs true category (TCO savings %)",
        ),
    )

    pred = series["Predicted category"]
    true = series["True category"]
    # True categories help somewhere but the predicted curve stays close:
    # within 40% relative (or 2 points absolute) at every quota.
    for p, t in zip(pred, true):
        assert p >= t - max(0.4 * abs(t), 2.0)
    # And predictions never dramatically exceed the truth-driven policy.
    for p, t in zip(pred, true):
        assert p <= t + max(0.4 * abs(t), 2.0)
