"""Figure 7: TCO savings vs SSD quota for all seven methods.

Paper claims: Adaptive Ranking consistently beats baselines, especially
at limited quota; the gap to Adaptive Hash shows the category model's
value; the oracle gap shows remaining headroom; FirstFit's savings
collapse at large quotas.
"""

import pytest

from repro.analysis import DEFAULT_QUOTAS, FIG7_METHODS, fig7_quota_sweep, render_series

from bench_utils import emit


@pytest.mark.benchmark(group="fig07")
def test_fig07_quota_sweep(benchmark):
    results = benchmark.pedantic(fig7_quota_sweep, rounds=1, iterations=1)

    quotas = list(DEFAULT_QUOTAS)
    series = {
        m: [results[m][q].tco_savings_pct for q in quotas] for m in FIG7_METHODS
    }
    emit(
        "fig07_quota_sweep",
        render_series(
            [f"{q:.0%}" for q in quotas],
            series,
            x_name="quota",
            title="Figure 7: TCO savings % vs SSD quota",
        ),
    )

    ours = series["Adaptive Ranking"]
    oracle = series["Oracle TCO"]
    hash_ = series["Adaptive Hash"]
    firstfit = series["FirstFit"]

    # Ours beats every baseline at the tightest quota.
    for m in ("Adaptive Hash", "ML Baseline", "FirstFit", "Heuristic"):
        assert ours[0] > series[m][0], m
    # The oracle upper-bounds ours everywhere (small tolerance).
    for o, u in zip(oracle, ours):
        assert o >= u - 0.5
    # Category model >> hash ablation across the sweep.
    assert all(u > h for u, h in zip(ours, hash_))
    # FirstFit degrades at large quotas (admits negative-savings jobs).
    assert firstfit[-1] < max(firstfit)
