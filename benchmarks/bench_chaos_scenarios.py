"""Chaos scenario suite: adaptive vs baseline under injected faults.

Runs every named scenario in :data:`repro.serve.scenarios.SCENARIOS` —
clean reference, lane loss + restore, lane shrink, fleet quota cut,
categorizer outage, completion chaos, worker kill — against both contenders
(serve-native adaptive with an online categorizer, and first-fit) over
one generated cluster trace with fixed seeds.  Every contender sees the
identical stream: same micro-batch slicing, same fault plan, same
deterministic completion lottery.

The assertions pin the robustness contract rather than a performance
number: every scenario finishes (no injected fault escapes as an
unhandled exception), shocks fire and evictions are accounted, the
categorizer outage degrades exactly the scripted span of the stream,
completion chaos is absorbed, and kernel capacity accounting stays
exact (no negative free space) at the end of every run.  Every run
also carries the standard alert rules (``alerts=True``): each row must
fire exactly the scripted alert set for its scenario and the clean
rows must emit zero alert transition events — the no-false-positives
bar, visible in the committed table's ``alerts`` column.

``BENCH_CHAOS_JOBS`` overrides the trace size, as in CI.  The committed
baseline table lives in ``benchmarks/results/chaos_scenarios.txt``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.serve.scenarios import (
    SCENARIOS,
    expected_alerts,
    format_rows,
    run_scenario,
)
from repro.workloads import Trace, default_cluster_specs, generate_cluster_trace
from repro.units import WEEK

from bench_utils import emit

N_JOBS = int(os.environ.get("BENCH_CHAOS_JOBS", "3000"))
N_SHARDS = 4
BATCH_JOBS = 64
QUOTA = 0.05
SEED = 0


def _trace() -> Trace:
    spec = default_cluster_specs(10)[0]
    full = generate_cluster_trace(spec, duration=WEEK, seed=SEED)
    return Trace(full.jobs[:N_JOBS], name=f"{full.name}[:{N_JOBS}]")


@pytest.mark.benchmark(group="chaos")
def test_chaos_scenarios(benchmark):
    trace = _trace()
    capacity = QUOTA * trace.peak_ssd_usage()

    def run():
        rows = []
        for sc in SCENARIOS:
            rows.extend(run_scenario(
                sc, trace, capacity=capacity, n_shards=N_SHARDS,
                batch_jobs=BATCH_JOBS, seed=SEED, alerts=True,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "chaos_scenarios",
        f"Chaos suite: {len(trace)} jobs, quota {QUOTA:.0%}, "
        f"{N_SHARDS} caching servers, batches of {BATCH_JOBS}\n"
        + format_rows(rows),
    )

    by = {(r.scenario, r.policy): r for r in rows}
    policies = ("adaptive", "baseline")
    # Every (scenario, policy) pair completed and produced finite numbers.
    assert len(rows) == len(SCENARIOS) * len(policies)
    assert all(np.isfinite(r.tco_savings_pct) for r in rows)
    for p in policies:
        # Topology scenarios: the scripted shocks all fired.
        assert by[("nofault", p)].n_shocks == 0
        assert by[("lane_loss", p)].n_shocks == 2
        assert by[("lane_shrink", p)].n_shocks == 4
        assert by[("quota_cut", p)].n_shocks == 2
        # Evictions are nonnegative; whether a lane loss actually evicts
        # depends on what is resident at the shock (the completion
        # lottery can empty the lane first at small sizes) — the
        # deterministic eviction claim lives in
        # ``test_chaos_accounting_exact``.
        assert by[("lane_loss", p)].n_evicted >= 0
        # Completion chaos: drops recorded, transient errors retried.
        assert by[("complete_chaos", p)].dropped_completes > 0
        assert by[("complete_chaos", p)].n_retries == 2
    # Worker kills run against a 3-worker FleetRouter whose per-worker
    # WAL/checkpoint failover is bit-exact, so the row must match the
    # clean reference exactly — the only thing the fault can change is
    # whether the run survives.
    for p in policies:
        wk, nf = by[("worker_kill", p)], by[("nofault", p)]
        assert wk.tco_savings_pct == nf.tco_savings_pct, p
        assert wk.n_spilled == nf.n_spilled, p
        assert wk.n_shocks == 0, p
    # The categorizer outage degrades the adaptive contender only (the
    # baseline has no categorizer to lose) and covers the scripted 40%
    # of the stream.
    assert by[("cat_outage", "baseline")].degraded_jobs == 0
    degraded = by[("cat_outage", "adaptive")].degraded_jobs
    assert abs(degraded - 0.4 * len(trace)) <= 2 * BATCH_JOBS
    # degraded_intervals is read from the metrics surface
    # (serve_degraded_intervals_total), so this pins scrape == roll-up:
    # exactly one closed outage interval where jobs degraded, zero
    # everywhere else.
    for r in rows:
        assert (r.degraded_intervals > 0) == (r.degraded_jobs > 0), r
    assert by[("cat_outage", "adaptive")].degraded_intervals == 1
    assert by[("cat_outage", "baseline")].degraded_intervals == 0
    # Alerting rides the same determinism contract as the roll-ups:
    # every row fires exactly the scripted alert set (the baseline has
    # no categorizer, so cat_outage expects nothing from it), and the
    # clean rows emit zero transition events — no false positives.
    for r in rows:
        assert set(r.alerts_fired) == expected_alerts(
            r.scenario, categorizer=(r.policy == "adaptive")
        ), (r.scenario, r.policy, r.alerts_fired)
    for p in policies:
        assert by[("nofault", p)].alert_events == 0
        assert by[("complete_chaos", p)].alert_events == 0


@pytest.mark.benchmark(group="chaos")
def test_chaos_accounting_exact(benchmark):
    """Shock-heavy run keeps kernel accounting exact, both modes."""
    from repro.core import AdaptiveCategoryPolicy, hash_categories
    from repro.serve import FaultEvent, FaultInjector, FaultPlan, PlacementService

    trace = _trace()
    capacity = QUOTA * trace.peak_ssd_usage()
    n = len(trace)
    plan = FaultPlan(tuple(
        FaultEvent(at=int(f * n), kind=k, lane=L, scale=s)
        for f, k, L, s in (
            (0.1, "lane_loss", 1, None),
            (0.2, "lane_shrink", 0, 0.25),
            (0.3, "quota", None, 0.5),
            (0.4, "lane_restore", 1, None),
            (0.5, "lane_restore", 0, None),
            (0.6, "quota", None, 2.0),
            (0.7, "lane_loss", 2, None),
            (0.8, "lane_restore", 2, None),
        )
    ))

    def run():
        out = {}
        for mode in ("batch", "scalar"):
            policy = AdaptiveCategoryPolicy(
                hash_categories(trace, 15), 15, per_shard_act=True
            )
            svc = PlacementService(policy, capacity, N_SHARDS, mode=mode)
            svc.open(trace)
            inj = FaultInjector(svc, plan)
            step = BATCH_JOBS if mode == "batch" else 1
            for lo in range(0, n, step):
                hi = min(lo + step, n)
                inj.submit_batch(
                    trace.arrivals[lo:hi], trace.durations[lo:hi],
                    trace.sizes[lo:hi], trace.read_bytes[lo:hi],
                    trace.write_bytes[lo:hi], trace.read_ops[lo:hi],
                    pipelines=trace.pipelines[lo:hi],
                )
                assert (svc.kernel.free >= 0.0).all()
                assert np.isclose(
                    float(np.asarray(svc.lane_capacities).sum()), svc.capacity
                )
            inj.drain()
            out[mode] = (svc.result(), svc.stats)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    for mode, (res, stats) in out.items():
        assert stats.n_shocks == 8, mode
        assert stats.n_evicted > 0, mode
        # Every eviction was also counted as a spill.
        assert res.n_spilled >= stats.n_evicted, mode
