"""Ablation (beyond the paper): category spacing design.

Section 4.2 argues that linear or logarithmically spaced I/O-density
categories produce heavily imbalanced classes, motivating the
equal-mass quantile design.  This ablation swaps the quantile edges for
linear and logarithmic spacing and measures class imbalance and
end-to-end savings.
"""

import numpy as np
import pytest

from repro.analysis import EXPERIMENT_MODEL, render_table, standard_cluster
from repro.config import AdaptiveParams
from repro.core import AdaptiveCategoryPolicy, CategoryModel
from repro.ml import GBTClassifier
from repro.storage import simulate

from bench_utils import emit

QUOTA = 0.05
N_CAT = 15


def _labels_with_edges(savings, density, edges):
    rank = np.searchsorted(edges, density, side="right")
    return np.where(savings < 0, 0, 1 + rank).astype(int)


def _imbalance(labels):
    counts = np.bincount(labels, minlength=N_CAT).astype(float)
    pos = counts[1:]
    pos = pos[pos > 0]
    return float(pos.max() / pos.mean()) if pos.size else float("inf")


@pytest.mark.benchmark(group="ablation")
def test_ablation_label_spacing(benchmark):
    def run():
        cluster = standard_cluster(0)
        savings_tr = cluster.train.costs().savings
        density_tr = cluster.train.io_density()
        savings_te = cluster.test.costs().savings
        density_te = cluster.test.io_density()
        pos = density_tr[savings_tr >= 0]

        quantile_edges = np.quantile(
            pos, np.linspace(0, 1, N_CAT)[1:-1], method="inverted_cdf"
        )
        linear_edges = np.linspace(pos.min(), pos.max(), N_CAT)[1:-1]
        log_edges = np.geomspace(max(pos.min(), 1e-9), pos.max(), N_CAT)[1:-1]

        out = {}
        for name, edges in (
            ("quantile (paper)", quantile_edges),
            ("linear", linear_edges),
            ("logarithmic", log_edges),
        ):
            labels_tr = _labels_with_edges(savings_tr, density_tr, edges)
            clf = GBTClassifier(
                n_rounds=EXPERIMENT_MODEL.n_rounds,
                max_depth=EXPERIMENT_MODEL.max_depth,
            ).fit(cluster.features_train.X, labels_tr)
            pred = clf.predict(cluster.features_test.X).astype(int)
            policy = AdaptiveCategoryPolicy(pred, N_CAT, AdaptiveParams())
            res = simulate(
                cluster.test, policy, QUOTA * cluster.peak_ssd_usage
            )
            out[name] = (res.tco_savings_pct, _imbalance(labels_tr))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[k, v[0], v[1]] for k, v in results.items()]
    emit(
        "ablation_label_design",
        render_table(
            ["spacing", "TCO savings %", "class imbalance (max/mean)"],
            rows,
            title=f"Ablation: category spacing @ {QUOTA:.0%} quota",
        ),
    )

    # The paper's argument: quantile spacing is far better balanced.
    assert results["quantile (paper)"][1] < results["linear"][1]
    assert results["quantile (paper)"][1] < results["logarithmic"][1]
    # And not worse end-to-end than the imbalanced designs (tolerance).
    best = max(v[0] for v in results.values())
    assert results["quantile (paper)"][0] >= best - max(0.35 * best, 1.0)
