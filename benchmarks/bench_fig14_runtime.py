"""Figure 14: application-level run-time savings on the mixed workload.

Paper claim: application performance improves on top of the storage
savings, and — critically — no workload shows any regression (jobs are
written against HDD performance, so SSD time is opportunistic upside).
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import prepare_cluster
from repro.prototype import (
    application_runtime_savings,
    build_mixed_workload,
    run_prototype,
)

from bench_utils import emit


@pytest.mark.benchmark(group="fig14")
def test_fig14_runtime_savings(benchmark):
    def run():
        workload = build_mixed_workload()
        results = {q: run_prototype(workload, q) for q in (0.01, 0.20)}
        return workload, results

    workload, results = benchmark.pedantic(run, rounds=1, iterations=1)

    cluster = prepare_cluster(workload.trace)
    is_fw_test = np.array([j.cluster == "mixed-fw" for j in cluster.test])

    rows = []
    all_savings = []
    for q, r in results.items():
        for res, label in ((r.adaptive, "Adaptive Ranking"), (r.firstfit, "FirstFit")):
            savings = application_runtime_savings(cluster.test, res.ssd_fraction)
            all_savings.append(savings)
            rows.append([
                f"{q:.0%}",
                label,
                savings[is_fw_test].mean(),
                savings[~is_fw_test].mean(),
                savings.min(),
            ])
    emit(
        "fig14_runtime",
        render_table(
            ["quota", "method", "framework rt savings %", "non-framework rt savings %", "min (regression check)"],
            rows,
            title="Figure 14: application run-time savings",
        ),
    )

    # No regressions anywhere.
    for savings in all_savings:
        assert (savings >= 0.0).all()
    # More SSD -> more run-time savings for ours.
    ar_1 = rows[0][2] + rows[0][3]
    ar_20 = rows[2][2] + rows[2][3]
    assert ar_20 > ar_1
