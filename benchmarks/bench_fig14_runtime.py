"""Figure 14: application-level run-time savings, plus the serving
saturation curve behind them.

Paper claim: application performance improves on top of the storage
savings, and — critically — no workload shows any regression (jobs are
written against HDD performance, so SSD time is opportunistic upside).

The saturation test measures the runtime side of that story: a
closed-loop :class:`~repro.serve.LoadGenerator` first probes the
service's unpaced capacity, then sweeps offered load across multiples
of it, recording achieved decisions/s and per-batch decision latency
percentiles at each point.  Pacing must never change a decision —
every sweep point's roll-up is asserted bit-identical to the unpaced
probe's.  ``BENCH_CLOSEDLOOP_JOBS`` overrides the trace size, as in
CI.  The committed baseline table lives in
``benchmarks/results/serving_saturation.txt``.
"""

import os

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import AdaptiveCategoryPolicy, hash_categories, prepare_cluster
from repro.prototype import (
    application_runtime_savings,
    build_mixed_workload,
    run_prototype,
)
from repro.units import WEEK
from repro.workloads import (
    InMemoryTraceSource,
    Trace,
    default_cluster_specs,
    generate_cluster_trace,
)

from bench_utils import emit

N_SAT_JOBS = int(os.environ.get("BENCH_CLOSEDLOOP_JOBS", "20000"))
SAT_BATCH_JOBS = 256
SAT_MULTIPLIERS = (0.25, 0.5, 1.0, 2.0)
SAT_QUOTA = 0.05
SAT_SEED = 0


@pytest.mark.benchmark(group="fig14")
def test_fig14_runtime_savings(benchmark):
    def run():
        workload = build_mixed_workload()
        results = {q: run_prototype(workload, q) for q in (0.01, 0.20)}
        return workload, results

    workload, results = benchmark.pedantic(run, rounds=1, iterations=1)

    cluster = prepare_cluster(workload.trace)
    is_fw_test = np.array([j.cluster == "mixed-fw" for j in cluster.test])

    rows = []
    all_savings = []
    for q, r in results.items():
        for res, label in ((r.adaptive, "Adaptive Ranking"), (r.firstfit, "FirstFit")):
            savings = application_runtime_savings(cluster.test, res.ssd_fraction)
            all_savings.append(savings)
            rows.append([
                f"{q:.0%}",
                label,
                savings[is_fw_test].mean(),
                savings[~is_fw_test].mean(),
                savings.min(),
            ])
    emit(
        "fig14_runtime",
        render_table(
            ["quota", "method", "framework rt savings %", "non-framework rt savings %", "min (regression check)"],
            rows,
            title="Figure 14: application run-time savings",
        ),
    )

    # No regressions anywhere.
    for savings in all_savings:
        assert (savings >= 0.0).all()
    # More SSD -> more run-time savings for ours.
    ar_1 = rows[0][2] + rows[0][3]
    ar_20 = rows[2][2] + rows[2][3]
    assert ar_20 > ar_1


def _sat_trace() -> Trace:
    spec = default_cluster_specs(10)[0]
    full = generate_cluster_trace(spec, duration=2 * WEEK, seed=SAT_SEED)
    if len(full) <= N_SAT_JOBS:
        return full
    return Trace(full.jobs[:N_SAT_JOBS], name=f"{full.name}[:{N_SAT_JOBS}]")


def _sat_run(trace, capacity, rate, warmup):
    """One closed-loop pass at ``rate`` (None = saturation probe)."""
    from repro.serve import LoadGenerator, PlacementService

    policy = AdaptiveCategoryPolicy(
        hash_categories(trace, 15), 15, name="Adaptive Hash"
    )
    svc = PlacementService(policy, capacity, 4, mode="batch")
    svc.open(trace)
    gen = LoadGenerator(
        InMemoryTraceSource(trace, block_size=SAT_BATCH_JOBS),
        rate=rate,
        batch_jobs=SAT_BATCH_JOBS,
        mode="closed",
        max_in_flight=4 * SAT_BATCH_JOBS,
        warmup=warmup,
    )
    rep = gen.run(svc)
    return rep, svc.result()


@pytest.mark.benchmark(group="fig14")
def test_fig14_serving_saturation(benchmark):
    trace = _sat_trace()
    capacity = SAT_QUOTA * trace.peak_ssd_usage()
    warmup = len(trace) // 5

    def run():
        probe_rep, probe_res = _sat_run(trace, capacity, None, warmup)
        cap = probe_rep.measured_rate
        points = []
        for m in SAT_MULTIPLIERS:
            rep, res = _sat_run(trace, capacity, cap * m, warmup)
            points.append((m, rep, res))
        return probe_rep, probe_res, cap, points

    probe_rep, probe_res, cap, points = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    assert cap > 0
    assert probe_rep.n_jobs == len(trace)
    offered = [cap * m for m, _, _ in points]
    assert all(b > a for a, b in zip(offered, offered[1:]))

    rows = []
    for m, rep, res in points:
        assert rep.n_jobs == len(trace)
        # Pacing never changes a decision: every sweep point's roll-up
        # is bit-identical to the unpaced probe's.
        for f in ("n_ssd_requested", "n_spilled", "realized_tco",
                  "realized_hdd_tcio", "peak_ssd_used", "baseline_tco"):
            a, b = getattr(probe_res, f), getattr(res, f)
            assert a == b, f"{m}x: {f} {a!r} != {b!r}"
        assert np.array_equal(probe_res.ssd_fraction, res.ssd_fraction), m
        p50 = rep.measured_latency_percentile(50)
        p99 = rep.measured_latency_percentile(99)
        assert 0.0 <= p50 <= p99
        rows.append([
            f"{m:.2f}x",
            f"{cap * m:,.0f}",
            f"{rep.measured_rate:,.0f}",
            f"{p50 * 1e3:.3f}",
            f"{p99 * 1e3:.3f}",
            rep.n_forced_drains,
        ])
    emit(
        "serving_saturation",
        render_table(
            ["offered (x capacity)", "offered jobs/s", "achieved jobs/s",
             "batch p50 ms", "batch p99 ms", "forced drains"],
            rows,
            title=(
                f"Serving saturation: {len(trace)} jobs, closed loop, "
                f"capacity probe {cap:,.0f} jobs/s"
            ),
        ),
    )
