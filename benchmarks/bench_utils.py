"""Shared benchmark helpers (import as ``from bench_utils import emit``).

Every benchmark regenerates one paper table/figure.  ``emit`` both
prints the rendered series (visible with ``pytest -s``) and persists it
under ``benchmarks/results/`` so EXPERIMENTS.md can reference stable
artifacts.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered table and save it to benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
