"""Figure 9: model practicality — latency, accuracy vs data, importance.

Paper claims: (a) inference is ~4 ms/job (vs 99 ms for a Transformer);
(b) top-1 accuracy ~0.36 at 15 classes with no strong dependence on
training size; (c) historical system metrics drive density-rank
prediction while metadata/start-time matter most for the negative-TCO
class.
"""

import numpy as np
import pytest

from repro.analysis import fig9_model_analysis, render_table

from bench_utils import emit


@pytest.mark.benchmark(group="fig09")
def test_fig09_model_analysis(benchmark):
    result = benchmark.pedantic(fig9_model_analysis, rounds=1, iterations=1)

    timing = result["timing"]
    rows_a = [["mean per-job inference (ms)", timing.mean_seconds * 1e3],
              ["cumulative over 50 jobs (ms)", timing.cumulative_seconds[-1] * 1e3]]
    emit("fig09a_timing", render_table(["metric", "value"], rows_a,
                                       title="Figure 9a: inference latency"))

    rows_b = [[size, acc] for size, acc in sorted(result["accuracy_by_size"].items())]
    rows_b.append(["full", result["full_accuracy"]])
    emit("fig09b_accuracy", render_table(
        ["train size", "top-1 accuracy"], rows_b,
        title="Figure 9b: accuracy vs training size (paper avg: 0.36 @ 15 classes)"))

    imp = result["importance"]
    headers = ["group"] + [f"cat{c}" for c in imp.categories]
    rows_c = [
        [g] + list(np.round(imp.scores[i], 3)) for i, g in enumerate(imp.groups)
    ]
    emit("fig09c_importance", render_table(
        headers, rows_c,
        title="Figure 9c: feature-group importance (AUC decrease, normalized)"))

    # (a) inference well under the Transformer's 99 ms.
    assert timing.mean_seconds < 0.05
    # (b) accuracy beats 15-class chance and stays in a plausible band.
    assert 1.0 / 15 < result["full_accuracy"] < 0.95
    # (b) no strong training-size dependence: the largest subsample is
    # within 0.15 of the full model.
    sizes = sorted(result["accuracy_by_size"])
    assert abs(result["accuracy_by_size"][sizes[-1]] - result["full_accuracy"]) < 0.15
    # (c) Feature-group structure.  The paper's exact pattern (history
    # dominating every density rank) reflects production feature
    # redundancy we cannot fully replicate; the claims that survive the
    # substitution: the timestamp group matters more for the
    # negative-savings class (category 0) than for high-density ranks,
    # and the historical metrics contribute to density ranking.
    t_idx = imp.groups.index("T")
    a_idx = imp.groups.index("A")
    cat0_col = int(np.flatnonzero(imp.categories == 0)[0])
    density_cols = [i for i, c in enumerate(imp.categories) if c != 0]
    assert imp.scores[t_idx, cat0_col] >= imp.scores[t_idx, density_cols].mean()
    assert imp.scores[a_idx, density_cols].sum() > 0
