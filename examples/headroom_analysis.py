#!/usr/bin/env python3
"""Headroom analysis: how much does clairvoyance buy? (Section 3.1)

Formulates placement as the paper's ILP, solves it exactly with HiGHS,
and compares the optimum against the practical CacheSack-style heuristic
at a tight 1% SSD quota.  The paper reports the oracle achieving ~5x the
heuristic's savings; the gap is the opportunity that motivates the BYOM
design.

Run:  python examples/headroom_analysis.py
"""

from repro.oracle import headroom_analysis
from repro.units import WEEK, fmt_bytes
from repro.workloads import ClusterSpec, generate_cluster_trace, week_split


def main() -> None:
    # A moderately sized cluster so the ILP solves exactly.
    spec = ClusterSpec(
        name="headroom",
        archetype_weights={"dbquery": 2, "logproc": 2, "streaming": 1,
                           "staging": 2, "mltrain": 1, "reporting": 1},
        n_pipelines=10,
        n_users=5,
        seed=99,
    )
    trace = generate_cluster_trace(spec, duration=2 * WEEK)
    train, _, test, _ = week_split(trace)
    print(f"test week: {len(test)} jobs, "
          f"peak usage {fmt_bytes(test.peak_ssd_usage())}")

    result = headroom_analysis(
        train, test, quota_fraction=0.01, max_milp_jobs=6000, time_limit=120.0
    )
    print(f"\nSSD capacity: {fmt_bytes(result.capacity)} (1% of peak)")
    print(f"  Oracle (ILP, clairvoyant): {result.oracle.tco_savings_pct:.2f}% TCO savings")
    print(f"  Heuristic (practical):     {result.heuristic.tco_savings_pct:.2f}% TCO savings")
    print(f"\nHeadroom: the oracle saves {result.savings_ratio:.2f}x the heuristic")
    print("(the paper measured 5.06x on production traces)")


if __name__ == "__main__":
    main()
