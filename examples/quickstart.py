#!/usr/bin/env python3
"""Quickstart: train a BYOM category model and deploy it on one cluster.

Walks the full cross-layer flow of the paper:

1. generate a two-week cluster trace (substitute for production traces);
2. split into train/test weeks and extract Table-2 features;
3. offline: fit the per-cluster category model (application layer);
4. online: run Adaptive Category Selection at a 1% SSD quota
   (storage layer) and compare against FirstFit.

Run:  python examples/quickstart.py
"""

from repro.baselines import FirstFitPolicy
from repro.config import ModelParams
from repro.core import ByomPipeline, prepare_cluster
from repro.storage import simulate
from repro.units import WEEK, fmt_bytes
from repro.workloads import ClusterSpec, generate_cluster_trace


def main() -> None:
    # 1. A cluster mixing HDD-suited (logproc) and SSD-suited (dbquery,
    #    streaming) workloads, plus adversarial staging jobs.
    spec = ClusterSpec(
        name="demo",
        archetype_weights={"dbquery": 3, "logproc": 2, "streaming": 2, "staging": 2},
        n_pipelines=16,
        n_users=6,
        seed=2024,
    )
    trace = generate_cluster_trace(spec, duration=2 * WEEK)
    print(f"generated {len(trace)} shuffle jobs "
          f"({fmt_bytes(trace.sizes.sum())} written in total)")

    # 2. Train/test split with aligned features.
    cluster = prepare_cluster(trace)
    print(f"train week: {len(cluster.train)} jobs, test week: {len(cluster.test)} jobs")
    print(f"peak SSD usage (infinite capacity): {fmt_bytes(cluster.peak_ssd_usage)}")

    # 3. Offline training of the category model.
    pipe = ByomPipeline(model_params=ModelParams(n_rounds=10))
    pipe.train(cluster.train, cluster.features_train)
    acc = pipe.model.top1_accuracy(cluster.test, cluster.features_test)
    print(f"category model top-1 accuracy on the test week: {acc:.2f} "
          f"({pipe.model.n_categories} categories)")

    # 4. Online deployment at a 1% SSD quota.
    quota = 0.01
    ours = pipe.deploy(cluster.test, cluster.features_test, quota,
                       cluster.peak_ssd_usage)
    firstfit = simulate(
        cluster.test, FirstFitPolicy(), quota * cluster.peak_ssd_usage
    )

    print(f"\nSSD quota = {quota:.0%} of peak usage "
          f"({fmt_bytes(quota * cluster.peak_ssd_usage)})")
    for res in (ours, firstfit):
        print(f"  {res.policy_name:18s} TCO savings {res.tco_savings_pct:5.2f}%   "
              f"TCIO savings {res.tcio_savings_pct:5.2f}%")
    if firstfit.tco_savings_pct > 0:
        ratio = ours.tco_savings_pct / firstfit.tco_savings_pct
        print(f"\nAdaptive Ranking saves {ratio:.2f}x the TCO of FirstFit.")


if __name__ == "__main__":
    main()
