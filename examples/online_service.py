#!/usr/bin/env python3
"""Online serving: run the BYOM placement controller forward in time.

The offline path (``examples/quickstart.py``) trains on week 1 and
*replays* week 2 through the simulator.  This example serves week 2 the
way production would (docs/serving.md):

1. train the category model on week 1, offline as usual;
2. stand up a ``PlacementService`` with on-the-fly feature extraction
   and packed-forest prediction on the admission path, warm-started
   with week-1 history;
3. submit week-2 jobs request-at-a-time, measuring per-decision
   latency, with early ``complete`` events for a sample of jobs;
4. checkpoint the service mid-stream (snapshot -> pickle -> restore)
   and show the restored service finishing to the same result;
5. compare the served roll-up against the offline ``deploy`` replay —
   identical placements, because both drive the same engine kernels.

Run:  python examples/online_service.py
"""

import pickle
import time

import numpy as np

from repro.core import ByomPipeline, prepare_cluster
from repro.serve import PlacementService
from repro.units import fmt_bytes
from repro.workloads import ClusterSpec, generate_cluster_trace

QUOTA = 0.05


def main() -> None:
    spec = ClusterSpec(
        name="C0",
        archetype_weights={"dbquery": 2, "logproc": 2, "streaming": 1, "mltrain": 1},
        n_pipelines=24,
        n_users=8,
        seed=11,
    )
    cluster = prepare_cluster(generate_cluster_trace(spec))
    print(f"cluster: {len(cluster.train)} training jobs (week 1), "
          f"{len(cluster.test)} serving jobs (week 2)")

    # -- 1. offline training, exactly as the paper does -----------------
    pipe = ByomPipeline().train(cluster.train, cluster.features_train)

    # -- 2. the live controller -----------------------------------------
    capacity = QUOTA * cluster.peak_ssd_usage
    service = pipe.serve(
        QUOTA, cluster.peak_ssd_usage, mode="scalar", history=cluster.train
    )
    print(f"service: {fmt_bytes(capacity)} of SSD ({QUOTA:.0%} of peak), "
          "request-at-a-time, model on the admission path")

    # -- 3. serve the first half, with live completion events -----------
    jobs = list(cluster.test)
    half = len(jobs) // 2
    latencies = []
    for job in jobs[:half]:
        t0 = time.perf_counter()
        decision = service.submit(job)[0]
        latencies.append(time.perf_counter() - t0)
        # A sample of short jobs report early completion: space returns
        # to the lane before the scheduled release.
        if decision.requested_ssd and job.job_id % 97 == 0:
            service.complete(decision.job_id, time=job.arrival + 1.0)

    # -- 4. checkpoint, restore, and finish on the restored service -----
    blob = pickle.dumps(service.snapshot())
    print(f"checkpoint: {len(blob):,} bytes at job {half} "
          f"({service.stats.n_completions} early completions so far)")
    restored = PlacementService.restore(pickle.loads(blob))
    for job in jobs[half:]:
        t0 = time.perf_counter()
        restored.submit(job)
        latencies.append(time.perf_counter() - t0)
    res = restored.result()

    lat = np.asarray(latencies) * 1e6
    print(f"served {res.n_jobs} jobs: p50 {np.percentile(lat, 50):.0f} us, "
          f"p99 {np.percentile(lat, 99):.0f} us per decision")
    print(f"  TCO savings:  {res.tco_savings_pct:.2f}%")
    print(f"  TCIO savings: {res.tcio_savings_pct:.2f}%")
    print(f"  spilled:      {res.n_spilled} of {res.n_ssd_requested} SSD requests")

    # -- 5. the offline replay lands on the same numbers -----------------
    # (modulo the sampled complete() events, which only exist online —
    # rerun the comparison without them for the exact identity)
    service2 = pipe.serve(
        QUOTA, cluster.peak_ssd_usage, mode="scalar", history=cluster.train
    )
    for job in jobs:
        service2.submit(job)
    online = service2.result()
    offline = pipe.deploy(
        cluster.test, cluster.features_test, QUOTA, cluster.peak_ssd_usage,
        engine="legacy",
    )
    assert np.array_equal(online.ssd_fraction, offline.ssd_fraction)
    assert online.realized_tco == offline.realized_tco
    print("\nonline serving == offline deploy, bit for bit "
          f"(TCO savings {online.tco_savings_pct:.2f}% both ways)")


if __name__ == "__main__":
    main()
