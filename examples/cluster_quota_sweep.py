#!/usr/bin/env python3
"""Quota sweep across all seven methods on one cluster (Figure 7 style).

Evaluates FirstFit, Heuristic, ML Baseline, Adaptive Hash, Adaptive
Ranking and both clairvoyant oracles at several SSD quotas, printing the
TCO-savings table that corresponds to the paper's Figure 7.

Run:  python examples/cluster_quota_sweep.py
"""

from repro.analysis import FIG7_METHODS, render_series, standard_cluster, run_method_suite


def main() -> None:
    quotas = (0.01, 0.05, 0.2, 0.5, 1.0)
    print("building cluster trace + training models (takes ~1 min)...")
    cluster = standard_cluster(0)
    results = run_method_suite(
        cluster, FIG7_METHODS, quotas, oracle_kw={"time_limit": 30.0}
    )

    series = {
        method: [results[method][q].tco_savings_pct for q in quotas]
        for method in FIG7_METHODS
    }
    print()
    print(render_series(
        [f"{q:.0%}" for q in quotas],
        series,
        x_name="quota",
        title="TCO savings (%) vs SSD quota  [cf. paper Figure 7]",
    ))

    print("\nKey observations (matching the paper's claims):")
    ours = series["Adaptive Ranking"]
    others = {m: series[m] for m in FIG7_METHODS if m not in (
        "Adaptive Ranking", "Oracle TCO", "Oracle TCIO")}
    best_other = max(others.values(), key=lambda v: v[0])
    print(f"  - at 1% quota ours saves {ours[0]:.2f}% vs best baseline "
          f"{best_other[0]:.2f}% ({ours[0] / max(best_other[0], 1e-9):.2f}x)")
    print(f"  - oracle TCO headroom at 1%: "
          f"{series['Oracle TCO'][0]:.2f}%")


if __name__ == "__main__":
    main()
