#!/usr/bin/env python3
"""Watch the admission threshold breathe (Figure 16's dynamics).

Runs Adaptive Ranking at four SSD quotas on the same cluster and renders
the admission-category-threshold (ACT) and spillover trajectories as
sparklines: scarce SSD pins the threshold high (only the most important
categories admitted); plentiful SSD lets it fall to the floor.

Run:  python examples/act_dynamics.py
"""

import numpy as np

from repro.analysis import render_sparkline, standard_suite
from repro.storage import simulate


def main() -> None:
    print("building cluster + training the category model (~1 min)...")
    suite = standard_suite(0)
    cluster = suite.cluster
    categories = suite.pipeline.model.predict(cluster.features_test)
    n_cat = suite.model_params.n_categories

    print(f"\ntest week: {len(cluster.test)} jobs, {n_cat} categories, "
          f"tolerance band [{suite.adaptive_params.spillover_low}, "
          f"{suite.adaptive_params.spillover_high}]\n")

    for quota in (0.0001, 0.01, 0.1, 0.5):
        from repro.core import AdaptiveCategoryPolicy

        policy = AdaptiveCategoryPolicy(
            categories, n_cat, suite.adaptive_params
        )
        result = simulate(
            cluster.test, policy, quota * cluster.peak_ssd_usage, suite.rates
        )
        acts = [e.act for e in policy.trajectory]
        spill = [e.spillover for e in policy.trajectory]
        print(f"quota {quota:7.2%}  (TCO savings {result.tco_savings_pct:5.2f}%)")
        print("  " + render_sparkline(acts, label="ACT      "))
        print("  " + render_sparkline(spill, label="spillover"))
        print(f"  mean ACT {np.mean(acts):5.2f}   "
              f"mean spillover {np.mean(spill):.3f}\n")

    print("Scarce SSD -> high threshold (admit only top categories);")
    print("plentiful SSD -> threshold at floor (admit everything saving money).")


if __name__ == "__main__":
    main()
