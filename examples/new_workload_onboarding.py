#!/usr/bin/env python3
"""Onboarding a brand-new workload (Figure 10's story, end to end).

New pipelines appear mid-trace that the training week never saw.  The
BYOM category model still places their jobs sensibly because it learned
*feature structure* (resource allocation, metadata tokens, timestamps)
rather than identities.  A per-category admission heuristic keyed on
pipeline identity has no entry for the newcomers: with a static
admission set they stay on HDD forever, and even the refreshing variant
only catches up after observing completed executions.

Run:  python examples/new_workload_onboarding.py
"""

import numpy as np

from repro.baselines import CategoryAdmissionPolicy
from repro.config import ModelParams
from repro.core import ByomPipeline, prepare_cluster
from repro.storage import simulate
from repro.units import WEEK
from repro.workloads import ClusterSpec, generate_cluster_trace


def main() -> None:
    # A cluster with enough pipeline churn that week 2 contains
    # pipelines week 1 never saw (the generator retires ~20% of
    # pipelines early and starts ~30% mid-trace).
    spec = ClusterSpec(
        name="onboard",
        archetype_weights={"dbquery": 3, "streaming": 2, "logproc": 2,
                           "staging": 2, "reporting": 1},
        n_pipelines=24,
        n_users=8,
        seed=101,
    )
    trace = generate_cluster_trace(spec, duration=2 * WEEK)
    cluster = prepare_cluster(trace)

    train_pipelines = set(cluster.train.pipelines)
    is_new = np.array([p not in train_pipelines for p in cluster.test.pipelines])
    print(f"test week: {len(cluster.test)} jobs, "
          f"{int(is_new.sum())} from {len(set(np.array(cluster.test.pipelines)[is_new]))} "
          f"brand-new pipelines")

    pipe = ByomPipeline(ModelParams(n_rounds=10))
    pipe.train(cluster.train, cluster.features_train)

    quota = 0.05
    cap = quota * cluster.peak_ssd_usage
    ours = pipe.deploy(cluster.test, cluster.features_test, quota,
                       cluster.peak_ssd_usage)
    # Static admission set (no online refresh): what identity-keyed
    # placement does to workloads it has never seen.
    heuristic = simulate(
        cluster.test,
        CategoryAdmissionPolicy(cluster.train, refresh_interval=1e12),
        cap,
    )

    costs = cluster.test.costs()

    def seg_savings(result, mask):
        hdd = costs.c_hdd[mask].sum()
        realized = (
            result.ssd_fraction[mask] * costs.c_ssd[mask]
            + (1 - result.ssd_fraction[mask]) * costs.c_hdd[mask]
        ).sum()
        return 100 * (hdd - realized) / hdd if hdd > 0 else 0.0

    print(f"\nSSD quota {quota:.0%}; TCO savings split by pipeline novelty:")
    print(f"{'':24s}{'known pipelines':>18s}{'new pipelines':>16s}")
    for result, label in ((ours, "Adaptive Ranking"), (heuristic, "Heuristic")):
        print(f"  {label:22s}{seg_savings(result, ~is_new):17.2f}%"
              f"{seg_savings(result, is_new):15.2f}%")

    ssd_new_ours = ours.ssd_fraction[is_new].mean() if is_new.any() else 0.0
    ssd_new_h = heuristic.ssd_fraction[is_new].mean() if is_new.any() else 0.0
    print(f"\nmean SSD share of new-pipeline jobs: "
          f"ours {ssd_new_ours:.2f} vs static heuristic {ssd_new_h:.2f}")
    print("The model generalizes to unseen pipelines through shared feature")
    print("structure; identity-keyed admission cannot (cf. paper Figure 10).")


if __name__ == "__main__":
    main()
