#!/usr/bin/env python3
"""Mixed framework / non-framework deployment (Appendix C style).

Builds the paper's Appendix-C workload: data-processing-framework
pipelines mixed 1:1 (by footprint) with non-framework workloads (ML
checkpointing, compress-and-upload), then compares FirstFit and
Adaptive Ranking at 1% and 20% SSD quotas — including the
application-level run-time savings of Figure 14.

Run:  python examples/mixed_deployment.py
"""

import numpy as np

from repro.analysis import render_table
from repro.config import ModelParams
from repro.prototype import (
    application_runtime_savings,
    build_mixed_workload,
    run_prototype,
)


def main() -> None:
    workload = build_mixed_workload()
    n_fw = int(workload.is_framework.sum())
    print(f"mixed workload: {len(workload.trace)} jobs "
          f"({n_fw} framework, {len(workload.trace) - n_fw} non-framework)")

    rows = []
    runtime_rows = []
    for quota in (0.01, 0.20):
        result = run_prototype(
            workload, quota, model_params=ModelParams(n_rounds=8)
        )
        rows.append([
            f"{quota:.0%}",
            result.adaptive.tco_savings_pct,
            result.firstfit.tco_savings_pct,
            result.adaptive.tcio_savings_pct,
            result.firstfit.tcio_savings_pct,
        ])

        # Figure 14: application run-time savings, split by workload kind.
        # ssd_fraction aligns with the *test* half of the workload.
        from repro.core import prepare_cluster

        cluster = prepare_cluster(workload.trace)
        test_is_fw = np.array(
            [j.cluster.endswith("fw") and not j.cluster.endswith("nfw")
             for j in cluster.test]
        )
        rt = application_runtime_savings(cluster.test, result.adaptive.ssd_fraction)
        rt_ff = application_runtime_savings(cluster.test, result.firstfit.ssd_fraction)
        runtime_rows.append([
            f"{quota:.0%}",
            rt[test_is_fw].mean() if test_is_fw.any() else 0.0,
            rt[~test_is_fw].mean() if (~test_is_fw).any() else 0.0,
            rt_ff[test_is_fw].mean() if test_is_fw.any() else 0.0,
            rt_ff[~test_is_fw].mean() if (~test_is_fw).any() else 0.0,
        ])

    print()
    print(render_table(
        ["quota", "AR TCO %", "FF TCO %", "AR TCIO %", "FF TCIO %"],
        rows,
        title="Mixed-workload savings  [cf. paper Figure 13]",
    ))
    print()
    print(render_table(
        ["quota", "AR fw rt %", "AR non-fw rt %", "FF fw rt %", "FF non-fw rt %"],
        runtime_rows,
        title="Application run-time savings  [cf. paper Figure 14]",
    ))
    print("\nNo workload regresses: run-time savings are >= 0 by design "
          "(jobs are written against HDD performance; SSD is a bonus).")


if __name__ == "__main__":
    main()
