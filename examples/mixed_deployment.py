#!/usr/bin/env python3
"""Mixed framework / non-framework deployment (Appendix C style).

Builds the paper's Appendix-C workload: data-processing-framework
pipelines mixed 1:1 (by footprint) with non-framework workloads (ML
checkpointing, compress-and-upload), then compares FirstFit and
Adaptive Ranking at 1% and 20% SSD quotas — including the
application-level run-time savings of Figure 14.

Also demonstrates ``ByomPipeline.deploy(n_shards=...)``: the same
trained pipeline deployed against one global SSD pool versus the
capacity split across 16 caching servers (the production fragmentation
regime of Section 2.4), all through the unified shard-aware runtime.

Run:  python examples/mixed_deployment.py
"""

import numpy as np

from repro.analysis import render_table
from repro.config import ModelParams
from repro.core import ByomPipeline, prepare_cluster
from repro.prototype import (
    application_runtime_savings,
    build_mixed_workload,
    run_prototype,
)


def main() -> None:
    workload = build_mixed_workload()
    n_fw = int(workload.is_framework.sum())
    print(f"mixed workload: {len(workload.trace)} jobs "
          f"({n_fw} framework, {len(workload.trace) - n_fw} non-framework)")

    # One prepared cluster serves the Figure-14 split and the sharded
    # deployment below (prepare_cluster is deterministic but not cheap).
    cluster = prepare_cluster(workload.trace)

    rows = []
    runtime_rows = []
    for quota in (0.01, 0.20):
        result = run_prototype(
            workload, quota, model_params=ModelParams(n_rounds=8)
        )
        rows.append([
            f"{quota:.0%}",
            result.adaptive.tco_savings_pct,
            result.firstfit.tco_savings_pct,
            result.adaptive.tcio_savings_pct,
            result.firstfit.tcio_savings_pct,
        ])

        # Figure 14: application run-time savings, split by workload kind.
        # ssd_fraction aligns with the *test* half of the workload.
        test_is_fw = np.array(
            [j.cluster.endswith("fw") and not j.cluster.endswith("nfw")
             for j in cluster.test]
        )
        rt = application_runtime_savings(cluster.test, result.adaptive.ssd_fraction)
        rt_ff = application_runtime_savings(cluster.test, result.firstfit.ssd_fraction)
        runtime_rows.append([
            f"{quota:.0%}",
            rt[test_is_fw].mean() if test_is_fw.any() else 0.0,
            rt[~test_is_fw].mean() if (~test_is_fw).any() else 0.0,
            rt_ff[test_is_fw].mean() if test_is_fw.any() else 0.0,
            rt_ff[~test_is_fw].mean() if (~test_is_fw).any() else 0.0,
        ])

    print()
    print(render_table(
        ["quota", "AR TCO %", "FF TCO %", "AR TCIO %", "FF TCIO %"],
        rows,
        title="Mixed-workload savings  [cf. paper Figure 13]",
    ))
    print()
    print(render_table(
        ["quota", "AR fw rt %", "AR non-fw rt %", "FF fw rt %", "FF non-fw rt %"],
        runtime_rows,
        title="Application run-time savings  [cf. paper Figure 14]",
    ))
    print("\nNo workload regresses: run-time savings are >= 0 by design "
          "(jobs are written against HDD performance; SSD is a bonus).")

    # Sharded deployment: one trained pipeline, the n_shards knob picks
    # the caching-server regime.  Fragmentation costs savings (each
    # pipeline is pinned to one shard's slice), but the behaviour-
    # feedback policy keeps adapting from per-shard spill signals.
    pipeline = ByomPipeline(ModelParams(n_rounds=8)).train(
        cluster.train, cluster.features_train
    )
    shard_rows = []
    for n_shards in (1, 16):
        result = pipeline.deploy(
            cluster.test, cluster.features_test, quota_fraction=0.05,
            peak_usage=cluster.peak_ssd_usage, n_shards=n_shards,
        )
        shard_rows.append([
            n_shards,
            result.tco_savings_pct,
            result.n_spilled,
            result.scalar_fallback_jobs,
        ])
    print()
    print(render_table(
        ["caching servers", "AR TCO %", "spilled jobs", "scalar-replayed"],
        shard_rows,
        title="Sharded deployment @ 5% quota  [ByomPipeline.deploy(n_shards=...)]",
    ))


if __name__ == "__main__":
    main()
