#!/usr/bin/env python3
"""Streaming ingestion: simulate a large CSV trace without job objects.

Demonstrates the out-of-core trace path (docs/streaming.md):

1. write a large arrival-ordered CSV trace to disk, straight from
   columns (no job objects on the write side either);
2. stream it through ``simulate`` with the adaptive policy via
   ``stream_csv_trace`` — blocks of structure-of-arrays columns,
   line-buffered, nothing materialized per job;
3. replay the same file through the materializing ``load_csv_trace``
   path and compare results (bit-identical) and peak RSS.

The streamed pass runs first: ``ru_maxrss`` is a process-lifetime
high-water mark, so each pass reports the *new* peak it establishes —
running the lean reader first keeps both measurements honest.

Run:  python examples/streaming_trace.py            (~150k jobs)
      N_JOBS=30000 python examples/streaming_trace.py
"""

import csv
import os
import resource
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import AdaptiveCategoryPolicy, hash_categories
from repro.storage import simulate
from repro.units import fmt_bytes
from repro.workloads import load_csv_trace, materialize_trace, stream_csv_trace

N_JOBS = int(os.environ.get("N_JOBS", "150000"))
BLOCK_SIZE = 16384
N_CATEGORIES = 15
QUOTA = 0.05
SPAN = 14 * 86_400.0


def peak_rss_mib() -> float:
    """Lifetime peak RSS of this process (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def write_trace_csv(path: Path, n: int, seed: int = 0) -> None:
    """Write an arrival-ordered CSV trace directly from columns."""
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, SPAN, n))
    durations = rng.lognormal(mean=7.0, sigma=1.2, size=n)
    sizes = rng.lognormal(mean=21.0, sigma=1.5, size=n)
    read_ops = rng.uniform(1e3, 1e6, size=n)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["job_id", "arrival", "duration", "size", "read_bytes",
             "write_bytes", "read_ops", "pipeline", "user"]
        )
        for i in range(n):
            writer.writerow(
                [i, arrivals[i], durations[i], sizes[i], sizes[i] * 2.0,
                 sizes[i], read_ops[i], f"p{i % 400}", f"u{i % 50}"]
            )


def deploy(trace):
    """One adaptive-hash deployment at a fixed quota."""
    capacity = QUOTA * trace.peak_ssd_usage()
    policy = AdaptiveCategoryPolicy(
        hash_categories(trace, N_CATEGORIES), N_CATEGORIES
    )
    return simulate(trace, policy, capacity)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.csv"
        write_trace_csv(path, N_JOBS)
        print(f"wrote {N_JOBS:,} jobs to {path.name} "
              f"({fmt_bytes(path.stat().st_size)} of CSV)")

        # Streamed pass: blocks of columns, no per-job objects.
        rss0 = peak_rss_mib()
        t0 = time.perf_counter()
        streamed = materialize_trace(stream_csv_trace(path, block_size=BLOCK_SIZE))
        res_stream = deploy(streamed)
        t_stream = time.perf_counter() - t0
        rss_stream = peak_rss_mib() - rss0
        print(f"\nstreamed  (stream_csv_trace, blocks of {BLOCK_SIZE:,}):")
        print(f"  time {t_stream:6.1f} s   new peak RSS +{rss_stream:,.0f} MiB")

        # In-memory pass: one ShuffleJob object per row.
        rss1 = peak_rss_mib()
        t0 = time.perf_counter()
        materialized = load_csv_trace(path)
        res_inmem = deploy(materialized)
        t_inmem = time.perf_counter() - t0
        rss_inmem = peak_rss_mib() - rss1
        print(f"in-memory (load_csv_trace, ShuffleJob objects):")
        print(f"  time {t_inmem:6.1f} s   new peak RSS +{rss_inmem:,.0f} MiB")

        assert res_stream.realized_tco == res_inmem.realized_tco
        assert np.array_equal(res_stream.ssd_fraction, res_inmem.ssd_fraction)
        print(f"\nbit-identical results: TCO savings "
              f"{res_stream.tco_savings_pct:.2f}%, "
              f"{res_stream.n_spilled:,} spills on both paths")
        if rss_stream > 0:
            print(f"in-memory path peaked {rss_inmem / rss_stream:.1f}x higher "
                  "over the streamed baseline")


if __name__ == "__main__":
    main()
