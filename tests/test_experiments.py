"""Analysis experiment runners (on a small cluster for speed)."""

import numpy as np
import pytest

from repro.analysis import MethodSuite, fig1_workload_diversity
from repro.config import AdaptiveParams, ModelParams
from repro.core import prepare_cluster

FAST_MODEL = ModelParams(n_categories=6, n_rounds=4, max_depth=3)


@pytest.fixture(scope="module")
def suite(two_week_trace):
    cluster = prepare_cluster(two_week_trace)
    return MethodSuite(cluster, model_params=FAST_MODEL)


ALL_METHODS = (
    "Adaptive Ranking",
    "Adaptive Hash",
    "ML Baseline",
    "FirstFit",
    "Heuristic",
    "True category",
    "Oracle TCO",
    "Oracle TCIO",
)


class TestMethodSuite:
    def test_capacity_scales_with_quota(self, suite):
        assert suite.capacity(0.5) == pytest.approx(0.5 * suite.peak)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_every_method_runs(self, suite, method):
        res = suite.run(method, 0.05)
        assert res.n_jobs == len(suite.cluster.test)
        assert np.isfinite(res.tco_savings_pct)

    def test_unknown_method_raises(self, suite):
        with pytest.raises(ValueError):
            suite.run("Magic", 0.05)

    def test_oracle_upper_bounds_ours(self, suite):
        ours = suite.run("Adaptive Ranking", 0.05)
        oracle = suite.run("Oracle TCO", 0.05)
        assert oracle.tco_savings_pct >= ours.tco_savings_pct - 0.5

    def test_oracle_tcio_maximizes_tcio(self, suite):
        tcio_oracle = suite.run("Oracle TCIO", 0.05)
        tco_oracle = suite.run("Oracle TCO", 0.05)
        assert tcio_oracle.tcio_savings_pct >= tco_oracle.tcio_savings_pct - 0.5

    def test_results_deterministic(self, suite):
        a = suite.run("Adaptive Ranking", 0.1)
        b = suite.run("Adaptive Ranking", 0.1)
        assert a.tco_savings_pct == pytest.approx(b.tco_savings_pct)


class TestFig1Runner:
    def test_two_contrasting_workloads(self):
        result = fig1_workload_diversity(hours=6)
        assert set(result) == {"Workload 0", "Workload 1"}
        for series in result.values():
            assert series["hour"].shape == (6,)
            assert (series["space_bytes"] >= 0).all()

    def test_deterministic(self):
        a = fig1_workload_diversity(hours=4, seed=3)
        b = fig1_workload_diversity(hours=4, seed=3)
        assert np.allclose(a["Workload 0"]["space_bytes"], b["Workload 0"]["space_bytes"])
