"""Table-2 feature extraction: groups, alignment, hashing stability."""

import numpy as np
import pytest

from repro.workloads import (
    FEATURE_GROUPS,
    HISTORY_FEATURES,
    RESOURCE_FEATURES,
    TIME_FEATURES,
    FeatureMatrix,
    Trace,
    extract_features,
)

from helpers import make_job


class TestExtractFeatures:
    def test_shape_and_groups(self, handmade_trace):
        fm = extract_features(handmade_trace)
        assert fm.X.shape[0] == len(handmade_trace)
        assert set(fm.groups) == set(FEATURE_GROUPS)
        # 4 history + 5*16 hashed + 8 resources + 3 time
        assert fm.n_features == 4 + 80 + 8 + 3

    def test_group_column_counts(self, handmade_trace):
        fm = extract_features(handmade_trace)
        assert len(fm.group_columns("A")) == len(HISTORY_FEATURES)
        assert len(fm.group_columns("C")) == len(RESOURCE_FEATURES)
        assert len(fm.group_columns("T")) == len(TIME_FEATURES)
        assert len(fm.group_columns("B")) == 80

    def test_time_features_correct(self):
        from repro.units import DAY, HOUR

        job = make_job(0, arrival=2 * DAY + 3 * HOUR + 42.0)
        fm = extract_features(Trace([job]))
        names = list(fm.names)
        assert fm.X[0, names.index("open_time_day_hour")] == 3.0
        assert fm.X[0, names.index("open_time_weekday")] == 2.0
        assert fm.X[0, names.index("open_time_seconds")] == pytest.approx(
            3 * HOUR + 42.0
        )

    def test_resource_features_copied(self, handmade_trace):
        fm = extract_features(handmade_trace)
        names = list(fm.names)
        col = names.index("bucket_sizing_num_workers")
        assert fm.X[0, col] == handmade_trace[0].resources["bucket_sizing_num_workers"]

    def test_hashing_deterministic(self, handmade_trace):
        a = extract_features(handmade_trace)
        b = extract_features(handmade_trace)
        assert np.array_equal(a.X, b.X)

    def test_same_pipeline_same_hash_columns(self):
        j0 = make_job(0, pipeline="p1", step=0)
        j1 = make_job(1, arrival=1000.0, pipeline="p1", step=0)
        fm = extract_features(Trace([j0, j1]))
        b_cols = fm.group_columns("B")
        assert np.array_equal(fm.X[0, b_cols], fm.X[1, b_cols])

    def test_custom_bucket_count(self, handmade_trace):
        fm = extract_features(handmade_trace, n_hash_buckets=8)
        assert len(fm.group_columns("B")) == 40


class TestFeatureMatrix:
    def test_take_preserves_metadata(self, handmade_trace):
        fm = extract_features(handmade_trace)
        sub = fm.take(np.array([0, 2]))
        assert len(sub) == 2
        assert sub.names == fm.names
        assert sub.groups == fm.groups

    def test_drop_columns(self, handmade_trace):
        fm = extract_features(handmade_trace)
        a_cols = fm.group_columns("A")
        dropped = fm.drop_columns(a_cols)
        assert dropped.n_features == fm.n_features - len(a_cols)
        assert "A" not in dropped.groups

    def test_validation_mismatched_names(self):
        with pytest.raises(ValueError):
            FeatureMatrix(X=np.zeros((2, 3)), names=("a",), groups=("A", "B", "C"))

    def test_validation_non_2d(self):
        with pytest.raises(ValueError):
            FeatureMatrix(X=np.zeros(3), names=("a", "b", "c"), groups=("A", "A", "A"))
