"""Cost model: rates validation, TCIO computation, TCO formulas."""

import numpy as np
import pytest

from repro.cost import (
    DEFAULT_RATES,
    CostRates,
    cumulative_tcio,
    effective_disk_ops,
    hdd_cost,
    ssd_cost,
    tcio_rate,
    tco_savings,
)
from repro.units import GIB, HOUR, MIB, TIB


class TestCostRates:
    def test_default_ssd_byte_premium(self):
        # SSD capacity must cost more per byte than HDD.
        assert DEFAULT_RATES.ssd_byte_rate > DEFAULT_RATES.hdd_byte_rate

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            CostRates(network_rate=-1.0)

    def test_rejects_bad_cache_fraction(self):
        with pytest.raises(ValueError):
            CostRates(dram_cache_hit_fraction=1.0)
        with pytest.raises(ValueError):
            CostRates(dram_cache_hit_fraction=-0.1)

    def test_rejects_zero_hdd_ops(self):
        with pytest.raises(ValueError):
            CostRates(hdd_ops_per_second=0.0)


class TestEffectiveDiskOps:
    def test_dram_cache_filters_reads(self):
        rates = CostRates(dram_cache_hit_fraction=0.5)
        ops = effective_disk_ops(read_ops=1000.0, write_bytes=0.0, rates=rates)
        assert ops == pytest.approx(500.0)

    def test_writes_grouped_into_mib_chunks(self):
        # 10 MiB of writes -> 10 chunk operations regardless of op count.
        ops = effective_disk_ops(read_ops=0.0, write_bytes=10 * MIB)
        assert ops == pytest.approx(10.0)

    def test_partial_chunk_rounds_up(self):
        ops = effective_disk_ops(read_ops=0.0, write_bytes=1.0)
        assert ops == 1.0

    def test_vectorized(self):
        out = effective_disk_ops(np.array([100.0, 200.0]), np.array([0.0, 0.0]))
        assert out.shape == (2,)
        assert out[1] == pytest.approx(2 * out[0])


class TestTcioRate:
    def test_unit_definition(self):
        # A job issuing exactly hdd_ops_per_second effective ops/s has TCIO 1.
        rates = CostRates(dram_cache_hit_fraction=0.0)
        rate = tcio_rate(
            read_ops=rates.hdd_ops_per_second * 100,
            write_bytes=0.0,
            duration=100.0,
            rates=rates,
        )
        assert rate == pytest.approx(1.0)

    def test_zero_duration_clamped(self):
        rate = tcio_rate(read_ops=150.0, write_bytes=0.0, duration=0.0)
        assert np.isfinite(rate) and rate > 0

    def test_ssd_like_job_has_high_tcio(self, handmade_trace):
        tc = handmade_trace.tcio()
        assert (tc > 0).all()


class TestCumulativeTcio:
    def test_grows_linearly_until_end(self):
        assert cumulative_tcio(2.0, arrival=10.0, end=110.0, t=60.0) == pytest.approx(100.0)
        assert cumulative_tcio(2.0, arrival=10.0, end=110.0, t=500.0) == pytest.approx(200.0)

    def test_zero_before_arrival(self):
        assert cumulative_tcio(2.0, arrival=10.0, end=110.0, t=5.0) == 0.0


class TestTcoFormulas:
    def test_hdd_cost_components(self):
        rates = DEFAULT_RATES
        size, dur, total, tcio = 1 * GIB, HOUR, 3 * GIB, 0.5
        expected = (
            rates.hdd_byte_rate * size * dur
            + rates.network_rate * total
            + (rates.hdd_server_rate + rates.hdd_device_rate) * tcio * dur
        )
        assert hdd_cost(size, dur, total, tcio) == pytest.approx(expected)

    def test_ssd_cost_components(self):
        rates = DEFAULT_RATES
        size, dur, total, wr = 1 * GIB, HOUR, 3 * GIB, 2 * GIB
        expected = (
            rates.ssd_byte_rate * size * dur
            + rates.network_rate * total
            + rates.ssd_server_rate * total
            + rates.ssd_wearout_rate * wr
        )
        assert ssd_cost(size, dur, total, wr) == pytest.approx(expected)

    def test_savings_is_difference(self):
        args = dict(size=1 * GIB, duration=HOUR, total_bytes=3 * GIB)
        s = tco_savings(write_bytes=1 * GIB, tcio=2.0, **args)
        assert s == pytest.approx(
            hdd_cost(tcio=2.0, **args) - ssd_cost(write_bytes=1 * GIB, **args)
        )

    def test_io_dense_job_positive_savings(self):
        # Small footprint, short life, huge I/O: SSD must win.
        s = tco_savings(
            size=1 * GIB,
            duration=300.0,
            total_bytes=4 * GIB,
            write_bytes=2 * GIB,
            tcio=5.0,
        )
        assert s > 0

    def test_cold_job_negative_savings(self):
        # Large, long-lived, almost no I/O: HDD must win.
        s = tco_savings(
            size=1 * TIB,
            duration=24 * HOUR,
            total_bytes=1 * GIB,
            write_bytes=0.5 * GIB,
            tcio=0.001,
        )
        assert s < 0

    def test_network_cost_cancels_in_savings(self):
        base = dict(
            size=1 * GIB, duration=HOUR, total_bytes=5 * GIB, write_bytes=1 * GIB, tcio=1.0
        )
        r1 = CostRates(network_rate=0.0)
        r2 = CostRates(network_rate=1.0 / TIB)
        assert tco_savings(rates=r1, **base) == pytest.approx(tco_savings(rates=r2, **base))
