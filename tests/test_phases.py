"""Three-phase shuffle-job I/O decomposition."""

import numpy as np
import pytest

from repro.units import GIB
from repro.workloads import Phase, decompose_phases

from helpers import make_job


class TestPhaseValidation:
    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            Phase("write", 0.5, 0.5, 0, 0, 0)
        with pytest.raises(ValueError):
            Phase("write", -0.1, 0.5, 0, 0, 0)

    def test_invalid_overlap_rejected(self):
        with pytest.raises(ValueError):
            decompose_phases(make_job(), overlap=0.6)


class TestDecomposePhases:
    def test_byte_conservation(self):
        job = make_job(read_bytes=5 * GIB, write_bytes=3 * GIB, size=2 * GIB)
        profile = decompose_phases(job)
        total_read = sum(p.read_bytes for p in profile.phases)
        total_write = sum(p.write_bytes for p in profile.phases)
        assert total_read == pytest.approx(job.read_bytes)
        assert total_write == pytest.approx(job.write_bytes)

    def test_ops_conservation(self):
        job = make_job(read_ops=10_000.0)
        profile = decompose_phases(job)
        assert sum(p.read_ops for p in profile.phases) == pytest.approx(10_000.0)

    def test_phase_roles(self):
        job = make_job(read_bytes=5 * GIB, write_bytes=3 * GIB, size=2 * GIB)
        profile = decompose_phases(job)
        # Raw writes land in the write phase, bounded by the footprint.
        assert profile.write.write_bytes == pytest.approx(2 * GIB)
        assert profile.write.read_bytes == 0.0
        # Retrieval is read-only and carries most of the random ops.
        assert profile.retrieve.write_bytes == 0.0
        assert profile.retrieve.read_ops > profile.sort.read_ops

    def test_phases_ordered_and_overlapping(self):
        profile = decompose_phases(make_job(), overlap=0.2)
        w, s, r = profile.phases
        assert w.start_frac < s.start_frac < r.start_frac
        assert w.end_frac > s.start_frac  # overlap exists
        assert s.end_frac > r.start_frac
        assert r.end_frac == 1.0

    def test_zero_overlap_partitions(self):
        profile = decompose_phases(make_job(), overlap=0.0)
        w, s, r = profile.phases
        assert w.end_frac == pytest.approx(s.start_frac)
        assert s.end_frac == pytest.approx(r.start_frac)


class TestProfileQueries:
    def test_cumulative_monotone_and_complete(self):
        job = make_job(read_bytes=4 * GIB, write_bytes=2 * GIB)
        profile = decompose_phases(job)
        fracs = np.linspace(0, 1, 21)
        series = [profile.cumulative_bytes(f) for f in fracs]
        assert all(b >= a - 1e-6 for a, b in zip(series, series[1:]))
        assert series[0] == 0.0
        assert series[-1] == pytest.approx(job.total_bytes)

    def test_io_rate_nonnegative(self):
        profile = decompose_phases(make_job())
        for f in np.linspace(0, 0.99, 10):
            assert profile.io_rate_at(float(f)) >= 0.0

    def test_out_of_range_frac_rejected(self):
        profile = decompose_phases(make_job())
        with pytest.raises(ValueError):
            profile.cumulative_bytes(1.5)
        with pytest.raises(ValueError):
            profile.io_rate_at(-0.1)
