"""Trace persistence round-trip and week splitting."""

import numpy as np
import pytest

from repro.units import WEEK
from repro.workloads import load_trace, save_trace, week_split


class TestSaveLoad:
    def test_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "trace"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(small_trace)
        assert np.allclose(loaded.arrivals, small_trace.arrivals)
        assert np.allclose(loaded.sizes, small_trace.sizes)
        assert loaded.name == small_trace.name

    def test_roundtrip_preserves_metadata(self, small_trace, tmp_path):
        path = tmp_path / "trace"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        assert loaded[0].metadata == small_trace[0].metadata
        assert loaded[0].resources == small_trace[0].resources
        assert loaded[0].pipeline == small_trace[0].pipeline

    def test_costs_identical_after_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "trace"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        assert np.allclose(loaded.costs().savings, small_trace.costs().savings)


class TestWeekSplit:
    def test_partition_complete(self, two_week_trace):
        train, train_idx, test, test_idx = week_split(two_week_trace)
        assert len(train) + len(test) == len(two_week_trace)
        assert len(train_idx) == len(train)
        assert len(test_idx) == len(test)

    def test_boundary(self, two_week_trace):
        train, _, test, _ = week_split(two_week_trace)
        assert train.arrivals.max() < WEEK
        assert test.arrivals.min() >= WEEK

    def test_indices_map_back(self, two_week_trace):
        train, train_idx, _, _ = week_split(two_week_trace)
        assert np.allclose(two_week_trace.arrivals[train_idx], train.arrivals)
