"""CLI ``serve`` / ``loadgen`` subcommands and the ``--aggregate`` flag.

Includes the interrupt contract: Ctrl-C mid-stream flushes the queued
jobs, prints a partial roll-up, and exits non-zero (130).
"""

import numpy as np
import pytest

from repro.cli import main
from repro.units import GIB
from repro.workloads import Trace, save_trace

from helpers import make_job


@pytest.fixture()
def trace_path(tmp_path):
    rng = np.random.default_rng(0)
    arrivals = np.sort(rng.uniform(0.0, 5000.0, 300))
    jobs = [
        make_job(i, arrival=float(arrivals[i]),
                 duration=float(rng.uniform(30.0, 600.0)),
                 size=float(rng.uniform(0.1, 4.0) * GIB),
                 pipeline=f"p{i % 7}")
        for i in range(300)
    ]
    path = tmp_path / "trace"
    save_trace(Trace(jobs, name="cli"), str(path))
    return str(path) + ".npz"


class TestServeCommand:
    def test_batch_mode(self, trace_path, capsys):
        assert main(["serve", "--trace", trace_path, "--quota", "0.1",
                     "--batch", "64"]) == 0
        out = capsys.readouterr().out
        assert "served 300 of 300 jobs" in out
        assert "decision latency" in out
        assert "final roll-up" in out

    def test_scalar_mode(self, trace_path, capsys):
        assert main(["serve", "--trace", trace_path, "--mode", "scalar",
                     "--quota", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "scalar mode" in out
        assert "one request per submission" in out

    def test_sharded_with_backpressure(self, trace_path, capsys):
        assert main(["serve", "--trace", trace_path, "--shards", "4",
                     "--max-pending", "32"]) == 0
        assert "final roll-up" in capsys.readouterr().out

    def test_aggregate_flag(self, trace_path, capsys):
        assert main(["serve", "--trace", trace_path, "--aggregate"]) == 0
        assert "final roll-up" in capsys.readouterr().out

    def test_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty"
        save_trace(Trace([], name="empty"), str(path))
        assert main(["serve", "--trace", str(path) + ".npz"]) == 0
        assert "nothing to serve" in capsys.readouterr().out

    def test_keyboard_interrupt_flushes_and_exits_130(
        self, trace_path, capsys, monkeypatch
    ):
        from repro.serve import PlacementService

        real = PlacementService.submit_batch
        calls = {"n": 0}

        def flaky(self, *a, **kw):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt
            return real(self, *a, **kw)

        monkeypatch.setattr(PlacementService, "submit_batch", flaky)
        rc = main(["serve", "--trace", trace_path, "--batch", "64"])
        assert rc == 130
        captured = capsys.readouterr()
        assert "interrupted" in captured.err
        assert "partial roll-up (interrupted)" in captured.out
        # The partial summary covers the two successful batches (128
        # submitted), fully drained.
        assert "128 jobs decided" in captured.out


class TestLoadgenCommand:
    def test_unpaced_run(self, trace_path, capsys):
        assert main(["loadgen", "--trace", trace_path, "--batch", "50"]) == 0
        out = capsys.readouterr().out
        assert "offered 300 jobs" in out
        assert "unpaced" in out
        assert "achieved:" in out
        assert "final roll-up" in out

    def test_paced_burst_shapes(self, trace_path, capsys):
        assert main(["loadgen", "--trace", trace_path, "--rate", "1000000",
                     "--burst", "poisson", "--batch", "100"]) == 0
        out = capsys.readouterr().out
        assert "1,000,000 jobs/s" in out
        assert "'poisson'" in out

    def test_limit(self, trace_path, capsys):
        assert main(["loadgen", "--trace", trace_path, "--limit", "120",
                     "--batch", "40"]) == 0
        assert "offered 120 jobs" in capsys.readouterr().out

    def test_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty"
        save_trace(Trace([], name="empty"), str(path))
        assert main(["loadgen", "--trace", str(path) + ".npz"]) == 0
        assert "nothing to offer" in capsys.readouterr().out

    def test_keyboard_interrupt_exits_130(self, trace_path, capsys, monkeypatch):
        from repro.serve import PlacementService

        real = PlacementService.submit_block
        calls = {"n": 0}

        def flaky(self, block):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return real(self, block)

        monkeypatch.setattr(PlacementService, "submit_block", flaky)
        rc = main(["loadgen", "--trace", trace_path, "--batch", "60"])
        assert rc == 130
        captured = capsys.readouterr()
        assert "interrupted" in captured.err
        assert "partial roll-up (interrupted)" in captured.out


class TestReplayAggregateFlag:
    def test_replay_aggregate(self, trace_path, capsys):
        assert main(["replay", "--trace", trace_path, "--quota", "0.1",
                     "--aggregate"]) == 0
        out = capsys.readouterr().out
        assert "aggregate-only" in out
        assert "TCO savings" in out

    def test_replay_aggregate_sharded_matches_full(self, trace_path, capsys):
        assert main(["replay", "--trace", trace_path, "--shards", "4"]) == 0
        full = capsys.readouterr().out
        assert main(["replay", "--trace", trace_path, "--shards", "4",
                     "--aggregate"]) == 0
        agg = capsys.readouterr().out
        # Identical numbers; only the aggregate-only note is new.
        for line in full.splitlines():
            if "savings" in line or "spilled" in line:
                assert line in agg
