"""analytic_result: SimResult construction from SSD fractions."""

import numpy as np
import pytest

from repro.storage import Decision, PlacementPolicy, analytic_result, simulate


class _FullSSD(PlacementPolicy):
    name = "full"

    def decide(self, job_index, ctx):
        return Decision(want_ssd=True)


class TestAnalyticResult:
    def test_matches_simulation_when_everything_fits(self, handmade_trace):
        sim = simulate(handmade_trace, _FullSSD(), capacity=1e18)
        analytic = analytic_result(
            handmade_trace, np.ones(len(handmade_trace)), capacity=1e18
        )
        assert analytic.realized_tco == pytest.approx(sim.realized_tco)
        assert analytic.realized_hdd_tcio == pytest.approx(sim.realized_hdd_tcio)
        assert analytic.tco_savings_pct == pytest.approx(sim.tco_savings_pct)

    def test_zero_fraction_is_all_hdd(self, handmade_trace):
        res = analytic_result(handmade_trace, np.zeros(len(handmade_trace)), 0.0)
        assert res.tco_savings_pct == 0.0
        assert res.tcio_savings_pct == 0.0

    def test_fraction_interpolates(self, handmade_trace):
        costs = handmade_trace.costs()
        frac = np.full(len(handmade_trace), 0.5)
        res = analytic_result(handmade_trace, frac, 0.0)
        expected = 0.5 * costs.c_ssd.sum() + 0.5 * costs.c_hdd.sum()
        assert res.realized_tco == pytest.approx(expected)

    def test_shape_validation(self, handmade_trace):
        with pytest.raises(ValueError):
            analytic_result(handmade_trace, np.ones(2), 0.0)

    def test_range_validation(self, handmade_trace):
        with pytest.raises(ValueError):
            analytic_result(handmade_trace, np.full(len(handmade_trace), 1.5), 0.0)
        with pytest.raises(ValueError):
            analytic_result(handmade_trace, np.full(len(handmade_trace), -0.1), 0.0)
