"""ShuffleJob and Trace container semantics."""

import numpy as np
import pytest

from repro.units import GIB
from repro.workloads import ShuffleJob, Trace

from helpers import make_job


class TestShuffleJob:
    def test_end_and_total_bytes(self):
        job = make_job(arrival=10.0, duration=50.0, read_bytes=3.0, write_bytes=4.0)
        assert job.end == 60.0
        assert job.total_bytes == 7.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            make_job(duration=-1.0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            make_job(size=-5.0)


class TestTrace:
    def test_sorted_by_arrival(self):
        jobs = [make_job(0, arrival=100.0), make_job(1, arrival=5.0)]
        trace = Trace(jobs)
        assert trace[0].arrival == 5.0
        assert list(trace.arrivals) == sorted(trace.arrivals)

    def test_len_iter_getitem(self, handmade_trace):
        assert len(handmade_trace) == 4
        assert sum(1 for _ in handmade_trace) == 4
        assert handmade_trace[0].job_id == 0

    def test_array_views_align(self, handmade_trace):
        t = handmade_trace
        assert t.ends == pytest.approx(t.arrivals + t.durations)
        assert t.total_bytes == pytest.approx(t.read_bytes + t.write_bytes)

    def test_peak_ssd_usage_handmade(self, handmade_trace):
        # Jobs 0 (10 GiB, [0,100)) and 1 (20 GiB, [50,150)) overlap.
        assert handmade_trace.peak_ssd_usage() == pytest.approx(30 * GIB)

    def test_peak_usage_right_open_intervals(self):
        # One job ends exactly when the next starts: no overlap.
        jobs = [
            make_job(0, arrival=0.0, duration=100.0, size=10 * GIB),
            make_job(1, arrival=100.0, duration=100.0, size=10 * GIB),
        ]
        assert Trace(jobs).peak_ssd_usage() == pytest.approx(10 * GIB)

    def test_peak_usage_empty(self):
        assert Trace([]).peak_ssd_usage() == 0.0

    def test_split_at(self, handmade_trace):
        before, after = handmade_trace.split_at(120.0)
        assert len(before) == 2 and len(after) == 2
        assert all(j.arrival < 120.0 for j in before)
        assert all(j.arrival >= 120.0 for j in after)

    def test_subset_mask(self, handmade_trace):
        mask = np.array([True, False, True, False])
        sub = handmade_trace.subset(mask)
        assert len(sub) == 2

    def test_subset_bad_mask_raises(self, handmade_trace):
        with pytest.raises(ValueError):
            handmade_trace.subset(np.array([True]))

    def test_costs_shapes(self, handmade_trace):
        c = handmade_trace.costs()
        assert c.c_hdd.shape == (4,)
        assert c.savings.shape == (4,)

    def test_io_density_positive(self, handmade_trace):
        assert (handmade_trace.io_density() > 0).all()

    def test_io_density_scales_with_ops(self):
        lo = make_job(0, read_ops=100.0)
        hi = make_job(1, read_ops=100000.0)
        trace = Trace([lo, hi])
        d = trace.io_density()
        assert d[1] > d[0]
