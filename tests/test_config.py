"""Configuration dataclass validation and RNG helpers."""

import numpy as np
import pytest

from repro.config import AdaptiveParams, ModelParams, SimConfig, rng_from


class TestRngFrom:
    def test_seed_reproducible(self):
        a = rng_from(42).integers(0, 1000, 10)
        b = rng_from(42).integers(0, 1000, 10)
        assert (a == b).all()

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert rng_from(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(rng_from(None), np.random.Generator)


class TestAdaptiveParams:
    def test_defaults_valid(self):
        p = AdaptiveParams()
        assert p.spillover_low <= p.spillover_high
        assert p.initial_act >= 1

    def test_rejects_inverted_tolerance(self):
        with pytest.raises(ValueError):
            AdaptiveParams(spillover_low=0.5, spillover_high=0.1)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            AdaptiveParams(spillover_low=-0.1, spillover_high=0.1)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            AdaptiveParams(lookback_window=0.0)

    def test_rejects_act_zero(self):
        with pytest.raises(ValueError):
            AdaptiveParams(initial_act=0)


class TestModelParams:
    def test_defaults_are_paper_shape(self):
        p = ModelParams()
        assert p.n_categories == 15
        assert p.max_depth == 6

    def test_rejects_single_category(self):
        with pytest.raises(ValueError):
            ModelParams(n_categories=1)

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ValueError):
            ModelParams(learning_rate=0.0)
        with pytest.raises(ValueError):
            ModelParams(learning_rate=1.5)

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            ModelParams(n_rounds=0)


class TestSimConfig:
    def test_rejects_negative_quota(self):
        with pytest.raises(ValueError):
            SimConfig(ssd_quota_fraction=-0.1)

    def test_default_has_adaptive_params(self):
        assert isinstance(SimConfig().adaptive, AdaptiveParams)
